"""Figure 4(g)(h)(i): runtime vs sample count (log-log) per dataset.

Paper setting: (minpts, eps) fixed at (500, 0.0025) / (1000, 0.05) /
(100, 0.01) for NGSIM / PortoTaxi / 3D Road; n grows by powers of two.
Shape claims:

- all algorithms scale near-linearly (straight lines in log-log);
- G-DBSCAN *runs out of memory* on the largest PortoTaxi samples (its
  missing points in Figure 4(h)) — reproduced here with a capped device
  whose capacity stands in for the V100's 16 GB at the scaled-down n;
- FDBSCAN/DenseBox keep running at every size (memory linear in n).

The largest sizes here are 2^14 (vs the paper's 2^17): the simulated
device is host-speed-bound; a per-cell time budget reports slower
algorithms' biggest cells as "skipped" rather than stalling the panel.
"""

import pytest

from benchmarks.conftest import COMPARISON_ALGOS, bench_cell, dataset
from repro.datasets import paper_params

FIGURE_TITLE = "Figure 4(g-i): seconds vs n (log-log)"
X_KEY = "n"
LOGLOG = True

SIZES = [1024, 2048, 4096, 8192, 16384]

#: Device capacity for the scaling panel (stands in for the 16 GB V100 at
#: the scaled-down problem sizes: PortoTaxi at (1000, 0.05) is a
#: near-complete graph, so G-DBSCAN's CSR bursts this long before the
#: fused algorithms' linear state does).
CAPACITY_BYTES = 512 * 1024 * 1024

_over_budget: set = set()
TIME_BUDGET = 30.0

PANELS = ["ngsim", "portotaxi", "road3d"]


def _cases():
    for name in PANELS:
        minpts, eps = paper_params(name).size_sweep_params
        for n in SIZES:
            for algorithm in COMPARISON_ALGOS:
                yield name, n, eps, minpts, algorithm


@pytest.mark.parametrize(
    "name,n,eps,minpts,algorithm",
    list(_cases()),
    ids=lambda v: str(v),
)
def test_fig4_scaling(benchmark, sink, name, n, eps, minpts, algorithm):
    if (name, algorithm) in _over_budget:
        pytest.skip("previous size exceeded the time budget")
    X = dataset(name, n)
    record = bench_cell(
        benchmark,
        sink,
        algorithm,
        X,
        eps,
        minpts,
        dataset_name=name,
        capacity_bytes=CAPACITY_BYTES,
    )
    if record.status == "ok" and record.seconds > TIME_BUDGET:
        _over_budget.add((name, algorithm))
    # The fused algorithms must never OOM (memory linear in n); G-DBSCAN
    # is allowed to (that is the figure's point).
    if algorithm in ("fdbscan", "fdbscan-densebox"):
        assert record.status == "ok"
