"""Figure 7: 3-D cosmology — runtime vs ``eps`` at minpts = 2.

Paper setting: the HACC snapshot, Friends-of-Friends regime.  Shape
claim (Section 5.2): "with increasing eps, the advantages of the dense
cells become clear" — at eps = 1.0 roughly 91 % of particles are in dense
cells and DenseBox leads by a wide margin (16x on the V100).
"""

import pytest

from benchmarks.conftest import bench_cell, dataset
from repro.datasets import paper_params

FIGURE_TITLE = "Figure 7: 3-D cosmology, seconds vs eps (minpts=2)"
X_KEY = "eps"

N = 60_000
ALGOS = ("fdbscan", "fdbscan-densebox")


def _cases():
    spec = paper_params("hacc")
    for eps in spec.eps_sweep_values:
        for algorithm in ALGOS:
            yield eps, algorithm


@pytest.mark.parametrize("eps,algorithm", list(_cases()), ids=lambda v: str(v))
def test_fig7_eps_3d(benchmark, sink, eps, algorithm):
    X = dataset("hacc", N)
    record = bench_cell(benchmark, sink, algorithm, X, eps, 2, dataset_name="hacc")
    assert record.status == "ok"
    peers = [r for r in sink.records if r.eps == eps and r.status == "ok"]
    assert len({(r.n_clusters, r.n_noise) for r in peers}) == 1


def test_fig7_shape_densebox_wins_at_large_eps(benchmark, sink):
    """After the sweep: DenseBox must lead at the dense end of the sweep."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    by_algo_eps = {(r.algorithm, r.eps): r.seconds for r in sink.records if r.status == "ok"}
    largest = max(eps for (_, eps) in by_algo_eps)
    f = by_algo_eps.get(("fdbscan", largest))
    d = by_algo_eps.get(("fdbscan-densebox", largest))
    if f is None or d is None:
        pytest.skip("sweep incomplete")
    assert d < f, f"DenseBox ({d:.2f}s) should beat FDBSCAN ({f:.2f}s) at eps={largest}"
