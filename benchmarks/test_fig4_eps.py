"""Figure 4(d)(e)(f): runtime vs ``eps`` on the three 2-D datasets.

Paper setting: n = 16,384; minpts fixed at 500 / 50 / 100 for NGSIM /
PortoTaxi / 3D Road.  Shape claims:

- FDBSCAN and FDBSCAN-DenseBox show little variation with eps;
- G-DBSCAN degrades as eps grows (PortoTaxi, and especially 3D Road):
  the adjacency graph's edge mass explodes;
- nothing is sensitive to eps on NGSIM (already connected at tiny radii).
"""

import pytest

from benchmarks.conftest import COMPARISON_ALGOS, PANEL_N, bench_cell, dataset
from repro.datasets import paper_params

FIGURE_TITLE = "Figure 4(d-f): seconds vs eps (n=%d)" % PANEL_N
X_KEY = "eps"

PANELS = ["ngsim", "portotaxi", "road3d"]


def _cases():
    for name in PANELS:
        spec = paper_params(name)
        for eps in spec.eps_sweep_values:
            for algorithm in COMPARISON_ALGOS:
                yield name, eps, spec.eps_sweep_minpts, algorithm


@pytest.mark.parametrize(
    "name,eps,minpts,algorithm",
    list(_cases()),
    ids=lambda v: str(v),
)
def test_fig4_eps(benchmark, sink, name, eps, minpts, algorithm):
    X = dataset(name, PANEL_N)
    record = bench_cell(benchmark, sink, algorithm, X, eps, minpts, dataset_name=name)
    assert record.status == "ok"
    peers = [
        r
        for r in sink.records
        if (r.dataset, r.min_samples, r.eps) == (name, minpts, eps) and r.status == "ok"
    ]
    assert len({(r.n_clusters, r.n_noise) for r in peers}) == 1
