"""Ablation benches for the design choices DESIGN.md calls out.

1. **Leaf-index mask** (Section 4.1, Figure 1): masked traversal must
   halve the pairs handed to UNION-FIND and cut node visits / distance
   computations — "fewer memory accesses, reduced number of distance
   computations, and reduced number of Union-Find operations".
2. **Early termination** (Section 3.2): stopping the core-count traversal
   at ``minpts`` must slash preprocessing work in dense regimes
   ("much faster than computing the full neighborhood, particularly when
   |N(x)| >> minpts").
3. **Auto heuristic** (Section 6 future work): ``algorithm='auto'`` must
   pick the faster of FDBSCAN / DenseBox in both of the regimes Figure 6
   exhibits.
"""

import pytest

from benchmarks.conftest import bench_cell, dataset
from repro.bench.harness import run_once
from repro.core.api import choose_algorithm

FIGURE_TITLE = "Ablations: mask / early-exit / auto"
X_KEY = "min_samples"

N = 8192


class TestMaskAblation:
    @pytest.mark.parametrize("use_mask", [True, False], ids=["masked", "unmasked"])
    def test_mask_runtime(self, benchmark, sink, use_mask):
        X = dataset("road3d", N)
        record = bench_cell(
            benchmark,
            sink,
            "fdbscan",
            X,
            0.02,
            10,
            dataset_name=f"road3d/{'mask' if use_mask else 'nomask'}",
            tree_kwargs={"use_mask": use_mask},
        )
        assert record.status == "ok"

    def test_mask_work_claims(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        X = dataset("road3d", N)
        masked = run_once("fdbscan", X, 0.02, 10, tree_kwargs={"use_mask": True})
        unmasked = run_once("fdbscan", X, 0.02, 10, tree_kwargs={"use_mask": False})
        # exactly half the union-find pair traffic...
        assert masked.counters["pairs_processed"] * 2 == unmasked.counters["pairs_processed"]
        # ...and strictly less traversal work.
        assert masked.counters["nodes_visited"] < unmasked.counters["nodes_visited"]
        assert masked.counters["distance_evals"] < unmasked.counters["distance_evals"]
        # identical clustering
        assert (masked.n_clusters, masked.n_noise) == (unmasked.n_clusters, unmasked.n_noise)


class TestEarlyExitAblation:
    @pytest.mark.parametrize("early_exit", [True, False], ids=["early", "full"])
    def test_early_exit_runtime(self, benchmark, sink, early_exit):
        X = dataset("ngsim", N)  # |N(x)| >> minpts regime
        record = bench_cell(
            benchmark,
            sink,
            "fdbscan",
            X,
            0.005,
            10,
            dataset_name=f"ngsim/{'early' if early_exit else 'full'}",
            tree_kwargs={"early_exit": early_exit},
        )
        assert record.status == "ok"

    def test_early_exit_work_claim(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        X = dataset("ngsim", N)
        early = run_once("fdbscan", X, 0.005, 10, tree_kwargs={"early_exit": True})
        full = run_once("fdbscan", X, 0.005, 10, tree_kwargs={"early_exit": False})
        # preprocessing node visits collapse when stopping at minpts=10 in
        # a regime where |N(x)| is in the thousands
        assert early.counters["nodes_visited"] < full.counters["nodes_visited"] / 2
        assert (early.n_clusters, early.n_noise) == (full.n_clusters, full.n_noise)


class TestAutoHeuristic:
    @pytest.mark.parametrize(
        "name,eps,minpts",
        [("ngsim", 0.005, 100), ("hacc", 0.042, 300)],
        ids=["dense-2d", "sparse-3d"],
    )
    def test_auto_picks_the_faster_algorithm(self, benchmark, sink, name, eps, minpts):
        X = dataset(name, N)
        f = run_once("fdbscan", X, eps, minpts, dataset=name)
        d = run_once("fdbscan-densebox", X, eps, minpts, dataset=name)
        sink.add(f)
        sink.add(d)
        seconds = {"fdbscan": f.seconds, "fdbscan-densebox": d.seconds}
        choice = choose_algorithm(X, eps, minpts)
        record = bench_cell(benchmark, sink, "auto", X, eps, minpts, dataset_name=name)
        assert record.status == "ok"
        # The heuristic must land within noise of the measured optimum (in
        # regimes where the two algorithms tie — e.g. zero dense cells,
        # where DenseBox degenerates to FDBSCAN — either choice is right).
        best = min(seconds.values())
        assert seconds[choice] <= 1.3 * best, (
            f"heuristic chose {choice} ({seconds[choice]:.2f}s) but the "
            f"measured optimum was {best:.2f}s "
            f"(fdbscan {f.seconds:.2f}s vs densebox {d.seconds:.2f}s)"
        )


class TestTreeOrderAblation:
    """Section 1's structure choice: how much does the Morton layout buy?

    The same Karras builder over degraded orderings (scanline: sort by x
    only; shuffled: no spatial order) produces correct but slower trees —
    quantifying why "BVH was chosen for its good data and thread
    divergence characteristics" in combination with the Z-curve.
    """

    @pytest.mark.parametrize("order", ["morton", "scanline", "shuffled"])
    def test_order_runtime(self, benchmark, sink, order):
        import numpy as np

        from repro.bvh.aabb import boxes_from_points
        from repro.bvh.builder import build_bvh
        from repro.bvh.statistics import scanline_codes, shuffled_codes
        from repro.bvh.traversal import count_within
        from repro.device.device import Device
        from repro.bench.harness import RunRecord

        X = dataset("road3d", N)
        codes = None
        if order == "scanline":
            codes = scanline_codes(X)
        elif order == "shuffled":
            codes = shuffled_codes(X, seed=0)
        lo, hi = boxes_from_points(X)
        dev = Device()
        tree = build_bvh(lo, hi, device=dev, codes=codes)

        def run():
            count_within(tree, X, 0.02, device=dev)

        benchmark.pedantic(run, rounds=1, iterations=1)
        rec = RunRecord(
            algorithm=f"count/{order}",
            dataset="road3d",
            n=N,
            eps=0.02,
            min_samples=0,
            seconds=dev.phase_seconds().get("bvh_count", 0.0),
            counters=dev.counters.snapshot(),
        )
        sink.add(rec)

    def test_morton_is_cheapest(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        import numpy as np

        from repro.bvh.aabb import boxes_from_points
        from repro.bvh.builder import build_bvh
        from repro.bvh.statistics import shuffled_codes
        from repro.bvh.traversal import count_within
        from repro.device.device import Device

        X = dataset("road3d", N)
        lo, hi = boxes_from_points(X)
        visits = {}
        for order, codes in (("morton", None), ("shuffled", shuffled_codes(X, seed=0))):
            dev = Device()
            tree = build_bvh(lo, hi, device=dev, codes=codes)
            count_within(tree, X, 0.02, device=dev)
            visits[order] = dev.counters.nodes_visited
        assert visits["morton"] < visits["shuffled"]


class TestIndexStructureAblation:
    """Section 4.2's rejected alternative: grid + binary searches vs the
    mixed-primitive BVH, on the dense 2-D regime both were designed for."""

    @pytest.mark.parametrize("algorithm", ["fdbscan-densebox", "grid"])
    def test_index_runtime(self, benchmark, sink, algorithm):
        X = dataset("portotaxi", N)
        record = bench_cell(
            benchmark,
            sink,
            algorithm,
            X,
            0.01,
            50,
            dataset_name="portotaxi/index",
        )
        assert record.status == "ok"

    def test_same_clustering(self, benchmark):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        X = dataset("portotaxi", N)
        a = run_once("fdbscan-densebox", X, 0.01, 50)
        b = run_once("grid", X, 0.01, 50)
        assert (a.n_clusters, a.n_noise) == (b.n_clusters, b.n_noise)
