"""Figure 4(a)(b)(c): runtime vs ``minpts`` on the three 2-D datasets.

Paper setting: n = 16,384 samples; eps fixed at 0.005 / 0.01 / 0.08 for
NGSIM / PortoTaxi / 3D Road; four algorithms.  Shape claims:

- FDBSCAN-DenseBox is always at least as fast as FDBSCAN on this data
  (dense road/taxi regimes — >90 % of points in dense cells);
- all algorithms are largely insensitive to ``minpts``;
- CUDA-DClust is the consistent outlier on the paper's V100.  (On the
  simulated device its emulation rides a compiled CSR oracle, so its
  *wall-clock* rank is not meaningful here; its work counters are.)
"""

import pytest

from benchmarks.conftest import COMPARISON_ALGOS, PANEL_N, bench_cell, dataset
from repro.datasets import paper_params

FIGURE_TITLE = "Figure 4(a-c): seconds vs minpts (n=%d)" % PANEL_N
X_KEY = "min_samples"

PANELS = ["ngsim", "portotaxi", "road3d"]


def _cases():
    for name in PANELS:
        spec = paper_params(name)
        for minpts in spec.minpts_sweep_values:
            for algorithm in COMPARISON_ALGOS:
                yield name, spec.minpts_sweep_eps, minpts, algorithm


@pytest.mark.parametrize(
    "name,eps,minpts,algorithm",
    list(_cases()),
    ids=lambda v: str(v),
)
def test_fig4_minpts(benchmark, sink, name, eps, minpts, algorithm):
    X = dataset(name, PANEL_N)
    record = bench_cell(benchmark, sink, algorithm, X, eps, minpts, dataset_name=name)
    assert record.status == "ok"
    # every algorithm must find the same clustering on every cell
    peers = [
        r
        for r in sink.records
        if (r.dataset, r.min_samples, r.eps) == (name, minpts, eps) and r.status == "ok"
    ]
    assert len({(r.n_clusters, r.n_noise) for r in peers}) == 1
