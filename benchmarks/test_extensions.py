"""Benchmarks for the paper's future-work extensions.

Not figures from the paper — measurements of the Section-6 directions
this repository implements on top of it:

- **distributed scaling**: runtime and communication volume of the
  RCB + eps-halo + merge driver as the rank count grows (fixed problem);
- **multi-minpts amortisation**: one shared build/count vs independent
  runs across a sweep;
- **HDBSCAN pipeline**: where the hierarchy's time goes (core distances
  vs MST vs extraction).
"""

import pytest

from benchmarks.conftest import bench_cell, dataset
from repro.bench.harness import RunRecord

FIGURE_TITLE = "Extensions: distributed / multi-minpts / hierarchy"
X_KEY = "n"

N = 20_000


class TestDistributedScaling:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4, 8])
    def test_rank_scaling(self, benchmark, sink, n_ranks):
        from repro.distributed import distributed_dbscan

        X = dataset("hacc", N)
        holder = {}

        def run():
            holder["result"] = distributed_dbscan(X, 0.042, 5, n_ranks=n_ranks)

        benchmark.pedantic(run, rounds=1, iterations=1)
        result = holder["result"]
        sink.add(
            RunRecord(
                algorithm=f"distributed[{n_ranks} ranks]",
                dataset="hacc",
                n=N,
                eps=0.042,
                min_samples=5,
                seconds=result.info["t_total"],
                n_clusters=result.n_clusters,
                n_noise=result.n_noise,
                counters={"comm_bytes": result.info["comm_bytes"]},
            )
        )

    def test_all_rank_counts_agree(self, benchmark, sink):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        ok = [r for r in sink.records if r.algorithm.startswith("distributed")]
        if len(ok) < 2:
            pytest.skip("scaling cells incomplete")
        assert len({(r.n_clusters, r.n_noise) for r in ok}) == 1


class TestMultiMinptsAmortisation:
    def test_sweep_vs_independent(self, benchmark, sink):
        import time

        from repro import dbscan_minpts_sweep, fdbscan
        from repro.device.device import Device

        X = dataset("portotaxi", 4096)
        # thresholds comparable to the neighbourhood sizes: the regime the
        # paper's amortisation argument targets (early exit saves little)
        values = [100, 200, 400, 800, 1600]
        eps = 0.01

        def run_sweep_once():
            return dbscan_minpts_sweep(X, eps, values)

        benchmark.pedantic(run_sweep_once, rounds=1, iterations=1)
        dev_sweep = Device()
        t0 = time.perf_counter()
        dbscan_minpts_sweep(X, eps, values, device=dev_sweep)
        t_sweep = time.perf_counter() - t0
        dev_indiv = Device()
        t0 = time.perf_counter()
        for mp in values:
            fdbscan(X, eps, mp, device=dev_indiv)
        t_indiv = time.perf_counter() - t0
        sink.add(
            RunRecord(
                algorithm="minpts-sweep[shared]",
                dataset="portotaxi",
                n=4096,
                eps=eps,
                min_samples=len(values),
                seconds=t_sweep,
                counters={"nodes_visited": dev_sweep.counters.nodes_visited},
            )
        )
        sink.add(
            RunRecord(
                algorithm="minpts-sweep[independent]",
                dataset="portotaxi",
                n=4096,
                eps=eps,
                min_samples=len(values),
                seconds=t_indiv,
                counters={"nodes_visited": dev_indiv.counters.nodes_visited},
            )
        )
        # Work, not wall time (wall time is noisy): the shared count must
        # traverse fewer nodes than five early-exit counts + builds.
        assert dev_sweep.counters.nodes_visited < dev_indiv.counters.nodes_visited


class TestHierarchyPipeline:
    def test_hdbscan_phase_breakdown(self, benchmark, sink):
        from repro import hdbscan

        X = dataset("hacc", 5000)
        holder = {}

        def run():
            holder["result"] = hdbscan(X, min_cluster_size=20)

        benchmark.pedantic(run, rounds=1, iterations=1)
        res = holder["result"]
        for phase in ("t_core", "t_mst", "t_extract"):
            sink.add(
                RunRecord(
                    algorithm=f"hdbscan[{phase}]",
                    dataset="hacc",
                    n=5000,
                    eps=0.0,
                    min_samples=20,
                    seconds=res.info[phase],
                )
            )
        assert res.n_clusters > 0
