"""Figure 6: 3-D cosmology — runtime vs ``minpts`` at eps = 0.042.

Paper setting: the HACC snapshot, FDBSCAN vs FDBSCAN-DenseBox.  Shape
claims (Section 5.2):

- the two algorithms are comparable at small ``minpts`` (where ~13 % of
  particles sit in dense cells);
- FDBSCAN wins at large ``minpts``: dense-cell occupancy drops to ~2 %
  (minpts = 50) and to zero (minpts > 100), leaving DenseBox paying the
  grid/decomposition overhead for nothing.
"""

import pytest

from benchmarks.conftest import bench_cell, dataset
from repro.datasets import paper_params

FIGURE_TITLE = "Figure 6: 3-D cosmology, seconds vs minpts (eps=0.042)"
X_KEY = "min_samples"

N = 60_000
ALGOS = ("fdbscan", "fdbscan-densebox")


def _cases():
    spec = paper_params("hacc")
    for minpts in spec.minpts_sweep_values:
        for algorithm in ALGOS:
            yield minpts, algorithm


@pytest.mark.parametrize("minpts,algorithm", list(_cases()), ids=lambda v: str(v))
def test_fig6_minpts_3d(benchmark, sink, minpts, algorithm):
    X = dataset("hacc", N)
    eps = paper_params("hacc").minpts_sweep_eps
    record = bench_cell(benchmark, sink, algorithm, X, eps, minpts, dataset_name="hacc")
    assert record.status == "ok"
    peers = [
        r for r in sink.records if r.min_samples == minpts and r.status == "ok"
    ]
    assert len({(r.n_clusters, r.n_noise) for r in peers}) == 1
