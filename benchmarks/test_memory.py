"""Memory experiment (Section 3.2 / Section 5.1 discussion).

The paper's framework exists to keep device memory linear in ``n``; the
survey it cites [32] measured G-DBSCAN at 166x CUDA-DClust's footprint
because of the materialised adjacency graph, and Figure 4(h)'s missing
points are G-DBSCAN OOMs.  This bench measures peak device bytes for the
fused algorithms vs G-DBSCAN across growing ``eps`` (edge mass), and
checks the two structural claims:

- fused-algorithm *persistent* memory is O(n): it does not grow with the
  edge count (the transient wavefront frontier, an emulation artifact, is
  reported separately);
- G-DBSCAN's memory tracks the edge count and dwarfs the fused footprint
  in dense regimes.
"""

import pytest

from benchmarks.conftest import bench_cell, dataset

FIGURE_TITLE = "Memory: peak device MB vs eps (PortoTaxi stand-in, n=8192)"
X_KEY = "eps"

N = 8192
MINPTS = 20
EPS_SWEEP = (0.0025, 0.005, 0.01, 0.02, 0.04)
ALGOS = ("fdbscan", "fdbscan-densebox", "gdbscan", "cuda-dclust")


def _cases():
    for eps in EPS_SWEEP:
        for algorithm in ALGOS:
            yield eps, algorithm


@pytest.mark.parametrize("eps,algorithm", list(_cases()), ids=lambda v: str(v))
def test_memory_vs_eps(benchmark, sink, eps, algorithm):
    X = dataset("portotaxi", N)
    record = bench_cell(
        benchmark,
        sink,
        algorithm,
        X,
        eps,
        MINPTS,
        dataset_name="portotaxi",
        tree_kwargs={"chunk_size": 2048},
    )
    assert record.status == "ok"


def test_memory_shape_claims(benchmark, sink):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ok = [r for r in sink.records if r.status == "ok"]
    if not ok:
        pytest.skip("sweep incomplete")
    by = {(r.algorithm, r.eps): r for r in ok}
    # 1. G-DBSCAN's footprint grows with eps...
    g_small = by[("gdbscan", EPS_SWEEP[0])].peak_bytes
    g_large = by[("gdbscan", EPS_SWEEP[-1])].peak_bytes
    assert g_large > 2 * g_small
    # 2. ...and dwarfs the fused algorithms' at the dense end.
    f_large = by[("fdbscan", EPS_SWEEP[-1])].peak_bytes
    d_large = by[("fdbscan-densebox", EPS_SWEEP[-1])].peak_bytes
    assert g_large > 5 * f_large
    assert g_large > 20 * d_large


def test_memory_oom_reproduction(benchmark, sink):
    """Figure 4(h)'s missing points: G-DBSCAN on a capped device OOMs
    where the fused algorithms complete."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.bench.harness import run_once

    X = dataset("portotaxi", N)
    cap = 64 * 1024 * 1024
    g = run_once("gdbscan", X, 0.04, MINPTS, dataset="portotaxi", capacity_bytes=cap)
    f = run_once(
        "fdbscan", X, 0.04, MINPTS, dataset="portotaxi", capacity_bytes=cap,
        tree_kwargs={"chunk_size": 2048},
    )
    sink.add(g)
    sink.add(f)
    assert g.status == "oom"
    assert f.status == "ok"
