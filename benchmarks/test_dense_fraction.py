"""Dense-cell occupancy facts quoted in Section 5's text.

Not a timing figure, but numbers the paper states and the other figures'
interpretations rest on:

- 2-D datasets: "over 95 % of points are contained in the dense cells for
  every dataset even for the largest values of minpts" (Section 5.1);
- cosmology: ~13 % at minpts = 5, <2 % at minpts = 50, none above 100
  (Figure 6 discussion), and ~91 % at eps = 1.0 (Figure 7 discussion);
- the cosmology grid is huge and overwhelmingly empty (3.5 B cells, 28 M
  non-empty on the paper's 36 M points).
"""

import pytest

from benchmarks.conftest import PANEL_N, dataset
from repro.bench.harness import RunRecord
from repro.core.api import dense_fraction_estimate
from repro.datasets import paper_params

FIGURE_TITLE = "Dense-cell occupancy (Section 5 text)"
X_KEY = "min_samples"


def _record(sink, name, n, eps, minpts):
    X = dataset(name, n)
    frac = dense_fraction_estimate(X, eps, minpts)
    rec = RunRecord(
        algorithm="densebox-grid",
        dataset=name,
        n=n,
        eps=eps,
        min_samples=minpts,
        seconds=0.0,
        dense_fraction=frac,
    )
    sink.add(rec)
    return frac


@pytest.mark.parametrize("name", ["ngsim", "portotaxi", "road3d"])
def test_2d_datasets_dense_at_study_settings(benchmark, sink, name):
    spec = paper_params(name)
    fractions = [
        _record(sink, name, PANEL_N, spec.minpts_sweep_eps, minpts)
        for minpts in spec.minpts_sweep_values
    ]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # dense at the small/mid minpts; monotone non-increasing in minpts
    assert fractions[0] > 0.9
    assert all(a >= b for a, b in zip(fractions, fractions[1:]))


def test_cosmology_occupancy_ladder(benchmark, sink):
    n = 100_000
    f5 = _record(sink, "hacc", n, 0.042, 5)
    f50 = _record(sink, "hacc", n, 0.042, 50)
    f300 = _record(sink, "hacc", n, 0.042, 300)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert 0.08 < f5 < 0.25
    assert f50 < 0.02
    assert f300 == 0.0


def test_cosmology_eps_one(benchmark, sink):
    frac = _record(sink, "hacc", 100_000, 1.0, 5)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert frac > 0.85
