"""Shared infrastructure for the figure-regeneration benchmarks.

Each benchmark module covers one figure of the paper's Section 5.  Cells
run through :func:`repro.bench.run_once` under ``pytest-benchmark``
(single round — the interesting comparisons are across algorithms and
parameters, not micro-variance), accumulate into a per-module sink, and
the sink prints the paper-style series block when the module finishes —
the text these benches contribute to EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import RunRecord, run_once
from repro.bench.report import ascii_loglog, format_records, format_series
from repro.datasets import load_dataset

#: Panel sample size for the Figure-4 sweeps.  The paper samples 16,384
#: points on a V100; the simulated device is host-speed-bound, so panels
#: use 8,192 (documented substitution — regime calibration in
#: tests/test_datasets.py is checked at the paper's 16,384).
PANEL_N = 8192

#: The four algorithms of the paper's 2-D comparison (Section 5.1).
COMPARISON_ALGOS = ("fdbscan", "fdbscan-densebox", "gdbscan", "cuda-dclust")

_DATA_CACHE: dict = {}


def dataset(name: str, n: int, seed: int = 1) -> np.ndarray:
    """Cached dataset sample (benchmarks re-request the same arrays)."""
    key = (name, n, seed)
    if key not in _DATA_CACHE:
        _DATA_CACHE[key] = load_dataset(name, n, seed)
    return _DATA_CACHE[key]


class RecordSink:
    """Collects RunRecords for one figure and prints the series at the end."""

    def __init__(self, title: str, x_key: str, loglog: bool = False):
        self.title = title
        self.x_key = x_key
        self.loglog = loglog
        self.records: list[RunRecord] = []

    def add(self, record: RunRecord) -> None:
        self.records.append(record)

    def render(self) -> str:
        if not self.records:
            return f"{self.title}: (no records)"
        out = ["", "=" * 72, self.title]
        datasets: list[str] = []
        for r in self.records:
            if r.dataset not in datasets:
                datasets.append(r.dataset)
        for name in datasets:
            panel = [r for r in self.records if r.dataset == name]
            out.append("")
            out.append(format_series(panel, x_key=self.x_key, title=f"[{name}]"))
            if self.loglog:
                out.append("")
                out.append(ascii_loglog(panel, x_key=self.x_key, title=f"[{name}] (log-log)"))
        out += ["-" * 72, format_records(self.records), "=" * 72]
        return "\n".join(out)


@pytest.fixture(scope="module")
def sink(request):
    """Module-scoped record sink; prints the figure block at teardown."""
    title = getattr(request.module, "FIGURE_TITLE", request.module.__name__)
    x_key = getattr(request.module, "X_KEY", "min_samples")
    s = RecordSink(title, x_key, loglog=getattr(request.module, "LOGLOG", False))
    yield s
    print(s.render())


def bench_cell(
    benchmark,
    sink: RecordSink,
    algorithm: str,
    X: np.ndarray,
    eps: float,
    min_samples: int,
    dataset_name: str,
    **kwargs,
) -> RunRecord:
    """Run one figure cell under pytest-benchmark and record it."""
    holder: dict = {}

    def run():
        holder["record"] = run_once(
            algorithm, X, eps, min_samples, dataset=dataset_name, **kwargs
        )
        return holder["record"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    record = holder["record"]
    sink.add(record)
    return record
