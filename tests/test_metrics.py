"""Tests for the equivalence relation itself and the summary statistics."""

import numpy as np
import pytest

from repro.core.labels import DBSCANResult
from repro.metrics.equivalence import (
    ClusteringMismatch,
    assert_dbscan_equivalent,
    dbscan_equivalent,
    partitions_equal,
)
from repro.metrics.stats import clustering_summary


def _result(labels, core):
    labels = np.asarray(labels)
    k = len(set(labels[labels >= 0].tolist()))
    return DBSCANResult(labels=labels, is_core=np.asarray(core, dtype=bool), n_clusters=k)


class TestPartitionsEqual:
    def test_identical(self):
        mask = np.ones(4, dtype=bool)
        assert partitions_equal(np.array([0, 0, 1, 1]), np.array([0, 0, 1, 1]), mask)

    def test_permuted_ids(self):
        mask = np.ones(4, dtype=bool)
        assert partitions_equal(np.array([0, 0, 1, 1]), np.array([5, 5, 2, 2]), mask)

    def test_split_detected(self):
        mask = np.ones(4, dtype=bool)
        assert not partitions_equal(np.array([0, 0, 0, 0]), np.array([0, 0, 1, 1]), mask)

    def test_merge_detected(self):
        mask = np.ones(4, dtype=bool)
        assert not partitions_equal(np.array([0, 0, 1, 1]), np.array([0, 0, 0, 0]), mask)

    def test_mask_restricts(self):
        mask = np.array([True, True, False, False])
        assert partitions_equal(np.array([0, 0, 1, 2]), np.array([4, 4, 9, 9]), mask)

    def test_empty_mask(self):
        assert partitions_equal(np.array([0]), np.array([1]), np.array([False]))


class TestEquivalence:
    def test_identical_results(self):
        a = _result([0, 0, -1], [True, True, False])
        assert dbscan_equivalent(a, a)

    def test_permuted_cluster_ids_ok(self):
        a = _result([0, 0, 1, 1], [True] * 4)
        b = _result([1, 1, 0, 0], [True] * 4)
        assert dbscan_equivalent(a, b)

    def test_core_mismatch_detected(self):
        a = _result([0, 0], [True, True])
        b = _result([0, 0], [True, False])
        with pytest.raises(ClusteringMismatch, match="core masks"):
            assert_dbscan_equivalent(a, b)

    def test_noise_mismatch_detected(self):
        a = _result([0, -1], [True, False])
        b = _result([0, 0], [True, False])
        with pytest.raises(ClusteringMismatch, match="noise masks"):
            assert_dbscan_equivalent(a, b)

    def test_cluster_count_mismatch(self):
        a = _result([0, 0, 1, 1], [True] * 4)
        b = _result([0, 0, 0, 0], [True] * 4)
        with pytest.raises(ClusteringMismatch, match="cluster counts"):
            assert_dbscan_equivalent(a, b)

    def test_size_mismatch(self):
        a = _result([0], [True])
        b = _result([0, 0], [True, True])
        with pytest.raises(ClusteringMismatch, match="point counts"):
            assert_dbscan_equivalent(a, b)

    def test_border_may_differ_between_adjacent_clusters(self):
        # Two clusters, a border point that legally belongs to either.
        X = np.array([[0.0, 0.0], [0.1, 0.0], [1.0, 0.0], [1.1, 0.0], [0.55, 0.0]])
        core = [True, True, True, True, False]
        a = _result([0, 0, 1, 1, 0], core)
        b = _result([0, 0, 1, 1, 1], core)
        assert_dbscan_equivalent(a, b, X, eps=0.5)

    def test_illegal_border_assignment_detected(self):
        X = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 0.0], [5.1, 0.0], [0.3, 0.0]])
        core = [True, True, True, True, False]
        bad = _result([0, 0, 1, 1, 1], core)  # border glued to the far cluster
        good = _result([0, 0, 1, 1, 0], core)
        with pytest.raises(ClusteringMismatch, match="border"):
            assert_dbscan_equivalent(good, bad, X, eps=0.5)

    def test_x_without_eps_rejected(self):
        a = _result([0], [True])
        with pytest.raises(ValueError, match="eps"):
            assert_dbscan_equivalent(a, a, np.zeros((1, 2)), None)


class TestSummary:
    def test_fields(self):
        r = _result([0, 0, 1, -1], [True, False, True, False])
        s = clustering_summary(r)
        assert s["n_points"] == 4
        assert s["n_clusters"] == 2
        assert s["n_core"] == 2
        assert s["n_border"] == 1
        assert s["n_noise"] == 1
        assert s["noise_fraction"] == pytest.approx(0.25)
        assert s["largest_cluster"] == 2
        assert s["smallest_cluster"] == 1

    def test_all_noise(self):
        r = _result([-1, -1], [False, False])
        s = clustering_summary(r)
        assert s["largest_cluster"] == 0
        assert s["noise_fraction"] == 1.0
