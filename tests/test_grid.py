"""Tests for the virtual regular grid and cell compaction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.grid import RegularGrid, build_grid, compact_cells


class TestBuildGrid:
    def test_cell_size_is_eps_over_sqrt_d(self):
        pts = np.random.default_rng(0).uniform(0, 1, size=(50, 2))
        grid = build_grid(pts, eps=0.1)
        assert grid.cell_size == pytest.approx(0.1 / np.sqrt(2))
        grid3 = build_grid(np.random.default_rng(0).uniform(0, 1, (50, 3)), eps=0.1)
        assert grid3.cell_size == pytest.approx(0.1 / np.sqrt(3))

    def test_cell_diameter_at_most_eps(self):
        # The defining guarantee of Section 4.2.
        for d in (1, 2, 3):
            pts = np.random.default_rng(d).uniform(0, 5, size=(20, d))
            grid = build_grid(pts, eps=0.3)
            diameter = grid.cell_size * np.sqrt(d)
            assert diameter <= 0.3 + 1e-12

    def test_invalid_eps(self):
        pts = np.zeros((3, 2))
        for bad in (0.0, -1.0, np.inf, np.nan):
            with pytest.raises(ValueError, match="eps"):
                build_grid(pts, bad)

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            build_grid(np.zeros((0, 2)), 0.1)

    def test_single_point(self):
        grid = build_grid(np.array([[1.0, 2.0]]), 0.5)
        np.testing.assert_array_equal(grid.shape, [1, 1])
        np.testing.assert_array_equal(grid.cell_coords(np.array([[1.0, 2.0]])), [[0, 0]])

    def test_all_points_assigned_in_bounds(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(-3, 7, size=(500, 3))
        grid = build_grid(pts, 0.25)
        coords = grid.cell_coords(pts)
        assert (coords >= 0).all()
        assert (coords < grid.shape).all()

    def test_points_in_same_cell_within_eps(self):
        # Consequence of diameter <= eps: same cell => neighbours.
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 1, size=(800, 2))
        eps = 0.2
        grid = build_grid(pts, eps)
        coords = grid.cell_coords(pts)
        _, _, order, starts, counts = compact_cells(grid, coords)
        for s, c in zip(starts, counts):
            members = order[s : s + c]
            if members.size > 1:
                cell_pts = pts[members]
                diff = cell_pts[:, None] - cell_pts[None, :]
                d = np.sqrt((diff**2).sum(-1))
                assert d.max() <= eps + 1e-12

    def test_total_cells_python_int(self):
        grid = RegularGrid(
            lo=np.zeros(3),
            hi=np.ones(3),
            cell_size=1e-7,
            shape=np.array([10**7, 10**7, 10**7], dtype=np.int64),
        )
        assert grid.total_cells == 10**21  # exceeds int64; must not overflow


class TestCompactCells:
    def test_basic_compaction(self):
        pts = np.array([[0.05, 0.05], [0.06, 0.06], [0.9, 0.9]])
        grid = build_grid(pts, 0.2)
        coords = grid.cell_coords(pts)
        cell_of_point, n_cells, order, starts, counts = compact_cells(grid, coords)
        assert n_cells == 2
        assert cell_of_point[0] == cell_of_point[1]
        assert cell_of_point[0] != cell_of_point[2]
        assert counts.sum() == 3

    def test_csr_segments_consistent(self):
        rng = np.random.default_rng(6)
        pts = rng.uniform(0, 2, size=(300, 2))
        grid = build_grid(pts, 0.3)
        coords = grid.cell_coords(pts)
        cell_of_point, n_cells, order, starts, counts = compact_cells(grid, coords)
        assert counts.sum() == 300
        for cell in range(n_cells):
            members = order[starts[cell] : starts[cell] + counts[cell]]
            assert (cell_of_point[members] == cell).all()

    def test_overflow_fallback_matches_flat_path(self):
        # Same coordinates, both code paths: identical grouping.
        rng = np.random.default_rng(7)
        pts = rng.uniform(0, 1, size=(200, 3))
        grid = build_grid(pts, 0.05)
        coords = grid.cell_coords(pts)
        flat = compact_cells(grid, coords)
        huge = RegularGrid(
            lo=grid.lo, hi=grid.hi, cell_size=grid.cell_size, shape=grid.shape
        )
        huge.shape = grid.shape.copy()
        # Force the lexicographic fallback by faking an enormous shape on a
        # copy used only for the fits check.
        class _Huge(RegularGrid):
            def flat_ids_fit(self):
                return False

        forced = _Huge(lo=grid.lo, hi=grid.hi, cell_size=grid.cell_size, shape=grid.shape)
        lex = compact_cells(forced, coords)
        # cell ids may be numbered identically (both sort row-major);
        # compare the induced partition of points.
        np.testing.assert_array_equal(flat[0], lex[0])

    def test_flatten_overflow_raises(self):
        grid = RegularGrid(
            lo=np.zeros(3),
            hi=np.ones(3),
            cell_size=1e-8,
            shape=np.array([10**8, 10**8, 10**8], dtype=np.int64),
        )
        assert not grid.flat_ids_fit()
        with pytest.raises(OverflowError):
            grid.flatten_coords(np.zeros((1, 3), dtype=np.int64))

    @given(st.integers(0, 10_000), st.floats(0.05, 0.5), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_grouping_matches_coordinate_equality(self, seed, eps, d):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 1, size=(rng.integers(1, 150), d))
        grid = build_grid(pts, eps)
        coords = grid.cell_coords(pts)
        cell_of_point, n_cells, _, _, _ = compact_cells(grid, coords)
        # same cell id <=> same coordinate row
        for i in range(min(30, pts.shape[0])):
            same = cell_of_point == cell_of_point[i]
            coord_same = (coords == coords[i]).all(axis=1)
            np.testing.assert_array_equal(same, coord_same)
        assert n_cells == np.unique(coords, axis=0).shape[0]
