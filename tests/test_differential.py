"""Randomised differential tests: every algorithm against the oracle on
generated inputs, plus the minpts=2 equivalence with graph components."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import dbscan
from repro.baselines import brute_dbscan, sequential_dbscan
from repro.metrics.equivalence import assert_dbscan_equivalent

PARALLEL_ALGORITHMS = ["fdbscan", "densebox", "gdbscan", "cuda-dclust", "dsdbscan"]


def _random_dataset(seed, d=2):
    """Mixed-density data: clumps + filaments + uniform noise."""
    rng = np.random.default_rng(seed)
    parts = []
    for _ in range(rng.integers(1, 4)):
        center = rng.uniform(0, 3, size=d)
        parts.append(center + rng.normal(0, rng.uniform(0.01, 0.15), size=(rng.integers(5, 60), d)))
    t = rng.uniform(0, 1, size=(rng.integers(5, 40), 1))
    a, b = rng.uniform(0, 3, size=(2, d))
    parts.append(a + t * (b - a) + rng.normal(0, 0.01, size=(t.shape[0], d)))
    parts.append(rng.uniform(-1, 4, size=(rng.integers(5, 40), d)))
    return np.concatenate(parts)


class TestRandomisedDifferential:
    @pytest.mark.parametrize("algorithm", PARALLEL_ALGORITHMS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("d", [2, 3])
    def test_mixed_density_inputs(self, algorithm, seed, d):
        X = _random_dataset(seed, d)
        eps = 0.2
        minpts = 5
        base = sequential_dbscan(X, eps, minpts)
        res = dbscan(X, eps, minpts, algorithm=algorithm)
        assert_dbscan_equivalent(base, res, X, eps)

    @given(
        seed=st.integers(0, 10_000),
        eps=st.floats(0.05, 0.8),
        minpts=st.integers(1, 12),
    )
    @settings(max_examples=30, deadline=None)
    def test_fdbscan_hypothesis(self, seed, eps, minpts):
        X = _random_dataset(seed)
        base = sequential_dbscan(X, eps, minpts)
        res = dbscan(X, eps, minpts, algorithm="fdbscan")
        assert_dbscan_equivalent(base, res, X, eps)

    @given(
        seed=st.integers(0, 10_000),
        eps=st.floats(0.05, 0.8),
        minpts=st.integers(1, 12),
    )
    @settings(max_examples=30, deadline=None)
    def test_densebox_hypothesis(self, seed, eps, minpts):
        X = _random_dataset(seed)
        base = sequential_dbscan(X, eps, minpts)
        res = dbscan(X, eps, minpts, algorithm="densebox")
        assert_dbscan_equivalent(base, res, X, eps)

    @given(seed=st.integers(0, 10_000), eps=st.floats(0.05, 0.5))
    @settings(max_examples=20, deadline=None)
    def test_two_oracles_agree(self, seed, eps):
        # sequential BFS vs dense-matrix propagation: independent
        # implementations must agree with each other too.
        X = _random_dataset(seed)[:120]
        a = sequential_dbscan(X, eps, 5)
        b = brute_dbscan(X, eps, 5)
        assert_dbscan_equivalent(a, b, X, eps)


class TestFriendsOfFriends:
    """minpts=2 is exactly connected components of the eps-graph
    (Section 2.1) — checked against networkx."""

    @pytest.mark.parametrize("algorithm", ["fdbscan", "densebox"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_matches_networkx_components(self, algorithm, seed):
        X = _random_dataset(seed)
        eps = 0.15
        res = dbscan(X, eps, 2, algorithm=algorithm)

        diff = X[:, None, :] - X[None, :, :]
        adj = np.einsum("ijk,ijk->ij", diff, diff) <= eps * eps
        np.fill_diagonal(adj, False)
        G = nx.from_numpy_array(adj)
        components = [c for c in nx.connected_components(G) if len(c) > 1]

        assert res.n_clusters == len(components)
        # each component maps to exactly one cluster label
        for comp in components:
            labels = {int(res.labels[i]) for i in comp}
            assert len(labels) == 1
            assert labels.pop() >= 0
        singletons = [c for c in nx.connected_components(G) if len(c) == 1]
        for comp in singletons:
            assert res.labels[comp.pop()] == -1

    def test_no_border_points_at_minpts_2(self):
        X = _random_dataset(3)
        for algorithm in ("fdbscan", "densebox", "gdbscan"):
            res = dbscan(X, 0.2, 2, algorithm=algorithm)
            assert res.n_border == 0, algorithm


class TestCrossAlgorithmConsistency:
    @given(seed=st.integers(0, 10_000), minpts=st.integers(2, 20))
    @settings(max_examples=20, deadline=None)
    def test_fdbscan_vs_densebox(self, seed, minpts):
        # The paper's two algorithms must agree everywhere, including
        # regimes where dense cells dominate or vanish.
        X = _random_dataset(seed)
        eps = 0.25
        a = dbscan(X, eps, minpts, algorithm="fdbscan")
        b = dbscan(X, eps, minpts, algorithm="densebox")
        assert_dbscan_equivalent(a, b, X, eps)

    def test_cluster_count_invariant_to_point_order(self):
        X = _random_dataset(11)
        rng = np.random.default_rng(0)
        perm = rng.permutation(X.shape[0])
        a = dbscan(X, 0.2, 5, algorithm="fdbscan")
        b = dbscan(X[perm], 0.2, 5, algorithm="fdbscan")
        assert a.n_clusters == b.n_clusters
        assert a.n_noise == b.n_noise
        np.testing.assert_array_equal(a.is_core[perm], b.is_core)
