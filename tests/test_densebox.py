"""Algorithm-level tests for FDBSCAN-DenseBox against the oracle, plus the
dense-cell-specific behaviours of Section 4.2."""

import numpy as np
import pytest

from repro.baselines.sequential_dbscan import sequential_dbscan
from repro.core.densebox import fdbscan_densebox
from repro.core.fdbscan import fdbscan
from repro.device.device import Device
from repro.metrics.equivalence import assert_dbscan_equivalent


class TestAgainstOracle:
    @pytest.mark.parametrize("minpts", [3, 5, 10])
    @pytest.mark.parametrize("eps", [0.15, 0.3, 0.6])
    def test_blobs_2d(self, blobs_2d, eps, minpts):
        a = fdbscan_densebox(blobs_2d, eps, minpts)
        b = sequential_dbscan(blobs_2d, eps, minpts)
        assert_dbscan_equivalent(a, b, blobs_2d, eps)

    @pytest.mark.parametrize("minpts", [4, 8])
    def test_blobs_3d(self, blobs_3d, minpts):
        a = fdbscan_densebox(blobs_3d, 0.5, minpts)
        b = sequential_dbscan(blobs_3d, 0.5, minpts)
        assert_dbscan_equivalent(a, b, blobs_3d, 0.5)

    def test_1d_data(self, rng):
        X = rng.uniform(0, 10, size=(300, 1))
        a = fdbscan_densebox(X, 0.05, 4)
        b = sequential_dbscan(X, 0.05, 4)
        assert_dbscan_equivalent(a, b, X, 0.05)

    @pytest.mark.parametrize("use_mask", [True, False])
    @pytest.mark.parametrize("early_exit", [True, False])
    def test_optimisation_switches_do_not_change_output(
        self, blobs_2d, use_mask, early_exit
    ):
        a = fdbscan_densebox(blobs_2d, 0.3, 6, use_mask=use_mask, early_exit=early_exit)
        b = sequential_dbscan(blobs_2d, 0.3, 6)
        assert_dbscan_equivalent(a, b, blobs_2d, 0.3)

    def test_dense_regime_matches_fdbscan(self, rng):
        # Nearly all points in dense cells: the regime the algorithm is for.
        X = np.concatenate(
            [rng.normal(0, 0.01, size=(400, 2)), rng.normal(1, 0.01, size=(400, 2))]
        )
        a = fdbscan_densebox(X, 0.1, 20)
        b = fdbscan(X, 0.1, 20)
        assert_dbscan_equivalent(a, b, X, 0.1)
        assert a.info["dense_fraction"] > 0.9

    def test_sparse_regime_no_dense_cells(self, rng):
        X = rng.uniform(0, 50, size=(400, 2))
        a = fdbscan_densebox(X, 0.5, 10)
        b = sequential_dbscan(X, 0.5, 10)
        assert_dbscan_equivalent(a, b, X, 0.5)
        assert a.info["dense_fraction"] == 0.0


class TestDenseCellSemantics:
    def test_dense_cell_points_are_core(self, rng):
        X = rng.normal(0, 0.005, size=(100, 2))  # one tight clump
        res = fdbscan_densebox(X, 0.1, 10)
        assert res.info["dense_fraction"] == 1.0
        assert res.is_core.all()
        assert res.n_clusters == 1

    def test_two_dense_cells_far_apart_stay_separate(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.005, size=(50, 2))
        b = rng.normal(10, 0.005, size=(50, 2))
        X = np.concatenate([a, b])
        res = fdbscan_densebox(X, 0.1, 10)
        assert res.n_clusters == 2

    def test_two_adjacent_dense_cells_merge(self):
        # Two clumps closer than eps must union through the box path.
        rng = np.random.default_rng(1)
        a = rng.normal(0.0, 0.003, size=(50, 2))
        b = rng.normal(0.05, 0.003, size=(50, 2))
        X = np.concatenate([a, b])
        res = fdbscan_densebox(X, 0.1, 10)
        assert res.n_clusters == 1

    def test_isolated_core_point_unions_with_dense_cell(self):
        rng = np.random.default_rng(2)
        clump = rng.normal(0.0, 0.002, size=(60, 2))
        # a chain of sparse points leading away from the clump
        chain = np.column_stack([0.05 + 0.04 * np.arange(6), np.zeros(6)])
        X = np.concatenate([clump, chain])
        res = fdbscan_densebox(X, 0.06, 3)
        oracle = sequential_dbscan(X, 0.06, 3)
        assert_dbscan_equivalent(res, oracle, X, 0.06)
        assert res.n_clusters == 1

    def test_border_point_attaches_to_dense_cell(self):
        # 100 clump points on a line segment [0, 0.04] (one grid cell at
        # eps = 0.08), plus a lone point whose eps-ball only reaches the
        # clump's last few points: dense cell + genuine border point.
        clump = np.column_stack([np.linspace(0, 0.04, 100), np.zeros(100)])
        lone = np.array([[0.119, 0.0]])
        X = np.concatenate([clump, lone])
        res = fdbscan_densebox(X, 0.08, 90)
        assert res.info["dense_fraction"] > 0.9
        assert not res.is_core[-1]
        assert res.labels[-1] == res.labels[0]
        oracle = sequential_dbscan(X, 0.08, 90)
        assert_dbscan_equivalent(res, oracle, X, 0.08)

    def test_minpts_2(self, blobs_2d):
        a = fdbscan_densebox(blobs_2d, 0.25, 2)
        b = sequential_dbscan(blobs_2d, 0.25, 2)
        assert_dbscan_equivalent(a, b, blobs_2d, 0.25)

    def test_minpts_1(self, blobs_2d):
        res = fdbscan_densebox(blobs_2d, 0.2, 1)
        assert res.is_core.all()
        assert res.n_noise == 0
        oracle = sequential_dbscan(blobs_2d, 0.2, 1)
        assert_dbscan_equivalent(res, oracle, blobs_2d, 0.2)

    def test_all_duplicates(self):
        X = np.ones((30, 2))
        res = fdbscan_densebox(X, 0.5, 5)
        assert res.n_clusters == 1
        assert res.is_core.all()

    def test_single_point(self):
        res = fdbscan_densebox(np.zeros((1, 3)), 0.1, 1)
        assert res.n_clusters == 1


class TestDiagnostics:
    def test_info_fields(self, blobs_2d):
        res = fdbscan_densebox(blobs_2d, 0.3, 5)
        for key in ("dense_fraction", "n_dense_cells", "total_cells", "t_build"):
            assert key in res.info

    def test_dense_processing_reduces_distance_evals(self, rng):
        # The whole point of Section 4.2: in dense regimes the per-point
        # distance work collapses.
        X = np.concatenate(
            [rng.normal(0, 0.01, size=(500, 2)), rng.normal(2, 0.01, size=(500, 2))]
        )
        dev_f, dev_d = Device(), Device()
        fdbscan(X, 0.2, 50, device=dev_f)
        fdbscan_densebox(X, 0.2, 50, device=dev_d)
        assert dev_d.counters.distance_evals < dev_f.counters.distance_evals / 5

    def test_counts_without_early_exit_exposed(self, blobs_2d):
        res = fdbscan_densebox(blobs_2d, 0.3, 5, early_exit=False)
        assert "isolated_core_counts" in res.info

    def test_validation_shared_with_fdbscan(self, blobs_2d):
        with pytest.raises(ValueError):
            fdbscan_densebox(blobs_2d, -0.5, 5)
        with pytest.raises(ValueError):
            fdbscan_densebox(blobs_2d, 0.3, 0)
