"""Unit tests for the resilient clustering service (`repro.service`).

Covers the pieces in isolation — protocol parsing, admission control,
circuit breaker, degradation ladder, journal — and the assembled
:class:`ClusteringService` loop: deadlines, breakers over injected
kernel faults, crash-replay fingerprints, and the metrics/ledger
equality proof.
"""

import json
import os

import numpy as np
import pytest

from repro.core.fdbscan import fdbscan
from repro.faults import FaultPlan, FaultSpec, SimClock
from repro.metrics.equivalence import partitions_equal
from repro.service import (
    AdmissionController,
    CircuitBreaker,
    ClusteringService,
    DegradationLadder,
    Journal,
    JournalCorruptError,
    MalformedRequestError,
    OversizedRequestError,
    ServiceConfig,
    parse_request,
)
from repro.service.protocol import ProtocolError


def _points(seed=0, n=200):
    return np.random.default_rng(seed).random((n, 2))


def _same_partition(a, b):
    a = np.asarray(a)
    b = np.asarray(b)
    mask = np.ones(a.shape[0], dtype=bool)
    return partitions_equal(a, b, mask) and np.array_equal(a == -1, b == -1)


class TestProtocol:
    def test_parses_cluster_request(self):
        req = parse_request(
            '{"op": "cluster", "id": "x", "index": "a", "eps": 0.1, "min_samples": 5}'
        )
        assert req.op == "cluster" and req.eps == 0.1 and req.min_samples == 5

    def test_not_json_is_malformed(self):
        with pytest.raises(MalformedRequestError):
            parse_request("{truncated")

    def test_non_object_is_malformed(self):
        with pytest.raises(MalformedRequestError):
            parse_request("[1, 2, 3]")

    def test_oversized_body_refused_before_parsing(self):
        big = '{"op": "ping", "pad": "' + "x" * 2048 + '"}'
        with pytest.raises(OversizedRequestError):
            parse_request(big, max_request_bytes=1024)

    def test_too_many_points_is_oversized(self):
        req = {"op": "create_index", "index": "a", "points": [[0.0, 0.0]] * 11}
        with pytest.raises(OversizedRequestError):
            parse_request(req, max_points=10)

    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="'op' must be one of"):
            parse_request({"op": "launch_missiles"})

    def test_missing_params_rejected(self):
        with pytest.raises(ProtocolError):
            parse_request({"op": "cluster", "index": "a"})  # no eps/minpts

    def test_nonfinite_points_rejected(self):
        req = {"op": "create_index", "index": "a", "points": [[0.0, float("nan")]]}
        with pytest.raises(ProtocolError):
            parse_request(req)


class TestAdmission:
    def test_admits_until_backlog_full_then_sheds_with_retry_after(self):
        clock = SimClock()
        adm = AdmissionController(clock, max_backlog=1.0, max_queue=100)
        assert adm.offer(0.6).admitted
        assert adm.offer(0.3).admitted
        refused = adm.offer(0.5)
        assert not refused.admitted
        assert refused.retry_after > 0

    def test_backlog_drains_with_virtual_time(self):
        clock = SimClock()
        adm = AdmissionController(clock, max_backlog=1.0, max_queue=100)
        adm.offer(0.9)
        assert not adm.offer(0.9).admitted
        clock.sleep(1.0)
        assert adm.offer(0.9).admitted

    def test_queue_depth_bound(self):
        clock = SimClock()
        adm = AdmissionController(clock, max_backlog=1e9, max_queue=3)
        for _ in range(3):
            assert adm.offer(1e-6).admitted
        assert not adm.offer(1e-6).admitted


class TestBreaker:
    def test_trips_after_consecutive_failures_and_recovers_half_open(self):
        clock = SimClock()
        b = CircuitBreaker(clock, failure_threshold=3, cooldown=5.0)
        for _ in range(3):
            assert b.allow()[0]
            b.record_failure()
        allowed, retry_after = b.allow()
        assert not allowed and retry_after == pytest.approx(5.0)
        clock.sleep(5.0)
        # half-open: exactly one probe
        assert b.allow()[0]
        assert not b.allow()[0]
        b.record_success()
        assert b.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = SimClock()
        b = CircuitBreaker(clock, failure_threshold=1, cooldown=2.0)
        b.record_failure()
        assert b.state == "open"
        clock.sleep(2.0)
        assert b.allow()[0]
        b.record_failure()
        assert b.state == "open" and b.trips == 2

    def test_success_resets_failure_streak(self):
        b = CircuitBreaker(SimClock(), failure_threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == "closed"


class TestLadder:
    def test_rungs_by_pressure(self):
        ladder = DegradationLadder((0.35, 0.6, 0.8, 0.95))
        assert ladder.rung(0.0) == "full"
        assert ladder.rung(0.5) == "single"
        assert ladder.rung(0.7) == "cached"
        assert ladder.rung(0.9) == "count_only"
        assert ladder.rung(0.99) == "shed"
        assert ladder.rung(5.0) == "shed"

    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            DegradationLadder((0.9, 0.5, 0.3, 0.1))
        with pytest.raises(ValueError):
            DegradationLadder((0.5,))


class TestJournal:
    def test_append_and_reload(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j = Journal(path)
        j.append({"seq": 1, "op": "insert"})
        j.append({"seq": 2, "op": "delete"})
        reloaded = Journal(path)
        assert [e["seq"] for e in reloaded.entries()] == [1, 2]

    def test_torn_tail_dropped_not_fatal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j = Journal(path)
        j.append({"seq": 1})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 2, "op": "ins')  # crash mid-append
        reloaded = Journal(path)
        assert len(reloaded) == 1 and reloaded.dropped_tail

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"seq": 1}\ngarbage\n{"seq": 3}\n')
        with pytest.raises(JournalCorruptError):
            Journal(path)


class TestServiceLoop:
    def test_create_cluster_matches_direct_fdbscan(self):
        svc = ClusteringService()
        X = _points(1)
        r = svc.handle({"op": "create_index", "index": "a", "points": X.tolist()})
        assert r["status"] == "ok"
        r = svc.handle({"op": "cluster", "index": "a", "eps": 0.08, "min_samples": 5})
        assert r["status"] == "ok"
        ref = fdbscan(X, 0.08, 5)
        assert _same_partition(r["result"]["labels"], ref.labels)
        assert r["result"]["n_clusters"] == ref.n_clusters

    def test_handle_never_raises(self):
        svc = ClusteringService()
        for raw in (
            "not json",
            b"\xff\xfe",
            '{"op": "nope"}',
            {"op": "cluster", "index": "missing", "eps": 0.1, "min_samples": 2},
            {"op": "knn", "index": "missing", "k": 3},
            {"op": "delete", "index": "missing", "ids": [1]},
            12345,
            None,
        ):
            response = svc.handle(raw)
            assert response["status"] in ("rejected", "error")
        assert svc.verify_metrics_ledger()["ok"]

    def test_deadline_exceeded_is_typed_and_not_a_breaker_failure(self):
        svc = ClusteringService()
        svc.handle({"op": "create_index", "index": "a", "points": _points().tolist()})
        r = svc.handle(
            {"op": "cluster", "index": "a", "eps": 0.08, "min_samples": 5,
             "deadline_checks": 1}
        )
        assert r["status"] == "error"
        assert r["error"]["code"] == "deadline_exceeded"
        assert svc.breakers["a"].consecutive_failures == 0

    def test_kernel_faults_trip_breaker_then_half_open_recovers(self):
        plan = FaultPlan(0, FaultSpec(p_device_fault=1.0, fault_attempts=99))
        svc = ClusteringService(fault_plan=plan)
        svc.handle({"op": "create_index", "index": "a", "points": _points().tolist()})
        statuses = []
        for _ in range(5):
            r = svc.handle(
                {"op": "cluster", "index": "a", "eps": 0.08, "min_samples": 5}
            )
            statuses.append((r["status"], r.get("error", {}).get("code"), r.get("mode")))
        assert statuses[:3] == [("error", "kernel_fault", None)] * 3
        assert statuses[3][0] == "shed" and statuses[3][2] == "breaker_open"
        # cooldown passes -> half-open probe; faults stop -> recovery
        svc.fault_plan = None
        svc.clock.sleep(svc.config.breaker_cooldown)
        r = svc.handle({"op": "cluster", "index": "a", "eps": 0.08, "min_samples": 5})
        assert r["status"] == "ok"
        assert svc.breakers["a"].state == "closed"

    def test_insert_delete_roundtrip_and_fingerprint_changes(self):
        svc = ClusteringService()
        svc.handle({"op": "create_index", "index": "a", "points": _points().tolist()})
        fp0 = svc.indexes["a"].fingerprint()
        r = svc.handle(
            {"op": "insert", "index": "a", "points": [[0.5, 0.5], [0.6, 0.6]]}
        )
        assert r["status"] == "ok" and len(r["result"]["ids"]) == 2
        assert svc.indexes["a"].fingerprint() != fp0
        r = svc.handle({"op": "delete", "index": "a", "ids": r["result"]["ids"]})
        assert r["status"] == "ok" and r["result"]["deleted"] == 2
        assert svc.indexes["a"].fingerprint() == fp0

    def test_unknown_delete_ids_are_invalid_not_fatal(self):
        svc = ClusteringService()
        svc.handle({"op": "create_index", "index": "a", "points": _points().tolist()})
        r = svc.handle({"op": "delete", "index": "a", "ids": [99999]})
        assert r["status"] == "error" and r["error"]["code"] == "invalid"

    def test_journal_replay_restores_exact_fingerprints(self, tmp_path):
        path = str(tmp_path / "svc.jsonl")
        svc = ClusteringService(journal_path=path)
        svc.handle({"op": "create_index", "index": "a", "points": _points(2).tolist()})
        svc.handle({"op": "insert", "index": "a", "points": [[0.1, 0.9]]})
        svc.handle({"op": "delete", "index": "a", "ids": [5, 6]})
        svc.handle({"op": "create_index", "index": "b", "points": _points(3, 50).tolist()})
        fps = {name: si.fingerprint() for name, si in svc.indexes.items()}
        restarted = ClusteringService(journal_path=path)
        assert {n: s.fingerprint() for n, s in restarted.indexes.items()} == fps
        assert restarted.replayed_entries == 4

    def test_replay_detects_divergence(self, tmp_path):
        path = str(tmp_path / "svc.jsonl")
        svc = ClusteringService(journal_path=path)
        svc.handle({"op": "create_index", "index": "a", "points": _points().tolist()})
        # tamper with the recorded fingerprint
        lines = open(path).read().splitlines()
        entry = json.loads(lines[0])
        entry["fingerprint"] = "0" * 40
        with open(path, "w") as fh:
            fh.write(json.dumps(entry) + "\n")
        with pytest.raises(JournalCorruptError, match="fingerprint"):
            ClusteringService(journal_path=path)

    def test_backpressure_sheds_with_retry_after(self):
        config = ServiceConfig(max_backlog=0.1, max_queue=1000)
        svc = ClusteringService(config=config)
        svc.handle({"op": "create_index", "index": "a", "points": _points().tolist()})
        shed = None
        for _ in range(30):
            r = svc.handle(
                {"op": "cluster", "index": "a", "eps": 0.08, "min_samples": 5}
            )
            if r["status"] == "shed":
                shed = r
                break
        assert shed is not None and shed["retry_after"] > 0

    def test_single_rung_labels_bit_identical_to_full(self):
        X = _points(4)
        full = ClusteringService()
        full.handle({"op": "create_index", "index": "a", "points": X.tolist(),
                     "traversal": "dual"})
        r_full = full.handle(
            {"op": "cluster", "index": "a", "eps": 0.08, "min_samples": 5,
             "traversal": "dual"}
        )
        # force the single rung via ladder thresholds at zero pressure cuts
        config = ServiceConfig(ladder_thresholds=(0.0, 2.0, 3.0, 4.0))
        degraded = ClusteringService(config=config)
        degraded.handle({"op": "create_index", "index": "a", "points": X.tolist()})
        r_single = degraded.handle(
            {"op": "cluster", "index": "a", "eps": 0.08, "min_samples": 5,
             "traversal": "dual"}
        )
        assert r_single["status"] == "ok" and r_single["mode"] == "single"
        assert r_full["result"]["labels"] == r_single["result"]["labels"]

    def test_count_only_rung_is_explicitly_degraded(self):
        config = ServiceConfig(ladder_thresholds=(0.0, 0.0, 0.0, 4.0))
        svc = ClusteringService(config=config)
        svc.handle({"op": "create_index", "index": "a", "points": _points().tolist()})
        r = svc.handle({"op": "cluster", "index": "a", "eps": 0.08, "min_samples": 5})
        assert r["status"] == "degraded"
        assert r["mode"] in ("count_only", "cache_miss_count_only")
        assert "labels" not in r["result"] and "n_core" in r["result"]

    def test_metrics_totals_equal_ledger(self):
        svc = ClusteringService()
        svc.handle({"op": "create_index", "index": "a", "points": _points().tolist()})
        svc.handle({"op": "cluster", "index": "a", "eps": 0.08, "min_samples": 5})
        svc.handle({"op": "ping"})
        svc.handle("garbage")
        svc.handle({"op": "knn", "index": "a", "k": 3})
        proof = svc.verify_metrics_ledger()
        assert proof["ok"]
        assert proof["checks"]["requests_total"] == len(svc.ledger) == 5

    def test_stats_and_metrics_ops_always_served(self):
        svc = ClusteringService()
        r = svc.handle({"op": "stats"})
        assert r["status"] == "ok" and "backlog" in r["result"]
        r = svc.handle({"op": "metrics"})
        assert "repro_service_requests_total" in r["result"]["prometheus"]

    def test_serve_lines_round_trip(self):
        import io

        svc = ClusteringService()
        lines = [
            json.dumps({"op": "create_index", "index": "a",
                        "points": _points(0, 60).tolist()}),
            json.dumps({"op": "count", "index": "a", "eps": 0.1, "min_samples": 3}),
            "",
            "garbage",
        ]
        out = io.StringIO()
        served = svc.serve_lines(io.StringIO("\n".join(lines) + "\n"), out)
        assert served == 3  # blank line skipped
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert [r["status"] for r in responses] == ["ok", "ok", "rejected"]


class TestServiceHTTP:
    def test_http_round_trip_and_metrics_endpoint(self):
        import threading
        import urllib.error
        import urllib.request

        from repro.service.http import start_http

        svc = ClusteringService()
        server = start_http(svc)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            def post(payload):
                req = urllib.request.Request(
                    f"http://127.0.0.1:{port}/",
                    data=json.dumps(payload).encode(),
                    method="POST",
                )
                try:
                    with urllib.request.urlopen(req) as resp:
                        return resp.status, json.loads(resp.read())
                except urllib.error.HTTPError as err:
                    return err.code, json.loads(err.read())

            code, _ = post({"op": "create_index", "index": "h",
                            "points": _points(0, 80).tolist()})
            assert code == 200
            code, body = post({"op": "cluster", "index": "h", "eps": 0.1,
                               "min_samples": 3})
            assert code == 200 and body["status"] == "ok"
            code, body = post({"op": "cluster", "index": "nope", "eps": 0.1,
                               "min_samples": 3})
            assert code == 404 and body["error"]["code"] == "not_found"
            with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics") as resp:
                assert resp.status == 200
                assert b"repro_service_requests_total" in resp.read()
        finally:
            server.shutdown()
            server.server_close()


class TestServiceFaultSpecs:
    def test_service_kinds_default_off_and_parse(self):
        spec = FaultSpec(p_device_fault=0.5)
        assert spec.p_malformed == spec.p_service_crash == 0.0
        parsed = FaultSpec.parse("malformed=0.1,storm=0.2,restart=0.3")
        assert parsed.p_malformed == 0.1
        assert parsed.p_deadline_storm == 0.2
        assert parsed.p_service_crash == 0.3

    def test_request_faults_deterministic_and_crash_once(self):
        spec = FaultSpec.service(0.3, crash=0.5)
        a = [kinds for plan in [FaultPlan(7, spec)]
             for kinds in (plan.request_faults(i) for i in range(50))]
        b = [kinds for plan in [FaultPlan(7, spec)]
             for kinds in (plan.request_faults(i) for i in range(50))]
        assert a == b
        # the crash is capped at one per plan *instance* (a process only
        # crashes once; the restarted plan may crash again)
        crashes = sum("service_crash" in kinds for kinds in a)
        assert crashes == 1
