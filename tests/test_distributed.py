"""Tests for the distributed extension: RCB partitioning, ghost halos,
the simulated communicator and the three-phase driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sequential_dbscan import sequential_dbscan
from repro.device.device import Device
from repro.device.memory import DeviceMemoryError
from repro.distributed import (
    SimulatedComm,
    distributed_dbscan,
    rcb_partition,
    select_ghosts,
)
from repro.faults import RetryPolicy
from repro.metrics.equivalence import assert_dbscan_equivalent


class TestRcbPartition:
    def test_every_point_assigned_once(self, blobs_2d):
        part = rcb_partition(blobs_2d, 4)
        assert part.rank_of_point.shape == (blobs_2d.shape[0],)
        assert part.counts().sum() == blobs_2d.shape[0]

    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 5, 8])
    def test_balance(self, blobs_2d, n_ranks):
        part = rcb_partition(blobs_2d, n_ranks)
        counts = part.counts()
        assert counts.min() >= 0.5 * blobs_2d.shape[0] / n_ranks

    def test_points_inside_their_boxes(self, blobs_2d):
        part = rcb_partition(blobs_2d, 6)
        for r in range(6):
            pts = blobs_2d[part.owned(r)]
            assert (pts >= part.box_lo[r] - 1e-9).all()
            assert (pts <= part.box_hi[r] + 1e-9).all()

    def test_boxes_tile_the_domain(self, blobs_2d):
        # total volume of rank boxes equals the root box volume
        part = rcb_partition(blobs_2d, 8)
        volumes = np.prod(part.box_hi - part.box_lo, axis=1)
        root = np.prod(blobs_2d.max(0) - blobs_2d.min(0))
        assert volumes.sum() == pytest.approx(root)

    def test_single_rank(self, blobs_2d):
        part = rcb_partition(blobs_2d, 1)
        assert (part.rank_of_point == 0).all()

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="n_ranks"):
            rcb_partition(np.zeros((3, 2)), 0)
        with pytest.raises(ValueError, match="non-empty"):
            rcb_partition(np.zeros((0, 2)), 2)

    def test_duplicate_points_split_cleanly(self):
        X = np.ones((40, 2))
        part = rcb_partition(X, 4)
        assert part.counts().sum() == 40


class TestGhosts:
    def test_ghosts_are_remote(self, blobs_2d):
        part = rcb_partition(blobs_2d, 4)
        halo = select_ghosts(blobs_2d, part, 0.3)
        for r in range(4):
            assert not np.any(part.rank_of_point[halo.ghosts[r]] == r)

    def test_ghosts_cover_owned_neighborhoods(self, blobs_2d):
        # every eps-neighbour of an owned point is local (owned or ghost)
        eps = 0.3
        part = rcb_partition(blobs_2d, 4)
        halo = select_ghosts(blobs_2d, part, eps)
        diff = blobs_2d[:, None] - blobs_2d[None, :]
        adj = np.einsum("ijk,ijk->ij", diff, diff) <= eps * eps
        for r in range(4):
            local = set(part.owned(r).tolist()) | set(halo.ghosts[r].tolist())
            for i in part.owned(r):
                for j in np.flatnonzero(adj[i]):
                    assert int(j) in local

    def test_zero_eps_minimal_halo(self, blobs_2d):
        part = rcb_partition(blobs_2d, 4)
        halo = select_ghosts(blobs_2d, part, 1e-12)
        # essentially only points on the cut planes
        assert halo.total_ghosts() < blobs_2d.shape[0] / 4

    def test_halo_grows_with_eps(self, blobs_2d):
        part = rcb_partition(blobs_2d, 4)
        small = select_ghosts(blobs_2d, part, 0.05).total_ghosts()
        big = select_ghosts(blobs_2d, part, 1.0).total_ghosts()
        assert big > small

    def test_invalid_eps(self, blobs_2d):
        part = rcb_partition(blobs_2d, 2)
        with pytest.raises(ValueError, match="eps"):
            select_ghosts(blobs_2d, part, -1.0)


class TestComm:
    def test_accounting(self):
        comm = SimulatedComm(3)
        comm.exchange("ghosts", [np.zeros(10), np.zeros(5), np.zeros(0)])
        assert comm.stats.messages == 3
        assert comm.stats.bytes_sent == 15 * 8
        assert comm.stats.by_phase["ghosts"]["messages"] == 3
        assert comm.stats.by_phase["ghosts"]["bytes"] == 15 * 8
        assert comm.stats.by_phase["ghosts"]["retransmits"] == 0

    def test_payload_count_checked(self):
        comm = SimulatedComm(2)
        with pytest.raises(ValueError, match="payloads"):
            comm.exchange("x", [np.zeros(1)])

    def test_invalid_ranks(self):
        with pytest.raises(ValueError, match="n_ranks"):
            SimulatedComm(0)


class TestDriver:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4, 7])
    @pytest.mark.parametrize("minpts", [2, 5])
    def test_equivalent_to_single_device(self, blobs_2d, n_ranks, minpts):
        dist = distributed_dbscan(blobs_2d, 0.3, minpts, n_ranks=n_ranks)
        single = sequential_dbscan(blobs_2d, 0.3, minpts)
        assert_dbscan_equivalent(dist, single, blobs_2d, 0.3)

    @pytest.mark.parametrize("query_order", ["input", "morton"])
    @pytest.mark.parametrize("traversal", ["single", "dual"])
    def test_traversal_options_leave_labels_unchanged(
        self, blobs_2d, query_order, traversal
    ):
        # query_order / traversal are pure work-scheduling levers: every
        # rank's labels — and hence the merged global labelling — must be
        # bit-identical to the default run, not merely DBSCAN-equivalent.
        base = distributed_dbscan(blobs_2d, 0.3, 5, n_ranks=4)
        res = distributed_dbscan(
            blobs_2d, 0.3, 5, n_ranks=4,
            query_order=query_order, traversal=traversal,
        )
        np.testing.assert_array_equal(res.labels, base.labels)
        np.testing.assert_array_equal(res.is_core, base.is_core)
        assert res.info["query_order"] == query_order
        assert res.info["traversal"] == traversal
        single = sequential_dbscan(blobs_2d, 0.3, 5)
        assert_dbscan_equivalent(res, single, blobs_2d, 0.3)

    def test_3d(self, blobs_3d):
        dist = distributed_dbscan(blobs_3d, 0.5, 5, n_ranks=5)
        single = sequential_dbscan(blobs_3d, 0.5, 5)
        assert_dbscan_equivalent(dist, single, blobs_3d, 0.5)

    def test_minpts_1(self, blobs_2d):
        dist = distributed_dbscan(blobs_2d, 0.2, 1, n_ranks=3)
        single = sequential_dbscan(blobs_2d, 0.2, 1)
        assert_dbscan_equivalent(dist, single, blobs_2d, 0.2)

    def test_cluster_spanning_all_ranks(self):
        # A single filament crossing every cut: clusters must merge across
        # every rank boundary.
        t = np.linspace(0, 10, 400)
        X = np.column_stack([t, np.zeros_like(t)])
        dist = distributed_dbscan(X, 0.1, 3, n_ranks=6)
        assert dist.n_clusters == 1

    def test_border_on_rank_boundary_no_bridging(self):
        # Two clusters separated across a cut with a shared border point in
        # the middle: they must not merge through it, on any rank count.
        left = np.column_stack([np.linspace(0.0, 0.4, 50), np.zeros(50)])
        right = np.column_stack([np.linspace(1.0, 1.4, 50), np.zeros(50)])
        bridge = np.array([[0.7, 0.0]])
        X = np.concatenate([left, right, bridge])
        for n_ranks in (1, 2, 4):
            res = distributed_dbscan(X, 0.32, 10, n_ranks=n_ranks)
            assert res.n_clusters == 2, n_ranks
            assert res.labels[-1] >= 0  # the border point joined one side
            single = sequential_dbscan(X, 0.32, 10)
            assert_dbscan_equivalent(res, single, X, 0.32)

    def test_info_reports_decomposition_and_comm(self, blobs_2d):
        res = distributed_dbscan(blobs_2d, 0.3, 5, n_ranks=4)
        assert len(res.info["owned_per_rank"]) == 4
        assert len(res.info["ghosts_per_rank"]) == 4
        assert res.info["comm_bytes"] > 0
        assert set(res.info["comm_by_phase"]) >= {"ghosts", "merge_core_groups"}

    def test_comm_volume_grows_with_eps(self, blobs_2d):
        small = distributed_dbscan(blobs_2d, 0.05, 5, n_ranks=4)
        big = distributed_dbscan(blobs_2d, 1.0, 5, n_ranks=4)
        assert (
            big.info["comm_by_phase"]["ghosts"]["bytes"]
            > small.info["comm_by_phase"]["ghosts"]["bytes"]
        )

    @pytest.mark.parametrize("minpts", [1, 2, 5])
    def test_more_ranks_than_points(self, minpts):
        # rcb_partition emits empty ranks when n_ranks >= n; the driver must
        # not attempt a degenerate BVH build on a zero-owned rank.
        rng = np.random.default_rng(11)
        X = rng.normal(size=(5, 2))
        dist = distributed_dbscan(X, 0.8, minpts, n_ranks=8)
        single = sequential_dbscan(X, 0.8, minpts)
        assert_dbscan_equivalent(dist, single, X, 0.8)
        assert sum(dist.info["owned_per_rank"]) == 5
        assert 0 in dist.info["owned_per_rank"]

    def test_heavily_duplicated_coordinates(self):
        # All-identical coordinates make every RCB split degenerate: most
        # ranks own zero points and every survivor sees the full pile.
        X = np.ones((40, 2))
        for n_ranks in (4, 16):
            dist = distributed_dbscan(X, 0.1, 5, n_ranks=n_ranks)
            single = sequential_dbscan(X, 0.1, 5)
            assert_dbscan_equivalent(dist, single, X, 0.1)
            assert dist.n_clusters == 1
            assert sum(dist.info["owned_per_rank"]) == 40

    @given(st.integers(0, 5000), st.integers(1, 6), st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_equivalence_property(self, seed, n_ranks, minpts):
        rng = np.random.default_rng(seed)
        X = np.concatenate(
            [
                rng.normal(0, 0.1, size=(rng.integers(10, 80), 2)),
                rng.uniform(-1, 2, size=(rng.integers(10, 80), 2)),
            ]
        )
        dist = distributed_dbscan(X, 0.25, minpts, n_ranks=n_ranks)
        single = sequential_dbscan(X, 0.25, minpts)
        assert_dbscan_equivalent(dist, single, X, 0.25)


class TestDeviceFaultRecovery:
    """A ``DeviceMemoryError`` raised from *inside* a rank's local phase is
    a recoverable (retryable) failure, not a run-ending one."""

    @staticmethod
    def _oom_once_hook(device, fail_times=1):
        state = {"left": fail_times, "fired": 0}

        def hook(kernel_name):
            if state["left"] > 0:
                state["left"] -= 1
                state["fired"] += 1
                raise DeviceMemoryError(
                    0, device.memory.live_bytes, 0, tag="fault-injection"
                )

        device.fault_hook = hook
        return state

    def test_oom_inside_local_phase_is_retried(self, blobs_2d):
        device = Device(name="flaky")
        state = self._oom_once_hook(device)
        dist = distributed_dbscan(blobs_2d, 0.3, 5, n_ranks=4, device=device)
        assert state["fired"] == 1
        assert sum(dist.info["retries"].values()) == 1
        single = sequential_dbscan(blobs_2d, 0.3, 5)
        assert_dbscan_equivalent(dist, single, blobs_2d, 0.3)

    def test_oom_beyond_retry_budget_propagates(self, blobs_2d):
        device = Device(name="dead")
        self._oom_once_hook(device, fail_times=100)
        with pytest.raises(DeviceMemoryError):
            distributed_dbscan(
                blobs_2d, 0.3, 5, n_ranks=2, device=device,
                retry_policy=RetryPolicy(max_attempts=3),
            )

    def test_retry_policy_budget_respected(self, blobs_2d):
        # exactly max_attempts - 1 failures still succeed
        device = Device(name="flaky")
        state = self._oom_once_hook(device, fail_times=2)
        dist = distributed_dbscan(
            blobs_2d, 0.3, 5, n_ranks=2, device=device,
            retry_policy=RetryPolicy(max_attempts=3),
        )
        assert state["fired"] == 2
        assert sum(dist.info["retries"].values()) == 2
        single = sequential_dbscan(blobs_2d, 0.3, 5)
        assert_dbscan_equivalent(dist, single, blobs_2d, 0.3)
