"""Integration matrix: every registry algorithm on every evaluation
dataset stand-in (small samples), all DBSCAN-equivalent to the oracle —
the full-system smoke the figure benchmarks rely on."""

import numpy as np
import pytest

from repro import dbscan
from repro.baselines.sequential_dbscan import sequential_dbscan
from repro.datasets import load_dataset, paper_params
from repro.metrics.equivalence import assert_dbscan_equivalent

#: (dataset, n, eps, minpts) — small samples at in-regime parameters.
CASES = [
    ("ngsim", 1500, 0.005, 30),
    ("portotaxi", 1500, 0.005, 15),
    ("road3d", 1500, 0.08, 10),
    ("hacc", 1500, 0.15, 5),
]

ALGORITHMS = ["fdbscan", "densebox", "gdbscan", "cuda-dclust", "dsdbscan", "grid"]


@pytest.mark.parametrize("name,n,eps,minpts", CASES, ids=lambda v: str(v))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_algorithm_dataset_matrix(name, n, eps, minpts, algorithm):
    X = load_dataset(name, n, seed=5)
    base = sequential_dbscan(X, eps, minpts)
    res = dbscan(X, eps, minpts, algorithm=algorithm)
    assert_dbscan_equivalent(base, res, X, eps)


@pytest.mark.parametrize("name,n,eps,minpts", CASES, ids=lambda v: str(v))
def test_distributed_on_every_dataset(name, n, eps, minpts):
    from repro.distributed import distributed_dbscan

    X = load_dataset(name, n, seed=5)
    base = sequential_dbscan(X, eps, minpts)
    res = distributed_dbscan(X, eps, minpts, n_ranks=3)
    assert_dbscan_equivalent(base, res, X, eps)


@pytest.mark.parametrize("name", ["ngsim", "portotaxi", "road3d", "hacc"])
def test_minpts2_fof_on_every_dataset(name):
    X = load_dataset(name, 1200, seed=6)
    spec = paper_params(name)
    eps = spec.minpts_sweep_eps
    base = sequential_dbscan(X, eps, 2)
    for algorithm in ("fdbscan", "densebox"):
        res = dbscan(X, eps, 2, algorithm=algorithm)
        assert_dbscan_equivalent(base, res, X, eps)


def test_auto_on_every_dataset():
    for name, n, eps, minpts in CASES:
        X = load_dataset(name, n, seed=7)
        base = sequential_dbscan(X, eps, minpts)
        res = dbscan(X, eps, minpts, algorithm="auto")
        assert_dbscan_equivalent(base, res, X, eps)


def test_hacc_periodic_box_clustering():
    # The HACC stand-in lives in a periodic cube: the periodic wrapper must
    # accept it end to end.
    from repro.core.periodic import periodic_dbscan
    from repro.datasets.hacc import BOX_SIZE

    X = load_dataset("hacc", 2000, seed=8)
    res = periodic_dbscan(X, 0.15, 5, box_size=BOX_SIZE, algorithm="fdbscan")
    assert res.labels.shape == (2000,)
    assert res.n_clusters > 0
