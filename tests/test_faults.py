"""Unit tests for the fault-injection subsystem: the simulated clock,
retry policy, fault plans/specs, device-fault arming, and the
communicator's checksummed envelope pipeline."""

import numpy as np
import pytest

from repro.device.device import Device, KernelFaultError
from repro.device.memory import DeviceMemoryError
from repro.distributed.comm import CommDeliveryError, Envelope, SimulatedComm
from repro.faults import (
    DEVICE_FAULT_KINDS,
    MESSAGE_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    SimClock,
    TransientFault,
    call_with_retries,
)


class TestSimClock:
    def test_sleep_advances_virtual_time(self):
        clock = SimClock()
        assert clock.now() == 0.0
        assert clock.sleep(0.5) == 0.5
        assert clock.sleep(0.25) == 0.25
        assert clock.now() == 0.75
        assert clock.slept_seconds == 0.75
        assert clock.sleep_count == 2

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            SimClock().sleep(-1.0)


class TestRetryPolicy:
    def test_backoff_is_bounded_exponential(self):
        policy = RetryPolicy(backoff_base=0.01, backoff_factor=2.0, backoff_cap=0.05)
        assert policy.backoff(1) == pytest.approx(0.01)
        assert policy.backoff(2) == pytest.approx(0.02)
        assert policy.backoff(3) == pytest.approx(0.04)
        assert policy.backoff(4) == pytest.approx(0.05)  # capped
        assert policy.backoff(10) == pytest.approx(0.05)

    def test_transient_classification(self):
        policy = RetryPolicy()
        assert policy.is_transient(TransientFault("x"))
        assert policy.is_transient(KernelFaultError("x"))
        assert policy.is_transient(DeviceMemoryError(0, 0, 0, tag="t"))
        assert not policy.is_transient(ValueError("x"))

    def test_call_with_retries_converges(self):
        clock = SimClock()
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 3:
                raise TransientFault("not yet")
            return "done"

        result, attempts = call_with_retries(
            flaky, RetryPolicy(max_attempts=4), clock=clock
        )
        assert result == "done"
        assert attempts == 3
        assert calls == [1, 2, 3]
        assert clock.slept_seconds > 0  # backoff charged between attempts

    def test_call_with_retries_exhausts_budget(self):
        def always(attempt):
            raise TransientFault("never")

        with pytest.raises(TransientFault):
            call_with_retries(always, RetryPolicy(max_attempts=2), clock=SimClock())

    def test_non_transient_raises_immediately(self):
        calls = []

        def bad(attempt):
            calls.append(attempt)
            raise ValueError("permanent")

        with pytest.raises(ValueError):
            call_with_retries(bad, RetryPolicy(max_attempts=5), clock=SimClock())
        assert calls == [1]


class TestFaultSpec:
    def test_probability_validation(self):
        with pytest.raises(ValueError, match="p_drop"):
            FaultSpec(p_drop=1.5)
        with pytest.raises(ValueError, match="fault_attempts"):
            FaultSpec(fault_attempts=-1)

    def test_any_faults(self):
        assert not FaultSpec().any_faults
        assert FaultSpec(p_corrupt=0.1).any_faults

    def test_parse_bare_probability(self):
        spec = FaultSpec.parse("0.1")
        for kind in MESSAGE_FAULT_KINDS:
            assert getattr(spec, f"p_{kind}") == 0.1
        assert spec.p_rank_crash == 0.1
        assert spec.p_device_fault == 0.1

    def test_parse_key_value_pairs(self):
        spec = FaultSpec.parse("drop=0.1, crash=0.3, device=0.2, attempts=4")
        assert spec.p_drop == 0.1
        assert spec.p_rank_crash == 0.3
        assert spec.p_device_fault == 0.2
        assert spec.fault_attempts == 4
        assert spec.p_corrupt == 0.0

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="bad fault spec"):
            FaultSpec.parse("explode=1.0")


class TestFaultPlan:
    def test_same_seed_same_decisions(self):
        a, b = FaultPlan(7, FaultSpec.uniform(0.5)), FaultPlan(7, FaultSpec.uniform(0.5))
        for seq in range(20):
            assert a.message_faults("ghosts", 1, seq, 1) == b.message_faults(
                "ghosts", 1, seq, 1
            )
        assert a.crashed_ranks("pre_main", range(6)) == b.crashed_ranks(
            "pre_main", range(6)
        )
        assert [e.as_dict() for e in a.log] == [e.as_dict() for e in b.log]

    def test_decisions_are_order_independent(self):
        a, b = FaultPlan(3, FaultSpec.uniform(0.5)), FaultPlan(3, FaultSpec.uniform(0.5))
        keys = [("ghosts", s, q, 1) for s in range(3) for q in range(5)]
        forward = [a.message_faults(*k) for k in keys]
        backward = [b.message_faults(*k) for k in reversed(keys)]
        assert forward == list(reversed(backward))

    def test_faults_bounded_by_fault_attempts(self):
        plan = FaultPlan(0, FaultSpec.uniform(1.0, fault_attempts=2))
        assert plan.message_faults("x", 0, 0, 1)
        assert plan.message_faults("x", 0, 0, 2)
        assert plan.message_faults("x", 0, 0, 3) == []
        assert plan.device_fault_kind("x", 0, 3) is None

    def test_corrupt_payload_flips_exactly_one_bit(self):
        plan = FaultPlan(5, FaultSpec(p_corrupt=1.0))
        data = bytes(range(64))
        mangled = plan.corrupt_payload(data, "x", 0, 0, 1)
        assert len(mangled) == len(data)
        diff = [a ^ b for a, b in zip(data, mangled) if a != b]
        assert len(diff) == 1
        assert bin(diff[0]).count("1") == 1
        assert plan.corrupt_payload(b"", "x", 0, 0, 1) == b""

    def test_crashes_always_leave_a_survivor(self):
        for seed in range(30):
            plan = FaultPlan(seed, FaultSpec(p_rank_crash=1.0))
            alive = set(range(5))
            for boundary in ("pre_local", "pre_main", "pre_merge"):
                alive -= set(plan.crashed_ranks(boundary, alive))
            assert len(alive) >= 1

    def test_device_faults_raise_inside_kernel_launch(self):
        spec = FaultSpec(p_device_fault=1.0)
        raised = {kind: 0 for kind in DEVICE_FAULT_KINDS}
        for seed in range(20):
            plan = FaultPlan(seed, spec)
            dev = Device()
            with plan.device_faults(dev, "phase", rank=0, attempt=1):
                try:
                    with dev.kernel("k", threads=1):
                        pass
                except DeviceMemoryError as exc:
                    assert exc.tag == "fault-injection"
                    raised["device_oom"] += 1
                except KernelFaultError:
                    raised["kernel_fault"] += 1
            assert dev.fault_hook is None  # restored on exit
            assert len(plan.log) == 1
        assert raised["device_oom"] > 0 and raised["kernel_fault"] > 0

    def test_device_faults_fire_once_per_arming(self):
        plan = FaultPlan(0, FaultSpec(p_device_fault=1.0))
        dev = Device()
        with plan.device_faults(dev, "phase", rank=0, attempt=1):
            with pytest.raises((DeviceMemoryError, KernelFaultError)):
                with dev.kernel("k", threads=1):
                    pass
            with dev.kernel("k", threads=1):  # second launch runs clean
                pass

    def test_summary_and_log_dicts(self):
        plan = FaultPlan(9, FaultSpec(p_rank_crash=1.0))
        plan.crashed_ranks("pre_local", range(4))
        summary = plan.summary()
        assert summary["seed"] == 9
        assert summary["total"] == len(plan.log) > 0
        assert summary["by_kind"] == {"rank_crash": summary["total"]}
        assert all(d["kind"] == "rank_crash" for d in plan.log_as_dicts())

    def test_random_plans_differ_by_seed(self):
        a, b = FaultPlan.random(1), FaultPlan.random(2)
        assert a.spec != b.spec
        assert FaultPlan.random(1).spec == a.spec  # but are seed-deterministic


class TestEnvelope:
    def test_checksum_roundtrip(self):
        env = Envelope.wrap("x", 0, 0, np.arange(10))
        assert env.verify()

    def test_corruption_detected(self):
        payload = np.arange(10)
        env = Envelope.wrap("x", 0, 0, payload)
        bad = payload.copy()
        bad[3] ^= 1
        assert not Envelope("x", 0, 0, bad, env.checksum).verify()


class TestFaultyComm:
    def test_clean_comm_has_no_retransmits(self):
        comm = SimulatedComm(2)
        out = comm.exchange("x", [np.arange(4), np.arange(8)])
        assert [o.tolist() for o in out] == [list(range(4)), list(range(8))]
        assert comm.stats.retransmits == 0

    def test_faulty_delivery_is_lossless(self):
        # heavy faults of every kind: payloads still arrive intact, in order
        plan = FaultPlan(
            3, FaultSpec(p_drop=0.4, p_timeout=0.3, p_corrupt=0.4,
                         p_duplicate=0.3, p_reorder=0.4)
        )
        comm = SimulatedComm(4, fault_plan=plan)
        payloads = [np.arange(20) * (r + 1) for r in range(4)]
        for _ in range(10):
            out = comm.exchange("x", [p.copy() for p in payloads])
            for got, want in zip(out, payloads):
                np.testing.assert_array_equal(got, want)
        s = comm.stats
        assert s.retransmits > 0
        assert s.drops + s.timeouts + s.corruptions_detected > 0
        assert s.sim_wait_seconds > 0
        assert s.by_phase["x"]["retransmits"] == s.retransmits

    def test_corruption_is_detected_and_retransmitted(self):
        plan = FaultPlan(1, FaultSpec(p_corrupt=1.0, fault_attempts=1))
        comm = SimulatedComm(1, fault_plan=plan)
        out = comm.exchange("x", [np.arange(16)])
        np.testing.assert_array_equal(out[0], np.arange(16))
        assert comm.stats.corruptions_detected >= 1

    def test_budget_exhaustion_raises_transient(self):
        plan = FaultPlan(0, FaultSpec(p_drop=1.0, fault_attempts=10))
        comm = SimulatedComm(1, fault_plan=plan, retry_policy=RetryPolicy(max_attempts=3))
        with pytest.raises(CommDeliveryError):
            comm.exchange("x", [np.arange(4)])
        assert isinstance(CommDeliveryError("x"), TransientFault)

    def test_dead_rank_slots_skip_transmission(self):
        comm = SimulatedComm(3)
        comm.mark_dead(1)
        comm.exchange("x", [np.arange(4)] * 3)
        assert comm.stats.messages == 2
        with pytest.raises(CommDeliveryError, match="dead"):
            comm.send("x", np.arange(4), sender=1)

    def test_senders_remap_attribution(self):
        comm = SimulatedComm(2)
        comm.mark_dead(0)
        # slot 0's work reassigned to rank 1: both slots transmit
        comm.exchange("x", [np.arange(4), np.arange(4)], senders=[1, 1])
        assert comm.stats.messages == 2
