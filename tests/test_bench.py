"""Tests for the benchmark harness and reporting."""

import numpy as np
import pytest

from repro.bench.harness import RunRecord, run_once, run_sweep
from repro.bench.report import format_kernel_profile, format_records, format_series
from repro.datasets import gaussian_blobs


def _live_builds(records, kernel="bvh_build"):
    """Live (non-replayed) launches of ``kernel`` across a sweep's records."""
    return sum(
        r.kernels.get(kernel, {}).get("launches", 0)
        - r.kernels.get(kernel, {}).get("replayed", 0)
        for r in records
    )


@pytest.fixture(scope="module")
def small_blobs():
    return gaussian_blobs(300, centers=3, std=0.05, seed=0)


class TestRunOnce:
    def test_ok_record(self, small_blobs):
        rec = run_once("fdbscan", small_blobs, 0.2, 5, dataset="blobs")
        assert rec.status == "ok"
        assert rec.seconds > 0
        assert rec.n_clusters == 3
        assert rec.counters["distance_evals"] > 0
        assert rec.peak_bytes > 0

    def test_oom_record(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 0.01, size=(400, 2))
        rec = run_once("gdbscan", X, 0.5, 5, capacity_bytes=1000)
        assert rec.status == "oom"
        assert "OOM" in rec.detail or "capacity" in rec.detail

    def test_fresh_device_per_run(self, small_blobs):
        a = run_once("fdbscan", small_blobs, 0.2, 5)
        b = run_once("fdbscan", small_blobs, 0.2, 5)
        assert a.counters["distance_evals"] == b.counters["distance_evals"]

    def test_as_row_keys(self, small_blobs):
        row = run_once("fdbscan", small_blobs, 0.2, 5).as_row()
        assert {"algorithm", "seconds", "status", "clusters"} <= set(row)

    def test_kernels_profile_captured(self, small_blobs):
        rec = run_once("fdbscan", small_blobs, 0.2, 5)
        assert rec.kernels["bvh_build"]["launches"] == 1
        assert rec.kernels["fdbscan_main"]["seconds"] >= 0

    def test_oom_captures_counters_and_kernels(self):
        # an "oom" cell must still report the work done up to the failure
        rng = np.random.default_rng(0)
        X = rng.normal(0, 0.01, size=(400, 2))
        rec = run_once("gdbscan", X, 0.5, 5, capacity_bytes=1000)
        assert rec.status == "oom"
        assert rec.counters  # lost before the fix
        assert isinstance(rec.kernels, dict)
        assert rec.peak_bytes >= 0

    def test_error_captures_counters(self):
        rng = np.random.default_rng(0)
        rec = run_once("fdbscan", rng.normal(size=(20, 5)), 0.5, 3)
        assert rec.status == "error"
        assert isinstance(rec.counters, dict)


class TestRunSweep:
    def test_full_grid(self, small_blobs):
        cells = [{"eps": 0.2, "min_samples": m} for m in (3, 5)]
        records = run_sweep(
            ["fdbscan", "densebox"], cells, lambda c: small_blobs, dataset="blobs"
        )
        assert len(records) == 4
        assert all(r.status == "ok" for r in records)

    def test_time_budget_skips(self, small_blobs):
        cells = [{"eps": 0.2, "min_samples": m} for m in (3, 4, 5)]
        records = run_sweep(
            ["fdbscan"], cells, lambda c: small_blobs, time_budget=0.0
        )
        # first cell runs (and busts the budget), the rest are skipped
        assert records[0].status == "ok"
        assert all(r.status == "skipped" for r in records[1:])

    def test_skip_detail_names_tripping_cell(self, small_blobs):
        cells = [{"eps": 0.2, "min_samples": m} for m in (3, 4)]
        records = run_sweep(
            ["fdbscan"], cells, lambda c: small_blobs, time_budget=0.0
        )
        detail = records[1].detail
        assert f"n={small_blobs.shape[0]}" in detail
        assert "eps=0.2" in detail and "minpts=3" in detail
        assert "time budget" in detail

    def test_failed_cells_do_not_trip_budget(self):
        # an error cell takes "forever" relative to a 0-second budget, but
        # only successful cells may drop an algorithm from the sweep
        rng = np.random.default_rng(0)
        X5 = rng.normal(size=(30, 5))  # 5-D: tree algorithms error out
        cells = [{"eps": 0.5, "min_samples": 3}, {"eps": 0.6, "min_samples": 3}]
        records = run_sweep(["fdbscan"], cells, lambda c: X5, time_budget=0.0)
        assert [r.status for r in records] == ["error", "error"]

    def test_oom_cells_do_not_trip_budget(self):
        rng = np.random.default_rng(1)
        X = rng.normal(0, 0.01, size=(300, 2))
        cells = [{"eps": 0.5, "min_samples": 5}, {"eps": 0.4, "min_samples": 5}]
        records = run_sweep(
            ["gdbscan"], cells, lambda c: X, time_budget=0.0, capacity_bytes=1000
        )
        # both cells actually ran (and OOMed); neither was skipped
        assert [r.status for r in records] == ["oom", "oom"]

    def test_oom_does_not_abort_sweep(self):
        # G-DBSCAN's persistent adjacency graph busts the cap; FDBSCAN with
        # a bounded wavefront chunk stays under it.
        rng = np.random.default_rng(1)
        X = rng.normal(0, 0.01, size=(300, 2))
        cells = [{"eps": 0.5, "min_samples": 5}]
        records = run_sweep(
            ["gdbscan", "fdbscan"],
            cells,
            lambda c: X,
            capacity_bytes=400_000,
            tree_kwargs={"chunk_size": 16},
        )
        statuses = {r.algorithm: r.status for r in records}
        assert statuses["gdbscan"] == "oom"
        assert statuses["fdbscan"] == "ok"


class TestCellTimeout:
    def test_over_budget_cell_records_timeout(self, small_blobs):
        # a zero-second wall budget kills the cell at its first watchdog
        # check, which fires on the first kernel launch
        rec = run_once("fdbscan", small_blobs, 0.2, 5, cell_timeout=0.0)
        assert rec.status == "timeout"
        assert rec.detail  # the deadline's message, not a bare traceback

    def test_timeout_keeps_partial_counters(self, small_blobs):
        rec = run_once("fdbscan", small_blobs, 0.2, 5, cell_timeout=0.0)
        # the cell died mid-run but its accounting survives
        assert isinstance(rec.counters, dict)

    def test_generous_timeout_is_a_noop(self, small_blobs):
        rec = run_once("fdbscan", small_blobs, 0.2, 5, cell_timeout=3600.0)
        assert rec.status == "ok"
        assert rec.n_clusters == 3

    def test_timeouts_are_never_retried(self, small_blobs):
        from repro.faults import RetryPolicy

        rec = run_once(
            "fdbscan", small_blobs, 0.2, 5,
            cell_timeout=0.0, retry_policy=RetryPolicy(max_attempts=5),
        )
        assert rec.status == "timeout"
        assert rec.attempts == 1  # re-running inside a spent budget is pointless

    def test_sweep_threads_cell_timeout(self, small_blobs):
        cells = [{"eps": 0.2, "min_samples": 5}, {"eps": 0.3, "min_samples": 5}]
        records = run_sweep(
            ["fdbscan"], cells, lambda c: small_blobs, cell_timeout=0.0
        )
        assert [r.status for r in records] == ["timeout", "timeout"]

    def test_timeout_cells_do_not_abort_sweep(self, small_blobs):
        # budget applies per cell; later cells still run under their own
        records = run_sweep(
            ["fdbscan"], [{"eps": 0.2, "min_samples": 5}],
            lambda c: small_blobs, cell_timeout=3600.0,
        )
        assert [r.status for r in records] == ["ok"]


class TestSweepIndexReuse:
    """Acceptance: a two-algorithm eps-sweep builds each point set's BVH
    exactly once, with per-cell accounting identical to cold runs."""

    @pytest.fixture(scope="class")
    def sparse(self):
        # uniform points at small eps: dense_fraction ~ 0, so "auto"
        # resolves to fdbscan and shares the points tree with "fdbscan"
        return np.random.default_rng(7).uniform(0.0, 1.0, size=(600, 2))

    @pytest.fixture(scope="class")
    def cells(self):
        return [{"eps": e, "min_samples": 5} for e in (0.02, 0.03, 0.05)]

    def test_bvh_built_exactly_once(self, sparse, cells):
        records = run_sweep(["fdbscan", "auto"], cells, lambda c: sparse)
        assert all(r.status == "ok" for r in records)
        assert _live_builds(records) == 1
        # ...but every cell still accounts one (possibly replayed) build
        assert all(r.kernels["bvh_build"]["launches"] == 1 for r in records)
        assert [r.reused_index for r in records] == [False] + [True] * 5

    def test_results_and_counters_match_cold_sweep(self, sparse, cells):
        warm = run_sweep(["fdbscan", "auto"], cells, lambda c: sparse)
        cold = run_sweep(
            ["fdbscan", "auto"], cells, lambda c: sparse, reuse_index=False
        )
        assert _live_builds(cold) == len(cold) == 6
        for w, c in zip(warm, cold):
            assert (w.n_clusters, w.n_noise) == (c.n_clusters, c.n_noise)
            assert w.counters == c.counters
            assert w.peak_bytes == c.peak_bytes

    def test_distinct_point_sets_get_distinct_indexes(self):
        rng = np.random.default_rng(3)
        data = {
            200: rng.uniform(size=(200, 2)),
            400: rng.uniform(size=(400, 2)),
        }
        cells = [{"n": n, "eps": 0.03, "min_samples": 5} for n in (200, 400, 200)]
        records = run_sweep(["fdbscan"], cells, lambda c: data[c["n"]])
        # one live build per distinct point set; the revisited set replays
        assert _live_builds(records) == 2
        assert [r.reused_index for r in records] == [False, False, True]

    def test_baseline_only_sweep_skips_index(self, sparse):
        records = run_sweep(
            ["brute"], [{"eps": 0.05, "min_samples": 5}], lambda c: sparse
        )
        assert records[0].status == "ok"
        assert "bvh_build" not in records[0].kernels


class TestKernelProfileReport:
    def test_from_records(self, small_blobs):
        records = run_sweep(
            ["fdbscan"], [{"eps": 0.2, "min_samples": 5}], lambda c: small_blobs
        )
        out = format_kernel_profile(records, title="profile")
        lines = out.splitlines()
        assert lines[0] == "profile"
        assert lines[1].split()[:3] == ["kernel", "launches", "replayed"]
        assert any("bvh_build" in l for l in lines)
        assert any("%" in l for l in lines[3:])

    def test_from_device_profile_dict(self, small_blobs):
        rec = run_once("fdbscan", small_blobs, 0.2, 5)
        out = format_kernel_profile(rec.kernels)
        assert "fdbscan_main" in out

    def test_empty(self):
        assert "(no kernel launches)" in format_kernel_profile([])
        assert format_kernel_profile({}, title="t").startswith("t")


class TestHistoryKernelsRoundTrip:
    def test_kernels_and_reuse_flag_survive_save_load(self, small_blobs, tmp_path):
        from repro.bench.history import load_records, save_records

        records = run_sweep(
            ["fdbscan"],
            [{"eps": 0.2, "min_samples": m} for m in (3, 5)],
            lambda c: small_blobs,
        )
        path = tmp_path / "sweep.json"
        save_records(str(path), records, meta={"note": "test"})
        loaded, meta = load_records(str(path))
        assert meta == {"note": "test"}
        for orig, back in zip(records, loaded):
            assert back.reused_index == orig.reused_index
            assert set(back.kernels) == set(orig.kernels)
            for name, row in orig.kernels.items():
                assert back.kernels[name]["launches"] == row["launches"]
                assert back.kernels[name]["replayed"] == row["replayed"]
                assert back.kernels[name]["seconds"] == pytest.approx(row["seconds"])

    def test_old_payloads_without_kernels_still_load(self, tmp_path):
        import json

        payload = {
            "meta": {},
            "records": [
                {
                    "algorithm": "fdbscan", "dataset": "d", "n": 10, "eps": 0.1,
                    "min_samples": 5, "seconds": 0.5, "status": "ok",
                    "n_clusters": 1, "n_noise": 0, "dense_fraction": None,
                    "peak_bytes": 100, "counters": {},
                }
            ],
        }
        path = tmp_path / "old.json"
        path.write_text(json.dumps(payload))
        from repro.bench.history import load_records

        (rec,), _ = load_records(str(path))
        assert rec.kernels == {}
        assert rec.reused_index is False


class TestReport:
    def _records(self):
        return [
            RunRecord("fdbscan", "d", 100, 0.1, 5, seconds=0.5, status="ok"),
            RunRecord("fdbscan", "d", 200, 0.1, 5, seconds=1.0, status="ok"),
            RunRecord("gdbscan", "d", 100, 0.1, 5, seconds=0.2, status="ok"),
            RunRecord("gdbscan", "d", 200, 0.1, 5, status="oom"),
        ]

    def test_series_layout(self):
        out = format_series(self._records(), x_key="n", title="panel")
        lines = out.splitlines()
        assert lines[0] == "panel"
        assert "100" in lines[1] and "200" in lines[1]
        assert lines[2].startswith("fdbscan")
        assert "oom" in lines[3]

    def test_records_table(self):
        out = format_records(self._records())
        assert "algorithm" in out.splitlines()[0]
        assert len(out.splitlines()) == 2 + 4

    def test_empty_records(self):
        assert format_records([]) == "(no records)"

    def test_selected_columns(self):
        out = format_records(self._records(), columns=["algorithm", "seconds"])
        assert out.splitlines()[0].split() == ["algorithm", "seconds"]


class TestAsciiLogLog:
    def _scaling_records(self):
        from repro.bench.report import ascii_loglog  # noqa: F401

        return [
            RunRecord("fdbscan", "d", n, 0.1, 5, seconds=n / 1e4, status="ok")
            for n in (1024, 2048, 4096)
        ] + [
            RunRecord("gdbscan", "d", 1024, 0.1, 5, seconds=0.01, status="ok"),
            RunRecord("gdbscan", "d", 2048, 0.1, 5, status="oom"),
        ]

    def test_plot_contains_glyphs_and_legend(self):
        from repro.bench.report import ascii_loglog

        out = ascii_loglog(self._scaling_records(), x_key="n", title="scal")
        assert out.startswith("scal")
        assert "o=fdbscan" in out
        assert "x=gdbscan" in out
        assert "o" in out.splitlines()[3] or any("o" in l for l in out.splitlines())

    def test_failed_cells_absent(self):
        from repro.bench.report import ascii_loglog

        out = ascii_loglog(self._scaling_records(), x_key="n")
        # only one gdbscan point plotted (the oom cell is dropped)
        body = "\n".join(out.splitlines()[1:-2])
        assert body.count("x") == 1

    def test_empty(self):
        from repro.bench.report import ascii_loglog

        assert "no plottable" in ascii_loglog([], x_key="n", title="t")


class TestErrorCapture:
    def test_arbitrary_failure_becomes_error_cell(self):
        # a 5-D input breaks the tree algorithms' validation — the sweep
        # must record an error cell, not die
        rng = np.random.default_rng(0)
        X = rng.normal(size=(20, 5))
        rec = run_once("fdbscan", X, 0.5, 3)
        assert rec.status == "error"
        assert "ValueError" in rec.detail

    def test_error_does_not_abort_sweep(self):
        rng = np.random.default_rng(0)
        X5 = rng.normal(size=(20, 5))
        cells = [{"eps": 0.5, "min_samples": 3}]
        records = run_sweep(["fdbscan", "brute"], cells, lambda c: X5)
        statuses = {r.algorithm: r.status for r in records}
        assert statuses["fdbscan"] == "error"
        assert statuses["brute"] == "ok"  # baselines accept any d


class TestAsciiDensity:
    def test_basic_shape(self):
        from repro.bench.report import ascii_density

        rng = np.random.default_rng(0)
        out = ascii_density(rng.uniform(size=(500, 2)), width=40, height=10, title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 12  # title + 10 rows + axis line
        assert all(len(l) == 40 for l in lines[1:11])
        assert "n=500" in lines[-1]

    def test_dense_spot_renders_darker(self):
        from repro.bench.report import ascii_density

        rng = np.random.default_rng(1)
        clump = rng.normal(0.2, 0.005, size=(900, 2))
        spread = rng.uniform(0, 1, size=(100, 2))
        out = ascii_density(np.concatenate([clump, spread]), width=30, height=10)
        assert "@" in out

    def test_3d_projection_axes(self):
        from repro.bench.report import ascii_density

        rng = np.random.default_rng(2)
        X = rng.uniform(size=(200, 3))
        a = ascii_density(X, axes=(0, 1))
        b = ascii_density(X, axes=(0, 2))
        assert a != b

    def test_empty(self):
        from repro.bench.report import ascii_density

        assert "(no points)" in ascii_density(np.zeros((0, 2)), title="e")

    def test_degenerate_single_point(self):
        from repro.bench.report import ascii_density

        out = ascii_density(np.array([[1.0, 1.0]]))
        assert "n=1" in out


class TestCellRetries:
    """run_once with a retry policy and fault plan: transient device
    faults retry on a fresh device instead of recording an error cell."""

    def _plan(self, attempts=1):
        from repro.faults import FaultPlan, FaultSpec

        return FaultPlan(0, FaultSpec(p_device_fault=1.0, fault_attempts=attempts))

    def test_transient_fault_retried_to_ok(self, small_blobs):
        from repro.faults import RetryPolicy

        rec = run_once(
            "fdbscan", small_blobs, 0.2, 5, dataset="blobs",
            retry_policy=RetryPolicy(max_attempts=3), fault_plan=self._plan(),
        )
        assert rec.status == "ok"
        assert rec.attempts == 2
        assert rec.faults == 1
        assert rec.as_row()["retries"] == 1

    def test_without_policy_fault_records_failure(self, small_blobs):
        rec = run_once(
            "fdbscan", small_blobs, 0.2, 5, dataset="blobs", fault_plan=self._plan()
        )
        assert rec.status in ("oom", "error")
        assert rec.attempts == 1
        assert rec.faults == 1

    def test_budget_exhaustion_records_failure(self, small_blobs):
        from repro.faults import RetryPolicy

        rec = run_once(
            "fdbscan", small_blobs, 0.2, 5, dataset="blobs",
            retry_policy=RetryPolicy(max_attempts=2), fault_plan=self._plan(attempts=5),
        )
        assert rec.status in ("oom", "error")
        assert rec.attempts == 2

    def test_sweep_forwards_fault_machinery(self, small_blobs):
        from repro.faults import RetryPolicy

        records = run_sweep(
            ["fdbscan"],
            [{"eps": 0.2, "min_samples": 5}],
            lambda cell: small_blobs,
            dataset="blobs",
            retry_policy=RetryPolicy(max_attempts=3),
            fault_plan=self._plan(),
        )
        assert [r.status for r in records] == ["ok"]
        assert records[0].attempts == 2

    def test_attempts_roundtrip_through_history(self, small_blobs, tmp_path):
        from repro.bench.history import load_records, save_records
        from repro.faults import RetryPolicy

        rec = run_once(
            "fdbscan", small_blobs, 0.2, 5, dataset="blobs",
            retry_policy=RetryPolicy(max_attempts=3), fault_plan=self._plan(),
        )
        path = str(tmp_path / "records.json")
        save_records(path, [rec])
        loaded, _ = load_records(path)
        assert loaded[0].attempts == rec.attempts == 2
        assert loaded[0].faults == rec.faults == 1
