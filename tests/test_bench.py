"""Tests for the benchmark harness and reporting."""

import numpy as np
import pytest

from repro.bench.harness import RunRecord, run_once, run_sweep
from repro.bench.report import format_records, format_series
from repro.datasets import gaussian_blobs


@pytest.fixture(scope="module")
def small_blobs():
    return gaussian_blobs(300, centers=3, std=0.05, seed=0)


class TestRunOnce:
    def test_ok_record(self, small_blobs):
        rec = run_once("fdbscan", small_blobs, 0.2, 5, dataset="blobs")
        assert rec.status == "ok"
        assert rec.seconds > 0
        assert rec.n_clusters == 3
        assert rec.counters["distance_evals"] > 0
        assert rec.peak_bytes > 0

    def test_oom_record(self):
        rng = np.random.default_rng(0)
        X = rng.normal(0, 0.01, size=(400, 2))
        rec = run_once("gdbscan", X, 0.5, 5, capacity_bytes=1000)
        assert rec.status == "oom"
        assert "OOM" in rec.detail or "capacity" in rec.detail

    def test_fresh_device_per_run(self, small_blobs):
        a = run_once("fdbscan", small_blobs, 0.2, 5)
        b = run_once("fdbscan", small_blobs, 0.2, 5)
        assert a.counters["distance_evals"] == b.counters["distance_evals"]

    def test_as_row_keys(self, small_blobs):
        row = run_once("fdbscan", small_blobs, 0.2, 5).as_row()
        assert {"algorithm", "seconds", "status", "clusters"} <= set(row)


class TestRunSweep:
    def test_full_grid(self, small_blobs):
        cells = [{"eps": 0.2, "min_samples": m} for m in (3, 5)]
        records = run_sweep(
            ["fdbscan", "densebox"], cells, lambda c: small_blobs, dataset="blobs"
        )
        assert len(records) == 4
        assert all(r.status == "ok" for r in records)

    def test_time_budget_skips(self, small_blobs):
        cells = [{"eps": 0.2, "min_samples": m} for m in (3, 4, 5)]
        records = run_sweep(
            ["fdbscan"], cells, lambda c: small_blobs, time_budget=0.0
        )
        # first cell runs (and busts the budget), the rest are skipped
        assert records[0].status == "ok"
        assert all(r.status == "skipped" for r in records[1:])

    def test_oom_does_not_abort_sweep(self):
        # G-DBSCAN's persistent adjacency graph busts the cap; FDBSCAN with
        # a bounded wavefront chunk stays under it.
        rng = np.random.default_rng(1)
        X = rng.normal(0, 0.01, size=(300, 2))
        cells = [{"eps": 0.5, "min_samples": 5}]
        records = run_sweep(
            ["gdbscan", "fdbscan"],
            cells,
            lambda c: X,
            capacity_bytes=400_000,
            tree_kwargs={"chunk_size": 16},
        )
        statuses = {r.algorithm: r.status for r in records}
        assert statuses["gdbscan"] == "oom"
        assert statuses["fdbscan"] == "ok"


class TestReport:
    def _records(self):
        return [
            RunRecord("fdbscan", "d", 100, 0.1, 5, seconds=0.5, status="ok"),
            RunRecord("fdbscan", "d", 200, 0.1, 5, seconds=1.0, status="ok"),
            RunRecord("gdbscan", "d", 100, 0.1, 5, seconds=0.2, status="ok"),
            RunRecord("gdbscan", "d", 200, 0.1, 5, status="oom"),
        ]

    def test_series_layout(self):
        out = format_series(self._records(), x_key="n", title="panel")
        lines = out.splitlines()
        assert lines[0] == "panel"
        assert "100" in lines[1] and "200" in lines[1]
        assert lines[2].startswith("fdbscan")
        assert "oom" in lines[3]

    def test_records_table(self):
        out = format_records(self._records())
        assert "algorithm" in out.splitlines()[0]
        assert len(out.splitlines()) == 2 + 4

    def test_empty_records(self):
        assert format_records([]) == "(no records)"

    def test_selected_columns(self):
        out = format_records(self._records(), columns=["algorithm", "seconds"])
        assert out.splitlines()[0].split() == ["algorithm", "seconds"]


class TestAsciiLogLog:
    def _scaling_records(self):
        from repro.bench.report import ascii_loglog  # noqa: F401

        return [
            RunRecord("fdbscan", "d", n, 0.1, 5, seconds=n / 1e4, status="ok")
            for n in (1024, 2048, 4096)
        ] + [
            RunRecord("gdbscan", "d", 1024, 0.1, 5, seconds=0.01, status="ok"),
            RunRecord("gdbscan", "d", 2048, 0.1, 5, status="oom"),
        ]

    def test_plot_contains_glyphs_and_legend(self):
        from repro.bench.report import ascii_loglog

        out = ascii_loglog(self._scaling_records(), x_key="n", title="scal")
        assert out.startswith("scal")
        assert "o=fdbscan" in out
        assert "x=gdbscan" in out
        assert "o" in out.splitlines()[3] or any("o" in l for l in out.splitlines())

    def test_failed_cells_absent(self):
        from repro.bench.report import ascii_loglog

        out = ascii_loglog(self._scaling_records(), x_key="n")
        # only one gdbscan point plotted (the oom cell is dropped)
        body = "\n".join(out.splitlines()[1:-2])
        assert body.count("x") == 1

    def test_empty(self):
        from repro.bench.report import ascii_loglog

        assert "no plottable" in ascii_loglog([], x_key="n", title="t")


class TestErrorCapture:
    def test_arbitrary_failure_becomes_error_cell(self):
        # a 5-D input breaks the tree algorithms' validation — the sweep
        # must record an error cell, not die
        rng = np.random.default_rng(0)
        X = rng.normal(size=(20, 5))
        rec = run_once("fdbscan", X, 0.5, 3)
        assert rec.status == "error"
        assert "ValueError" in rec.detail

    def test_error_does_not_abort_sweep(self):
        rng = np.random.default_rng(0)
        X5 = rng.normal(size=(20, 5))
        cells = [{"eps": 0.5, "min_samples": 3}]
        records = run_sweep(["fdbscan", "brute"], cells, lambda c: X5)
        statuses = {r.algorithm: r.status for r in records}
        assert statuses["fdbscan"] == "error"
        assert statuses["brute"] == "ok"  # baselines accept any d


class TestAsciiDensity:
    def test_basic_shape(self):
        from repro.bench.report import ascii_density

        rng = np.random.default_rng(0)
        out = ascii_density(rng.uniform(size=(500, 2)), width=40, height=10, title="t")
        lines = out.splitlines()
        assert lines[0] == "t"
        assert len(lines) == 12  # title + 10 rows + axis line
        assert all(len(l) == 40 for l in lines[1:11])
        assert "n=500" in lines[-1]

    def test_dense_spot_renders_darker(self):
        from repro.bench.report import ascii_density

        rng = np.random.default_rng(1)
        clump = rng.normal(0.2, 0.005, size=(900, 2))
        spread = rng.uniform(0, 1, size=(100, 2))
        out = ascii_density(np.concatenate([clump, spread]), width=30, height=10)
        assert "@" in out

    def test_3d_projection_axes(self):
        from repro.bench.report import ascii_density

        rng = np.random.default_rng(2)
        X = rng.uniform(size=(200, 3))
        a = ascii_density(X, axes=(0, 1))
        b = ascii_density(X, axes=(0, 2))
        assert a != b

    def test_empty(self):
        from repro.bench.report import ascii_density

        assert "(no points)" in ascii_density(np.zeros((0, 2)), title="e")

    def test_degenerate_single_point(self):
        from repro.bench.report import ascii_density

        out = ascii_density(np.array([[1.0, 1.0]]))
        assert "n=1" in out
