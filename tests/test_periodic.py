"""Tests for periodic-boundary DBSCAN against a min-image brute oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.periodic import periodic_dbscan, periodic_images
from repro.metrics.equivalence import partitions_equal


def _periodic_brute(X, eps, minpts, box):
    """Min-image-convention DBSCAN oracle (core partition + noise)."""
    n, d = X.shape
    box = np.broadcast_to(np.asarray(box, dtype=np.float64), (d,))
    diff = np.abs(X[:, None, :] - X[None, :, :])
    diff = np.minimum(diff, box - diff)
    adj = np.einsum("ijk,ijk->ij", diff, diff) <= eps * eps
    core = adj.sum(axis=1) >= minpts
    # components of core-core subgraph
    comp = np.arange(n)
    comp[~core] = -1
    core_adj = adj & core[None, :] & core[:, None]
    while True:
        padded = np.where(core_adj, comp[None, :], np.iinfo(np.int64).max)
        new = np.minimum(comp, padded.min(axis=1))
        new[~core] = -1
        if np.array_equal(new, comp):
            break
        comp = new
    border_adj = adj & core[None, :] & ~core[:, None]
    has = border_adj.any(axis=1)
    first = np.argmax(border_adj, axis=1)
    comp[has & ~core] = comp[first[has & ~core]]
    return comp, core


class TestPeriodicImages:
    def test_interior_points_make_no_images(self):
        X = np.full((10, 2), 0.5)
        images, source = periodic_images(X, 1.0, 0.1)
        assert images.shape == (0, 2)
        assert source.shape == (0,)

    def test_face_point_one_image(self):
        X = np.array([[0.05, 0.5]])
        images, source = periodic_images(X, 1.0, 0.1)
        assert images.shape == (1, 2)
        np.testing.assert_allclose(images[0], [1.05, 0.5])
        assert source[0] == 0

    def test_corner_point_three_images_2d(self):
        X = np.array([[0.05, 0.05]])
        images, _ = periodic_images(X, 1.0, 0.1)
        assert images.shape == (3, 2)
        got = {tuple(np.round(i, 6)) for i in images}
        assert got == {(1.05, 0.05), (0.05, 1.05), (1.05, 1.05)}

    def test_corner_point_seven_images_3d(self):
        X = np.array([[0.02, 0.02, 0.98]])
        images, _ = periodic_images(X, 1.0, 0.05)
        assert images.shape == (7, 3)

    def test_eps_too_large_rejected(self):
        with pytest.raises(ValueError, match="too large"):
            periodic_images(np.full((3, 2), 0.5), 1.0, 0.5)

    def test_out_of_box_rejected(self):
        with pytest.raises(ValueError, match="lie in"):
            periodic_images(np.array([[1.0, 0.5]]), 1.0, 0.1)

    def test_anisotropic_box(self):
        X = np.array([[0.05, 1.5]])
        images, _ = periodic_images(X, np.array([1.0, 4.0]), 0.1)
        assert images.shape == (1, 2)  # near x-low face only


class TestPeriodicDbscan:
    def test_cluster_wrapping_one_face(self):
        # A clump straddling the x boundary: one cluster under the
        # periodic metric, two under the plain metric.
        rng = np.random.default_rng(0)
        X = np.concatenate(
            [
                np.column_stack([rng.uniform(0, 0.03, 40), rng.uniform(0.4, 0.6, 40)]),
                np.column_stack([rng.uniform(0.97, 1.0, 40), rng.uniform(0.4, 0.6, 40)]),
            ]
        )
        from repro import dbscan

        plain = dbscan(X, 0.08, 5, algorithm="fdbscan")
        wrapped = periodic_dbscan(X, 0.08, 5, box_size=1.0, algorithm="fdbscan")
        assert plain.n_clusters == 2
        assert wrapped.n_clusters == 1

    def test_cluster_wrapping_corner(self):
        rng = np.random.default_rng(1)
        quadrant = rng.uniform(0, 0.04, size=(30, 2))
        X = np.concatenate(
            [
                quadrant,
                1.0 - rng.uniform(0, 0.04, size=(30, 2)),
                np.column_stack([rng.uniform(0, 0.04, 30), 1.0 - rng.uniform(0, 0.04, 30)]),
                np.column_stack([1.0 - rng.uniform(0, 0.04, 30), rng.uniform(0, 0.04, 30)]),
            ]
        )
        res = periodic_dbscan(X, 0.12, 5, box_size=1.0)
        assert res.n_clusters == 1

    @pytest.mark.parametrize("minpts", [2, 5, 10])
    def test_matches_min_image_oracle(self, minpts):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, size=(250, 2))
        eps = 0.08
        res = periodic_dbscan(X, eps, minpts, box_size=1.0, algorithm="fdbscan")
        comp, core = _periodic_brute(X, eps, minpts, 1.0)
        np.testing.assert_array_equal(res.is_core, core)
        np.testing.assert_array_equal(res.labels == -1, comp == -1)
        assert partitions_equal(res.labels, comp, core)

    def test_3d_oracle(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 2, size=(200, 3))
        res = periodic_dbscan(X, 0.3, 4, box_size=2.0, algorithm="densebox")
        comp, core = _periodic_brute(X, 0.3, 4, 2.0)
        np.testing.assert_array_equal(res.is_core, core)
        np.testing.assert_array_equal(res.labels == -1, comp == -1)
        assert partitions_equal(res.labels, comp, core)

    def test_interior_data_matches_plain_dbscan(self, rng):
        # Data far from every face: periodic == plain.
        from repro import dbscan
        from repro.metrics import assert_dbscan_equivalent

        X = 0.4 + 0.2 * rng.random((200, 2))
        plain = dbscan(X, 0.03, 5, algorithm="fdbscan")
        wrapped = periodic_dbscan(X, 0.03, 5, box_size=1.0, algorithm="fdbscan")
        assert_dbscan_equivalent(plain, wrapped, X, 0.03)

    def test_no_bridging_through_wrapped_border(self):
        # Two dense walls near opposite faces plus a mid-gap border point:
        # under the periodic metric the walls are within reach of the
        # border point's images but not of each other.
        left = np.column_stack([np.full(30, 0.104), np.linspace(0.4, 0.6, 30)])
        right = np.column_stack([np.full(30, 0.896), np.linspace(0.4, 0.6, 30)])
        lone = np.array([[0.0, 0.5]])  # 0.104 from left, 0.104 from right (wrapped)
        X = np.concatenate([left, right, lone])
        res = periodic_dbscan(X, 0.105, 10, box_size=1.0)
        comp, core = _periodic_brute(X, 0.105, 10, 1.0)
        np.testing.assert_array_equal(res.is_core, core)
        assert not res.is_core[-1]
        assert res.n_clusters == 2  # the lone border point joins one side
        assert res.labels[-1] >= 0

    def test_info_fields(self, rng):
        X = rng.uniform(0, 1, size=(100, 2))
        res = periodic_dbscan(X, 0.05, 3, box_size=1.0)
        assert res.info["variant"] == "periodic"
        assert res.info["n"] == 100
        assert res.info["n_images"] >= 0

    @given(st.integers(0, 3000), st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_oracle_property(self, seed, minpts):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 1, size=(rng.integers(20, 150), 2))
        eps = 0.09
        res = periodic_dbscan(X, eps, minpts, box_size=1.0, algorithm="fdbscan")
        comp, core = _periodic_brute(X, eps, minpts, 1.0)
        np.testing.assert_array_equal(res.is_core, core)
        np.testing.assert_array_equal(res.labels == -1, comp == -1)
        assert partitions_equal(res.labels, comp, core)
