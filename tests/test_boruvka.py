"""BVH-Borůvka mutual-reachability MST vs the retained Prim's baseline.

The exchange property guarantees every MST of a graph has the same sorted
weight multiset, and this repository's Borůvka breaks weight ties by the
strict total order ``(w, min(a, b), max(a, b))`` — so the tests can (and
do) demand *bit-equality*: identical sorted weights, identical
single-linkage dendrogram heights, identical edge sets across traversal
engines and scheduling knobs.  The pruning claim is asserted directly on
the kernel counters: the Borůvka traversal's distance evaluations must
stay a small fraction of Prim's unconditional ``n * (n - 1)``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh.aabb import boxes_from_points
from repro.bvh.builder import build_bvh
from repro.bvh.knn import core_distances
from repro.device.device import Device
from repro.hierarchy import (
    MST_ALGORITHMS,
    dbscan_star_cut,
    hdbscan,
    mutual_reachability_mst,
    mutual_reachability_mst_boruvka,
    single_linkage_dendrogram,
)
from repro.hierarchy.boruvka import _ladder_up, _refresh_node_components
from repro.metrics import partitions_equal


@pytest.fixture
def rng():
    return np.random.default_rng(11)


def _tree_over(pts, device=None):
    lo, hi = boxes_from_points(pts)
    return build_bvh(lo, hi, device=device)


def _clustered(rng, n, d=2, n_blobs=4):
    centers = rng.uniform(0, 10, (n_blobs, d))
    return np.vstack(
        [rng.normal(c, 0.3, (n // n_blobs, d)) for c in centers]
    )


def _normalised_edges(mst):
    """Edge rows as (w, min, max) sorted by the strict total order —
    the canonical form two equal MSTs must agree on exactly."""
    a, b, w = mst[:, 0], mst[:, 1], mst[:, 2]
    u, v = np.minimum(a, b), np.maximum(a, b)
    rows = np.column_stack([w, u, v])
    return rows[np.lexsort((v, u, w))]


def _both_msts(X, minpts, **boruvka_kwargs):
    tree = _tree_over(X)
    core = core_distances(tree, X, minpts)
    ref = mutual_reachability_mst(X, core)
    got = mutual_reachability_mst_boruvka(X, core, tree=tree, **boruvka_kwargs)
    return ref, got


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("minpts", [3, 8])
    def test_weights_bit_equal(self, seed, minpts):
        rng = np.random.default_rng(seed)
        X = _clustered(rng, 160)
        ref, got = _both_msts(X, minpts)
        assert got.shape == ref.shape == (X.shape[0] - 1, 3)
        np.testing.assert_array_equal(np.sort(got[:, 2]), np.sort(ref[:, 2]))

    @pytest.mark.parametrize("seed", range(3))
    def test_dendrogram_heights_bit_equal(self, seed):
        rng = np.random.default_rng(seed)
        X = _clustered(rng, 120)
        n = X.shape[0]
        ref, got = _both_msts(X, 5)
        Z_ref = single_linkage_dendrogram(ref, n)
        Z_got = single_linkage_dendrogram(got, n)
        np.testing.assert_array_equal(Z_got[:, 2], Z_ref[:, 2])

    def test_unique_mst_edge_set(self, rng):
        # with zero cores the weights are pairwise Euclidean distances —
        # distinct on random float data, so the MST is *unique* and the
        # edge set itself (not just the weights) must agree.  (Non-zero
        # cores tie many weights at max(core_u, core_v); there only the
        # weight multiset is canonical.)
        X = rng.uniform(0, 1, (150, 2))
        core = np.zeros(X.shape[0])
        ref = mutual_reachability_mst(X, core)
        got = mutual_reachability_mst_boruvka(X, core)
        np.testing.assert_array_equal(_normalised_edges(got), _normalised_edges(ref))

    def test_3d(self, rng):
        X = _clustered(rng, 120, d=3)
        ref, got = _both_msts(X, 5)
        np.testing.assert_array_equal(np.sort(got[:, 2]), np.sort(ref[:, 2]))

    def test_duplicates(self, rng):
        # exact duplicates across components force zero-radius searches
        base = rng.normal(0, 1, (30, 2))
        X = np.vstack([base, base, rng.normal(5, 0.2, (40, 2))])
        ref, got = _both_msts(X, 5)
        np.testing.assert_array_equal(np.sort(got[:, 2]), np.sort(ref[:, 2]))

    def test_collinear(self, rng):
        X = np.column_stack([np.sort(rng.uniform(0, 10, 90)), np.full(90, 2.0)])
        ref, got = _both_msts(X, 4)
        np.testing.assert_array_equal(np.sort(got[:, 2]), np.sort(ref[:, 2]))

    @pytest.mark.parametrize("traversal", ["single", "dual"])
    @pytest.mark.parametrize("query_order", ["input", "morton"])
    def test_scheduling_invariance(self, rng, traversal, query_order):
        X = _clustered(rng, 140)
        tree = _tree_over(X)
        core = core_distances(tree, X, 5)
        base = mutual_reachability_mst_boruvka(X, core, tree=tree)
        got = mutual_reachability_mst_boruvka(
            X, core, tree=tree, traversal=traversal,
            query_order=query_order, chunk_size=64,
        )
        np.testing.assert_array_equal(_normalised_edges(got), _normalised_edges(base))

    @settings(deadline=None, max_examples=12)
    @given(seed=st.integers(0, 10_000), minpts=st.integers(2, 6))
    def test_random_seed_property(self, seed, minpts):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(minpts + 1, 80))
        X = rng.uniform(0, 4, (n, int(rng.integers(1, 4))))
        ref, got = _both_msts(X, minpts)
        np.testing.assert_array_equal(np.sort(got[:, 2]), np.sort(ref[:, 2]))


class TestValidationAndEdges:
    def test_empty_and_single_point(self):
        out = mutual_reachability_mst_boruvka(
            np.zeros((1, 2)), np.zeros(1)
        )
        assert out.shape == (0, 3)

    def test_two_points(self):
        X = np.array([[0.0, 0.0], [3.0, 4.0]])
        out = mutual_reachability_mst_boruvka(X, np.zeros(2))
        assert out.shape == (1, 3)
        assert out[0, 2] == 5.0

    def test_core_dist_shape_checked(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match="core_dist"):
            mutual_reachability_mst_boruvka(X, np.zeros(9))

    def test_tree_primitive_count_checked(self, rng):
        X = rng.normal(size=(10, 2))
        wrong = _tree_over(X[:6])
        with pytest.raises(ValueError, match="primitives"):
            mutual_reachability_mst_boruvka(X, np.zeros(10), tree=wrong)

    def test_mst_algorithms_registry(self):
        assert set(MST_ALGORITHMS) == {"boruvka", "prim"}

    def test_unknown_mst_algorithm_raises(self, rng):
        X = rng.normal(size=(30, 2))
        with pytest.raises(ValueError, match="mst_algorithm"):
            hdbscan(X, min_cluster_size=3, mst_algorithm="kruskal")


class TestPruning:
    def test_distance_evals_fraction_of_prim(self, rng):
        n = 600
        X = _clustered(rng, n)
        dev = Device()
        tree = _tree_over(X, device=dev)
        core = core_distances(tree, X, 5, device=dev)
        mutual_reachability_mst_boruvka(X, core, tree=tree, device=dev)
        evals = dev.profile()["boruvka_nn"]["counters"]["distance_evals"]
        assert evals <= 0.25 * n * (n - 1)

    def test_rounds_logarithmic(self, rng):
        X = _clustered(rng, 256)
        dev = Device()
        tree = _tree_over(X, device=dev)
        core = core_distances(tree, X, 5, device=dev)
        mutual_reachability_mst_boruvka(X, core, tree=tree, device=dev)
        rounds = dev.counters.snapshot()["boruvka_rounds"]
        # components at least halve per round
        assert 1 <= rounds <= int(np.log2(256)) + 2
        assert dev.profile()["boruvka_mst"]["steps"] == rounds

    def test_masked_traversal_skips_same_component(self, rng):
        # a single well-separated pair of blobs: after round one, every
        # in-blob subtree is uniform and the second round's traversal
        # must not pay distance tests for it
        X = np.vstack(
            [rng.normal((0, 0), 0.05, (64, 2)), rng.normal((9, 9), 0.05, (64, 2))]
        )
        ref, got = _both_msts(X, 5)
        np.testing.assert_array_equal(np.sort(got[:, 2]), np.sort(ref[:, 2]))


class TestHelpers:
    def test_ladder_up_round_trip(self):
        anchor = 0.375
        vals = anchor * np.exp2(np.array([-3.0, 0.0, 2.0, 7.0]))
        np.testing.assert_array_equal(_ladder_up(vals, anchor), vals)

    def test_ladder_up_bounds(self, rng):
        anchor = 0.7
        vals = rng.uniform(1e-6, 1e3, 256)
        out = _ladder_up(vals, anchor)
        assert np.all(out >= vals)
        assert np.all(out < 2.0 * vals)

    def test_ladder_up_zeros_stay_zero(self):
        out = _ladder_up(np.array([0.0, 1.0]), 0.5)
        assert out[0] == 0.0 and out[1] > 0

    def test_refresh_node_components(self, rng):
        X = rng.uniform(0, 1, (32, 2))
        tree = _tree_over(X)
        node_comp = np.empty(tree.node_lo.shape[0], dtype=np.int64)
        # all one component: every node summarises to it
        _refresh_node_components(tree, np.zeros(32, dtype=np.int64), node_comp)
        assert np.all(node_comp == 0)
        # all distinct: every internal node (>= 2 leaves) is mixed
        comp = np.arange(32, dtype=np.int64)
        _refresh_node_components(tree, comp, node_comp)
        np.testing.assert_array_equal(
            node_comp[tree.n_internal:], comp[tree.order]
        )
        assert np.all(node_comp[: tree.n_internal] == -1)


class TestPipelineIntegration:
    def test_hdbscan_engines_agree(self, rng):
        X = _clustered(rng, 200, n_blobs=3)
        fast = hdbscan(X, min_cluster_size=10)
        ref = hdbscan(X, min_cluster_size=10, mst_algorithm="prim")
        assert fast.info["mst_algorithm"] == "boruvka"
        assert ref.info["mst_algorithm"] == "prim"
        everyone = np.ones(X.shape[0], dtype=bool)
        assert partitions_equal(fast.labels, ref.labels, everyone)
        np.testing.assert_allclose(fast.probabilities, ref.probabilities)

    def test_dbscan_star_cut_engines_agree(self, rng):
        X = _clustered(rng, 160)
        fast = dbscan_star_cut(X, 0.6, 5)
        ref = dbscan_star_cut(X, 0.6, 5, mst_algorithm="prim")
        np.testing.assert_array_equal(fast, ref)
