"""Direct tests for the shared input-validation contract."""

import numpy as np
import pytest

from repro.core.validation import MAX_TREE_DIM, validate_params, validate_points


class TestValidatePoints:
    def test_returns_contiguous_float64(self):
        X = np.asfortranarray(np.arange(12, dtype=np.float32).reshape(6, 2))
        out = validate_points(X)
        assert out.dtype == np.float64
        assert out.flags["C_CONTIGUOUS"]

    def test_accepts_lists(self):
        out = validate_points([[0, 1], [2, 3]])
        assert out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            validate_points(np.zeros(5))

    def test_rejects_3d_array(self):
        with pytest.raises(ValueError, match="2-D"):
            validate_points(np.zeros((2, 2, 2)))

    def test_rejects_empty_rows(self):
        with pytest.raises(ValueError, match="at least one point"):
            validate_points(np.zeros((0, 3)))

    def test_rejects_zero_features(self):
        with pytest.raises(ValueError, match="feature"):
            validate_points(np.zeros((3, 0)))

    def test_tree_dim_cap(self):
        with pytest.raises(ValueError, match=f"d <= {MAX_TREE_DIM}"):
            validate_points(np.zeros((3, MAX_TREE_DIM + 1)))

    def test_dim_cap_liftable(self):
        out = validate_points(np.zeros((3, 7)), max_dim=None)
        assert out.shape == (3, 7)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_nonfinite(self, bad):
        X = np.zeros((2, 2))
        X[1, 1] = bad
        with pytest.raises(ValueError, match="non-finite"):
            validate_points(X)


class TestValidateParams:
    def test_canonical_types(self):
        eps, minpts = validate_params(np.float32(0.5), np.int32(3))
        assert isinstance(eps, float)
        assert isinstance(minpts, int)

    def test_integral_float_minpts_ok(self):
        assert validate_params(1.0, 4.0) == (1.0, 4)

    def test_fractional_minpts_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            validate_params(1.0, 4.5)

    @pytest.mark.parametrize("bad", [0.0, -0.1, np.nan, np.inf])
    def test_bad_eps(self, bad):
        with pytest.raises(ValueError, match="eps"):
            validate_params(bad, 3)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_bad_minpts(self, bad):
        with pytest.raises(ValueError, match="min_samples"):
            validate_params(0.5, bad)
