"""Correctness tests for batched BVH traversal: completeness vs brute
force, early termination, the leaf-index mask, and chunking invariance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh.aabb import boxes_from_points
from repro.bvh.builder import build_bvh
from repro.bvh.traversal import count_within, for_each_leaf_hit
from repro.device.device import Device

from tests.conftest import brute_neighbor_counts, brute_pairs


def _tree_over(pts):
    lo, hi = boxes_from_points(pts)
    return build_bvh(lo, hi)


def _collect_pairs(tree, pts, eps, **kw):
    pairs = []

    def cb(q, pos):
        nbr = tree.order[pos]
        pairs.extend(zip(q.tolist(), nbr.tolist()))

    result = for_each_leaf_hit(tree, pts, eps, cb, **kw)
    return pairs, result


class TestCountWithin:
    @pytest.mark.parametrize("d", [1, 2, 3])
    @pytest.mark.parametrize("eps", [0.05, 0.2, 0.7])
    def test_counts_match_brute_force(self, d, eps):
        rng = np.random.default_rng(d * 100)
        pts = rng.uniform(0, 1, size=(150, d))
        tree = _tree_over(pts)
        counts = count_within(tree, pts, eps)
        np.testing.assert_array_equal(counts, brute_neighbor_counts(pts, eps))

    def test_external_queries(self):
        rng = np.random.default_rng(7)
        pts = rng.uniform(0, 1, size=(100, 2))
        queries = rng.uniform(-0.5, 1.5, size=(40, 2))
        tree = _tree_over(pts)
        counts = count_within(tree, queries, 0.15)
        diff = queries[:, None, :] - pts[None, :, :]
        expected = (np.einsum("ijk,ijk->ij", diff, diff) <= 0.15**2).sum(axis=1)
        np.testing.assert_array_equal(counts, expected)

    def test_every_point_counts_itself(self):
        rng = np.random.default_rng(8)
        pts = rng.uniform(0, 1, size=(60, 2))
        tree = _tree_over(pts)
        counts = count_within(tree, pts, 1e-12)
        assert (counts >= 1).all()

    def test_early_exit_truncates_at_threshold(self):
        rng = np.random.default_rng(9)
        pts = rng.normal(0, 0.01, size=(300, 2))  # everything neighbours everything
        tree = _tree_over(pts)
        full = count_within(tree, pts, 1.0)
        assert (full == 300).all()
        capped = count_within(tree, pts, 1.0, stop_at=10)
        assert (capped >= 10).all()
        assert capped.sum() < full.sum()  # actually terminated early

    def test_early_exit_agrees_on_core_decision(self):
        rng = np.random.default_rng(10)
        pts = np.concatenate(
            [rng.normal(0, 0.05, (100, 2)), rng.uniform(-3, 3, (100, 2))]
        )
        tree = _tree_over(pts)
        minpts = 8
        exact = count_within(tree, pts, 0.2) >= minpts
        early = count_within(tree, pts, 0.2, stop_at=minpts) >= minpts
        np.testing.assert_array_equal(exact, early)

    def test_early_exit_reduces_node_visits(self):
        rng = np.random.default_rng(11)
        pts = rng.normal(0, 0.01, size=(400, 2))
        tree = _tree_over(pts)
        dev_full, dev_early = Device(), Device()
        count_within(tree, pts, 1.0, device=dev_full)
        count_within(tree, pts, 1.0, stop_at=5, device=dev_early)
        assert dev_early.counters.nodes_visited < dev_full.counters.nodes_visited

    def test_stop_at_zero_rejected(self):
        tree = _tree_over(np.zeros((3, 2)))
        with pytest.raises(ValueError, match="stop_at"):
            count_within(tree, np.zeros((3, 2)), 0.1, stop_at=0)

    def test_stop_at_non_finite_rejected(self):
        tree = _tree_over(np.zeros((3, 2)))
        for bad in (float("inf"), float("nan")):
            with pytest.raises(ValueError, match="stop_at"):
                count_within(tree, np.zeros((3, 2)), 0.1, stop_at=bad)

    def test_single_primitive_tree(self):
        tree = _tree_over(np.array([[0.5, 0.5]]))
        counts = count_within(tree, np.array([[0.5, 0.5], [2.0, 2.0]]), 0.1)
        np.testing.assert_array_equal(counts, [1, 0])

    def test_zero_queries(self):
        tree = _tree_over(np.zeros((3, 2)))
        assert count_within(tree, np.zeros((0, 2)), 0.1).shape == (0,)


class TestWeightedEarlyExit:
    """The early-exit contract for weighted counts: a returned value
    ``>= stop_at`` means "at least this many" (the query short-cut);
    values below ``stop_at`` are exact."""

    def _weighted_setup(self, n=40, weight=1.25, seed=13):
        # a tight clump: every point neighbours every other at eps=1
        rng = np.random.default_rng(seed)
        pts = rng.normal(0, 0.01, size=(n, 2))
        tree = _tree_over(pts)
        weights = np.full(n, weight)
        return pts, tree, weights[tree.order]

    def test_weights_summing_exactly_to_stop_at_terminate(self):
        # regression: 4 neighbours x 1.25 = 5.0 exactly — reaching
        # stop_at must terminate (>=, not >) and must not under-report
        # the threshold decision
        pts, tree, leaf_w = self._weighted_setup(n=4, weight=1.25)
        minpts = 5
        exact = count_within(tree, pts, 1.0, leaf_weights=leaf_w)
        np.testing.assert_allclose(exact, 5.0)
        early = count_within(tree, pts, 1.0, stop_at=minpts, leaf_weights=leaf_w)
        assert (early >= minpts).all()
        np.testing.assert_array_equal(early >= minpts, exact >= minpts)

    def test_weighted_early_exit_is_lower_bound(self):
        pts, tree, leaf_w = self._weighted_setup(n=300, weight=1.25)
        exact = count_within(tree, pts, 1.0, leaf_weights=leaf_w)
        early = count_within(tree, pts, 1.0, stop_at=10, leaf_weights=leaf_w)
        assert (early >= 10).all()
        assert (early <= exact).all()
        assert early.sum() < exact.sum()  # actually terminated early

    def test_weighted_counts_below_stop_at_are_exact(self):
        rng = np.random.default_rng(14)
        pts = rng.uniform(0, 1, size=(120, 2))
        tree = _tree_over(pts)
        w = rng.uniform(0.5, 2.0, size=120)
        exact = count_within(tree, pts, 0.1, leaf_weights=w[tree.order])
        early = count_within(tree, pts, 0.1, stop_at=50.0, leaf_weights=w[tree.order])
        below = exact < 50.0
        assert below.any()
        np.testing.assert_allclose(early[below], exact[below])

    def test_fractional_stop_at_with_weights(self):
        pts, tree, leaf_w = self._weighted_setup(n=30, weight=0.5)
        threshold = 2.75  # meaningful for weighted counts: 6 x 0.5 > 2.75
        early = count_within(tree, pts, 1.0, stop_at=threshold, leaf_weights=leaf_w)
        exact = count_within(tree, pts, 1.0, leaf_weights=leaf_w)
        np.testing.assert_array_equal(early >= threshold, exact >= threshold)

    def test_fractional_stop_at_unweighted_acts_as_ceiling(self):
        rng = np.random.default_rng(15)
        pts = rng.normal(0, 0.01, size=(50, 2))
        tree = _tree_over(pts)
        exact = count_within(tree, pts, 1.0)
        early = count_within(tree, pts, 1.0, stop_at=4.5)
        # integer counts cross 4.5 at 5: the decision matches exact counts
        np.testing.assert_array_equal(early >= 4.5, exact >= 4.5)
        assert (early[early >= 4.5] >= 5).all()


class TestLeafHits:
    def test_unmasked_pairs_are_symmetric_and_complete(self):
        rng = np.random.default_rng(20)
        pts = rng.uniform(0, 1, size=(80, 2))
        tree = _tree_over(pts)
        pairs, _ = _collect_pairs(tree, pts, 0.2)
        got = {(q, n) for q, n in pairs if q != n}
        expected = set()
        for i, j in brute_pairs(pts, 0.2):
            expected.add((i, j))
            expected.add((j, i))
        assert got == expected
        # self-hits present exactly once per point
        self_hits = [(q, n) for q, n in pairs if q == n]
        assert len(self_hits) == 80

    def test_masked_pairs_each_edge_once(self):
        rng = np.random.default_rng(21)
        pts = rng.uniform(0, 1, size=(120, 2))
        tree = _tree_over(pts)
        pairs, _ = _collect_pairs(tree, pts, 0.15, mask_positions=tree.position)
        # no duplicates, no self-pairs
        assert len(pairs) == len(set(pairs))
        assert all(q != n for q, n in pairs)
        got = {frozenset(p) for p in pairs}
        expected = {frozenset(p) for p in brute_pairs(pts, 0.15)}
        assert got == expected

    def test_mask_halves_pair_traffic(self):
        rng = np.random.default_rng(22)
        pts = rng.uniform(0, 1, size=(150, 2))
        tree = _tree_over(pts)
        unmasked, _ = _collect_pairs(tree, pts, 0.2)
        masked, _ = _collect_pairs(tree, pts, 0.2, mask_positions=tree.position)
        non_self = [p for p in unmasked if p[0] != p[1]]
        assert len(masked) * 2 == len(non_self)

    def test_mask_reduces_node_visits(self):
        rng = np.random.default_rng(23)
        pts = rng.uniform(0, 1, size=(300, 2))
        tree = _tree_over(pts)
        dev_u, dev_m = Device(), Device()
        _collect_pairs(tree, pts, 0.2, device=dev_u)
        _collect_pairs(tree, pts, 0.2, mask_positions=tree.position, device=dev_m)
        assert dev_m.counters.nodes_visited < dev_u.counters.nodes_visited

    @pytest.mark.parametrize("chunk", [1, 7, 64, None])
    def test_chunking_invariance(self, chunk):
        rng = np.random.default_rng(24)
        pts = rng.uniform(0, 1, size=(90, 2))
        tree = _tree_over(pts)
        base, _ = _collect_pairs(tree, pts, 0.25, chunk_size=None)
        chunked, _ = _collect_pairs(tree, pts, 0.25, chunk_size=chunk)
        assert sorted(base) == sorted(chunked)

    def test_eps_zero_finds_exact_duplicates(self):
        pts = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 1.0]])
        tree = _tree_over(pts)
        counts = count_within(tree, pts, 0.0)
        np.testing.assert_array_equal(counts, [2, 2, 1])

    def test_negative_eps_rejected(self):
        tree = _tree_over(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="eps"):
            for_each_leaf_hit(tree, np.zeros((2, 2)), -1.0, lambda q, p: None)

    def test_dim_mismatch_rejected(self):
        tree = _tree_over(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="queries"):
            for_each_leaf_hit(tree, np.zeros((2, 3)), 0.1, lambda q, p: None)

    def test_frontier_peak_reported(self):
        rng = np.random.default_rng(25)
        pts = rng.uniform(0, 1, size=(50, 2))
        tree = _tree_over(pts)
        _, result = _collect_pairs(tree, pts, 0.3)
        assert result.frontier_peak > 0
        assert result.steps > 0
        assert result.leaf_hits > 0

    def test_box_primitive_hits(self):
        # A mixed tree: a fat box plus points; queries near the box edge
        # must report the box when mindist <= eps.
        lo = np.array([[0.0, 0.0], [5.0, 5.0]])
        hi = np.array([[1.0, 1.0], [5.0, 5.0]])
        tree = build_bvh(lo, hi)
        hits = []

        def cb(q, pos):
            hits.extend(zip(q.tolist(), tree.order[pos].tolist()))

        for_each_leaf_hit(tree, np.array([[1.4, 0.5], [1.6, 0.5]]), 0.5, cb)
        assert (0, 0) in hits  # query 0 within 0.5 of the box
        assert (1, 0) not in hits  # query 1 is 0.6 away

    @given(st.integers(0, 10_000), st.floats(0.01, 0.6), st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_counts_property(self, seed, eps, d):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 1, size=(rng.integers(1, 120), d))
        tree = _tree_over(pts)
        counts = count_within(tree, pts, eps)
        np.testing.assert_array_equal(counts, brute_neighbor_counts(pts, eps))

    @given(st.integers(0, 10_000), st.floats(0.01, 0.4))
    @settings(max_examples=25, deadline=None)
    def test_masked_pairs_property(self, seed, eps):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 1, size=(rng.integers(2, 80), 2))
        tree = _tree_over(pts)
        pairs, _ = _collect_pairs(tree, pts, eps, mask_positions=tree.position)
        assert len(pairs) == len(set(pairs))
        got = {frozenset(p) for p in pairs}
        assert got == {frozenset(p) for p in brute_pairs(pts, eps)}
