"""Tests for the public API: dbscan(), the DBSCAN estimator, the
algorithm registry, and the auto-switch heuristic."""

import numpy as np
import pytest

from repro import DBSCAN, choose_algorithm, dbscan, dense_fraction_estimate
from repro.core.api import AUTO_DENSE_FRACTION_THRESHOLD
from repro.metrics.equivalence import assert_dbscan_equivalent


ALL_ALGORITHMS = [
    "fdbscan",
    "fdbscan-densebox",
    "densebox",
    "gdbscan",
    "cuda-dclust",
    "dsdbscan",
    "sequential",
    "brute",
]


class TestDbscanFunction:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_registry_names_all_work(self, blobs_2d, algorithm):
        res = dbscan(blobs_2d, 0.3, 5, algorithm=algorithm)
        assert res.labels.shape == (blobs_2d.shape[0],)

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_all_algorithms_equivalent(self, blobs_2d, algorithm):
        base = dbscan(blobs_2d, 0.3, 5, algorithm="sequential")
        res = dbscan(blobs_2d, 0.3, 5, algorithm=algorithm)
        assert_dbscan_equivalent(base, res, blobs_2d, 0.3)

    def test_case_insensitive(self, blobs_2d):
        res = dbscan(blobs_2d, 0.3, 5, algorithm="FDBSCAN")
        assert res.n_clusters >= 1

    def test_unknown_algorithm(self, blobs_2d):
        with pytest.raises(ValueError, match="unknown algorithm"):
            dbscan(blobs_2d, 0.3, 5, algorithm="kmeans")

    def test_kwargs_forwarded(self, blobs_2d):
        res = dbscan(blobs_2d, 0.3, 5, algorithm="fdbscan", use_mask=False)
        assert res.n_clusters >= 1

    def test_auto_runs(self, blobs_2d):
        res = dbscan(blobs_2d, 0.3, 5, algorithm="auto")
        base = dbscan(blobs_2d, 0.3, 5, algorithm="sequential")
        assert_dbscan_equivalent(base, res, blobs_2d, 0.3)


class TestAutoHeuristic:
    def test_dense_data_picks_densebox(self, rng):
        X = rng.normal(0, 0.01, size=(500, 2))
        assert choose_algorithm(X, 0.2, 10) == "fdbscan-densebox"

    def test_sparse_data_picks_fdbscan(self, rng):
        X = rng.uniform(0, 100, size=(500, 2))
        assert choose_algorithm(X, 0.2, 10) == "fdbscan"

    def test_fraction_estimate_bounds(self, blobs_2d):
        frac = dense_fraction_estimate(blobs_2d, 0.3, 5)
        assert 0.0 <= frac <= 1.0

    def test_fraction_monotone_in_minpts(self, blobs_2d):
        f_small = dense_fraction_estimate(blobs_2d, 0.3, 2)
        f_large = dense_fraction_estimate(blobs_2d, 0.3, 50)
        assert f_small >= f_large

    def test_threshold_is_the_decision_boundary(self, rng, monkeypatch):
        X = rng.uniform(0, 1, size=(50, 2))
        import repro.core.api as api

        monkeypatch.setattr(api, "dense_fraction_estimate", lambda *a: AUTO_DENSE_FRACTION_THRESHOLD)
        assert api.choose_algorithm(X, 0.1, 5) == "fdbscan-densebox"
        monkeypatch.setattr(
            api, "dense_fraction_estimate", lambda *a: AUTO_DENSE_FRACTION_THRESHOLD - 1e-9
        )
        assert api.choose_algorithm(X, 0.1, 5) == "fdbscan"


class TestEstimator:
    def test_fit_sets_sklearn_attributes(self, blobs_2d):
        model = DBSCAN(eps=0.3, min_samples=5).fit(blobs_2d)
        assert model.labels_.shape == (blobs_2d.shape[0],)
        assert model.n_clusters_ >= 1
        assert model.core_sample_indices_.ndim == 1
        assert model.components_.shape[0] == model.core_sample_indices_.shape[0]
        np.testing.assert_array_equal(
            model.components_, blobs_2d[model.core_sample_indices_]
        )

    def test_fit_predict(self, blobs_2d):
        labels = DBSCAN(eps=0.3, min_samples=5).fit_predict(blobs_2d)
        np.testing.assert_array_equal(
            labels, DBSCAN(eps=0.3, min_samples=5).fit(blobs_2d).labels_
        )

    def test_docstring_example(self):
        X = np.array([[0.0, 0.0], [0.0, 0.1], [0.1, 0.0], [5.0, 5.0]])
        model = DBSCAN(eps=0.3, min_samples=3).fit(X)
        np.testing.assert_array_equal(model.labels_, [0, 0, 0, -1])

    def test_estimator_forwards_algorithm(self, blobs_2d):
        a = DBSCAN(eps=0.3, min_samples=5, algorithm="fdbscan").fit(blobs_2d)
        b = DBSCAN(eps=0.3, min_samples=5, algorithm="sequential").fit(blobs_2d)
        assert_dbscan_equivalent(a.result_, b.result_, blobs_2d, 0.3)
