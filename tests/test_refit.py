"""Focused tests for the bottom-up refit and the BFS level grouping."""

import numpy as np
import pytest

from repro.bvh.aabb import boxes_from_points
from repro.bvh.builder import build_bvh
from repro.bvh.refit import internal_levels, refit, refit_bvh
from repro.bvh.traversal import count_within


class TestInternalLevels:
    def test_levels_for_a_small_tree(self, rng):
        pts = rng.uniform(0, 1, size=(16, 2))
        lo, hi = boxes_from_points(pts)
        tree = build_bvh(lo, hi)
        levels = internal_levels(tree.left, tree.right, tree.n_primitives)
        assert levels[0].tolist() == [0]  # root level
        seen = np.concatenate(levels)
        assert sorted(seen.tolist()) == list(range(15))

    def test_no_internal_nodes(self):
        assert internal_levels(np.zeros(0, np.int64), np.zeros(0, np.int64), 1) == []

    def test_malformed_topology_detected(self):
        # left/right of node 0 point to leaves only -> node 1 unreachable
        left = np.array([2, 3], dtype=np.int64)  # node ids >= n-1 are leaves
        right = np.array([3, 4], dtype=np.int64)
        with pytest.raises(AssertionError, match="malformed"):
            internal_levels(left, right, 3)


class TestRefit:
    def test_refit_after_moving_primitives(self, rng):
        # The point of keeping levels on the tree: update leaf boxes and
        # re-fit without rebuilding topology.
        pts = rng.uniform(0, 1, size=(64, 2))
        lo, hi = boxes_from_points(pts)
        tree = build_bvh(lo, hi)
        n = tree.n_primitives
        moved = pts + rng.normal(0, 0.01, size=pts.shape)
        tree.node_lo[n - 1 :] = moved[tree.order]
        tree.node_hi[n - 1 :] = moved[tree.order]
        refit(tree.node_lo, tree.node_hi, tree.left, tree.right, tree.levels)
        tree.validate()
        np.testing.assert_allclose(tree.node_lo[0], moved.min(axis=0))
        np.testing.assert_allclose(tree.node_hi[0], moved.max(axis=0))

    def test_refit_is_idempotent(self, rng):
        pts = rng.uniform(0, 1, size=(50, 3))
        lo, hi = boxes_from_points(pts)
        tree = build_bvh(lo, hi)
        before_lo = tree.node_lo.copy()
        before_hi = tree.node_hi.copy()
        refit(tree.node_lo, tree.node_hi, tree.left, tree.right, tree.levels)
        np.testing.assert_array_equal(tree.node_lo, before_lo)
        np.testing.assert_array_equal(tree.node_hi, before_hi)

    def test_refit_invalidates_packed_layout(self, rng):
        # Traversal caches a parent-major packed copy of the node boxes;
        # a refit that leaves it in place serves *stale* boxes.  Passing
        # tree= must drop the cache.
        pts = rng.uniform(0, 1, size=(64, 2))
        lo, hi = boxes_from_points(pts)
        tree = build_bvh(lo, hi)
        tree.packed_children()  # populate the cache, as any traversal does
        assert tree._packed is not None
        n = tree.n_primitives
        moved = pts + rng.normal(0, 0.05, size=pts.shape)
        tree.node_lo[n - 1 :] = moved[tree.order]
        tree.node_hi[n - 1 :] = moved[tree.order]
        refit(tree.node_lo, tree.node_hi, tree.left, tree.right, tree.levels,
              tree=tree)
        assert tree._packed is None

    @pytest.mark.parametrize("traversal", ["single", "dual"])
    def test_refit_bvh_traversal_matches_fresh_build(self, rng, traversal):
        # Regression: a traversal, then a refit after moving the points,
        # must answer queries like a tree built fresh over the moved
        # points — under both engines (the dual engine reads the same
        # packed layout through its group tests).
        pts = rng.uniform(0, 1, size=(200, 2))
        lo, hi = boxes_from_points(pts)
        tree = build_bvh(lo, hi)
        queries = rng.uniform(0, 1, size=(64, 2))
        count_within(tree, queries, 0.1, traversal=traversal)  # warm the cache
        n = tree.n_primitives
        moved = pts + rng.normal(0, 0.1, size=pts.shape)
        tree.node_lo[n - 1 :] = moved[tree.order]
        tree.node_hi[n - 1 :] = moved[tree.order]
        refit_bvh(tree)
        got = count_within(tree, queries, 0.1, traversal=traversal)
        flo, fhi = boxes_from_points(moved[tree.order])
        fresh = build_bvh(flo, fhi)
        want = count_within(fresh, queries, 0.1, traversal=traversal)
        np.testing.assert_array_equal(got, want)

    def test_refit_tightness(self, rng):
        # every internal box is exactly the union of its children (no slack)
        pts = rng.uniform(0, 1, size=(100, 2))
        lo, hi = boxes_from_points(pts)
        tree = build_bvh(lo, hi)
        for i in range(tree.n_internal):
            l, r = tree.left[i], tree.right[i]
            np.testing.assert_array_equal(
                tree.node_lo[i], np.minimum(tree.node_lo[l], tree.node_lo[r])
            )
            np.testing.assert_array_equal(
                tree.node_hi[i], np.maximum(tree.node_hi[l], tree.node_hi[r])
            )
