"""Tests for the HDBSCAN pipeline: kNN core distances, mutual-reachability
MST, dendrogram, condensed tree, EOM extraction — and the DBSCAN* cut
cross-validation against the flat implementation."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.spatial import cKDTree

from repro.bvh.aabb import boxes_from_points
from repro.bvh.builder import build_bvh
from repro.bvh.knn import core_distances, knn_radii
from repro.core.dbscan_star import dbscan_star
from repro.hierarchy import (
    condense_dendrogram,
    dbscan_star_cut,
    extract_eom_clusters,
    hdbscan,
    mutual_reachability_mst,
    single_linkage_dendrogram,
)
from repro.hierarchy.condense import cluster_stabilities
from repro.metrics import partitions_equal


def _tree_over(pts):
    lo, hi = boxes_from_points(pts)
    return build_bvh(lo, hi)


def _mutual_reachability_matrix(X, core):
    diff = X[:, None] - X[None, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    return np.maximum(dist, np.maximum(core[:, None], core[None, :]))


class TestKnn:
    @pytest.mark.parametrize("d", [1, 2, 3])
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_matches_kdtree(self, rng, d, k):
        X = rng.uniform(0, 1, size=(300, d))
        tree = _tree_over(X)
        got = knn_radii(tree, X, k)
        ref = cKDTree(X).query(X, k=k)[0]
        ref = ref if k == 1 else ref[:, -1]
        np.testing.assert_allclose(got, ref, atol=1e-12)

    def test_external_queries(self, rng):
        X = rng.uniform(0, 1, size=(200, 2))
        Q = rng.uniform(-0.5, 1.5, size=(50, 2))
        tree = _tree_over(X)
        got = knn_radii(tree, Q, 5)
        ref = cKDTree(X).query(Q, k=5)[0][:, -1]
        np.testing.assert_allclose(got, ref, atol=1e-12)

    def test_k_equals_n(self, rng):
        X = rng.uniform(0, 1, size=(20, 2))
        tree = _tree_over(X)
        got = knn_radii(tree, X, 20)
        ref = cKDTree(X).query(X, k=20)[0][:, -1]
        np.testing.assert_allclose(got, ref, atol=1e-12)

    def test_clustered_data(self, rng):
        # radius doubling must converge even with wildly varying density
        X = np.concatenate(
            [rng.normal(0, 0.001, size=(100, 2)), rng.uniform(0, 100, size=(100, 2))]
        )
        tree = _tree_over(X)
        got = knn_radii(tree, X, 7)
        ref = cKDTree(X).query(X, k=7)[0][:, -1]
        np.testing.assert_allclose(got, ref, atol=1e-9)

    def test_k_validation(self, rng):
        X = rng.uniform(0, 1, size=(10, 2))
        tree = _tree_over(X)
        with pytest.raises(ValueError, match="k"):
            knn_radii(tree, X, 0)
        with pytest.raises(ValueError, match="exceeds"):
            knn_radii(tree, X, 11)

    def test_core_distance_self_counts(self, rng):
        # min_samples=1: core distance is 0 (the point itself)
        X = rng.uniform(0, 1, size=(30, 2))
        tree = _tree_over(X)
        np.testing.assert_allclose(core_distances(tree, X, 1), 0.0, atol=1e-15)

    def test_duplicates(self):
        X = np.zeros((10, 2))
        tree = _tree_over(X)
        np.testing.assert_allclose(knn_radii(tree, X, 10), 0.0)

    @given(st.integers(0, 3000), st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_knn_property(self, seed, k):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 1, size=(rng.integers(k, 120), 2))
        tree = _tree_over(X)
        got = knn_radii(tree, X, k)
        ref = cKDTree(X).query(X, k=k)[0]
        ref = ref if k == 1 else ref[:, -1]
        np.testing.assert_allclose(got, ref, atol=1e-12)


class TestMst:
    def test_weight_matches_networkx(self, rng):
        X = rng.uniform(0, 1, size=(60, 2))
        tree = _tree_over(X)
        core = core_distances(tree, X, 4)
        mst = mutual_reachability_mst(X, core)
        mreach = _mutual_reachability_matrix(X, core)
        G = nx.from_numpy_array(mreach)
        ref = nx.minimum_spanning_tree(G)
        ref_weight = sum(d["weight"] for _, _, d in ref.edges(data=True))
        assert mst[:, 2].sum() == pytest.approx(ref_weight)

    def test_edges_sorted_and_spanning(self, rng):
        X = rng.uniform(0, 1, size=(80, 2))
        core = np.zeros(80)
        mst = mutual_reachability_mst(X, core)
        assert mst.shape == (79, 3)
        assert np.all(np.diff(mst[:, 2]) >= 0)
        G = nx.Graph()
        G.add_edges_from((int(a), int(b)) for a, b, _ in mst)
        assert nx.is_connected(G)
        assert G.number_of_nodes() == 80

    def test_zero_core_equals_euclidean_mst(self, rng):
        X = rng.uniform(0, 1, size=(40, 2))
        mst = mutual_reachability_mst(X, np.zeros(40))
        diff = X[:, None] - X[None, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        ref = nx.minimum_spanning_tree(nx.from_numpy_array(dist))
        ref_weight = sum(d["weight"] for _, _, d in ref.edges(data=True))
        assert mst[:, 2].sum() == pytest.approx(ref_weight)

    def test_single_point(self):
        assert mutual_reachability_mst(np.zeros((1, 2)), np.zeros(1)).shape == (0, 3)

    def test_core_dist_shape_checked(self, rng):
        with pytest.raises(ValueError, match="core_dist"):
            mutual_reachability_mst(rng.uniform(size=(5, 2)), np.zeros(4))


class TestDendrogram:
    def test_linkage_layout(self, rng):
        X = rng.uniform(0, 1, size=(30, 2))
        mst = mutual_reachability_mst(X, np.zeros(30))
        Z = single_linkage_dendrogram(mst, 30)
        assert Z.shape == (29, 4)
        assert Z[-1, 3] == 30  # final merge holds everything
        assert np.all(np.diff(Z[:, 2]) >= 0)  # heights ascend

    def test_sizes_consistent(self, rng):
        X = rng.uniform(0, 1, size=(25, 2))
        mst = mutual_reachability_mst(X, np.zeros(25))
        Z = single_linkage_dendrogram(mst, 25)
        n = 25

        def size_of(node):
            return 1 if node < n else int(Z[int(node) - n, 3])

        for i in range(n - 1):
            assert Z[i, 3] == size_of(Z[i, 0]) + size_of(Z[i, 1])

    def test_edge_count_checked(self):
        with pytest.raises(ValueError, match="MST edges"):
            single_linkage_dendrogram(np.zeros((3, 3)), 3)


class TestCondensedTree:
    def _tree(self, rng, mcs=10):
        X = np.concatenate(
            [rng.normal(0, 0.05, size=(80, 2)), rng.normal(3, 0.05, size=(80, 2))]
        )
        mst = mutual_reachability_mst(X, np.zeros(X.shape[0]))
        Z = single_linkage_dendrogram(mst, X.shape[0])
        return condense_dendrogram(Z, X.shape[0], min_cluster_size=mcs), X.shape[0]

    def test_every_point_falls_out_once(self, rng):
        tree, n = self._tree(rng)
        point_rows = tree.child < n
        np.testing.assert_array_equal(
            np.sort(tree.child[point_rows]), np.arange(n)
        )

    def test_two_blobs_two_leaf_clusters(self, rng):
        tree, n = self._tree(rng)
        # root (= id n) splits into exactly two condensed clusters
        assert tree.children_of(n).shape == (2,)

    def test_cluster_sizes_recorded(self, rng):
        tree, n = self._tree(rng)
        for child in tree.children_of(n):
            row = tree.child == child
            assert tree.size[row][0] == 80

    def test_lambdas_positive(self, rng):
        tree, _ = self._tree(rng)
        assert (tree.lambda_val > 0).all()

    def test_min_cluster_size_validation(self, rng):
        tree, n = self._tree(rng)
        with pytest.raises(ValueError, match="min_cluster_size"):
            condense_dendrogram(np.zeros((1, 4)), 2, min_cluster_size=1)

    def test_stabilities_nonnegative(self, rng):
        tree, _ = self._tree(rng)
        stabilities = cluster_stabilities(tree)
        assert all(v >= -1e-9 for v in stabilities.values())

    def test_eom_selects_the_blobs(self, rng):
        tree, n = self._tree(rng)
        chosen, _ = extract_eom_clusters(tree)
        assert len(chosen) == 2
        assert n not in chosen  # root excluded

    def test_allow_single_cluster(self, rng):
        # A single Gaussian: without the flag the root is excluded and the
        # pipeline still picks something sensible below it; with the flag
        # the root may win.
        X = rng.normal(0, 0.1, size=(120, 2))
        mst = mutual_reachability_mst(X, np.zeros(120))
        Z = single_linkage_dendrogram(mst, 120)
        tree = condense_dendrogram(Z, 120, min_cluster_size=10)
        chosen_root_ok, _ = extract_eom_clusters(tree, allow_single_cluster=True)
        assert chosen_root_ok  # something is selected


class TestHdbscan:
    def test_finds_well_separated_blobs(self, rng):
        X = np.concatenate(
            [
                rng.normal(0, 0.08, size=(150, 2)),
                rng.normal(2, 0.08, size=(120, 2)),
                rng.normal((0, 2), 0.08, size=(130, 2)),
                rng.uniform(-1, 3, size=(50, 2)),
            ]
        )
        res = hdbscan(X, min_cluster_size=15)
        assert res.n_clusters == 3
        # each blob is (mostly) one cluster
        for start, count in ((0, 150), (150, 120), (270, 130)):
            blob_labels = res.labels[start : start + count]
            values, counts = np.unique(blob_labels[blob_labels >= 0], return_counts=True)
            assert counts.max() > 0.9 * count

    def test_varying_density_blobs(self, rng):
        # HDBSCAN's selling point over flat DBSCAN: clusters of different
        # densities are found simultaneously.
        X = np.concatenate(
            [rng.normal(0, 0.02, size=(150, 2)), rng.normal(3, 0.4, size=(150, 2))]
        )
        res = hdbscan(X, min_cluster_size=20)
        assert res.n_clusters == 2

    def test_probabilities_bounds(self, rng):
        X = rng.normal(0, 0.1, size=(100, 2))
        res = hdbscan(X, min_cluster_size=10, allow_single_cluster=True)
        assert (res.probabilities >= 0).all()
        assert (res.probabilities <= 1).all()
        assert (res.probabilities[res.labels == -1] == 0).all()

    def test_3d(self, blobs_3d):
        res = hdbscan(blobs_3d, min_cluster_size=20)
        assert res.n_clusters == 3

    def test_rings(self):
        from repro.datasets import noisy_rings

        X = noisy_rings(600, rings=2, radius_step=1.5, noise=0.02, seed=5)
        res = hdbscan(X, min_cluster_size=25)
        assert res.n_clusters == 2

    def test_validation(self, rng):
        X = rng.uniform(size=(30, 2))
        with pytest.raises(ValueError, match="min_cluster_size"):
            hdbscan(X, min_cluster_size=1)
        with pytest.raises(ValueError, match="exceeds"):
            hdbscan(X, min_cluster_size=5, min_samples=31)

    def test_info_timings(self, rng):
        X = rng.uniform(size=(60, 2))
        res = hdbscan(X, min_cluster_size=5)
        assert {"t_core", "t_mst", "t_extract"} <= set(res.info)


class TestDbscanStarCut:
    """The hierarchy cut must equal the flat DBSCAN* exactly — two utterly
    different computations of the same mathematical object."""

    @pytest.mark.parametrize("eps,minpts", [(0.25, 5), (0.3, 10), (0.15, 3), (0.5, 2)])
    def test_matches_flat_dbscan_star(self, blobs_2d, eps, minpts):
        cut = dbscan_star_cut(blobs_2d, eps, minpts)
        flat = dbscan_star(blobs_2d, eps, minpts, algorithm="fdbscan")
        np.testing.assert_array_equal(cut == -1, flat.labels == -1)
        assert partitions_equal(cut, flat.labels, cut >= 0)

    @given(st.integers(0, 3000), st.floats(0.05, 0.6), st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_cut_property(self, seed, eps, minpts):
        rng = np.random.default_rng(seed)
        X = np.concatenate(
            [
                rng.normal(0, 0.1, size=(rng.integers(10, 60), 2)),
                rng.uniform(-1, 2, size=(rng.integers(10, 60), 2)),
            ]
        )
        cut = dbscan_star_cut(X, eps, minpts)
        flat = dbscan_star(X, eps, minpts, algorithm="fdbscan")
        np.testing.assert_array_equal(cut == -1, flat.labels == -1)
        assert partitions_equal(cut, flat.labels, cut >= 0)


class TestHandComputedCondensation:
    """A 4-point dendrogram small enough to verify by hand:
    pairs (0,1) and (2,3) merge at distance 1, the pairs merge at 4."""

    def _z(self):
        return np.array(
            [
                [0.0, 1.0, 1.0, 2.0],
                [2.0, 3.0, 1.0, 2.0],
                [4.0, 5.0, 4.0, 4.0],
            ]
        )

    def test_condensed_rows(self):
        tree = condense_dendrogram(self._z(), 4, min_cluster_size=2)
        # root (id 4) splits into two clusters of size 2 at lambda 1/4
        cluster_rows = tree.child >= 4
        np.testing.assert_array_equal(np.sort(tree.child[cluster_rows]), [5, 6])
        np.testing.assert_allclose(tree.lambda_val[cluster_rows], 0.25)
        np.testing.assert_array_equal(tree.size[cluster_rows], [2, 2])
        # each point falls out of its cluster at lambda 1
        point_rows = tree.child < 4
        np.testing.assert_allclose(tree.lambda_val[point_rows], 1.0)
        assert sorted(tree.child[point_rows].tolist()) == [0, 1, 2, 3]

    def test_hand_computed_stabilities(self):
        tree = condense_dendrogram(self._z(), 4, min_cluster_size=2)
        stability = cluster_stabilities(tree)
        # root: two clusters of 2 leave at lambda 0.25, born at 0 -> 1.0
        assert stability[4] == pytest.approx(1.0)
        # leaves: two points each leave at 1.0, born at 0.25 -> 1.5
        assert stability[5] == pytest.approx(1.5)
        assert stability[6] == pytest.approx(1.5)

    def test_hand_computed_selection(self):
        tree = condense_dendrogram(self._z(), 4, min_cluster_size=2)
        chosen, _ = extract_eom_clusters(tree)
        assert sorted(chosen) == [5, 6]

    def test_root_wins_when_children_weak(self):
        # Merge the pairs barely later than they form: child stabilities
        # shrink, the root would win — but stays excluded by default.
        Z = np.array(
            [
                [0.0, 1.0, 1.0, 2.0],
                [2.0, 3.0, 1.0, 2.0],
                [4.0, 5.0, 1.05, 4.0],
            ]
        )
        tree = condense_dendrogram(Z, 4, min_cluster_size=2)
        chosen_default, _ = extract_eom_clusters(tree)
        assert 4 not in chosen_default
        chosen_single, _ = extract_eom_clusters(tree, allow_single_cluster=True)
        assert chosen_single == [4]
