"""Tests for tree quality metrics and alternative orderings."""

import numpy as np
import pytest

from repro.bvh.aabb import boxes_from_points
from repro.bvh.builder import build_bvh
from repro.bvh.statistics import (
    leaf_depths,
    scanline_codes,
    shuffled_codes,
    tree_statistics,
)
from repro.bvh.traversal import count_within
from repro.device.device import Device

from tests.conftest import brute_neighbor_counts


def _tree(pts, codes=None):
    lo, hi = boxes_from_points(pts)
    return build_bvh(lo, hi, codes=codes)


class TestLeafDepths:
    def test_single_leaf(self):
        tree = _tree(np.zeros((1, 2)))
        np.testing.assert_array_equal(leaf_depths(tree), [0])

    def test_balanced_power_of_two(self):
        # Explicit 3-bit codes 0..7: the radix tree is a perfect tree.
        pts = np.linspace(0, 1, 8).reshape(-1, 1)
        tree = _tree(pts, codes=np.arange(8, dtype=np.int64))
        np.testing.assert_array_equal(leaf_depths(tree), np.full(8, 3))

    def test_depths_positive_and_bounded(self, rng):
        pts = rng.uniform(0, 1, size=(200, 2))
        tree = _tree(pts)
        depths = leaf_depths(tree)
        assert depths.shape == (200,)
        assert depths.min() >= 1
        assert depths.max() <= 199


class TestTreeStatistics:
    def test_fields(self, rng):
        pts = rng.uniform(0, 1, size=(128, 2))
        stats = tree_statistics(_tree(pts))
        assert stats.n_primitives == 128
        assert stats.max_depth >= stats.mean_leaf_depth > 0
        assert stats.sah_cost > 0
        assert stats.sibling_overlap >= 0
        assert set(stats.as_dict()) == {
            "n_primitives",
            "max_depth",
            "mean_leaf_depth",
            "sah_cost",
            "sibling_overlap",
        }

    def test_single_primitive(self):
        stats = tree_statistics(_tree(np.zeros((1, 3))))
        assert stats.max_depth == 0
        assert stats.sibling_overlap == 0.0

    def test_morton_beats_shuffled_quality(self, rng):
        pts = rng.uniform(0, 1, size=(512, 2))
        good = tree_statistics(_tree(pts))
        bad = tree_statistics(_tree(pts, codes=shuffled_codes(pts, seed=1)))
        assert good.sah_cost < bad.sah_cost
        assert good.sibling_overlap < bad.sibling_overlap

    def test_morton_beats_scanline_sah(self, rng):
        # Scanline slabs do not overlap (disjoint x-ranges) but their
        # surface area — hence expected traversal cost — is worse.
        pts = rng.uniform(0, 1, size=(512, 2))
        good = tree_statistics(_tree(pts))
        scan = tree_statistics(_tree(pts, codes=scanline_codes(pts)))
        assert good.sah_cost < scan.sah_cost

    def test_scanline_traversal_visits_more_nodes(self, rng):
        pts = rng.uniform(0, 1, size=(800, 2))
        dev_good, dev_scan = Device(), Device()
        count_within(_tree(pts), pts, 0.1, device=dev_good)
        count_within(_tree(pts, codes=scanline_codes(pts)), pts, 0.1, device=dev_scan)
        assert dev_good.counters.nodes_visited < dev_scan.counters.nodes_visited


class TestAlternativeOrderingsStayCorrect:
    @pytest.mark.parametrize("order", ["scanline", "shuffled"])
    def test_traversal_results_identical(self, rng, order):
        # A degraded order changes the *cost*, never the answer.
        pts = rng.uniform(0, 1, size=(150, 2))
        codes = scanline_codes(pts) if order == "scanline" else shuffled_codes(pts)
        tree = _tree(pts, codes=codes)
        tree.validate()
        counts = count_within(tree, pts, 0.15)
        np.testing.assert_array_equal(counts, brute_neighbor_counts(pts, 0.15))

    def test_morton_traversal_visits_fewer_nodes(self, rng):
        pts = rng.uniform(0, 1, size=(800, 2))
        dev_good, dev_bad = Device(), Device()
        count_within(_tree(pts), pts, 0.1, device=dev_good)
        count_within(_tree(pts, codes=shuffled_codes(pts)), pts, 0.1, device=dev_bad)
        assert dev_good.counters.nodes_visited < dev_bad.counters.nodes_visited / 2

    def test_codes_validation(self, rng):
        pts = rng.uniform(0, 1, size=(10, 2))
        lo, hi = boxes_from_points(pts)
        with pytest.raises(ValueError, match="codes must be"):
            build_bvh(lo, hi, codes=np.zeros(5, dtype=np.int64))
        with pytest.raises(ValueError, match="non-negative"):
            build_bvh(lo, hi, codes=np.full(10, -1, dtype=np.int64))
