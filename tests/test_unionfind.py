"""Tests for both union-find implementations, including the differential
property that the ECL batched structure matches the sequential oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.counters import KernelCounters
from repro.device.device import Device
from repro.unionfind.ecl import EclUnionFind, find_roots, finalize_labels, union_batch
from repro.unionfind.sequential import SequentialUnionFind


def _partition(labels):
    """Canonical partition: frozenset of frozensets."""
    groups = {}
    for i, l in enumerate(np.asarray(labels).tolist()):
        groups.setdefault(l, set()).add(i)
    return frozenset(frozenset(g) for g in groups.values())


class TestSequential:
    def test_initial_singletons(self):
        uf = SequentialUnionFind(4)
        assert uf.n_sets() == 4
        assert not uf.connected(0, 1)

    def test_union_and_find(self):
        uf = SequentialUnionFind(5)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)  # already joined
        assert uf.connected(0, 1)
        assert uf.n_sets() == 4

    def test_transitivity(self):
        uf = SequentialUnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)

    def test_labels_flat(self):
        uf = SequentialUnionFind(5)
        uf.union(0, 4)
        uf.union(4, 2)
        labels = uf.labels()
        assert labels[0] == labels[2] == labels[4]
        assert labels[1] != labels[0]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            SequentialUnionFind(-1)


class TestEclKernels:
    def test_find_roots_initial(self):
        parents = np.arange(6)
        roots = find_roots(parents, np.arange(6))
        np.testing.assert_array_equal(roots, np.arange(6))

    def test_union_batch_basic(self):
        parents = np.arange(4)
        union_batch(parents, np.array([0, 2]), np.array([1, 3]))
        r = find_roots(parents, np.arange(4))
        assert r[0] == r[1]
        assert r[2] == r[3]
        assert r[0] != r[2]

    def test_union_batch_chain_in_one_call(self):
        # A long chain presented as one batch must fully merge.
        n = 64
        parents = np.arange(n)
        union_batch(parents, np.arange(n - 1), np.arange(1, n))
        roots = find_roots(parents, np.arange(n))
        assert np.unique(roots).size == 1

    def test_union_batch_idempotent_and_self_edges(self):
        parents = np.arange(4)
        union_batch(parents, np.array([1, 1, 2]), np.array([1, 2, 1]))
        roots = find_roots(parents, np.arange(4))
        assert roots[1] == roots[2]
        assert roots[0] != roots[1]

    def test_union_empty_batch(self):
        parents = np.arange(3)
        assert union_batch(parents, np.zeros(0, np.int64), np.zeros(0, np.int64)) == 0

    def test_union_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            union_batch(np.arange(3), np.array([0]), np.array([1, 2]))

    def test_roots_are_smallest_member(self):
        # Hook-to-smaller means every representative is its set's minimum.
        rng = np.random.default_rng(0)
        parents = np.arange(50)
        a = rng.integers(0, 50, 80)
        b = rng.integers(0, 50, 80)
        union_batch(parents, a, b)
        finalize_labels(parents)
        for root in np.unique(parents):
            members = np.flatnonzero(parents == root)
            assert root == members.min()

    def test_finalize_flattens(self):
        parents = np.arange(10)
        union_batch(parents, np.arange(9), np.full(9, 9))
        finalize_labels(parents)
        np.testing.assert_array_equal(parents, np.zeros(10, dtype=np.int64))
        # invariant: parents[parents] == parents
        np.testing.assert_array_equal(parents[parents], parents)

    def test_pointer_jumping_shortens_paths(self):
        # A manually built chain: find compresses it.
        parents = np.array([0, 0, 1, 2, 3])
        find_roots(parents, np.array([4]))
        # After intermediate jumping, 4's path must be shorter than 4 hops.
        hops = 0
        x = 4
        while parents[x] != x:
            x = parents[x]
            hops += 1
        assert hops < 4

    def test_find_counters(self):
        c = KernelCounters()
        parents = np.array([0, 0, 1])
        find_roots(parents, np.array([2]), counters=c)
        assert c.find_steps > 0


class TestEclWrapper:
    def test_lifecycle(self):
        dev = Device()
        uf = EclUnionFind(8, device=dev)
        assert uf.n_sets() == 8
        uf.union(np.array([0, 1]), np.array([1, 2]))
        assert uf.n_sets() == 6
        labels = uf.finalize()
        assert labels[0] == labels[1] == labels[2] == 0
        assert dev.memory.live_by_tag["labels"] == 8 * 8
        assert dev.counters.union_ops == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            EclUnionFind(-2)

    def test_zero_elements(self):
        uf = EclUnionFind(0)
        assert uf.n == 0
        assert uf.n_sets() == 0
        uf.finalize()


class TestDifferential:
    @given(
        st.integers(1, 60),
        st.lists(st.tuples(st.integers(0, 59), st.integers(0, 59)), max_size=120),
        st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_ecl_matches_sequential_partition(self, n, edges, seed):
        edges = [(a % n, b % n) for a, b in edges]
        seq = SequentialUnionFind(n)
        for a, b in edges:
            seq.union(a, b)
        ecl = EclUnionFind(n)
        if edges:
            rng = np.random.default_rng(seed)
            arr = np.array(edges, dtype=np.int64)
            # split the edge list into random batches to exercise the
            # cross-batch behaviour
            n_batches = rng.integers(1, 4)
            for chunk in np.array_split(arr[rng.permutation(arr.shape[0])], n_batches):
                if chunk.size:
                    ecl.union(chunk[:, 0], chunk[:, 1])
        assert _partition(ecl.finalize()) == _partition(seq.labels())

    @given(st.integers(2, 100), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_forest_always_acyclic(self, n, seed):
        rng = np.random.default_rng(seed)
        parents = np.arange(n)
        for _ in range(3):
            a = rng.integers(0, n, size=n)
            b = rng.integers(0, n, size=n)
            union_batch(parents, a, b)
            # acyclicity: walking up from every node terminates (bounded by n)
            for start in range(n):
                x, hops = start, 0
                while parents[x] != x:
                    x = parents[x]
                    hops += 1
                    assert hops <= n
