"""Tests for the command-line interface (in-process, via main(argv))."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets import gaussian_blobs
from repro.datasets.io import save_points


@pytest.fixture
def points_file(tmp_path):
    X = gaussian_blobs(300, centers=3, std=0.05, seed=0)
    path = str(tmp_path / "pts.npy")
    save_points(path, X)
    return path


class TestParser:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_eps_required(self):
        # --eps is a run-time requirement (not a parser one) so that
        # --algorithm hdbscan, which has no eps, can omit it
        args = build_parser().parse_args(["cluster", "--minpts", "5"])
        assert args.eps is None
        with pytest.raises(SystemExit, match="--eps is required"):
            main(["cluster", "--dataset", "ngsim", "--n", "100", "--minpts", "5"])
        with pytest.raises(SystemExit, match="--eps"):
            main(["bench", "--dataset", "ngsim", "--n", "100", "--minpts", "5"])

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "--dataset", "mnist", "--eps", "1", "--minpts", "2"]
            )


class TestClusterCommand:
    def test_cluster_file(self, points_file, capsys):
        rc = main(["cluster", points_file, "--eps", "0.2", "--minpts", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "n_clusters : 3" in out

    def test_cluster_named_dataset(self, capsys):
        rc = main(
            [
                "cluster",
                "--dataset",
                "portotaxi",
                "--n",
                "2000",
                "--eps",
                "0.005",
                "--minpts",
                "10",
            ]
        )
        assert rc == 0
        assert "n_clusters" in capsys.readouterr().out

    def test_cluster_hdbscan_no_eps(self, points_file, capsys):
        rc = main(
            [
                "cluster", points_file, "--minpts", "5",
                "--algorithm", "hdbscan", "--min-cluster-size", "10",
                "--counters",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "algorithm : hdbscan" in out
        assert "mst_algorithm : boruvka" in out
        assert "boruvka_rounds" in out

    def test_cluster_hdbscan_prim(self, points_file, capsys):
        rc = main(
            [
                "cluster", points_file, "--minpts", "5",
                "--algorithm", "hdbscan", "--mst", "prim",
            ]
        )
        assert rc == 0
        assert "mst_algorithm : prim" in capsys.readouterr().out

    def test_counters_flag(self, points_file, capsys):
        main(
            [
                "cluster",
                points_file,
                "--eps",
                "0.2",
                "--minpts",
                "5",
                "--algorithm",
                "fdbscan",
                "--counters",
            ]
        )
        out = capsys.readouterr().out
        assert "distance_evals" in out
        assert "peak_bytes" in out

    def test_labels_out(self, points_file, tmp_path, capsys):
        out_path = str(tmp_path / "labels.npy")
        main(
            [
                "cluster",
                points_file,
                "--eps",
                "0.2",
                "--minpts",
                "5",
                "--labels-out",
                out_path,
            ]
        )
        labels = np.load(out_path)
        assert labels.shape == (300,)
        assert set(np.unique(labels)) >= {0, 1, 2}

    def test_subsampling_input_file(self, points_file, capsys):
        rc = main(
            ["cluster", points_file, "--n", "100", "--eps", "0.2", "--minpts", "3"]
        )
        assert rc == 0
        assert "n_points : 100" in capsys.readouterr().out

    def test_missing_input(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--eps", "0.2", "--minpts", "5"])

    def test_profile_flag(self, points_file, capsys):
        rc = main(
            [
                "cluster",
                points_file,
                "--eps",
                "0.2",
                "--minpts",
                "5",
                "--algorithm",
                "fdbscan",
                "--profile",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel profile" in out
        assert "bvh_build" in out
        assert "fdbscan_main" in out


class TestBenchCommand:
    def test_minpts_sweep(self, points_file, capsys):
        rc = main(
            [
                "bench",
                points_file,
                "--eps",
                "0.2",
                "--minpts-sweep",
                "3,5",
                "--algorithms",
                "fdbscan,densebox",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fdbscan" in out and "densebox" in out
        assert "status" in out

    def test_eps_sweep(self, points_file, capsys):
        rc = main(
            [
                "bench",
                points_file,
                "--minpts",
                "5",
                "--eps",
                "0.2",
                "--eps-sweep",
                "0.1,0.2",
                "--algorithms",
                "fdbscan",
            ]
        )
        assert rc == 0
        assert "0.1" in capsys.readouterr().out

    def test_kernel_profile_printed(self, points_file, capsys):
        rc = main(
            [
                "bench",
                points_file,
                "--eps",
                "0.2",
                "--minpts-sweep",
                "3,5",
                "--algorithms",
                "fdbscan",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel profile" in out
        assert "replayed" in out

    def test_no_reuse_index_flag(self, points_file, capsys):
        rc = main(
            [
                "bench",
                points_file,
                "--eps",
                "0.2",
                "--minpts-sweep",
                "3,5",
                "--algorithms",
                "fdbscan",
                "--no-reuse-index",
            ]
        )
        assert rc == 0
        assert "kernel profile" in capsys.readouterr().out

    def test_memory_cap_reports_oom(self, capsys):
        rc = main(
            [
                "bench",
                "--dataset",
                "ngsim",
                "--n",
                "2000",
                "--eps",
                "0.01",
                "--minpts-sweep",
                "5",
                "--algorithms",
                "gdbscan",
                "--memory-cap",
                "100000",
            ]
        )
        # the oom is reported AND fails the run (no --allow-failures)
        assert rc == 1
        assert "oom" in capsys.readouterr().out

    def test_allow_failures_downgrades_oom_to_success(self, capsys):
        rc = main(
            [
                "bench",
                "--dataset",
                "ngsim",
                "--n",
                "2000",
                "--eps",
                "0.01",
                "--minpts-sweep",
                "5",
                "--algorithms",
                "gdbscan",
                "--memory-cap",
                "100000",
                "--allow-failures",
            ]
        )
        assert rc == 0
        assert "oom" in capsys.readouterr().out

    def test_cell_timeout_fails_run_and_reports_timeout(self, points_file, capsys):
        argv = [
            "bench",
            points_file,
            "--eps",
            "0.2",
            "--minpts-sweep",
            "5",
            "--algorithms",
            "fdbscan",
            "--cell-timeout",
            "0.0",
        ]
        rc = main(argv)
        out = capsys.readouterr()
        assert rc == 1
        assert "timeout" in out.out
        assert main(argv + ["--allow-failures"]) == 0


class TestObservabilityFlags:
    def test_cluster_trace_out(self, points_file, tmp_path, capsys):
        from repro.obs import validate_chrome_trace_file

        path = str(tmp_path / "trace.json")
        rc = main(
            ["cluster", points_file, "--eps", "0.2", "--minpts", "5",
             "--algorithm", "fdbscan", "--trace-out", path]
        )
        assert rc == 0
        assert "trace written" in capsys.readouterr().out
        counts = validate_chrome_trace_file(path)
        assert counts["spans"] > 0

    def test_cluster_trace_csv_format(self, points_file, tmp_path):
        path = str(tmp_path / "trace.csv")
        main(
            ["cluster", points_file, "--eps", "0.2", "--minpts", "5",
             "--algorithm", "fdbscan", "--trace-out", path,
             "--trace-format", "csv"]
        )
        text = open(path).read()
        assert text.startswith("trace_id,span_id,parent_id")
        assert "bvh_build" in text

    def test_cluster_cost_model_flag(self, points_file, capsys):
        rc = main(
            ["cluster", points_file, "--eps", "0.2", "--minpts", "5",
             "--algorithm", "fdbscan", "--cost-model"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cost model" in out and "evals/s" in out

    def test_bench_trace_records_distributed_and_kernels(self, points_file, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace_file

        trace = str(tmp_path / "trace.json")
        save = str(tmp_path / "sweep.json")
        # --retries 3 > fault_attempts=2: the fault plan hashes the phase
        # string (which embeds this test's tmp path), so whether a cell
        # faults varies with the pytest tmpdir number — a retry budget
        # above the injection cap makes every cell converge regardless.
        rc = main(
            ["bench", points_file, "--eps", "0.2", "--minpts-sweep", "3,5",
             "--algorithms", "fdbscan,distributed", "--ranks", "2",
             "--faults", "0.1", "--retries", "3",
             "--trace-out", trace, "--save", save]
        )
        assert rc == 0
        counts = validate_chrome_trace_file(trace)
        assert counts["spans"] > 0
        payload = json.load(open(trace))
        cats = {e.get("cat") for e in payload["traceEvents"] if e["ph"] == "X"}
        assert {"bench", "kernel", "comm", "phase", "driver"} <= cats
        # the sweep history records where its trace went
        meta = json.load(open(save))["meta"]
        assert meta["trace"]["path"] == trace
        assert meta["trace"]["spans"] == counts["spans"]

    def test_bench_time_budget_mode_flag(self, points_file, capsys):
        rc = main(
            ["bench", points_file, "--eps", "0.2", "--minpts-sweep", "3,5",
             "--algorithms", "fdbscan", "--time-budget", "1000",
             "--time-budget-mode", "cold"]
        )
        assert rc == 0
        assert "status" in capsys.readouterr().out

    def test_metrics_subcommand_prometheus(self, points_file, capsys):
        rc = main(
            ["metrics", points_file, "--eps", "0.2", "--minpts", "5",
             "--algorithm", "fdbscan"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_distance_evals_total counter" in out
        assert "repro_kernel_seconds_total" in out

    def test_metrics_totals_equal_device_counters(self, points_file, capsys):
        """Acceptance criterion: the exposition's counter totals equal the
        KernelCounters values of an identical run."""
        import re

        from repro.cli import _load_input
        from repro.core.api import dbscan
        from repro.device.device import Device

        rc = main(
            ["metrics", points_file, "--eps", "0.2", "--minpts", "5",
             "--algorithm", "fdbscan"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        exported = {
            m.group(1): int(m.group(2))
            for m in re.finditer(r"^repro_(\w+)_total (\d+)$", out, re.M)
        }
        device = Device()
        dbscan(np.load(points_file), 0.2, 5, algorithm="fdbscan", device=device)
        snap = device.counters.snapshot()
        for name in ("distance_evals", "kernel_launches", "nodes_visited"):
            assert exported[name] == snap[name]

    def test_metrics_distributed_includes_comm(self, points_file, capsys):
        rc = main(
            ["metrics", points_file, "--eps", "0.2", "--minpts", "5",
             "--ranks", "2", "--faults", "0.1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro_comm_messages_total" in out
        assert "repro_comm_bytes_total" in out

    def test_metrics_csv_format(self, points_file, capsys):
        rc = main(
            ["metrics", points_file, "--eps", "0.2", "--minpts", "5",
             "--format", "csv"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("metric")

    def test_metrics_failed_run_exits_nonzero_with_partial_counters(self, capsys):
        argv = [
            "metrics", "--dataset", "ngsim", "--n", "2000",
            "--eps", "0.01", "--minpts", "5",
            "--algorithm", "gdbscan", "--memory-cap", "100000",
        ]
        rc = main(argv)
        out = capsys.readouterr()
        assert rc == 1
        assert "run failed" in out.err
        # the partial counters still made it into the exposition
        assert "repro_kernel_launches_total" in out.out

    def test_metrics_allow_failures(self, capsys):
        rc = main(
            [
                "metrics", "--dataset", "ngsim", "--n", "2000",
                "--eps", "0.01", "--minpts", "5",
                "--algorithm", "gdbscan", "--memory-cap", "100000",
                "--allow-failures",
            ]
        )
        assert rc == 0
        assert "allow-failures" in capsys.readouterr().err


class TestServeCommand:
    def test_traffic_report_saved(self, tmp_path, capsys):
        report_path = str(tmp_path / "report.json")
        rc = main(
            [
                "serve", "--traffic", "25", "--seed", "0",
                "--journal", str(tmp_path / "svc.jsonl"),
                "--save", report_path,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency ms" in out
        import json

        with open(report_path) as fh:
            report = json.load(fh)
        assert {"p50", "p95", "p99"} <= set(report["latency_ms"])
        assert report["metrics_ledger"]["ok"]
        assert "service" not in report  # the live handle never serialises

    def test_traffic_with_faults_and_restart(self, tmp_path, capsys):
        rc = main(
            [
                "serve", "--traffic", "60", "--seed", "1", "--fault-seed", "1",
                "--faults",
                "device=0.1,malformed=0.08,storm=0.05,restart=0.05,attempts=2",
                "--journal", str(tmp_path / "svc.jsonl"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults applied" in out
        assert "metrics=ledger : True" in out


class TestBenchHistory:
    def test_save_and_compare(self, points_file, tmp_path, capsys):
        path = str(tmp_path / "run.json")
        main(
            [
                "bench",
                points_file,
                "--eps",
                "0.2",
                "--minpts-sweep",
                "5",
                "--algorithms",
                "fdbscan",
                "--save",
                path,
            ]
        )
        assert "records written" in capsys.readouterr().out
        main(
            [
                "bench",
                points_file,
                "--eps",
                "0.2",
                "--minpts-sweep",
                "5",
                "--algorithms",
                "fdbscan",
                "--compare",
                path,
            ]
        )
        out = capsys.readouterr().out
        assert "comparison vs" in out
        assert "no regressions" in out

    def test_save_default_filename(self, points_file, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(
            [
                "bench",
                points_file,
                "--eps",
                "0.2",
                "--minpts-sweep",
                "5",
                "--algorithms",
                "fdbscan",
                "--save",
            ]
        )
        assert rc == 0
        assert "BENCH_sweep.json" in capsys.readouterr().out
        import json

        payload = json.loads((tmp_path / "BENCH_sweep.json").read_text())
        (record,) = payload["records"]
        assert "bvh_build" in record["kernels"]
        assert record["counters"]
