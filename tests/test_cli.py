"""Tests for the command-line interface (in-process, via main(argv))."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets import gaussian_blobs
from repro.datasets.io import save_points


@pytest.fixture
def points_file(tmp_path):
    X = gaussian_blobs(300, centers=3, std=0.05, seed=0)
    path = str(tmp_path / "pts.npy")
    save_points(path, X)
    return path


class TestParser:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_eps_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--minpts", "5"])

    def test_dataset_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "--dataset", "mnist", "--eps", "1", "--minpts", "2"]
            )


class TestClusterCommand:
    def test_cluster_file(self, points_file, capsys):
        rc = main(["cluster", points_file, "--eps", "0.2", "--minpts", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "n_clusters : 3" in out

    def test_cluster_named_dataset(self, capsys):
        rc = main(
            [
                "cluster",
                "--dataset",
                "portotaxi",
                "--n",
                "2000",
                "--eps",
                "0.005",
                "--minpts",
                "10",
            ]
        )
        assert rc == 0
        assert "n_clusters" in capsys.readouterr().out

    def test_counters_flag(self, points_file, capsys):
        main(
            [
                "cluster",
                points_file,
                "--eps",
                "0.2",
                "--minpts",
                "5",
                "--algorithm",
                "fdbscan",
                "--counters",
            ]
        )
        out = capsys.readouterr().out
        assert "distance_evals" in out
        assert "peak_bytes" in out

    def test_labels_out(self, points_file, tmp_path, capsys):
        out_path = str(tmp_path / "labels.npy")
        main(
            [
                "cluster",
                points_file,
                "--eps",
                "0.2",
                "--minpts",
                "5",
                "--labels-out",
                out_path,
            ]
        )
        labels = np.load(out_path)
        assert labels.shape == (300,)
        assert set(np.unique(labels)) >= {0, 1, 2}

    def test_subsampling_input_file(self, points_file, capsys):
        rc = main(
            ["cluster", points_file, "--n", "100", "--eps", "0.2", "--minpts", "3"]
        )
        assert rc == 0
        assert "n_points : 100" in capsys.readouterr().out

    def test_missing_input(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--eps", "0.2", "--minpts", "5"])

    def test_profile_flag(self, points_file, capsys):
        rc = main(
            [
                "cluster",
                points_file,
                "--eps",
                "0.2",
                "--minpts",
                "5",
                "--algorithm",
                "fdbscan",
                "--profile",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel profile" in out
        assert "bvh_build" in out
        assert "fdbscan_main" in out


class TestBenchCommand:
    def test_minpts_sweep(self, points_file, capsys):
        rc = main(
            [
                "bench",
                points_file,
                "--eps",
                "0.2",
                "--minpts-sweep",
                "3,5",
                "--algorithms",
                "fdbscan,densebox",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fdbscan" in out and "densebox" in out
        assert "status" in out

    def test_eps_sweep(self, points_file, capsys):
        rc = main(
            [
                "bench",
                points_file,
                "--minpts",
                "5",
                "--eps",
                "0.2",
                "--eps-sweep",
                "0.1,0.2",
                "--algorithms",
                "fdbscan",
            ]
        )
        assert rc == 0
        assert "0.1" in capsys.readouterr().out

    def test_kernel_profile_printed(self, points_file, capsys):
        rc = main(
            [
                "bench",
                points_file,
                "--eps",
                "0.2",
                "--minpts-sweep",
                "3,5",
                "--algorithms",
                "fdbscan",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel profile" in out
        assert "replayed" in out

    def test_no_reuse_index_flag(self, points_file, capsys):
        rc = main(
            [
                "bench",
                points_file,
                "--eps",
                "0.2",
                "--minpts-sweep",
                "3,5",
                "--algorithms",
                "fdbscan",
                "--no-reuse-index",
            ]
        )
        assert rc == 0
        assert "kernel profile" in capsys.readouterr().out

    def test_memory_cap_reports_oom(self, capsys):
        rc = main(
            [
                "bench",
                "--dataset",
                "ngsim",
                "--n",
                "2000",
                "--eps",
                "0.01",
                "--minpts-sweep",
                "5",
                "--algorithms",
                "gdbscan",
                "--memory-cap",
                "100000",
            ]
        )
        assert rc == 0
        assert "oom" in capsys.readouterr().out


class TestBenchHistory:
    def test_save_and_compare(self, points_file, tmp_path, capsys):
        path = str(tmp_path / "run.json")
        main(
            [
                "bench",
                points_file,
                "--eps",
                "0.2",
                "--minpts-sweep",
                "5",
                "--algorithms",
                "fdbscan",
                "--save",
                path,
            ]
        )
        assert "records written" in capsys.readouterr().out
        main(
            [
                "bench",
                points_file,
                "--eps",
                "0.2",
                "--minpts-sweep",
                "5",
                "--algorithms",
                "fdbscan",
                "--compare",
                path,
            ]
        )
        out = capsys.readouterr().out
        assert "comparison vs" in out
        assert "no regressions" in out

    def test_save_default_filename(self, points_file, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(
            [
                "bench",
                points_file,
                "--eps",
                "0.2",
                "--minpts-sweep",
                "5",
                "--algorithms",
                "fdbscan",
                "--save",
            ]
        )
        assert rc == 0
        assert "BENCH_sweep.json" in capsys.readouterr().out
        import json

        payload = json.loads((tmp_path / "BENCH_sweep.json").read_text())
        (record,) = payload["records"]
        assert "bvh_build" in record["kernels"]
        assert record["counters"]
