"""Tests for dataset IO, subsampling, and the hardened loader."""

import numpy as np
import pytest

from repro.datasets.io import (
    CorruptPointFileError,
    PointFileError,
    TransientReadError,
    load_points,
    save_points,
    subsample,
)
from repro.faults import RetryPolicy, SimClock


class TestSubsample:
    def test_without_replacement(self, blobs_2d):
        sample = subsample(blobs_2d, 100, seed=3)
        assert sample.shape == (100, 2)
        # all rows come from the original set, no duplicates
        as_tuples = {tuple(row) for row in sample}
        assert len(as_tuples) == 100

    def test_deterministic(self, blobs_2d):
        np.testing.assert_array_equal(
            subsample(blobs_2d, 50, seed=1), subsample(blobs_2d, 50, seed=1)
        )

    def test_seed_varies(self, blobs_2d):
        assert not np.array_equal(
            subsample(blobs_2d, 50, seed=1), subsample(blobs_2d, 50, seed=2)
        )

    def test_full_sample_is_permutation(self, blobs_2d):
        sample = subsample(blobs_2d, blobs_2d.shape[0], seed=0)
        np.testing.assert_array_equal(
            np.sort(sample, axis=0), np.sort(blobs_2d, axis=0)
        )

    def test_oversample_rejected(self, blobs_2d):
        with pytest.raises(ValueError, match="cannot draw"):
            subsample(blobs_2d, blobs_2d.shape[0] + 1)

    def test_nonpositive_rejected(self, blobs_2d):
        with pytest.raises(ValueError, match="positive"):
            subsample(blobs_2d, 0)


class TestRoundTrips:
    @pytest.mark.parametrize("ext", [".npy", ".csv", ".txt"])
    def test_self_describing_formats(self, tmp_path, blobs_2d, ext):
        path = str(tmp_path / f"pts{ext}")
        save_points(path, blobs_2d)
        back = load_points(path)
        np.testing.assert_allclose(back, blobs_2d, rtol=1e-15)

    def test_raw_binary_roundtrip(self, tmp_path, blobs_3d):
        path = str(tmp_path / "pts.bin")
        save_points(path, blobs_3d)
        back = load_points(path, dim=3)
        np.testing.assert_array_equal(back, blobs_3d)

    def test_raw_binary_needs_dim(self, tmp_path, blobs_2d):
        path = str(tmp_path / "pts.bin")
        save_points(path, blobs_2d)
        with pytest.raises(ValueError, match="dim"):
            load_points(path)

    def test_raw_binary_bad_size(self, tmp_path):
        path = str(tmp_path / "pts.bin")
        np.arange(7, dtype=np.float64).tofile(path)
        with pytest.raises(ValueError, match="divisible"):
            load_points(path, dim=2)

    def test_unknown_extension(self, tmp_path, blobs_2d):
        with pytest.raises(ValueError, match="unsupported"):
            save_points(str(tmp_path / "pts.parquet"), blobs_2d)
        with pytest.raises(ValueError, match="unsupported"):
            load_points(str(tmp_path / "pts.parquet"))

    def test_loaded_points_validated(self, tmp_path):
        path = str(tmp_path / "bad.csv")
        with open(path, "w") as fh:
            fh.write("0.0,nan\n")
        with pytest.raises(ValueError, match="non-finite"):
            load_points(path)


class TestHardenedLoading:
    """Typed corrupt-file errors; transient IO errors retried."""

    def test_truncated_npy_is_corrupt_and_names_the_file(self, tmp_path, blobs_2d):
        path = str(tmp_path / "pts.npy")
        save_points(path, blobs_2d)
        raw = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(raw[: len(raw) // 3])
        with pytest.raises(CorruptPointFileError, match="pts.npy") as ei:
            load_points(path)
        assert ei.value.path == path

    def test_ragged_csv_is_corrupt(self, tmp_path):
        path = str(tmp_path / "ragged.csv")
        with open(path, "w") as fh:
            fh.write("0.0,1.0\n0.5\n")
        with pytest.raises(CorruptPointFileError, match="ragged.csv"):
            load_points(path)

    def test_short_bin_is_corrupt_with_hint(self, tmp_path):
        path = str(tmp_path / "short.bin")
        np.arange(7, dtype=np.float64).tofile(path)
        with pytest.raises(CorruptPointFileError, match="truncated write"):
            load_points(path, dim=2)

    def test_corrupt_is_a_value_error_and_pointfileerror(self, tmp_path):
        # callers catching either the old ValueError or the new typed
        # hierarchy both keep working
        path = str(tmp_path / "garbage.npy")
        with open(path, "wb") as fh:
            fh.write(b"not a npy file at all")
        with pytest.raises(PointFileError):
            load_points(path)
        with pytest.raises(ValueError):
            load_points(path)

    def test_missing_file_propagates_unretried(self, tmp_path):
        clock = SimClock()
        with pytest.raises(FileNotFoundError):
            load_points(str(tmp_path / "absent.npy"), clock=clock)
        assert clock.now() == 0.0  # no backoff sleeps: never retried

    def test_transient_read_errors_are_retried(self, tmp_path, blobs_2d, monkeypatch):
        path = str(tmp_path / "pts.npy")
        save_points(path, blobs_2d)
        real_load = np.load
        failures = {"left": 2}

        def flaky_load(p, *a, **kw):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise OSError("simulated NFS hiccup")
            return real_load(p, *a, **kw)

        monkeypatch.setattr(np, "load", flaky_load)
        clock = SimClock()
        back = load_points(path, clock=clock)
        np.testing.assert_allclose(back, blobs_2d, rtol=1e-15)
        assert failures["left"] == 0
        assert clock.now() > 0.0  # backoff actually slept between attempts

    def test_retries_exhausted_surface_transient_error(
        self, tmp_path, blobs_2d, monkeypatch
    ):
        path = str(tmp_path / "pts.npy")
        save_points(path, blobs_2d)

        def always_fail(p, *a, **kw):
            raise OSError("disk on fire")

        monkeypatch.setattr(np, "load", always_fail)
        with pytest.raises(TransientReadError, match="disk on fire"):
            load_points(path, clock=SimClock())

    def test_corrupt_files_never_retried(self, tmp_path, monkeypatch):
        path = str(tmp_path / "garbage.npy")
        with open(path, "wb") as fh:
            fh.write(b"junk bytes")
        attempts = {"n": 0}
        real_load = np.load

        def counting_load(p, *a, **kw):
            attempts["n"] += 1
            return real_load(p, *a, **kw)

        monkeypatch.setattr(np, "load", counting_load)
        with pytest.raises(CorruptPointFileError):
            load_points(path, clock=SimClock())
        assert attempts["n"] == 1  # rereading bad bytes does not help

    def test_custom_retry_policy_respected(self, tmp_path, blobs_2d, monkeypatch):
        path = str(tmp_path / "pts.npy")
        save_points(path, blobs_2d)

        attempts = {"n": 0}

        def always_fail(p, *a, **kw):
            attempts["n"] += 1
            raise OSError("nope")

        monkeypatch.setattr(np, "load", always_fail)
        policy = RetryPolicy(max_attempts=1, transient=(TransientReadError,))
        with pytest.raises(TransientReadError):
            load_points(path, retry_policy=policy, clock=SimClock())
        assert attempts["n"] == 1  # the policy, not the default 3
