"""Tests for dataset IO and subsampling."""

import numpy as np
import pytest

from repro.datasets.io import load_points, save_points, subsample


class TestSubsample:
    def test_without_replacement(self, blobs_2d):
        sample = subsample(blobs_2d, 100, seed=3)
        assert sample.shape == (100, 2)
        # all rows come from the original set, no duplicates
        as_tuples = {tuple(row) for row in sample}
        assert len(as_tuples) == 100

    def test_deterministic(self, blobs_2d):
        np.testing.assert_array_equal(
            subsample(blobs_2d, 50, seed=1), subsample(blobs_2d, 50, seed=1)
        )

    def test_seed_varies(self, blobs_2d):
        assert not np.array_equal(
            subsample(blobs_2d, 50, seed=1), subsample(blobs_2d, 50, seed=2)
        )

    def test_full_sample_is_permutation(self, blobs_2d):
        sample = subsample(blobs_2d, blobs_2d.shape[0], seed=0)
        np.testing.assert_array_equal(
            np.sort(sample, axis=0), np.sort(blobs_2d, axis=0)
        )

    def test_oversample_rejected(self, blobs_2d):
        with pytest.raises(ValueError, match="cannot draw"):
            subsample(blobs_2d, blobs_2d.shape[0] + 1)

    def test_nonpositive_rejected(self, blobs_2d):
        with pytest.raises(ValueError, match="positive"):
            subsample(blobs_2d, 0)


class TestRoundTrips:
    @pytest.mark.parametrize("ext", [".npy", ".csv", ".txt"])
    def test_self_describing_formats(self, tmp_path, blobs_2d, ext):
        path = str(tmp_path / f"pts{ext}")
        save_points(path, blobs_2d)
        back = load_points(path)
        np.testing.assert_allclose(back, blobs_2d, rtol=1e-15)

    def test_raw_binary_roundtrip(self, tmp_path, blobs_3d):
        path = str(tmp_path / "pts.bin")
        save_points(path, blobs_3d)
        back = load_points(path, dim=3)
        np.testing.assert_array_equal(back, blobs_3d)

    def test_raw_binary_needs_dim(self, tmp_path, blobs_2d):
        path = str(tmp_path / "pts.bin")
        save_points(path, blobs_2d)
        with pytest.raises(ValueError, match="dim"):
            load_points(path)

    def test_raw_binary_bad_size(self, tmp_path):
        path = str(tmp_path / "pts.bin")
        np.arange(7, dtype=np.float64).tofile(path)
        with pytest.raises(ValueError, match="divisible"):
            load_points(path, dim=2)

    def test_unknown_extension(self, tmp_path, blobs_2d):
        with pytest.raises(ValueError, match="unsupported"):
            save_points(str(tmp_path / "pts.parquet"), blobs_2d)
        with pytest.raises(ValueError, match="unsupported"):
            load_points(str(tmp_path / "pts.parquet"))

    def test_loaded_points_validated(self, tmp_path):
        path = str(tmp_path / "bad.csv")
        with open(path, "w") as fh:
            fh.write("0.0,nan\n")
        with pytest.raises(ValueError, match="non-finite"):
            load_points(path)
