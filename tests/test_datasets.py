"""Tests for the dataset generators: determinism, shapes, and the
calibrated density regimes the figure reproductions rely on."""

import numpy as np
import pytest

from repro.core.api import dense_fraction_estimate
from repro.datasets import (
    DATASETS,
    gaussian_blobs,
    hacc_cosmology,
    load_dataset,
    ngsim_trajectories,
    noisy_rings,
    paper_params,
    portotaxi_traces,
    road_network_3d,
    uniform_box,
)


ALL_GENERATORS = [
    ngsim_trajectories,
    portotaxi_traces,
    road_network_3d,
    hacc_cosmology,
]


class TestGeneratorContracts:
    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_shape_and_dtype(self, gen):
        X = gen(500, seed=0)
        assert X.ndim == 2
        assert X.shape[0] == 500
        assert X.dtype == np.float64
        assert np.isfinite(X).all()

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_deterministic_in_seed(self, gen):
        np.testing.assert_array_equal(gen(200, seed=7), gen(200, seed=7))

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_seed_changes_data(self, gen):
        assert not np.array_equal(gen(200, seed=1), gen(200, seed=2))

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_rejects_nonpositive_n(self, gen):
        with pytest.raises(ValueError):
            gen(0)

    def test_dimensions(self):
        assert ngsim_trajectories(10).shape[1] == 2
        assert portotaxi_traces(10).shape[1] == 2
        assert road_network_3d(10).shape[1] == 2
        assert hacc_cosmology(10).shape[1] == 3

    def test_hacc_periodic_box(self):
        X = hacc_cosmology(2000, seed=0, box_size=5.0)
        assert (X >= 0).all() and (X < 5.0).all()


class TestRegistry:
    def test_all_registered_load(self):
        for name in DATASETS:
            X = load_dataset(name, 100, seed=0)
            assert X.shape == (100, DATASETS[name].dim)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("mnist", 10)
        with pytest.raises(ValueError, match="unknown dataset"):
            paper_params("mnist")

    def test_specs_carry_sweeps(self):
        for name, spec in DATASETS.items():
            assert spec.minpts_sweep_eps is not None
            assert len(spec.minpts_sweep_values) >= 4
            assert spec.eps_sweep_minpts is not None
            assert len(spec.eps_sweep_values) >= 4


class TestDensityRegimes:
    """The calibrated facts from Section 5 that the figures depend on."""

    def test_ngsim_overly_dense(self):
        X = load_dataset("ngsim", 16384, seed=1)
        spec = paper_params("ngsim")
        frac = dense_fraction_estimate(X, spec.minpts_sweep_eps, max(spec.minpts_sweep_values))
        assert frac > 0.95  # ">95% of points in dense cells even for the largest minpts"

    def test_portotaxi_dense(self):
        X = load_dataset("portotaxi", 16384, seed=1)
        frac = dense_fraction_estimate(X, 0.01, 50)
        assert frac > 0.85

    def test_road3d_dense_at_study_settings(self):
        X = load_dataset("road3d", 16384, seed=1)
        frac = dense_fraction_estimate(X, 0.08, 100)
        assert frac > 0.7

    def test_hacc_occupancy_ladder(self):
        # Section 5.2: ~13% at minpts=5, <2% at minpts=50, none above 100.
        X = load_dataset("hacc", 100_000, seed=1)
        f5 = dense_fraction_estimate(X, 0.042, 5)
        f50 = dense_fraction_estimate(X, 0.042, 50)
        f300 = dense_fraction_estimate(X, 0.042, 300)
        assert 0.08 < f5 < 0.25
        assert f50 < 0.02
        assert f300 == 0.0

    def test_hacc_eps_one_mostly_dense(self):
        # Section 5.2: ~91% of points in dense cells at eps = 1.0.
        X = load_dataset("hacc", 100_000, seed=1)
        assert dense_fraction_estimate(X, 1.0, 5) > 0.85

    def test_hacc_grid_is_huge_but_sparse(self):
        from repro.grid import build_grid
        from repro.grid.grid import compact_cells

        X = load_dataset("hacc", 50_000, seed=1)
        grid = build_grid(X, 0.042)
        coords = grid.cell_coords(X)
        _, n_cells, _, _, _ = compact_cells(grid, coords)
        assert grid.total_cells > 10**6
        assert n_cells < grid.total_cells / 100  # overwhelmingly empty


class TestSyntheticHelpers:
    def test_blobs_shape(self):
        X = gaussian_blobs(100, centers=3, dim=3, seed=0)
        assert X.shape == (100, 3)

    def test_blobs_noise_fraction(self):
        X = gaussian_blobs(100, centers=1, std=0.01, seed=0, noise_fraction=0.5)
        # half the points scattered: spread far beyond the cluster std
        assert X.std() > 0.05

    def test_blobs_validation(self):
        with pytest.raises(ValueError):
            gaussian_blobs(0)
        with pytest.raises(ValueError):
            gaussian_blobs(10, centers=0)

    def test_uniform_box(self):
        X = uniform_box(50, dim=2, box=3.0, seed=0)
        assert (X >= 0).all() and (X <= 3.0).all()

    def test_rings_radii(self):
        X = noisy_rings(600, rings=2, radius_step=1.0, noise=0.01, seed=0)
        r = np.linalg.norm(X, axis=1)
        # radii concentrate around 1 and 2
        assert ((np.abs(r - 1) < 0.1) | (np.abs(r - 2) < 0.1)).all()
