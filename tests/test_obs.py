"""Tests for repro.obs: spans, metrics, exporters, cost model, and the
end-to-end trace/metrics integration across device, comm, driver and
bench layers."""

import json

import numpy as np
import pytest

from repro.bench.harness import RunRecord, run_once, run_sweep
from repro.bench.history import load_records, save_records
from repro.bench.report import format_kernel_profile, merge_kernel_profiles
from repro.datasets import gaussian_blobs
from repro.device.device import Device
from repro.distributed.comm import SimulatedComm
from repro.distributed.driver import distributed_dbscan
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    cost_model_rows,
    format_cost_model,
    record_comm_stats,
    record_kernel_counters,
    record_kernel_profile,
    spans_csv,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_trace,
)


@pytest.fixture
def blobs():
    return gaussian_blobs(300, centers=3, std=0.05, seed=0)


class TestSpanModel:
    def test_span_parenting_and_ids(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            assert tr.current is outer
        assert outer.parent_id is None
        assert outer.trace_id == inner.trace_id == tr.trace_id
        assert outer.span_id != inner.span_id

    def test_distinct_tracers_distinct_trace_ids(self):
        assert Tracer().trace_id != Tracer().trace_id

    def test_span_timing_is_monotonic(self):
        tr = Tracer()
        with tr.span("a") as a:
            pass
        with tr.span("b") as b:
            pass
        assert a.seconds >= 0 and b.seconds >= 0
        assert b.t_start >= a.t_start

    def test_events_attach_to_current_span(self):
        tr = Tracer()
        with tr.span("s") as s:
            tr.event("hit", {"k": 1})
        (event,) = s.events
        assert event["name"] == "hit"
        assert event["attributes"] == {"k": 1}
        assert s.t_start <= event["t"]

    def test_orphan_events_kept(self):
        tr = Tracer()
        tr.event("stray", {"x": 2})
        assert tr.orphan_events[0]["name"] == "stray"

    def test_exception_marks_error_status(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("no")
        (span,) = tr.snapshot()
        assert span["status"] == "error"
        assert span["events"][0]["name"] == "exception"
        assert span["events"][0]["attributes"]["type"] == "RuntimeError"

    def test_end_unwinds_abandoned_children(self):
        tr = Tracer()
        root = tr.start("root")
        tr.start("abandoned")
        tr.end(root)  # closes the abandoned child too
        spans = {s["name"]: s for s in tr.snapshot()}
        assert spans["abandoned"]["status"] == "error"
        assert spans["root"]["status"] == "ok"
        assert tr.current is None

    def test_end_unknown_span_raises(self):
        tr = Tracer()
        span = tr.start("a")
        tr.end(span)
        with pytest.raises(RuntimeError):
            tr.end(span)

    def test_add_span_parented_but_not_current(self):
        tr = Tracer()
        with tr.span("parent") as parent:
            added = tr.add_span("replayed", "kernel.replayed", 0.0, 0.5)
            assert added.parent_id == parent.span_id
            assert tr.current is parent

    def test_ring_bounded_with_dropped_count(self):
        tr = Tracer(maxlen=3)
        for i in range(7):
            with tr.span(f"s{i}"):
                pass
        assert len(tr.spans) == 3
        assert tr.spans_total == 7
        assert tr.dropped == 4
        assert [s["name"] for s in tr.snapshot()] == ["s4", "s5", "s6"]

    def test_counter_samples(self):
        tr = Tracer()
        tr.counter("frontier", 12)
        ((name, t, value),) = tr.counter_samples
        assert name == "frontier" and value == 12.0 and t >= 0

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("x") as span:
            assert span is None
        assert NULL_TRACER.start("y") is None
        assert NULL_TRACER.event("e") is None
        assert NULL_TRACER.counter("c", 1) is None
        assert NULL_TRACER.snapshot() == []
        assert NULL_TRACER.dropped == 0


class TestMetricsRegistry:
    def test_counter_totals_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_x_total", "x")
        c.inc(2)
        c.inc(3, phase="a")
        c.inc(5, phase="b")
        assert c.total() == 10
        text = reg.to_prometheus()
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{phase="a"} 3' in text

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("repro_x_total", "x").inc(-1)

    def test_gauge_set_and_observe_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_peak", "peak")
        g.observe_max(5)
        g.observe_max(3)  # lower never regresses the watermark
        assert "repro_peak 5" in reg.to_prometheus()

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_s", "seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            h.observe(v)
        text = reg.to_prometheus()
        assert 'repro_s_bucket{le="0.1"} 1' in text
        assert 'repro_s_bucket{le="1"} 2' in text
        assert 'repro_s_bucket{le="+Inf"} 3' in text
        assert "repro_s_count 3" in text

    def test_csv_exposition(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "x").inc(4, phase="p")
        csv_text = reg.to_csv()
        assert csv_text.splitlines()[0].startswith("metric")
        assert "repro_x_total" in csv_text and "4" in csv_text

    def test_kernel_counter_totals_equal_snapshot(self, device):
        with device.kernel("k", threads=8):
            device.counters.add("distance_evals", 123)
            device.counters.observe_peak("frontier_peak", 77)
        snap = device.counters.snapshot()
        reg = MetricsRegistry()
        record_kernel_counters(reg, snap)
        text = reg.to_prometheus()
        assert f"repro_distance_evals_total {snap['distance_evals']}" in text
        assert f"repro_kernel_launches_total {snap['kernel_launches']}" in text
        # watermark exported as a gauge, not a counter
        assert "repro_frontier_peak 77" in text
        assert "repro_frontier_peak_total" not in text

    def test_comm_totals_equal_commstats(self):
        comm = SimulatedComm(2)
        comm.exchange("ghosts", [np.arange(4, dtype=np.float64)] * 2)
        comm.gather("merge", [np.arange(2, dtype=np.float64)] * 2)
        stats = comm.stats.as_dict()
        reg = MetricsRegistry()
        record_comm_stats(reg, stats)
        messages = reg.counter("repro_comm_messages_total", "")
        nbytes = reg.counter("repro_comm_bytes_total", "")
        assert messages.total() == stats["messages"]
        assert nbytes.total() == stats["bytes_sent"]

    def test_kernel_profile_seconds_match(self, device):
        with device.kernel("a", threads=1):
            pass
        with device.kernel("b", threads=1):
            pass
        profile = device.profile()
        reg = MetricsRegistry()
        record_kernel_profile(reg, profile)
        seconds = reg.counter("repro_kernel_seconds_total", "")
        assert seconds.total() == pytest.approx(
            sum(row["seconds"] for row in profile.values())
        )


class TestChromeExport:
    def _traced(self):
        tr = Tracer()
        with tr.span("phase", category="phase"):
            with tr.span("k", category="kernel", attributes={"threads": 4}):
                tr.event("fault:drop", {"rank": 0})
            tr.counter("frontier_peak", 9)
        return tr

    def test_valid_payload(self):
        payload = chrome_trace(self._traced())
        counts = validate_chrome_trace(payload)
        assert counts["spans"] == 2
        assert counts["counters"] == 1
        assert counts["instants"] == 1
        assert counts["dropped_spans"] == 0

    def test_lane_assignment_and_identity_args(self):
        payload = chrome_trace(self._traced())
        xs = {e["name"]: e for e in payload["traceEvents"] if e["ph"] == "X"}
        assert xs["phase"]["tid"] == 0  # control lane
        assert xs["k"]["tid"] == 1  # kernel lane
        assert xs["k"]["args"]["parent_id"] == xs["phase"]["args"]["span_id"]
        assert xs["k"]["args"]["threads"] == 4

    def test_metadata_thread_names(self):
        payload = chrome_trace(self._traced())
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"control", "device kernels"} <= names

    def test_truncated_trace_emits_marker(self):
        tr = Tracer(maxlen=2)
        for i in range(5):
            with tr.span(f"s{i}"):
                pass
        payload = chrome_trace(tr)
        assert payload["metadata"]["dropped_spans"] == 3
        markers = [
            e for e in payload["traceEvents"] if e["name"] == "trace_truncated"
        ]
        assert len(markers) == 1
        assert markers[0]["args"]["dropped_spans"] == 3
        assert validate_chrome_trace(payload)["dropped_spans"] == 3

    def test_validator_rejects_missing_truncation_marker(self):
        payload = chrome_trace(self._traced())
        payload["metadata"]["dropped_spans"] = 4  # declared but unmarked
        with pytest.raises(ValueError, match="trace_truncated"):
            validate_chrome_trace(payload)

    def test_validator_rejects_non_monotonic_ts(self):
        payload = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 10.0, "dur": 1.0, "pid": 0, "tid": 0},
                {"name": "b", "ph": "X", "ts": 5.0, "dur": 1.0, "pid": 0, "tid": 0},
            ]
        }
        with pytest.raises(ValueError, match="ts"):
            validate_chrome_trace(payload)

    def test_validator_rejects_bad_nesting(self):
        payload = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0.0, "dur": 10.0, "pid": 0, "tid": 0},
                {"name": "b", "ph": "X", "ts": 5.0, "dur": 10.0, "pid": 0, "tid": 0},
            ]
        }
        with pytest.raises(ValueError, match="nest"):
            validate_chrome_trace(payload)

    def test_validator_rejects_missing_keys_and_unmatched_begin(self):
        payload = {
            "traceEvents": [
                {"ph": "X", "ts": 0.0, "pid": 0, "tid": 0},  # no name/dur
                {"name": "open", "ph": "B", "ts": 1.0, "pid": 0, "tid": 0},
            ]
        }
        with pytest.raises(ValueError) as err:
            validate_chrome_trace(payload)
        assert "missing" in str(err.value)
        assert "unmatched 'B'" in str(err.value)

    def test_device_as_source(self, device):
        with device.kernel("k1", threads=2):
            pass
        payload = chrome_trace(device)
        counts = validate_chrome_trace(payload)
        assert counts["spans"] == 1
        (x,) = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert x["tid"] == 1 and x["name"] == "k1"

    def test_csv_export_and_truncation_row(self):
        tr = Tracer(maxlen=2)
        for i in range(4):
            with tr.span(f"s{i}", attributes={"i": i}):
                pass
        text = spans_csv(tr)
        lines = text.splitlines()
        assert lines[0].startswith("trace_id,span_id,parent_id")
        assert "__trace_truncated__" in lines[1]
        assert "dropped_spans=2" in lines[1]
        assert len(lines) == 2 + 2  # header + marker + the two surviving spans

    def test_write_trace_formats(self, tmp_path):
        tr = self._traced()
        chrome_path = tmp_path / "t.json"
        csv_path = tmp_path / "t.csv"
        write_trace(str(chrome_path), tr, fmt="chrome")
        write_trace(str(csv_path), tr, fmt="csv")
        assert validate_chrome_trace_file(str(chrome_path))["spans"] == 2
        assert "phase" in csv_path.read_text()
        with pytest.raises(ValueError):
            write_trace(str(chrome_path), tr, fmt="pdf")


class TestCostModel:
    def test_rows_join_seconds_and_counters(self, device):
        with device.kernel("hot", threads=10) as launch:
            launch.steps = 2
            device.counters.add("distance_evals", 1000)
        rows = cost_model_rows(device.profile())
        (row,) = rows
        assert row["kernel"] == "hot"
        assert row["launches"] == 1
        assert row["counters"]["distance_evals"] == 1000
        if row["seconds"] > 0:
            assert row["distance_evals_per_s"] == pytest.approx(
                1000 / row["seconds"]
            )

    def test_rows_sorted_hottest_first(self, device):
        import time

        with device.kernel("slow", threads=1):
            time.sleep(0.005)
        with device.kernel("fast", threads=1):
            pass
        rows = cost_model_rows(device.profile())
        assert rows[0]["kernel"] == "slow"

    def test_format_cost_model(self, device):
        with device.kernel("k", threads=1):
            device.counters.add("distance_evals", 10)
        out = format_cost_model(device.profile())
        assert "cost model" in out
        assert "k" in out and "evals/s" in out
        assert format_cost_model({}) .startswith("-- cost model --")


class TestTracedIntegration:
    def test_device_kernels_nest_under_driver_phases(self, blobs):
        tr = Tracer()
        distributed_dbscan(blobs, 0.2, 5, n_ranks=2, tracer=tr)
        spans = {s["span_id"]: s for s in tr.snapshot()}
        by_cat = {}
        for s in spans.values():
            by_cat.setdefault(s["category"], []).append(s)
        assert {"driver", "phase", "kernel", "comm"} <= set(by_cat)
        # every non-root span's parent exists and the root is the driver span
        (root,) = [s for s in spans.values() if s["parent_id"] is None]
        assert root["name"] == "distributed_dbscan"
        for s in spans.values():
            if s["parent_id"] is not None:
                assert s["parent_id"] in spans
        # kernels are children of phase spans (never of the bare root)
        for k in by_cat["kernel"]:
            assert spans[k["parent_id"]]["category"] in ("phase", "kernel")

    def test_fault_events_land_on_spans(self, blobs):
        tr = Tracer()
        plan = FaultPlan(seed=1, spec=FaultSpec.uniform(0.3, crash=0.2))
        distributed_dbscan(blobs, 0.2, 5, n_ranks=3, fault_plan=plan, tracer=tr)
        assert plan.log  # faults actually fired
        traced = [
            e
            for s in tr.snapshot()
            for e in s["events"]
            if e["name"].startswith("fault:")
        ] + [e for e in tr.orphan_events if e["name"].startswith("fault:")]
        assert len(traced) == len(plan.log)

    def test_sweep_produces_one_valid_trace(self, blobs, tmp_path):
        """The acceptance scenario: one sweep over >= 2 cells with faults,
        mixing single-device and distributed cells, yields a single valid
        Chrome trace where kernel, comm and phase spans share a timeline."""
        tr = Tracer()
        plan = FaultPlan(seed=2, spec=FaultSpec.uniform(0.15))
        records = run_sweep(
            ["fdbscan", "distributed"],
            [{"eps": 0.2, "min_samples": 5}, {"eps": 0.2, "min_samples": 3}],
            lambda cell: blobs,
            dataset="blobs",
            fault_plan=plan,
            tracer=tr,
            n_ranks=2,
        )
        assert len(records) == 4
        spans = tr.snapshot()
        trace_ids = {s["trace_id"] for s in spans}
        assert trace_ids == {tr.trace_id}
        cats = {s["category"] for s in spans}
        assert {"bench", "phase", "kernel", "comm", "driver"} <= cats
        by_id = {s["span_id"]: s for s in spans}
        (sweep_span,) = [s for s in spans if s["name"] == "sweep"]
        cell_spans = [s for s in spans if s["category"] == "bench" and s is not sweep_span]
        assert len(cell_spans) == 4
        assert all(c["parent_id"] == sweep_span["span_id"] for c in cell_spans)
        # a comm span's ancestry reaches a distributed cell span
        comm_span = next(s for s in spans if s["category"] == "comm")
        seen = set()
        cur = comm_span
        while cur["parent_id"] is not None:
            cur = by_id[cur["parent_id"]]
            seen.add(cur["name"])
        assert "cell:distributed" in seen and "sweep" in seen
        path = tmp_path / "trace.json"
        write_trace(str(path), tr, fmt="chrome")
        counts = validate_chrome_trace_file(str(path))
        assert counts["spans"] == len(spans)

    def test_replayed_builds_on_their_own_lane(self, blobs):
        tr = Tracer()
        run_sweep(
            ["fdbscan"],
            [{"eps": 0.2, "min_samples": 3}, {"eps": 0.2, "min_samples": 5}],
            lambda cell: blobs,
            tracer=tr,
        )
        replayed = [s for s in tr.snapshot() if s["category"] == "kernel.replayed"]
        assert replayed  # the second cell replays the shared index build
        payload = chrome_trace(tr)
        validate_chrome_trace(payload)
        lane = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "kernel.replayed"
        ]
        assert all(e["tid"] == 3 for e in lane)
        # the lane is sequential: spans laid end-to-end, no fake overlaps
        lane.sort(key=lambda e: e["ts"])
        for prev, nxt in zip(lane, lane[1:]):
            assert nxt["ts"] >= prev["ts"] + prev["dur"] - 1e-6


class TestColdBudget:
    def test_cold_equivalent_seconds(self):
        rec = RunRecord(
            algorithm="a", dataset="d", n=1, eps=0.1, min_samples=2,
            seconds=0.25, replayed_build_seconds=0.75,
        )
        assert rec.cold_equivalent_seconds() == pytest.approx(1.0)
        nan_rec = RunRecord(algorithm="a", dataset="d", n=1, eps=0.1, min_samples=2)
        assert nan_rec.cold_equivalent_seconds() != nan_rec.cold_equivalent_seconds()

    def test_replayed_build_seconds_captured(self, blobs):
        from repro.core.index import DBSCANIndex

        index = DBSCANIndex(blobs)
        cold = run_once("fdbscan", blobs, 0.2, 5, index=index)  # builds live
        warm = run_once("fdbscan", blobs, 0.2, 5, index=index)  # replays
        assert cold.replayed_build_seconds == 0.0
        assert warm.reused_index
        assert warm.replayed_build_seconds > 0.0
        assert warm.cold_equivalent_seconds() > warm.seconds

    def test_cold_mode_trips_budget_wall_mode_does_not(self, blobs, monkeypatch):
        """Regression: a warm cell whose replayed build pushes it past the
        budget must be skipped under mode="cold" but not under "wall"."""
        import repro.bench.harness as harness

        def fake_run_once(algorithm, X, eps, min_samples, **kwargs):
            return RunRecord(
                algorithm=algorithm, dataset="d", n=int(X.shape[0]),
                eps=float(eps), min_samples=int(min_samples),
                seconds=0.01, replayed_build_seconds=5.0, status="ok",
            )

        monkeypatch.setattr(harness, "run_once", fake_run_once)
        cells = [{"eps": 0.2, "min_samples": 3}, {"eps": 0.2, "min_samples": 5}]
        wall = run_sweep(
            ["fdbscan"], cells, lambda c: blobs, time_budget=1.0,
            time_budget_mode="wall", reuse_index=False,
        )
        assert [r.status for r in wall] == ["ok", "ok"]
        cold = run_sweep(
            ["fdbscan"], cells, lambda c: blobs, time_budget=1.0,
            time_budget_mode="cold", reuse_index=False,
        )
        assert [r.status for r in cold] == ["ok", "skipped"]
        assert "cold-equivalent" in cold[1].detail

    def test_bad_mode_rejected(self, blobs):
        with pytest.raises(ValueError, match="time_budget_mode"):
            run_sweep(
                ["fdbscan"], [{"eps": 0.2, "min_samples": 3}], lambda c: blobs,
                time_budget_mode="warm",
            )


class TestProfilePersistence:
    def test_new_profile_fields_round_trip(self, blobs, tmp_path):
        rec = run_once("fdbscan", blobs, 0.2, 5)
        path = str(tmp_path / "run.json")
        save_records(path, [rec])
        (back,), _meta = load_records(path)
        assert back.replayed_build_seconds == pytest.approx(
            rec.replayed_build_seconds
        )
        for name, row in rec.kernels.items():
            assert back.kernels[name]["self_seconds"] == pytest.approx(
                row["self_seconds"]
            )
            assert back.kernels[name]["replayed_seconds"] == pytest.approx(
                row["replayed_seconds"]
            )
            assert back.kernels[name]["counters"] == {
                k: int(v) for k, v in row["counters"].items()
            }

    def test_old_payload_without_new_fields_loads(self, tmp_path):
        payload = {
            "meta": {},
            "records": [
                {
                    "algorithm": "fdbscan", "dataset": "d", "n": 10, "eps": 0.1,
                    "min_samples": 2, "seconds": 0.5, "status": "ok",
                    "n_clusters": 1, "n_noise": 0, "dense_fraction": None,
                    "peak_bytes": 100, "counters": {},
                    "kernels": {
                        "bvh_build": {
                            "launches": 1, "replayed": 0, "seconds": 0.1,
                            "threads": 10, "steps": 1,
                        }
                    },
                }
            ],
        }
        path = tmp_path / "old.json"
        path.write_text(json.dumps(payload))
        (rec,), _meta = load_records(str(path))
        assert rec.replayed_build_seconds == 0.0
        # the profile table still renders old rows (missing new keys)
        out = format_kernel_profile([rec])
        assert "bvh_build" in out and "self_s" in out

    def test_merge_kernel_profiles_sums_counters(self, device):
        with device.kernel("k", threads=1):
            device.counters.add("distance_evals", 5)
            device.counters.observe_peak("frontier_peak", 10)
        rec1 = RunRecord(
            algorithm="a", dataset="d", n=1, eps=0.1, min_samples=2,
            kernels=device.profile(),
        )
        rec2 = RunRecord(
            algorithm="a", dataset="d", n=1, eps=0.1, min_samples=2,
            kernels=device.profile(),
        )
        merged = merge_kernel_profiles([rec1, rec2])
        assert merged["k"]["launches"] == 2
        assert merged["k"]["counters"]["distance_evals"] == 10
        # watermark merges by max, never sums
        assert merged["k"]["counters"]["frontier_peak"] == 10
