"""Tests for the dense-cell decomposition and the mixed primitive set."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.device import Device
from repro.grid.dense_cells import decompose


def _clustered(seed=0, n=400):
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [rng.normal(0, 0.02, size=(n // 2, 2)), rng.uniform(0, 4, size=(n // 2, 2))]
    )


class TestDecompose:
    def test_partition_dense_vs_isolated(self):
        X = _clustered()
        deco = decompose(X, eps=0.1, minpts=10)
        assert deco.n_dense_points + deco.n_isolated == X.shape[0]
        assert not np.intersect1d(
            np.flatnonzero(deco.is_dense_point), deco.isolated_idx
        ).size

    def test_dense_cells_have_at_least_minpts(self):
        X = _clustered(1)
        minpts = 12
        deco = decompose(X, eps=0.15, minpts=minpts)
        assert (deco.cell_counts[deco.dense_cells] >= minpts).all()
        non_dense = np.setdiff1d(np.arange(deco.n_cells), deco.dense_cells)
        assert (deco.cell_counts[non_dense] < minpts).all()

    def test_dense_box_bounds_members_and_diameter(self):
        X = _clustered(2)
        eps = 0.2
        deco = decompose(X, eps=eps, minpts=8)
        for rank in range(deco.n_dense):
            starts, cnts = deco.dense_members(np.array([rank]))
            members = deco.members[starts[0] : starts[0] + cnts[0]]
            pts = X[members]
            lo = deco.prim_lo[deco.n_isolated + rank]
            hi = deco.prim_hi[deco.n_isolated + rank]
            assert (pts >= lo - 1e-12).all() and (pts <= hi + 1e-12).all()
            # tight-box diameter still bounded by eps
            assert np.linalg.norm(hi - lo) <= eps + 1e-9

    def test_primitive_layout(self):
        X = _clustered(3)
        deco = decompose(X, eps=0.12, minpts=10)
        n_iso, n_dense = deco.n_isolated, deco.n_dense
        assert deco.prim_lo.shape[0] == n_iso + n_dense
        assert not deco.prim_is_box[:n_iso].any()
        assert deco.prim_is_box[n_iso:].all()
        # point prims carry dataset indices, box prims dense ranks
        np.testing.assert_array_equal(deco.prim_point[:n_iso], deco.isolated_idx)
        np.testing.assert_array_equal(
            deco.prim_point[n_iso:], np.arange(n_dense)
        )
        # point prims are degenerate boxes at the right coordinates
        np.testing.assert_array_equal(deco.prim_lo[:n_iso], X[deco.isolated_idx])
        np.testing.assert_array_equal(deco.prim_hi[:n_iso], X[deco.isolated_idx])

    def test_dense_rank_of_cell_inverse(self):
        X = _clustered(4)
        deco = decompose(X, eps=0.1, minpts=6)
        for rank, cell in enumerate(deco.dense_cells):
            assert deco.dense_rank_of_cell[cell] == rank
        non_dense = np.setdiff1d(np.arange(deco.n_cells), deco.dense_cells)
        assert (deco.dense_rank_of_cell[non_dense] == -1).all()

    def test_minpts_one_absorbs_everything(self):
        X = _clustered(5)
        deco = decompose(X, eps=0.1, minpts=1)
        assert deco.n_isolated == 0
        assert deco.dense_fraction() == 1.0

    def test_huge_minpts_absorbs_nothing(self):
        X = _clustered(6)
        deco = decompose(X, eps=0.1, minpts=10**6)
        assert deco.n_dense == 0
        assert deco.dense_fraction() == 0.0
        assert not deco.prim_is_box.any()

    def test_device_accounting(self):
        dev = Device()
        X = _clustered(7)
        deco = decompose(X, eps=0.1, minpts=10, device=dev)
        assert dev.counters.dense_cell_points == deco.n_dense_points
        assert dev.memory.live_by_tag["grid"] == deco.nbytes()
        # decompose = eps-only binning followed by the minpts threshold
        assert any(l.name == "grid_bin" for l in dev.launches)
        assert any(l.name == "dense_threshold" for l in dev.launches)
        assert dev.counters.extra.get("grid_binnings") == 1

    def test_all_duplicate_points(self):
        X = np.ones((30, 2))
        deco = decompose(X, eps=0.5, minpts=5)
        assert deco.n_dense == 1
        assert deco.n_isolated == 0
        rank = np.array([0])
        starts, cnts = deco.dense_members(rank)
        assert cnts[0] == 30

    @given(st.integers(0, 5000), st.floats(0.05, 0.5), st.integers(1, 40))
    @settings(max_examples=30, deadline=None)
    def test_dense_classification_property(self, seed, eps, minpts):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0, 1, size=(rng.integers(1, 200), 2))
        deco = decompose(X, eps=eps, minpts=minpts)
        # every dense point's cell population >= minpts; isolated < minpts
        pops = deco.cell_counts[deco.cell_of_point]
        np.testing.assert_array_equal(deco.is_dense_point, pops >= minpts)
        # members CSR is a permutation of all points
        assert sorted(deco.members.tolist()) == list(range(X.shape[0]))
