"""Tests for the reusable spatial index (repro.core.index)."""

import numpy as np
import pytest

from repro.core.api import dbscan
from repro.core.densebox import fdbscan_densebox
from repro.core.fdbscan import fdbscan
from repro.core.index import DBSCANIndex, points_fingerprint
from repro.device.device import Device


class TestFingerprint:
    def test_deterministic_and_layout_insensitive(self, blobs_2d):
        a = points_fingerprint(blobs_2d)
        b = points_fingerprint(np.asfortranarray(blobs_2d))
        c = points_fingerprint(blobs_2d.copy())
        assert a == b == c

    def test_differs_on_content(self, blobs_2d):
        other = blobs_2d.copy()
        other[0, 0] += 1e-9
        assert points_fingerprint(other) != points_fingerprint(blobs_2d)

    def test_check_points_rejects_wrong_data(self, blobs_2d):
        index = DBSCANIndex(blobs_2d)
        other = blobs_2d.copy()
        other[3, 1] += 0.5
        with pytest.raises(ValueError, match="fingerprint"):
            index.check_points(other)
        with pytest.raises(ValueError, match="shape"):
            index.check_points(blobs_2d[:-1])
        index.check_points(blobs_2d)  # identity passes

    def test_stale_index_rejected_by_algorithms(self, blobs_2d, rng):
        index = DBSCANIndex(blobs_2d)
        other = rng.normal(size=blobs_2d.shape)
        with pytest.raises(ValueError, match="fingerprint"):
            fdbscan(other, 0.2, 5, index=index)
        with pytest.raises(ValueError, match="fingerprint"):
            fdbscan_densebox(other, 0.2, 5, index=index)


class TestPointsTreeReuse:
    def test_built_once_then_replayed(self, blobs_2d):
        index = DBSCANIndex(blobs_2d)
        assert not index.has_points_tree
        cold_dev = Device(name="cold")
        tree, reused = index.points_tree(cold_dev)
        assert not reused and index.has_points_tree
        warm_dev = Device(name="warm")
        tree2, reused2 = index.points_tree(warm_dev)
        assert reused2 and tree2 is tree

    def test_warm_accounting_matches_cold(self, blobs_2d):
        cold_dev, warm_dev = Device(name="cold"), Device(name="warm")
        cold = fdbscan(blobs_2d, 0.2, 5, device=cold_dev)
        warm = fdbscan(blobs_2d, 0.2, 5, device=warm_dev, index=cold.info["index"])
        assert not cold.info["index_reused"]
        assert warm.info["index_reused"]
        np.testing.assert_array_equal(cold.labels, warm.labels)
        assert cold_dev.counters.snapshot() == warm_dev.counters.snapshot()
        assert cold_dev.memory.peak_bytes == warm_dev.memory.peak_bytes

    def test_replayed_spans_flagged(self, blobs_2d):
        cold = fdbscan(blobs_2d, 0.2, 5, device=Device())
        warm_dev = Device()
        fdbscan(blobs_2d, 0.2, 5, device=warm_dev, index=cold.info["index"])
        build = warm_dev.profile()["bvh_build"]
        assert build["launches"] == 1
        assert build["replayed"] == 1
        spans = [s for s in warm_dev.trace_snapshot() if s["name"] == "bvh_build"]
        assert spans and all(s["replayed"] for s in spans)

    def test_replay_hits_memory_cap_like_cold_build(self, blobs_2d):
        from repro.device.memory import DeviceMemoryError

        cold_dev = Device()
        cold = fdbscan(blobs_2d, 0.2, 5, device=cold_dev)
        with pytest.raises(DeviceMemoryError):
            fdbscan(
                blobs_2d, 0.2, 5,
                device=Device(capacity_bytes=1000),
                index=cold.info["index"],
            )


class TestDenseCache:
    def test_hit_requires_equal_key(self, blobs_2d):
        index = DBSCANIndex(blobs_2d)
        _, _, reused0 = index.dense_decomposition(0.2, 5, device=Device())
        _, _, reused1 = index.dense_decomposition(0.2, 5, device=Device())
        _, _, reused2 = index.dense_decomposition(0.3, 5, device=Device())
        _, _, reused3 = index.dense_decomposition(0.2, 6, device=Device())
        assert (reused0, reused1, reused2, reused3) == (False, True, False, False)
        assert index.n_dense_entries == 3

    def test_weights_part_of_key(self, blobs_2d):
        index = DBSCANIndex(blobs_2d)
        w = np.ones(blobs_2d.shape[0])
        index.dense_decomposition(0.2, 5, device=Device())
        _, _, reused = index.dense_decomposition(0.2, 5, device=Device(), sample_weight=w)
        assert not reused

    def test_fifo_eviction_bound(self, blobs_2d):
        index = DBSCANIndex(blobs_2d, max_dense_entries=2)
        for eps in (0.1, 0.2, 0.3):
            index.dense_decomposition(eps, 5, device=Device())
        assert index.n_dense_entries == 2
        # the oldest key (0.1) was evicted: using it again is a cold build
        _, _, reused = index.dense_decomposition(0.1, 5, device=Device())
        assert not reused
        _, _, reused = index.dense_decomposition(0.3, 5, device=Device())
        assert reused

    def test_densebox_warm_accounting_matches_cold(self, blobs_2d):
        cold_dev, warm_dev = Device(), Device()
        cold = fdbscan_densebox(blobs_2d, 0.2, 5, device=cold_dev)
        warm = fdbscan_densebox(
            blobs_2d, 0.2, 5, device=warm_dev, index=cold.info["index"]
        )
        assert warm.info["index_reused"]
        np.testing.assert_array_equal(cold.labels, warm.labels)
        assert cold_dev.counters.snapshot() == warm_dev.counters.snapshot()
        assert cold_dev.memory.peak_bytes == warm_dev.memory.peak_bytes


class TestApiIntegration:
    def test_info_returns_index_for_chaining(self, blobs_2d):
        res = dbscan(blobs_2d, 0.2, 5, algorithm="fdbscan")
        index = res.info["index"]
        assert isinstance(index, DBSCANIndex)
        res2 = dbscan(blobs_2d, 0.3, 5, algorithm="fdbscan", index=index)
        assert res2.info["index"] is index
        assert res2.info["index_reused"]

    def test_index_shared_across_algorithms(self, blobs_2d):
        index = DBSCANIndex(blobs_2d)
        a = dbscan(blobs_2d, 0.2, 5, algorithm="fdbscan", index=index)
        b = dbscan(blobs_2d, 0.2, 5, algorithm="fdbscan-densebox", index=index)
        assert a.info["index"] is b.info["index"] is index
        assert index.has_points_tree and index.n_dense_entries == 1

    def test_baseline_rejects_index(self, blobs_2d):
        with pytest.raises(ValueError, match="does not use a spatial index"):
            dbscan(blobs_2d, 0.2, 5, algorithm="brute", index=DBSCANIndex(blobs_2d))

    def test_unknown_algorithm_error_wins_over_index_error(self, blobs_2d):
        with pytest.raises(ValueError, match="unknown algorithm"):
            dbscan(blobs_2d, 0.2, 5, algorithm="nope", index=DBSCANIndex(blobs_2d))

    def test_build_seconds_and_nbytes(self, blobs_2d):
        index = DBSCANIndex(blobs_2d)
        assert index.nbytes() == 0
        dbscan(blobs_2d, 0.2, 5, algorithm="fdbscan", index=index)
        dbscan(blobs_2d, 0.2, 5, algorithm="fdbscan-densebox", index=index)
        secs = index.build_seconds()
        assert set(secs) == {"points", "binning eps=0.2", "dense eps=0.2 minpts=5"}
        assert all(s >= 0 for s in secs.values())
        assert index.nbytes() > 0
