"""Unit and property tests for the Thrust-level parallel primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.device.primitives import (
    concatenated_ranges,
    exclusive_scan,
    histogram_by_key,
    inclusive_scan,
    run_length_encode,
    segment_ids_from_counts,
    segmented_reduce,
    sort_by_key,
    stream_compact,
)

int_arrays = hnp.arrays(
    dtype=np.int64, shape=st.integers(0, 60), elements=st.integers(-50, 50)
)


class TestScans:
    def test_exclusive_scan_basic(self):
        np.testing.assert_array_equal(
            exclusive_scan(np.array([3, 1, 4, 1, 5])), [0, 3, 4, 8, 9]
        )

    def test_exclusive_scan_empty(self):
        assert exclusive_scan(np.array([], dtype=np.int64)).shape == (0,)

    def test_inclusive_scan_basic(self):
        np.testing.assert_array_equal(
            inclusive_scan(np.array([3, 1, 4])), [3, 4, 8]
        )

    def test_exclusive_scan_widens_small_ints(self):
        # int8 inputs must not overflow the running sum.
        values = np.full(100, 100, dtype=np.int8)
        assert exclusive_scan(values)[-1] == 99 * 100

    def test_scan_float(self):
        out = exclusive_scan(np.array([0.5, 0.25]))
        np.testing.assert_allclose(out, [0.0, 0.5])

    @given(int_arrays)
    @settings(max_examples=50, deadline=None)
    def test_exclusive_inclusive_relation(self, values):
        ex = exclusive_scan(values)
        inc = inclusive_scan(values)
        np.testing.assert_array_equal(inc, ex + values)


class TestSortByKey:
    def test_values_follow_keys(self):
        keys = np.array([3, 1, 2])
        vals = np.array([30, 10, 20])
        sk, sv, order = sort_by_key(keys, vals)
        np.testing.assert_array_equal(sk, [1, 2, 3])
        np.testing.assert_array_equal(sv, [10, 20, 30])
        np.testing.assert_array_equal(order, [1, 2, 0])

    def test_stability(self):
        keys = np.array([1, 0, 1, 0])
        vals = np.array([0, 1, 2, 3])
        _, sv, _ = sort_by_key(keys, vals)
        np.testing.assert_array_equal(sv, [1, 3, 0, 2])

    def test_no_values(self):
        sk, order = sort_by_key(np.array([2, 1]))
        np.testing.assert_array_equal(sk, [1, 2])
        np.testing.assert_array_equal(order, [1, 0])

    @given(int_arrays)
    @settings(max_examples=50, deadline=None)
    def test_permutation_property(self, keys):
        sk, order = sort_by_key(keys)
        assert sorted(order.tolist()) == list(range(keys.shape[0]))
        np.testing.assert_array_equal(sk, keys[order])
        assert np.all(np.diff(sk) >= 0)


class TestStreamCompact:
    def test_single(self):
        out = stream_compact(np.array([True, False, True]), np.array([1, 2, 3]))
        np.testing.assert_array_equal(out, [1, 3])

    def test_multiple(self):
        a, b = stream_compact(
            np.array([False, True]), np.array([1, 2]), np.array([3.0, 4.0])
        )
        np.testing.assert_array_equal(a, [2])
        np.testing.assert_array_equal(b, [4.0])


class TestRunLengthEncode:
    def test_basic(self):
        keys = np.array([2, 2, 5, 7, 7, 7])
        uk, starts, lengths = run_length_encode(keys)
        np.testing.assert_array_equal(uk, [2, 5, 7])
        np.testing.assert_array_equal(starts, [0, 2, 3])
        np.testing.assert_array_equal(lengths, [2, 1, 3])

    def test_empty(self):
        uk, starts, lengths = run_length_encode(np.array([], dtype=np.int64))
        assert uk.size == starts.size == lengths.size == 0

    @given(int_arrays)
    @settings(max_examples=50, deadline=None)
    def test_reconstruction(self, keys):
        keys = np.sort(keys)
        uk, starts, lengths = run_length_encode(keys)
        assert lengths.sum() == keys.shape[0]
        np.testing.assert_array_equal(np.repeat(uk, lengths), keys)


class TestSegmentedReduce:
    def test_sum(self):
        out = segmented_reduce(np.array([1, 2, 3, 4]), np.array([0, 1, 0, 1]), 3)
        np.testing.assert_array_equal(out, [4, 6, 0])

    def test_min_max(self):
        vals = np.array([5.0, -1.0, 2.0])
        seg = np.array([1, 1, 0])
        np.testing.assert_array_equal(segmented_reduce(vals, seg, 2, "min"), [2.0, -1.0])
        np.testing.assert_array_equal(segmented_reduce(vals, seg, 2, "max"), [2.0, 5.0])

    def test_empty_segment_identities(self):
        out_min = segmented_reduce(np.array([1.0]), np.array([0]), 2, "min")
        assert out_min[1] == np.inf
        out_max = segmented_reduce(np.array([1.0]), np.array([0]), 2, "max")
        assert out_max[1] == -np.inf

    def test_unknown_op(self):
        with pytest.raises(ValueError, match="unknown op"):
            segmented_reduce(np.array([1]), np.array([0]), 1, "mean")


class TestConcatenatedRanges:
    def test_basic(self):
        out = concatenated_ranges(np.array([10, 20]), np.array([3, 2]))
        np.testing.assert_array_equal(out, [10, 11, 12, 20, 21])

    def test_zero_counts(self):
        out = concatenated_ranges(np.array([5, 9, 7]), np.array([0, 2, 0]))
        np.testing.assert_array_equal(out, [9, 10])

    def test_empty(self):
        assert concatenated_ranges(np.array([], dtype=np.int64), np.array([], dtype=np.int64)).size == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            concatenated_ranges(np.array([0]), np.array([-1]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            concatenated_ranges(np.array([0, 1]), np.array([1]))

    @given(
        hnp.arrays(dtype=np.int64, shape=st.integers(0, 20), elements=st.integers(0, 9))
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_python_loop(self, counts):
        starts = np.cumsum(counts) - counts
        expected = [s + k for s, c in zip(starts, counts) for k in range(c)]
        np.testing.assert_array_equal(concatenated_ranges(starts, counts), expected)


class TestSegmentIds:
    def test_basic(self):
        np.testing.assert_array_equal(
            segment_ids_from_counts(np.array([2, 0, 3])), [0, 0, 2, 2, 2]
        )

    def test_empty(self):
        assert segment_ids_from_counts(np.array([], dtype=np.int64)).size == 0


class TestHistogram:
    def test_basic(self):
        np.testing.assert_array_equal(
            histogram_by_key(np.array([0, 2, 2, 1]), 4), [1, 1, 2, 0]
        )

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            histogram_by_key(np.array([4]), 4)
        with pytest.raises(ValueError, match="out of range"):
            histogram_by_key(np.array([-1]), 4)

    def test_empty(self):
        np.testing.assert_array_equal(histogram_by_key(np.array([], dtype=np.int64), 3), [0, 0, 0])
