"""Service-style churn over ``refit_bvh`` + ``invalidate_packed``.

The serving tier mutates indexes in place: deletes tombstone slots,
inserts overwrite them, and the BVH is *refit* (leaf boxes rewritten,
internal boxes recomputed bottom-up) rather than rebuilt.  Two things
must hold under interleaved insert/delete/query sequences:

- traversals never read **stale packed child boxes** — the dual/single
  engines' packed-children cache is invalidated whenever the refit moves
  geometry, so every query answers against the current points;
- fingerprints invalidate **exactly** when geometry changes: any
  insert/delete changes the fingerprint, queries never do, and an
  insert+delete that restores the same (id, point) multiset restores the
  same fingerprint bit-for-bit.
"""

import numpy as np
import pytest

from repro.bvh.aabb import boxes_from_points
from repro.bvh.builder import build_bvh
from repro.bvh.refit import refit_bvh
from repro.bvh.traversal import count_within
from repro.core.fdbscan import fdbscan
from repro.core.labels import DBSCANResult
from repro.device.device import Device
from repro.metrics.equivalence import assert_dbscan_equivalent
from repro.service.state import ServiceIndex


def _brute_counts(points, queries, eps):
    d2 = ((queries[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
    return (d2 <= eps * eps).sum(axis=1)


def _as_result(cluster_response: dict) -> DBSCANResult:
    return DBSCANResult(
        labels=np.asarray(cluster_response["labels"], dtype=np.int64),
        is_core=np.asarray(cluster_response["is_core"], dtype=bool),
        n_clusters=int(cluster_response["n_clusters"]),
    )


class TestPackedBoxesNeverStale:
    def test_refit_invalidates_packed_children(self, rng):
        pts = rng.uniform(0, 1, size=(128, 2))
        lo, hi = boxes_from_points(pts)
        tree = build_bvh(lo, hi)
        # Populate the packed cache through a traversal.
        dev = Device()
        count_within(tree, pts, 0.1, device=dev, traversal="dual")
        assert tree._packed is not None
        # Move the geometry and refit: the cache must be dropped.
        moved = pts + 0.25
        n = tree.n_primitives
        mlo, mhi = boxes_from_points(moved[tree.order])
        tree.node_lo[n - 1:] = mlo
        tree.node_hi[n - 1:] = mhi
        refit_bvh(tree)
        assert tree._packed is None

    @pytest.mark.parametrize("traversal", ["single", "dual"])
    def test_counts_track_moving_points_through_refits(self, rng, traversal):
        pts = rng.uniform(0, 1, size=(200, 2)).copy()
        lo, hi = boxes_from_points(pts)
        tree = build_bvh(lo, hi)
        dev = Device()
        eps = 0.12
        for round_ in range(4):
            got = count_within(tree, pts, eps, device=dev, traversal=traversal)
            np.testing.assert_array_equal(got, _brute_counts(pts, pts, eps))
            # perturb a block of points, rewrite their leaf boxes, refit
            idx = rng.choice(200, size=40, replace=False)
            pts[idx] += rng.normal(0, 0.05, size=(40, 2))
            n = tree.n_primitives
            nlo, nhi = boxes_from_points(pts[tree.order])
            tree.node_lo[n - 1:] = nlo
            tree.node_hi[n - 1:] = nhi
            refit_bvh(tree)


class TestServiceIndexChurn:
    @pytest.mark.parametrize("rebuild_every", [3, 10_000])
    def test_interleaved_insert_delete_query_matches_fresh_fdbscan(
        self, rng, rebuild_every
    ):
        # rebuild_every=3 exercises the periodic-rebuild path,
        # 10_000 forces the tombstone + refit path throughout.
        X = rng.uniform(0, 1, size=(250, 2))
        si = ServiceIndex("churn", X, rebuild_every=rebuild_every)
        dev = Device()
        for round_ in range(5):
            live_ids = si.slot_ids[si.alive]
            kill = rng.choice(live_ids, size=7, replace=False)
            si.delete([int(k) for k in kill])
            si.insert(rng.uniform(0, 1, size=(6, 2)))
            res = si.cluster(0.09, 4, device=dev)
            live_pts = si.slot_points[si.alive]
            order = np.argsort(si.slot_ids[si.alive], kind="stable")
            ref = fdbscan(live_pts[order], 0.09, 4)
            # DBSCAN-equivalence: identical cores/noise/core-partition,
            # border attachments legal (they may legitimately differ).
            assert_dbscan_equivalent(_as_result(res), ref, live_pts[order], 0.09)
        if rebuild_every == 3:
            assert si.rebuilds > 0
        else:
            assert si.refits > 0

    def test_counts_exclude_tombstones(self, rng):
        X = rng.uniform(0, 1, size=(150, 2))
        si = ServiceIndex("t", X, rebuild_every=10_000)
        dev = Device()
        res = si.cluster(0.1, 3, device=dev)  # build the tree first
        si.delete(res["ids"][:50])
        out = si.count(0.1, 3, device=dev)
        live = si.slot_points[si.alive]
        order = np.argsort(si.slot_ids[si.alive], kind="stable")
        np.testing.assert_array_equal(
            out["counts"], _brute_counts(live, live[order], 0.1)
        )

    def test_knn_after_churn_matches_brute_force(self, rng):
        X = rng.uniform(0, 1, size=(120, 2))
        si = ServiceIndex("k", X, rebuild_every=10_000)
        dev = Device()
        res = si.cluster(0.1, 3, device=dev)
        si.delete(res["ids"][5:25])
        si.insert(rng.uniform(0, 1, size=(10, 2)))
        k = 4
        out = si.knn(k, device=dev)
        live = si.slot_points[si.alive]
        order = np.argsort(si.slot_ids[si.alive], kind="stable")
        queries = live[order]
        d = np.sqrt(((queries[:, None, :] - queries[None, :, :]) ** 2).sum(axis=2))
        expected = np.sort(d, axis=1)[:, k - 1]
        np.testing.assert_allclose(out["radii"], expected, atol=1e-9)


class TestFingerprintExactness:
    def test_queries_never_change_the_fingerprint(self, rng):
        si = ServiceIndex("f", rng.uniform(0, 1, size=(100, 2)))
        dev = Device()
        fp = si.fingerprint()
        si.cluster(0.1, 3, device=dev)
        si.count(0.1, 3, device=dev)
        si.knn(3, device=dev)
        assert si.fingerprint() == fp

    def test_every_mutation_changes_the_fingerprint(self, rng):
        si = ServiceIndex("f", rng.uniform(0, 1, size=(100, 2)))
        fp0 = si.fingerprint()
        ids = si.insert(rng.uniform(0, 1, size=(2, 2)))
        fp1 = si.fingerprint()
        assert fp1 != fp0
        si.delete(ids[:1])
        fp2 = si.fingerprint()
        assert fp2 not in (fp0, fp1)
        si.delete(ids[1:])
        # back to the original geometry: the fingerprint must say so
        assert si.fingerprint() == fp0

    def test_restoring_geometry_restores_the_fingerprint(self, rng):
        si = ServiceIndex("f", rng.uniform(0, 1, size=(80, 2)))
        fp0 = si.fingerprint()
        ids = si.insert(np.array([[0.5, 0.5], [0.25, 0.75]]))
        assert si.fingerprint() != fp0
        si.delete(ids)
        # same live (id, point) multiset -> bit-equal fingerprint, even
        # though slots were consumed and tombstoned in between
        assert si.fingerprint() == fp0

    def test_rebuild_does_not_change_the_fingerprint(self, rng):
        si = ServiceIndex("f", rng.uniform(0, 1, size=(90, 2)), rebuild_every=1)
        dev = Device()
        res = si.cluster(0.1, 3, device=dev)
        si.delete(res["ids"][:5])
        fp = si.fingerprint()
        si.cluster(0.1, 3, device=dev)  # triggers the periodic rebuild
        assert si.rebuilds >= 1
        assert si.fingerprint() == fp
