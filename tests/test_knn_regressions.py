"""Regression tests for three kNN traversal bugs.

1. **Gather leaf-centre distances** — the phase-2 gather used to rank
   candidates by distance to the *leaf box geometry* instead of the
   primitive coordinate.  For point-leaf trees the two coincide, which is
   why the original suite never caught it; any tree whose leaf boxes have
   extent (centres displaced from the primitives) got wrong k-th radii.
2. **One radius per phase-1 batch** — the expanding-count loop read a
   single radius for all pending queries, silently mis-counting whenever
   warm starts or uneven doubling left the batch with mixed radii.
3. **Degenerate-dimension density estimate** — ``_initial_radius``
   multiplied all scene extents, so collinear / axis-aligned data (a zero
   extent) produced a near-zero starting radius and dozens of doubling
   rounds before the first neighbour appeared.

Each test here fails on the corresponding pre-fix code.
"""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.bvh.aabb import boxes_from_points
from repro.bvh.builder import build_bvh
from repro.bvh.knn import _initial_radius, core_distances, knn_radii
from repro.device.device import Device


@pytest.fixture
def rng():
    return np.random.default_rng(3)


def _point_tree(pts):
    lo, hi = boxes_from_points(pts)
    return build_bvh(lo, hi)


class TestBoxLeafGather:
    """Bug 1: distances must be measured to the primitive coordinates."""

    def _box_tree(self, pts, rng):
        # leaf boxes anchored at the primitive but extended away from it,
        # so every box centre is displaced from the point it contains —
        # exactly the geometry that exposes centre-distance ranking
        offsets = rng.uniform(0.3, 0.9, pts.shape)
        return build_bvh(pts, pts + offsets)

    def test_kth_radii_match_kdtree(self, rng):
        pts = rng.uniform(0, 10, (200, 2))
        tree = self._box_tree(pts, rng)
        for k in (1, 4, 9):
            got = knn_radii(tree, pts, k, points=pts)
            want = cKDTree(pts).query(pts, k=k)[0]
            want = want if k == 1 else want[:, -1]
            np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    def test_external_queries_on_box_leaves(self, rng):
        pts = rng.uniform(0, 5, (150, 3))
        queries = rng.uniform(0, 5, (40, 3))
        tree = self._box_tree(pts, rng)
        got = knn_radii(tree, queries, 5, points=pts)
        want = cKDTree(pts).query(queries, k=5)[0][:, -1]
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    def test_points_required_for_box_leaves(self, rng):
        pts = rng.uniform(0, 5, (50, 2))
        tree = self._box_tree(pts, rng)
        with pytest.raises(ValueError, match="non-degenerate leaf boxes"):
            knn_radii(tree, pts, 3)

    def test_points_shape_checked(self, rng):
        pts = rng.uniform(0, 5, (50, 2))
        tree = _point_tree(pts)
        with pytest.raises(ValueError, match="shape"):
            knn_radii(tree, pts, 3, points=pts[:10])

    def test_points_bit_neutral_on_point_leaves(self, rng):
        pts = rng.uniform(0, 5, (120, 2))
        tree = _point_tree(pts)
        np.testing.assert_array_equal(
            knn_radii(tree, pts, 6), knn_radii(tree, pts, 6, points=pts)
        )

    def test_exact_counting_never_undershoots(self, rng):
        # phase 1 on box leaves must count *points* in the ball, not leaf
        # hits — box hits overestimate, stopping the expansion early with
        # a radius whose true point count is below k
        pts = rng.uniform(0, 4, (80, 2))
        tree = self._box_tree(pts, rng)
        got = core_distances(tree, pts, 10)  # points= is implied
        want = cKDTree(pts).query(pts, k=10)[0][:, -1]
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)


class TestMixedRadiusBatches:
    """Bug 2: pending queries must be counted at their own radius."""

    def test_warm_start_array_matches_kdtree(self, rng):
        pts = rng.uniform(0, 10, (200, 2))
        tree = _point_tree(pts)
        want = cKDTree(pts).query(pts, k=5)[0][:, -1]
        # mixed warm starts spanning four orders of magnitude guarantee
        # the first round's batch carries many distinct radii
        starts = 10.0 ** rng.uniform(-3, 1, 200)
        got = knn_radii(tree, pts, 5, initial_radius=starts)
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    def test_warm_start_matches_cold_start(self, rng):
        pts = rng.uniform(0, 10, (150, 2))
        tree = _point_tree(pts)
        cold = knn_radii(tree, pts, 7)
        warm = knn_radii(tree, pts, 7, initial_radius=cold)
        np.testing.assert_array_equal(warm, cold)

    def test_oversized_warm_start_is_correct(self, rng):
        # a too-large start must not change the answer (phase 2 selects
        # the k-th smallest within the final radius regardless)
        pts = rng.uniform(0, 10, (100, 2))
        tree = _point_tree(pts)
        cold = knn_radii(tree, pts, 4)
        warm = knn_radii(tree, pts, 4, initial_radius=50.0)
        np.testing.assert_allclose(warm, cold, rtol=1e-12, atol=1e-12)

    def test_warm_start_validated(self, rng):
        pts = rng.uniform(0, 10, (20, 2))
        tree = _point_tree(pts)
        with pytest.raises(ValueError, match="positive"):
            knn_radii(tree, pts, 3, initial_radius=0.0)
        with pytest.raises(ValueError, match="positive"):
            knn_radii(tree, pts, 3, initial_radius=np.full(20, -1.0))


class TestDegenerateDensityEstimate:
    """Bug 3: zero-extent dimensions must not zero the radius guess."""

    def test_collinear_estimate_uses_line_density(self, rng):
        n = 128
        x = np.sort(rng.uniform(0, 10, n))
        pts = np.column_stack([x, np.full(n, 3.0)])  # zero y-extent
        tree = _point_tree(pts)
        spread = x[-1] - x[0]
        r0 = _initial_radius(tree, 4)
        # 1-d density scale of the occupied subspace, not ~0 from the
        # collapsed dimension
        assert r0 == pytest.approx(spread * 4 / n)

    def test_collinear_rounds_bounded(self, rng):
        n = 256
        x = np.sort(rng.uniform(0, 10, n))
        pts = np.column_stack([np.full(n, 1.0), x])
        tree = _point_tree(pts)
        dev = Device()
        got = knn_radii(tree, pts, 4, device=dev)
        want = cKDTree(pts).query(pts, k=4)[0][:, -1]
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)
        # a density-scale start needs only a handful of doublings; the
        # zero-volume estimate (1e-12) needed ~40 to climb back to scale
        assert dev.profile()["knn_expand"]["steps"] <= 10

    def test_axis_aligned_3d(self, rng):
        # a planar point set embedded in 3-d: one degenerate extent
        n = 150
        pts = np.column_stack(
            [rng.uniform(0, 5, n), rng.uniform(0, 5, n), np.zeros(n)]
        )
        tree = _point_tree(pts)
        dev = Device()
        got = knn_radii(tree, pts, 6, device=dev)
        want = cKDTree(pts).query(pts, k=6)[0][:, -1]
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)
        assert dev.profile()["knn_expand"]["steps"] <= 10

    def test_all_coincident(self):
        pts = np.ones((16, 2))
        tree = _point_tree(pts)
        assert _initial_radius(tree, 4) == 1e-12
        np.testing.assert_array_equal(knn_radii(tree, pts, 16), 0.0)
