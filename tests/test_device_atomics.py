"""Tests for the deterministic atomic emulations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.atomics import (
    atomic_add,
    atomic_cas_batch,
    atomic_max_scatter,
    atomic_min_scatter,
)
from repro.device.counters import KernelCounters


class TestAtomicCas:
    def test_single_success(self):
        target = np.arange(5)
        ok = atomic_cas_batch(target, np.array([2]), np.array([2]), np.array([9]))
        assert ok.tolist() == [True]
        assert target[2] == 9

    def test_expected_mismatch_fails(self):
        target = np.arange(5)
        ok = atomic_cas_batch(target, np.array([2]), np.array([7]), np.array([9]))
        assert ok.tolist() == [False]
        assert target[2] == 2

    def test_first_writer_wins_on_duplicate_address(self):
        # Two requests race on address 3; batch order decides.
        target = np.arange(5)
        ok = atomic_cas_batch(
            target, np.array([3, 3]), np.array([3, 3]), np.array([100, 200])
        )
        assert ok.tolist() == [True, False]
        assert target[3] == 100

    def test_loser_sees_winner_value(self):
        # Second request expects the *original* value and must fail even
        # though its expected matches what the winner also expected.
        target = np.zeros(1, dtype=np.int64)
        ok = atomic_cas_batch(
            target, np.array([0, 0]), np.array([0, 0]), np.array([5, 6])
        )
        assert ok.tolist() == [True, False]
        assert target[0] == 5

    def test_scalar_broadcast(self):
        target = np.zeros(4, dtype=np.int64)
        ok = atomic_cas_batch(target, np.array([1, 2]), 0, 7)
        assert ok.all()
        np.testing.assert_array_equal(target, [0, 7, 7, 0])

    def test_empty_batch(self):
        target = np.arange(3)
        ok = atomic_cas_batch(target, np.array([], dtype=np.int64), 0, 1)
        assert ok.shape == (0,)
        np.testing.assert_array_equal(target, [0, 1, 2])

    def test_counters_recorded(self):
        counters = KernelCounters()
        target = np.arange(4)
        atomic_cas_batch(
            target, np.array([0, 0, 1]), np.array([0, 0, 9]), 5, counters=counters
        )
        assert counters.cas_attempts == 3
        assert counters.cas_successes == 1

    @given(
        st.lists(st.integers(0, 7), min_size=0, max_size=20),
        st.integers(0, 10),
    )
    @settings(max_examples=50, deadline=None)
    def test_exactly_one_winner_per_address(self, addresses, seed):
        rng = np.random.default_rng(seed)
        target = np.arange(8)
        idx = np.array(addresses, dtype=np.int64)
        desired = rng.integers(100, 200, size=idx.shape[0])
        ok = atomic_cas_batch(target, idx, idx, desired)
        for addr in set(addresses):
            winners = ok[idx == addr]
            assert winners.sum() == 1
            first = np.flatnonzero(idx == addr)[0]
            assert target[addr] == desired[first]


class TestScatterAtomics:
    def test_atomic_min(self):
        target = np.array([10, 10, 10])
        atomic_min_scatter(target, np.array([0, 0, 2]), np.array([5, 7, 20]))
        np.testing.assert_array_equal(target, [5, 10, 10])

    def test_atomic_max(self):
        target = np.array([0, 0])
        atomic_max_scatter(target, np.array([1, 1]), np.array([3, 9]))
        np.testing.assert_array_equal(target, [0, 9])

    def test_atomic_add_accumulates_duplicates(self):
        target = np.zeros(3, dtype=np.int64)
        atomic_add(target, np.array([1, 1, 1, 0]), 1)
        np.testing.assert_array_equal(target, [1, 3, 0])

    def test_order_independence_of_min(self):
        # atomicMin commutes: any permutation yields the same result.
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 5, size=30)
        vals = rng.integers(-100, 100, size=30)
        a = np.full(5, 1000)
        b = np.full(5, 1000)
        atomic_min_scatter(a, idx, vals)
        perm = rng.permutation(30)
        atomic_min_scatter(b, idx[perm], vals[perm])
        np.testing.assert_array_equal(a, b)
