"""Conformance tests for the sklearn-compatible estimator facade.

Mirrors the shape of sklearn's own estimator checks at the scale this
repository needs: constructor discipline (store-only ``__init__``),
``get_params``/``set_params`` round-trips, fit-time validation with
sklearn's exact error wording, fitted-attribute contracts, and
``fit_predict`` parity — for both ``DBSCAN`` and ``HDBSCAN``.
"""

import re

import numpy as np
import pytest

from repro.core.api import dbscan as dbscan_fn
from repro.device.device import Device
from repro.estimators import DBSCAN, HDBSCAN
from repro.hierarchy import hdbscan as hdbscan_fn
from repro.metrics import partitions_equal


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def blobs(rng):
    return np.vstack(
        [
            rng.normal((0, 0), 0.15, (60, 2)),
            rng.normal((4, 4), 0.15, (60, 2)),
            rng.normal((0, 4), 0.15, (60, 2)),
        ]
    )


def _raises_exact(estimator, X, message):
    with pytest.raises(ValueError, match=re.escape(message)):
        estimator.fit(X)


class TestParamProtocol:
    """The BaseEstimator contract shared by both classes."""

    def test_init_stores_unvalidated(self):
        # sklearn discipline: __init__ must not validate or transform
        est = DBSCAN(eps=-3, min_samples="many")
        assert est.eps == -3
        assert est.min_samples == "many"

    def test_get_params_roundtrip(self):
        est = HDBSCAN(min_cluster_size=9, mst_algorithm="prim")
        params = est.get_params()
        assert params["min_cluster_size"] == 9
        assert params["mst_algorithm"] == "prim"
        clone = HDBSCAN(**params)
        assert clone.get_params() == params

    def test_set_params_returns_self(self):
        est = DBSCAN()
        assert est.set_params(eps=0.25) is est
        assert est.eps == 0.25

    def test_set_params_unknown_name(self):
        est = DBSCAN()
        with pytest.raises(ValueError, match=r"Invalid parameter 'gamma'"):
            est.set_params(gamma=1.0)

    def test_repr_lists_params(self):
        text = repr(DBSCAN(eps=0.125))
        assert text.startswith("DBSCAN(")
        assert "eps=0.125" in text

    def test_param_names_sorted(self):
        assert DBSCAN._get_param_names() == sorted(DBSCAN._get_param_names())


class TestDBSCANValidation:
    def test_eps_message(self, blobs):
        _raises_exact(
            DBSCAN(eps=0),
            blobs,
            "The 'eps' parameter of DBSCAN must be a float in the range "
            "(0.0, inf). Got 0 instead.",
        )

    def test_min_samples_message(self, blobs):
        _raises_exact(
            DBSCAN(min_samples=0),
            blobs,
            "The 'min_samples' parameter of DBSCAN must be an int in the "
            "range [1, inf). Got 0 instead.",
        )

    def test_metric_message(self, blobs):
        _raises_exact(
            DBSCAN(metric="manhattan"),
            blobs,
            "The 'metric' parameter of DBSCAN must be a str among "
            "{'euclidean'}. Got 'manhattan' instead.",
        )

    def test_unknown_algorithm(self, blobs):
        with pytest.raises(
            ValueError, match=r"The 'algorithm' parameter of DBSCAN"
        ):
            DBSCAN(algorithm="kd").fit(blobs)

    def test_traversal_options(self, blobs):
        _raises_exact(
            DBSCAN(traversal="triple"),
            blobs,
            "The 'traversal' parameter of DBSCAN must be a str among "
            "{'dual' or 'single'} or None. Got 'triple' instead.",
        )

    def test_tree_knob_rejected_for_baseline(self, blobs):
        with pytest.raises(ValueError, match="tree-engine knobs"):
            DBSCAN(eps=0.5, algorithm="gdbscan", traversal="dual").fit(blobs)

    def test_validation_happens_at_fit_not_init(self):
        DBSCAN(eps=-1)  # must not raise


class TestDBSCANFit:
    def test_matches_functional_api(self, blobs):
        est = DBSCAN(eps=0.5, min_samples=5).fit(blobs)
        ref = dbscan_fn(blobs, 0.5, 5)
        np.testing.assert_array_equal(est.labels_, ref.labels)
        np.testing.assert_array_equal(
            est.core_sample_indices_, np.flatnonzero(ref.is_core)
        )
        assert est.n_clusters_ == ref.n_clusters == 3

    def test_fitted_attribute_types(self, blobs):
        est = DBSCAN(eps=0.5, min_samples=5).fit(blobs)
        assert est.labels_.dtype == np.int64
        assert est.labels_.shape == (blobs.shape[0],)
        assert est.components_.shape == (est.core_sample_indices_.size, 2)
        np.testing.assert_array_equal(
            est.components_, blobs[est.core_sample_indices_]
        )
        assert est.n_features_in_ == 2

    def test_fit_predict_parity(self, blobs):
        a = DBSCAN(eps=0.5, min_samples=5).fit_predict(blobs)
        b = DBSCAN(eps=0.5, min_samples=5).fit(blobs).labels_
        np.testing.assert_array_equal(a, b)

    def test_fit_returns_self(self, blobs):
        est = DBSCAN(eps=0.5)
        assert est.fit(blobs) is est

    @pytest.mark.parametrize(
        "algorithm,reported",
        [
            ("fdbscan", "fdbscan"),
            ("densebox", "fdbscan-densebox"),  # registry alias
            ("gdbscan", "gdbscan"),
        ],
    )
    def test_algorithm_passthrough(self, blobs, algorithm, reported):
        est = DBSCAN(eps=0.5, min_samples=5, algorithm=algorithm).fit(blobs)
        assert est.result_.info["algorithm"] == reported
        assert est.n_clusters_ == 3

    @pytest.mark.parametrize("traversal", ["single", "dual"])
    def test_traversal_passthrough(self, blobs, traversal):
        dev = Device()
        est = DBSCAN(
            eps=0.5, min_samples=5, algorithm="fdbscan",
            traversal=traversal, query_order="morton", device=dev,
        ).fit(blobs)
        assert est.n_clusters_ == 3
        # only the dual (query-aggregated) engine performs group box tests
        group_tests = dev.counters.snapshot().get("group_box_tests", 0)
        assert (group_tests > 0) == (traversal == "dual")

    def test_sample_weight(self):
        # one point of weight 5 is its own dense neighbourhood
        X = np.array([[0.0, 0.0], [10.0, 10.0]])
        est = DBSCAN(eps=0.1, min_samples=5)
        assert np.all(est.fit_predict(X) == -1)
        labels = est.fit_predict(X, sample_weight=[5.0, 1.0])
        assert labels[0] == 0 and labels[1] == -1

    def test_refit_replaces_attributes(self, blobs, rng):
        est = DBSCAN(eps=0.5, min_samples=5).fit(blobs)
        single = rng.normal((0, 0), 0.1, (40, 2))
        est.fit(single)
        assert est.n_clusters_ == 1
        assert est.labels_.shape == (40,)


class TestHDBSCANValidation:
    def test_min_cluster_size_message(self, blobs):
        _raises_exact(
            HDBSCAN(min_cluster_size=1),
            blobs,
            "The 'min_cluster_size' parameter of HDBSCAN must be an int in "
            "the range [2, inf). Got 1 instead.",
        )

    def test_mst_algorithm_message(self, blobs):
        _raises_exact(
            HDBSCAN(mst_algorithm="kruskal"),
            blobs,
            "The 'mst_algorithm' parameter of HDBSCAN must be a str among "
            "{'boruvka' or 'prim'}. Got 'kruskal' instead.",
        )

    def test_allow_single_cluster_message(self, blobs):
        _raises_exact(
            HDBSCAN(allow_single_cluster="yes"),
            blobs,
            "The 'allow_single_cluster' parameter of HDBSCAN must be an "
            "instance of 'bool'. Got 'yes' instead.",
        )


class TestHDBSCANFit:
    def test_matches_functional_api(self, blobs):
        est = HDBSCAN(min_cluster_size=10).fit(blobs)
        ref = hdbscan_fn(blobs, min_cluster_size=10)
        np.testing.assert_array_equal(est.labels_, ref.labels)
        np.testing.assert_array_equal(est.probabilities_, ref.probabilities)
        assert est.n_clusters_ == 3

    def test_probability_contract(self, blobs):
        est = HDBSCAN(min_cluster_size=10).fit(blobs)
        assert np.all(est.probabilities_ >= 0)
        assert np.all(est.probabilities_ <= 1)
        assert np.all(est.probabilities_[est.labels_ == -1] == 0)

    def test_fit_predict_parity(self, blobs):
        a = HDBSCAN(min_cluster_size=10).fit_predict(blobs)
        b = HDBSCAN(min_cluster_size=10).fit(blobs).labels_
        np.testing.assert_array_equal(a, b)

    def test_mst_algorithms_agree(self, blobs):
        fast = HDBSCAN(min_cluster_size=10).fit(blobs)
        ref = HDBSCAN(min_cluster_size=10, mst_algorithm="prim").fit(blobs)
        everyone = np.ones(blobs.shape[0], dtype=bool)
        assert partitions_equal(fast.labels_, ref.labels_, everyone)
        np.testing.assert_allclose(fast.probabilities_, ref.probabilities_)

    def test_knob_passthrough_reaches_info(self, blobs):
        est = HDBSCAN(
            min_cluster_size=10, mst_algorithm="prim", traversal="dual",
            query_order="morton",
        ).fit(blobs)
        assert est.result_.info["mst_algorithm"] == "prim"
        assert est.result_.info["traversal"] == "dual"

    def test_n_features_in(self, rng):
        X = rng.normal(size=(50, 3))
        assert HDBSCAN(min_cluster_size=5).fit(X).n_features_in_ == 3
