"""Degenerate-input and failure-injection tests across the public API."""

import numpy as np
import pytest

from repro import dbscan
from repro.baselines import sequential_dbscan
from repro.device.device import Device
from repro.device.memory import DeviceMemoryError
from repro.metrics.equivalence import assert_dbscan_equivalent

TREE_ALGOS = ["fdbscan", "densebox"]
ALL_ALGOS = TREE_ALGOS + ["gdbscan", "cuda-dclust", "dsdbscan", "sequential", "brute"]


class TestDegenerateGeometry:
    @pytest.mark.parametrize("algorithm", ALL_ALGOS)
    def test_single_point(self, algorithm):
        res = dbscan(np.array([[1.0, 2.0]]), 0.5, 1, algorithm=algorithm)
        assert res.labels.shape == (1,)

    @pytest.mark.parametrize("algorithm", TREE_ALGOS)
    def test_two_identical_points(self, algorithm):
        X = np.array([[3.0, 3.0], [3.0, 3.0]])
        res = dbscan(X, 0.1, 2, algorithm=algorithm)
        np.testing.assert_array_equal(res.labels, [0, 0])

    @pytest.mark.parametrize("algorithm", TREE_ALGOS)
    def test_all_identical_points(self, algorithm):
        X = np.full((64, 3), 7.5)
        res = dbscan(X, 1e-6, 64, algorithm=algorithm)
        assert res.n_clusters == 1
        assert res.is_core.all()

    @pytest.mark.parametrize("algorithm", TREE_ALGOS)
    def test_collinear_points(self, algorithm):
        X = np.column_stack([np.linspace(0, 1, 101), np.zeros(101)])
        base = sequential_dbscan(X, 0.015, 3)
        res = dbscan(X, 0.015, 3, algorithm=algorithm)
        assert_dbscan_equivalent(base, res, X, 0.015)

    @pytest.mark.parametrize("algorithm", TREE_ALGOS)
    def test_axis_aligned_plane_in_3d(self, algorithm):
        rng = np.random.default_rng(0)
        X = np.column_stack([rng.uniform(0, 1, 200), rng.uniform(0, 1, 200), np.zeros(200)])
        base = sequential_dbscan(X, 0.1, 4)
        res = dbscan(X, 0.1, 4, algorithm=algorithm)
        assert_dbscan_equivalent(base, res, X, 0.1)

    @pytest.mark.parametrize("algorithm", TREE_ALGOS)
    def test_extreme_coordinates(self, algorithm):
        # Large magnitudes must survive Morton quantisation.
        rng = np.random.default_rng(1)
        X = rng.normal(0, 1, size=(100, 2)) * 1e6 + 1e9
        base = sequential_dbscan(X, 2e5, 3)
        res = dbscan(X, 2e5, 3, algorithm=algorithm)
        assert_dbscan_equivalent(base, res, X, 2e5)

    @pytest.mark.parametrize("algorithm", TREE_ALGOS)
    def test_tiny_coordinates(self, algorithm):
        rng = np.random.default_rng(2)
        X = rng.normal(0, 1e-9, size=(100, 2))
        base = sequential_dbscan(X, 1e-9, 3)
        res = dbscan(X, 1e-9, 3, algorithm=algorithm)
        assert_dbscan_equivalent(base, res, X, 1e-9)

    @pytest.mark.parametrize("algorithm", TREE_ALGOS)
    def test_eps_smaller_than_any_gap(self, algorithm):
        X = np.arange(20, dtype=np.float64).reshape(-1, 1) * 10
        res = dbscan(X, 0.001, 2, algorithm=algorithm)
        assert res.n_clusters == 0
        assert res.n_noise == 20

    @pytest.mark.parametrize("algorithm", TREE_ALGOS)
    def test_boundary_distance_exactly_eps(self, algorithm):
        # dist == eps must count as a neighbour (<= convention).
        X = np.array([[0.0, 0.0], [1.0, 0.0]])
        res = dbscan(X, 1.0, 2, algorithm=algorithm)
        assert res.n_clusters == 1


class TestParameterEdges:
    @pytest.mark.parametrize("algorithm", TREE_ALGOS)
    def test_minpts_equals_n(self, algorithm, blobs_2d):
        n = blobs_2d.shape[0]
        res = dbscan(blobs_2d, 10_000.0, n, algorithm=algorithm)
        assert res.n_clusters == 1
        assert res.is_core.all()

    @pytest.mark.parametrize("algorithm", TREE_ALGOS)
    def test_minpts_exceeds_n(self, algorithm, blobs_2d):
        res = dbscan(blobs_2d, 10_000.0, blobs_2d.shape[0] + 1, algorithm=algorithm)
        assert res.n_clusters == 0

    def test_float_like_integer_minpts_accepted(self, blobs_2d):
        res = dbscan(blobs_2d, 0.3, 5.0, algorithm="fdbscan")
        assert res.n_clusters >= 1

    def test_list_input_accepted(self):
        res = dbscan([[0.0, 0.0], [0.05, 0.0], [0.1, 0.0]], 0.1, 2)
        assert res.labels.shape == (3,)

    def test_float32_input_accepted(self, blobs_2d):
        res32 = dbscan(blobs_2d.astype(np.float32), 0.3, 5, algorithm="fdbscan")
        assert res32.labels.shape == (blobs_2d.shape[0],)

    @pytest.mark.parametrize("algorithm", ALL_ALGOS)
    def test_invalid_inputs_rejected_uniformly(self, algorithm):
        with pytest.raises(ValueError):
            dbscan(np.zeros((0, 2)), 0.1, 2, algorithm=algorithm)
        with pytest.raises(ValueError):
            dbscan(np.array([[np.inf, 0.0]]), 0.1, 2, algorithm=algorithm)
        with pytest.raises(ValueError):
            dbscan(np.zeros((3, 2)), -1.0, 2, algorithm=algorithm)
        with pytest.raises(ValueError):
            dbscan(np.zeros((3, 2)), 0.1, 0, algorithm=algorithm)


class TestFailureInjection:
    def test_tree_algorithms_oom_when_tree_cannot_fit(self, blobs_2d):
        dev = Device(capacity_bytes=100)
        with pytest.raises(DeviceMemoryError):
            dbscan(blobs_2d, 0.3, 5, algorithm="fdbscan", device=dev)

    def test_device_state_consistent_after_oom(self, blobs_2d):
        dev = Device(capacity_bytes=100)
        with pytest.raises(DeviceMemoryError):
            dbscan(blobs_2d, 0.3, 5, algorithm="fdbscan", device=dev)
        # ledger never exceeded the cap
        assert dev.memory.peak_bytes <= 100

    def test_rerun_after_oom_with_bigger_device(self, blobs_2d):
        dev = Device(capacity_bytes=100)
        with pytest.raises(DeviceMemoryError):
            dbscan(blobs_2d, 0.3, 5, algorithm="fdbscan", device=dev)
        big = Device()
        res = dbscan(blobs_2d, 0.3, 5, algorithm="fdbscan", device=big)
        assert res.n_clusters >= 1


class TestResultsAreFresh:
    @pytest.mark.parametrize("algorithm", TREE_ALGOS)
    def test_input_not_mutated(self, algorithm, blobs_2d):
        snapshot = blobs_2d.copy()
        dbscan(blobs_2d, 0.3, 5, algorithm=algorithm)
        np.testing.assert_array_equal(blobs_2d, snapshot)

    @pytest.mark.parametrize("algorithm", TREE_ALGOS)
    def test_repeat_runs_identical(self, algorithm, blobs_2d):
        a = dbscan(blobs_2d, 0.3, 5, algorithm=algorithm)
        b = dbscan(blobs_2d, 0.3, 5, algorithm=algorithm)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.is_core, b.is_core)
