"""Tests for the fitted cost model (repro.obs.fit), SLO tracking
(repro.obs.slo), histogram quantile estimation, the bounded event log,
and their integration into the service's admission control and the
bench smoke gate."""

import json

import numpy as np
import pytest

from repro.bench.harness import RunRecord
from repro.bench.history import load_records, save_records
from repro.bench.report import merge_kernel_profiles
from repro.obs import MetricsRegistry
from repro.obs.fit import (
    FIT_FEATURES,
    FittedCostModel,
    fit_cost_model,
    fit_from_history,
    fit_from_records,
    fit_rows,
    rows_fingerprint,
    validate_costmodel,
)
from repro.obs.slo import (
    SLO,
    evaluate_slo,
    evaluate_slos,
    format_slo_report,
    record_slo_gauges,
)
from repro.service.events import EventLog, load_events


def _profile(kernel, seconds, launches=1, **counters):
    """One Device.profile()-shaped source with a single kernel."""
    return {
        kernel: {
            "seconds": float(seconds),
            "launches": int(launches),
            "replayed": 0,
            "threads": 0,
            "steps": 0,
            "counters": {k: int(v) for k, v in counters.items()},
        }
    }


def _linear_sources(rate=2e-7, n_sources=6):
    """Sources where seconds is exactly rate * distance_evals."""
    return [
        _profile("k", rate * evals, launches=1, distance_evals=evals)
        for evals in (1_000 * (i + 1) for i in range(n_sources))
    ]


class TestFitRows:
    def test_flattens_sources_with_features(self):
        rows = fit_rows(_linear_sources(n_sources=3))
        assert len(rows) == 3
        for row in rows:
            assert row["kernel"] == "k"
            assert set(FIT_FEATURES) <= set(row)
            assert row["launches"] == 1.0

    def test_fingerprint_is_order_independent(self):
        sources = _linear_sources(n_sources=4)
        a = rows_fingerprint(fit_rows(sources))
        b = rows_fingerprint(fit_rows(list(reversed(sources))))
        assert a == b

    def test_fingerprint_changes_with_content(self):
        a = rows_fingerprint(fit_rows(_linear_sources(rate=2e-7)))
        b = rows_fingerprint(fit_rows(_linear_sources(rate=3e-7)))
        assert a != b


class TestFitModel:
    def test_recovers_synthetic_coefficient(self):
        model = fit_cost_model(_linear_sources(rate=2e-7))
        entry = model.kernels["k"]
        assert entry["coef"]["distance_evals"] == pytest.approx(2e-7, rel=1e-6)
        assert entry["r2"] == pytest.approx(1.0, abs=1e-9)

    def test_coefficients_are_nonnegative(self):
        # Craft rows that would drive a plain lstsq coefficient negative:
        # seconds tracks distance_evals while nodes_visited anti-correlates.
        sources = []
        for i in range(1, 7):
            sources.append(
                _profile(
                    "k", 1e-6 * i * 1000, launches=1,
                    distance_evals=i * 1000, nodes_visited=(7 - i) * 1000,
                )
            )
        model = fit_cost_model(sources)
        for name, value in model.kernels["k"]["coef"].items():
            assert value >= 0.0, name
        assert model.kernels["k"]["per_launch"] >= 0.0

    def test_zero_wall_kernel_is_unfitted(self):
        sources = _linear_sources() + [
            _profile("freebie", 0.0, launches=3, distance_evals=500)
        ]
        model = fit_cost_model(sources)
        assert "freebie" in model.unfitted
        assert "freebie" not in model.kernels

    def test_degenerate_counters_fall_back_to_per_launch(self):
        # seconds > 0 but every regressor column is zero except launches.
        sources = [_profile("k", 0.01 * i, launches=i) for i in (1, 2, 3)]
        model = fit_cost_model(sources)
        entry = model.kernels["k"]
        assert entry["per_launch"] == pytest.approx(0.01, rel=1e-9)
        assert all(v == 0.0 for v in entry["coef"].values())

    def test_calibration_makes_self_drift_exact(self):
        sources = _linear_sources() + [
            _profile("noisy", 0.05, launches=2, nodes_visited=900),
            _profile("noisy", 0.02, launches=1, nodes_visited=100),
        ]
        model = fit_cost_model(sources)
        merged = {}
        for src in sources:
            for name, entry in src.items():
                agg = merged.setdefault(
                    name,
                    {"seconds": 0.0, "launches": 0, "replayed": 0, "counters": {}},
                )
                agg["seconds"] += entry["seconds"]
                agg["launches"] += entry["launches"]
                for k, v in entry["counters"].items():
                    agg["counters"][k] = agg["counters"].get(k, 0) + v
        drift = model.drift(merged)
        assert drift["alarms"] == []
        for row in drift["checked"]:
            assert row["ratio"] == pytest.approx(1.0, rel=1e-9)

    def test_fit_is_byte_deterministic(self):
        sources = _linear_sources() + [
            _profile("other", 0.03, launches=4, scatter_adds=7_000)
        ]
        a = fit_cost_model(sources).to_json()
        b = fit_cost_model(sources).to_json()
        assert a == b

    def test_save_load_validate_roundtrip(self, tmp_path):
        model = fit_cost_model(_linear_sources())
        path = tmp_path / "costmodel.json"
        model.save(str(path))
        loaded = FittedCostModel.load(str(path))
        assert loaded.to_json() == model.to_json()
        validate_costmodel(json.loads(path.read_text()))

    def test_validate_rejects_bad_payloads(self, tmp_path):
        payload = json.loads(fit_cost_model(_linear_sources()).to_json())
        broken = json.loads(json.dumps(payload))
        broken["kernels"]["k"]["coef"]["distance_evals"] = -1.0
        with pytest.raises(ValueError):
            validate_costmodel(broken)
        wrong_version = json.loads(json.dumps(payload))
        wrong_version["version"] = 999
        with pytest.raises(ValueError):
            validate_costmodel(wrong_version)
        with pytest.raises(ValueError):
            validate_costmodel({"not": "a model"})

    def test_drift_flags_slowdown_and_reports_unseen_kernels(self):
        model = fit_cost_model(_linear_sources(rate=2e-7))
        profile = {
            # observed 2x the fitted rate: past the default 0.5 tolerance
            "k": {
                "seconds": 2 * 2e-7 * 5000, "launches": 1,
                "counters": {"distance_evals": 5000},
            },
            # a kernel the fit never saw: surfaced, not alarmed
            "brand_new": {"seconds": 0.01, "launches": 1, "counters": {}},
            # zero wall: skipped entirely
            "idle": {"seconds": 0.0, "launches": 1, "counters": {}},
        }
        drift = model.drift(profile)
        assert [row["kernel"] for row in drift["alarms"]] == ["k"]
        assert drift["alarms"][0]["ratio"] == pytest.approx(2.0, rel=1e-6)
        assert drift["unfitted"] == ["brand_new"]
        assert all(row["kernel"] != "idle" for row in drift["checked"])

    def test_predict_falls_back_to_combined_for_unseen_kernel(self):
        model = fit_cost_model(_linear_sources(rate=2e-7))
        unseen = model.predict(
            {"distance_evals": 1000}, kernel="never_fitted", launches=1
        )
        combined = model.predict({"distance_evals": 1000}, kernel=None, launches=1)
        assert unseen == combined > 0.0

    def test_cost_for_points_requires_per_point_rates(self):
        bare = fit_cost_model(_linear_sources())
        assert bare.cost_for_points(1000) is None
        with_rates = fit_cost_model(
            _linear_sources(), per_point={"distance_evals": 50.0, "launches": 0.01}
        )
        small = with_rates.cost_for_points(100)
        large = with_rates.cost_for_points(1000)
        assert small is not None and large is not None
        assert large > small > 0.0
        assert with_rates.cost_for_points(100, scale=2.0) == pytest.approx(
            2.0 * small, rel=1e-9
        )


class TestFitFromRecords:
    def _records(self):
        recs = []
        for i, status in enumerate(("ok", "ok", "error", "ok")):
            rec = RunRecord(
                algorithm="fdbscan", dataset="t", n=200, eps=0.01, min_samples=5,
                seconds=0.01 * (i + 1), status=status,
            )
            rec.kernels = _profile(
                "k", 0.01 * (i + 1), launches=2, distance_evals=(i + 1) * 10_000
            )
            recs.append(rec)
        return recs

    def test_only_ok_cells_feed_the_fit(self):
        recs = self._records()
        model = fit_from_records(recs)
        assert model.kernels["k"]["rows"] == 3  # the error cell is excluded

    def test_per_point_rates_derive_from_pooled_totals(self):
        recs = self._records()
        model = fit_from_records(recs)
        ok_evals = sum(
            r.kernels["k"]["counters"]["distance_evals"]
            for r in recs if r.status == "ok"
        )
        ok_n = sum(r.n for r in recs if r.status == "ok")
        assert model.per_point["distance_evals"] == pytest.approx(ok_evals / ok_n)
        assert model.cost_for_points(200) is not None

    def test_fit_from_history_roundtrip(self, tmp_path):
        recs = self._records()
        path = tmp_path / "hist.json"
        save_records(str(path), recs, meta={"argv": ["bench"]})
        model = fit_from_history(str(path))
        direct = fit_from_records(load_records(str(path))[0])
        assert model.to_json() == direct.to_json()


class TestFitCLI:
    def test_fit_validate_drift_commands(self, tmp_path, capsys):
        from repro.obs.fit import main

        recs = TestFitFromRecords()._records()
        hist = tmp_path / "hist.json"
        out = tmp_path / "cm.json"
        save_records(str(hist), recs, meta={"argv": ["bench"]})
        assert main(["fit", str(hist), "-o", str(out)]) == 0
        assert out.exists()
        assert main(["validate", str(out)]) == 0
        # Fresh artifact vs its own history: calibration-exact, no drift.
        assert main(["drift", str(out), str(hist)]) == 0
        text = capsys.readouterr().out
        assert "no drift" in text


class TestHistogramQuantile:
    def _hist(self, buckets=(1.0, 2.0, 4.0)):
        reg = MetricsRegistry()
        return reg.histogram("h", "test", buckets=buckets)

    def test_quantile_interpolates_within_bucket(self):
        h = self._hist()
        for _ in range(10):
            h.observe(1.5)  # all ten land in the (1, 2] bucket
        # rank 5 of 10 -> half-way through the bucket: 1 + 0.5 * (2 - 1)
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_first_bucket_lower_bound_is_zero(self):
        h = self._hist()
        for _ in range(4):
            h.observe(0.5)
        assert h.quantile(0.5) == pytest.approx(0.5)  # 0 + (2/4) * 1.0

    def test_quantile_inf_bucket_clamps_to_last_finite_bound(self):
        h = self._hist()
        h.observe(100.0)
        assert h.quantile(0.99) == pytest.approx(4.0)

    def test_quantile_empty_and_validation(self):
        h = self._hist()
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantile_merges_label_sets(self):
        h = self._hist()
        for _ in range(9):
            h.observe(0.5, op="a")
        h.observe(3.0, op="b")
        assert h.quantile(0.5) < 1.0  # merged: dominated by the fast op
        assert h.quantile(0.5, labels={"op": "b"}) > 2.0

    def test_count_le_full_partial_and_inf(self):
        h = self._hist()
        for v in (0.5, 0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        # full first bucket (2) + half of (1,2] (1 obs * 0.5) at value 1.5
        assert h.count_le(1.5) == pytest.approx(2 + 0.5)
        # everything except the +Inf observation at the last finite bound
        assert h.count_le(4.0) == pytest.approx(4.0)
        # +Inf observations never count, however large the probe
        assert h.count_le(1e9) == pytest.approx(4.0)


class TestSLO:
    def test_slo_validation(self):
        with pytest.raises(ValueError):
            SLO("x", "latency", objective=0.99)  # no target_seconds
        with pytest.raises(ValueError):
            SLO("x", "availability", objective=1.5)
        with pytest.raises(ValueError):
            SLO("x", "nonsense", objective=0.9)

    def test_availability_burn_rate_math(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_service_requests_total", "t")
        for _ in range(96):
            c.inc(op="cluster", status="ok")
        c.inc(op="cluster", status="shed")  # deliberate refusal: good
        c.inc(op="cluster", status="rejected")  # typed refusal: good
        for _ in range(2):
            c.inc(op="cluster", status="error")  # bad
        slo = SLO("avail", "availability", objective=0.99,
                  metric="repro_service_requests_total")
        status = evaluate_slo(slo, reg)
        assert status["total"] == 100
        assert status["bad"] == 2
        # allowed = 1% of 100 = 1 bad; observed 2 -> burn rate 2.0
        assert status["burn_rate"] == pytest.approx(2.0)
        assert status["budget_remaining"] == pytest.approx(-1.0)
        assert not status["ok"]

    def test_latency_slo_uses_histogram_count_le(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_service_request_seconds", "t",
                          buckets=(0.1, 0.25, 1.0))
        for _ in range(99):
            h.observe(0.05, op="cluster")
        h.observe(0.9, op="cluster")
        slo = SLO("lat", "latency", objective=0.9, target_seconds=0.25,
                  metric="repro_service_request_seconds")
        status = evaluate_slo(slo, reg)
        assert status["total"] == 100
        assert status["good"] == pytest.approx(99.0)
        assert status["ok"]

    def test_empty_registry_is_ok_with_zero_burn(self):
        statuses = evaluate_slos(MetricsRegistry())
        assert all(s["ok"] and s["burn_rate"] == 0.0 for s in statuses)

    def test_latency_quantile_reads_histogram_quantile(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_service_request_seconds", "t",
                          buckets=(0.1, 0.25, 1.0))
        for _ in range(95):
            h.observe(0.05, op="cluster")
        for _ in range(5):
            h.observe(0.9, op="cluster")
        slo = SLO("latency_p95", "latency_quantile", objective=0.95,
                  target_seconds=0.25,
                  metric="repro_service_request_seconds")
        status = evaluate_slo(slo, reg)
        assert status["observed_seconds"] == pytest.approx(h.quantile(0.95))
        assert status["burn_rate"] == pytest.approx(
            h.quantile(0.95) / 0.25
        )
        # tight target: the p95 estimate exceeds it -> violated
        tight = SLO("latency_p95_tight", "latency_quantile", objective=0.95,
                    target_seconds=0.05,
                    metric="repro_service_request_seconds")
        assert not evaluate_slo(tight, reg)["ok"]

    def test_latency_quantile_windowed_rows(self):
        rows = [{"status": "ok", "wall_seconds": 0.01} for _ in range(19)]
        rows.append({"status": "ok", "wall_seconds": 2.0})
        slo = SLO("p50_window", "latency_quantile", objective=0.5,
                  target_seconds=0.1, window="last:20")
        status = evaluate_slo(slo, MetricsRegistry(), rows=rows)
        assert status["observed_seconds"] == pytest.approx(0.01)
        assert status["ok"]
        # a p99-style window sees the slow tail
        p99 = SLO("p99_window", "latency_quantile", objective=0.99,
                  target_seconds=0.1, window="last:20")
        assert not evaluate_slo(p99, MetricsRegistry(), rows=rows)["ok"]

    def test_latency_quantile_validation_and_gauges(self):
        with pytest.raises(ValueError):
            SLO("x", "latency_quantile", objective=0.95)  # no target
        reg = MetricsRegistry()
        h = reg.histogram("repro_service_request_seconds", "t",
                          buckets=(0.1, 0.25, 1.0))
        h.observe(0.05)
        statuses = evaluate_slos(reg)
        names = [s["name"] for s in statuses]
        assert "latency_p95" in names and "latency_p99" in names
        record_slo_gauges(reg, statuses)
        text = reg.to_prometheus()
        assert "repro_slo_quantile_seconds" in text
        report = format_slo_report(statuses)
        assert "latency_p95" in report and "p95" in report

    def test_gauges_and_report_text(self):
        reg = MetricsRegistry()
        statuses = evaluate_slos(reg)
        record_slo_gauges(reg, statuses)
        text = reg.to_prometheus()
        assert "repro_slo_burn_rate" in text
        assert "repro_slo_budget_remaining" in text
        report = format_slo_report(statuses)
        assert "request_latency" in report and "availability" in report


class TestEventLog:
    def test_ring_bound_and_dropped(self):
        log = EventLog(maxlen=4)
        for i in range(10):
            log.append({"seq": i})
        assert len(log) == 4
        assert log.dropped == 6
        assert [e["seq"] for e in log.snapshot()] == [6, 7, 8, 9]
        stats = log.stats()
        assert stats["appended"] == 10 and stats["retained"] == 4

    def test_jsonl_write_through_and_compaction(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=str(path), maxlen=4)
        for i in range(10):
            log.append({"seq": i})
        lines = load_events(str(path))
        # the file is compacted whenever it would exceed maxlen lines
        assert len(lines) <= 2 * 4
        assert lines[-1] == {"seq": 9}

    def test_reattach_keeps_appending(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path=str(path), maxlen=100)
        log.append({"seq": 0})
        # a "restarted" process re-opens the same file and appends
        log2 = EventLog(path=str(path), maxlen=100)
        log2.append({"seq": 1})
        assert [e["seq"] for e in load_events(str(path))] == [0, 1]

    def test_maxlen_validation(self):
        with pytest.raises(ValueError):
            EventLog(maxlen=0)


class TestServiceIntegration:
    def _traffic(self, tmp_path, tag, cost_model=None, n=60):
        from repro.service.service import ServiceConfig
        from repro.service.traffic import run_traffic

        cfg = ServiceConfig(cost_model=cost_model)
        return run_traffic(
            n_requests=n, seed=7, config=cfg, n_indexes=1, index_points=150,
            event_log_path=str(tmp_path / f"events-{tag}.jsonl"),
        )

    def _model(self):
        return fit_cost_model(
            _linear_sources(),
            per_point={"distance_evals": 120.0, "launches": 0.02},
        )

    def test_fitted_admission_is_deterministic(self, tmp_path):
        model = self._model()
        r1 = self._traffic(tmp_path, "a", cost_model=model)
        r2 = self._traffic(tmp_path, "b", cost_model=model)
        assert r1["by_status"] == r2["by_status"]
        keys = ("seq", "op", "status", "mode", "predicted_cost", "rung",
                "backlog", "pressure")
        e1 = r1["service"].events.snapshot()
        e2 = r2["service"].events.snapshot()
        assert [{k: e[k] for k in keys} for e in e1] == [
            {k: e[k] for k in keys} for e in e2
        ]

    def test_fitted_model_prices_admission(self, tmp_path):
        model = self._model()
        report = self._traffic(tmp_path, "priced", cost_model=model)
        service = report["service"]
        clustered = [
            e for e in service.events.snapshot()
            if e["op"] == "cluster" and e["predicted_cost"] is not None
        ]
        assert clustered
        n = service.indexes["idx0"].n_live
        expected = model.cost_for_points(n)
        assert clustered[-1]["predicted_cost"] == pytest.approx(
            max(service.config.cost_floor, expected), rel=1e-6
        )

    def test_every_request_gets_an_event_with_trace_exemplar(self, tmp_path):
        report = self._traffic(tmp_path, "events")
        service = report["service"]
        events = service.events.snapshot()
        assert len(events) == len(service.ledger) == service.events.appended_total
        # run_traffic installs a real tracer by default: every shed or
        # deadline-missed request joins to its trace
        problem = [
            e for e in events
            if e["status"] == "shed" or e["error_code"] == "deadline_exceeded"
        ]
        for event in problem:
            assert event["trace_id"] and event["span_id"]
        # and the JSONL file carries the same records
        on_disk = load_events(str(tmp_path / "events-events.jsonl"))
        assert len(on_disk) >= len(events) - service.events.dropped

    def test_report_has_slo_section_and_histogram_percentiles(self, tmp_path):
        report = self._traffic(tmp_path, "slo")
        assert {"p50", "p95", "p99", "max"} <= set(report["latency_ms"])
        names = [s["name"] for s in report["slo"]]
        assert "request_latency" in names and "availability" in names
        hist = report["service"].metrics.get("repro_service_request_seconds")
        assert report["latency_ms"]["p95"] == pytest.approx(
            hist.quantile(0.95) * 1e3
        )

    def test_health_reports_breakers_admission_slos(self, tmp_path):
        report = self._traffic(tmp_path, "health")
        health = report["service"].health()
        assert set(health) == {
            "ok", "indexes", "breakers", "admission", "slos", "events",
            "cost_model",
        }
        assert {"backlog", "pressure", "queue_depth"} <= set(health["admission"])
        assert health["indexes"]["idx0"]["n_live"] > 0
        assert isinstance(health["ok"], bool)

    def test_healthz_endpoint_serves_structured_json(self):
        import threading
        import urllib.request

        from repro.service.http import start_http
        from repro.service.service import ClusteringService

        service = ClusteringService()
        server = start_http(service)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz"
            ) as resp:
                payload = json.load(resp)
                assert resp.status == 200
            assert payload["ok"] is True
            assert "slos" in payload and "admission" in payload
        finally:
            server.shutdown()
            server.server_close()

    def test_trace_dropped_roundtrips_through_history(self, tmp_path):
        rec = RunRecord(
            algorithm="fdbscan", dataset="t", n=10, eps=0.1, min_samples=5,
            seconds=0.1, trace_dropped=17,
        )
        path = tmp_path / "hist.json"
        save_records(str(path), [rec], meta={})
        loaded, _ = load_records(str(path))
        assert loaded[0].trace_dropped == 17


class TestSmokeCostmodelGate:
    def _baseline(self):
        return TestFitFromRecords()._records()

    def test_fresh_artifact_passes(self, tmp_path):
        from repro.bench.smoke import costmodel_alarms

        baseline = self._baseline()
        path = tmp_path / "COSTMODEL.json"
        fit_from_records(baseline).save(str(path))
        assert costmodel_alarms(baseline, baseline, str(path)) == []

    def test_stale_artifact_is_flagged(self, tmp_path):
        from repro.bench.smoke import costmodel_alarms

        baseline = self._baseline()
        path = tmp_path / "COSTMODEL.json"
        fit_from_records(baseline[:-1]).save(str(path))  # fitted from less
        alarms = costmodel_alarms(baseline, baseline, str(path))
        assert any("stale artifact" in a for a in alarms)

    def test_drifted_baseline_is_flagged(self, tmp_path):
        from repro.bench.smoke import costmodel_alarms

        baseline = self._baseline()
        path = tmp_path / "COSTMODEL.json"
        model = fit_from_records(baseline)
        # sabotage the fitted rate far past tolerance, keep the fingerprint
        for entry in model.kernels.values():
            entry["coef"] = {k: v * 10 for k, v in entry["coef"].items()}
            entry["per_launch"] *= 10
        model.save(str(path))
        alarms = costmodel_alarms(baseline, baseline, str(path))
        assert any("baseline drift" in a for a in alarms)

    def test_committed_artifact_matches_committed_baseline(self):
        # The repo-level invariant CI enforces: COSTMODEL.json must be a
        # fresh, drift-free fit of BENCH_sweep.json.
        import os

        from repro.bench.smoke import costmodel_alarms

        if not (os.path.exists("COSTMODEL.json") and os.path.exists("BENCH_sweep.json")):
            pytest.skip("committed artifacts not present")
        baseline, _ = load_records("BENCH_sweep.json")
        assert costmodel_alarms(baseline, baseline, "COSTMODEL.json") == []


class TestBenchFitFlag:
    def test_bench_fit_cost_model_writes_artifact(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "cm.json"
        code = main([
            "bench", "--dataset", "ngsim", "--n", "300", "--eps", "0.01",
            "--minpts", "5", "--algorithms", "fdbscan",
            "--fit-cost-model", str(out),
        ])
        assert code == 0
        assert out.exists()
        validate_costmodel(json.loads(out.read_text()))
        text = capsys.readouterr().out
        assert "fitted cost model" in text
        assert "cost model written" in text

    def test_serve_cost_model_flag(self, tmp_path, capsys):
        from repro.cli import main

        cm = tmp_path / "cm.json"
        fit_cost_model(
            _linear_sources(),
            per_point={"distance_evals": 120.0, "launches": 0.02},
        ).save(str(cm))
        code = main([
            "serve", "--traffic", "30", "--cost-model", str(cm),
            "--event-log", str(tmp_path / "ev.jsonl"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "-- slo --" in out
        assert "events" in out
        assert (tmp_path / "ev.jsonl").exists()
