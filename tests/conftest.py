"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device.device import Device, get_default_device


@pytest.fixture
def rng():
    """A per-test deterministic generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def device():
    """A fresh accounting device (never the shared default)."""
    return Device(name="test-gpu")


@pytest.fixture(autouse=True)
def _reset_default_device():
    """Keep the shared default device's ledgers from leaking across tests."""
    yield
    get_default_device().reset()


@pytest.fixture
def blobs_2d(rng):
    """Two tight 2-D clusters plus scattered noise (400 points)."""
    return np.concatenate(
        [
            rng.normal(0.0, 0.1, size=(180, 2)),
            rng.normal(3.0, 0.1, size=(170, 2)),
            rng.uniform(-2.0, 5.0, size=(50, 2)),
        ]
    )


@pytest.fixture
def blobs_3d(rng):
    """Three 3-D clusters plus noise (330 points)."""
    return np.concatenate(
        [
            rng.normal(0.0, 0.15, size=(100, 3)),
            rng.normal(2.0, 0.15, size=(100, 3)),
            rng.normal(-2.0, 0.15, size=(100, 3)),
            rng.uniform(-4.0, 4.0, size=(30, 3)),
        ]
    )


def brute_neighbor_counts(X: np.ndarray, eps: float) -> np.ndarray:
    """Reference |N_eps(x)| (self included, dist <= eps)."""
    diff = X[:, None, :] - X[None, :, :]
    d2 = np.einsum("ijk,ijk->ij", diff, diff)
    return (d2 <= eps * eps).sum(axis=1)


def brute_pairs(X: np.ndarray, eps: float) -> set[tuple[int, int]]:
    """Reference unordered neighbour pairs (i < j, dist <= eps)."""
    diff = X[:, None, :] - X[None, :, :]
    d2 = np.einsum("ijk,ijk->ij", diff, diff)
    adj = d2 <= eps * eps
    out = set()
    n = X.shape[0]
    for i in range(n):
        for j in range(i + 1, n):
            if adj[i, j]:
                out.add((i, j))
    return out
