"""Chaos suite for the clustering service: seeded service fault plans
through the whole request loop.

Marked ``chaos`` so CI runs it as its own matrix job over fault seeds
(``CHAOS_SEED=<seed> pytest -m chaos``).  One plan mixes malformed and
oversized requests, deadline storms, injected kernel faults and one
mid-stream crash-restart; the loop must yield

- **zero unhandled exceptions** — every response is a status, never a
  traceback;
- **correct-or-explicitly-degraded** responses per the ladder: an
  ``ok`` cluster answer is DBSCAN-equivalent to a fresh run on the same
  live points, a degraded one *names* its rung, a shed one carries
  ``Retry-After``, and errors carry typed codes;
- **bit-equal fingerprints** after the crash: the restarted service's
  journal replay reproduces the exact pre-crash index state;
- **ladder equivalence** where promised: the ``single`` rung's labels
  are bit-identical to ``full``'s (the engines' equivalence guarantee).
"""

import os

import numpy as np
import pytest

from repro.core.fdbscan import fdbscan
from repro.core.labels import DBSCANResult
from repro.faults import FaultPlan, FaultSpec
from repro.metrics.equivalence import assert_dbscan_equivalent
from repro.service import ClusteringService, ServiceConfig
from repro.service.traffic import run_traffic

pytestmark = pytest.mark.chaos

#: Base seed for the plans; CI sweeps it via the environment.
BASE_SEED = int(os.environ.get("CHAOS_SEED", "0"))

_EXPECTED_STATUSES = {"ok", "degraded", "shed", "rejected", "error"}
_EXPECTED_ERROR_CODES = {
    "malformed", "oversized", "protocol", "not_found", "conflict",
    "deadline_exceeded", "kernel_fault", "invalid",
}
_EXPECTED_MODES = {
    None, "single", "cached", "cache_miss_count_only", "count_only",
    "ladder", "backpressure", "breaker_open",
}


def _service_plan(seed: int) -> FaultPlan:
    spec = FaultSpec(
        p_device_fault=0.12,
        p_malformed=0.1,
        p_oversized=0.05,
        p_deadline_storm=0.08,
        p_invalidate=0.08,
        p_service_crash=0.04,
        fault_attempts=2,
    )
    return FaultPlan(seed, spec)


class TestServiceChaos:
    @pytest.mark.parametrize("round_", range(3))
    def test_seeded_storm_correct_or_explicitly_degraded(self, tmp_path, round_):
        seed = BASE_SEED * 1000 + round_
        journal = str(tmp_path / f"svc-{seed}.jsonl")
        # run_traffic handles the crash-restart internally; any unhandled
        # exception anywhere in the loop fails this test by propagating.
        report = run_traffic(
            n_requests=90,
            seed=seed,
            plan=_service_plan(seed),
            journal_path=journal,
            index_points=120,
        )
        # every request on the wire got a response with a known status
        # (a crash resets the ledger, so count from the wire records)
        assert len(report["records"]) == report["requests_sent"]
        assert {r["status"] for r in report["records"]} <= _EXPECTED_STATUSES
        # the final instance's ledger is internally consistent too
        assert sum(report["by_status"].values()) == report["requests"]
        assert set(report["by_status"]) <= _EXPECTED_STATUSES
        service = report["service"]
        for row in service.ledger:
            assert row["status"] in _EXPECTED_STATUSES
            assert row["mode"] in _EXPECTED_MODES
            if row["error_code"] is not None:
                assert row["error_code"] in _EXPECTED_ERROR_CODES
        # crash-restarts replayed to bit-equal fingerprints
        for restart in report["restarts"]:
            assert restart["bit_equal"], restart
        # the metrics totals equal the ledger (raises on mismatch)
        assert report["metrics_ledger"]["ok"]

    @pytest.mark.parametrize("round_", range(2))
    def test_ok_answers_are_dbscan_equivalent_under_faults(self, round_):
        seed = BASE_SEED * 1000 + 500 + round_
        rng = np.random.default_rng([seed, 0xC0DE])
        X = rng.random((200, 2))
        plan = FaultPlan(seed, FaultSpec(p_device_fault=0.35, fault_attempts=2))
        svc = ClusteringService(fault_plan=plan)
        svc.handle({"op": "create_index", "index": "a", "points": X.tolist()})
        ref = fdbscan(X, 0.08, 5)
        saw_ok = False
        for _ in range(8):
            r = svc.handle(
                {"op": "cluster", "index": "a", "eps": 0.08, "min_samples": 5}
            )
            if r["status"] == "ok":
                saw_ok = True
                got = DBSCANResult(
                    labels=np.asarray(r["result"]["labels"], dtype=np.int64),
                    is_core=np.asarray(r["result"]["is_core"], dtype=bool),
                    n_clusters=int(r["result"]["n_clusters"]),
                )
                assert_dbscan_equivalent(got, ref, X, 0.08)
            elif r["status"] == "shed":
                assert r["retry_after"] > 0
                svc.clock.sleep(r["retry_after"])
            else:
                assert r["error"]["code"] in _EXPECTED_ERROR_CODES
        assert saw_ok  # retries + breaker recovery must let some through

    def test_single_rung_is_bit_identical_to_full(self):
        # The ladder's 'single' promise: status ok, labels bit-equal.
        seed = BASE_SEED * 1000 + 900
        X = np.random.default_rng([seed, 0x51E]).random((180, 2))
        full = ClusteringService()
        full.handle({"op": "create_index", "index": "a", "points": X.tolist()})
        r_full = full.handle(
            {"op": "cluster", "index": "a", "eps": 0.07, "min_samples": 4,
             "traversal": "dual"}
        )
        forced_single = ClusteringService(
            config=ServiceConfig(ladder_thresholds=(0.0, 2.0, 3.0, 4.0))
        )
        forced_single.handle({"op": "create_index", "index": "a", "points": X.tolist()})
        r_single = forced_single.handle(
            {"op": "cluster", "index": "a", "eps": 0.07, "min_samples": 4,
             "traversal": "dual"}
        )
        assert r_full["status"] == "ok" and r_full.get("mode") is None
        assert r_single["status"] == "ok" and r_single["mode"] == "single"
        assert r_full["result"]["labels"] == r_single["result"]["labels"]
        assert r_full["result"]["is_core"] == r_single["result"]["is_core"]

    def test_deadline_storm_kills_requests_not_the_service(self):
        seed = BASE_SEED * 1000 + 901
        X = np.random.default_rng([seed, 0xDEAD]).random((300, 2))
        svc = ClusteringService()
        svc.handle({"op": "create_index", "index": "a", "points": X.tolist()})
        for checks in (1, 2, 3, 5, 8):
            r = svc.handle(
                {"op": "cluster", "index": "a", "eps": 0.06, "min_samples": 5,
                 "deadline_checks": checks}
            )
            assert r["status"] == "error"
            assert r["error"]["code"] == "deadline_exceeded"
        # the index is unharmed: a storm is the clients' problem
        assert svc.breakers["a"].state == "closed"
        r = svc.handle({"op": "cluster", "index": "a", "eps": 0.06, "min_samples": 5})
        assert r["status"] == "ok"
        assert svc.verify_metrics_ledger()["ok"]

    def test_same_seed_same_shed_and_degrade_counts(self, tmp_path):
        seed = BASE_SEED * 1000 + 902
        reports = []
        for run in range(2):
            journal = str(tmp_path / f"svc-{run}.jsonl")
            reports.append(
                run_traffic(
                    n_requests=60,
                    seed=seed,
                    plan=_service_plan(seed),
                    journal_path=journal,
                    index_points=100,
                )
            )
        a, b = reports
        # wall latency differs run to run; the decisions must not
        assert a["by_status"] == b["by_status"]
        assert a["shed_reasons"] == b["shed_reasons"]
        assert a["degraded_modes"] == b["degraded_modes"]
        assert a["faults_applied"] == b["faults_applied"]
        assert [r["label"] for r in a["records"]] == [r["label"] for r in b["records"]]
        assert [r["status"] for r in a["records"]] == [r["status"] for r in b["records"]]
