"""Unit and property tests for Morton codes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh.morton import (
    bits_per_axis,
    compact_bits_2d,
    compact_bits_3d,
    expand_bits_2d,
    expand_bits_3d,
    morton_codes,
    normalize_to_grid,
)


class TestBitSpreading:
    def test_expand_2d_small_values(self):
        # bit i of input lands at bit 2i
        x = np.array([0b1011], dtype=np.uint64)
        out = expand_bits_2d(x)[0]
        assert out == 0b1000101

    def test_expand_3d_small_values(self):
        x = np.array([0b101], dtype=np.uint64)
        out = expand_bits_3d(x)[0]
        assert out == 0b1000001

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=100, deadline=None)
    def test_compact_inverts_expand_2d(self, v):
        x = np.array([v], dtype=np.uint64)
        assert compact_bits_2d(expand_bits_2d(x))[0] == v

    @given(st.integers(0, 2**21 - 1))
    @settings(max_examples=100, deadline=None)
    def test_compact_inverts_expand_3d(self, v):
        x = np.array([v], dtype=np.uint64)
        assert compact_bits_3d(expand_bits_3d(x))[0] == v

    def test_expanded_bits_do_not_collide(self):
        # Interleaving x and y<<1 must be injective.
        rng = np.random.default_rng(0)
        xs = rng.integers(0, 2**31, size=500, dtype=np.uint64)
        ys = rng.integers(0, 2**31, size=500, dtype=np.uint64)
        codes = expand_bits_2d(xs) | (expand_bits_2d(ys) << np.uint64(1))
        back_x = compact_bits_2d(codes)
        back_y = compact_bits_2d(codes >> np.uint64(1))
        np.testing.assert_array_equal(back_x, xs)
        np.testing.assert_array_equal(back_y, ys)


class TestNormalize:
    def test_corners_map_to_extremes(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        grid = normalize_to_grid(pts, np.zeros(2), np.ones(2), bits=8)
        np.testing.assert_array_equal(grid[0], [0, 0])
        np.testing.assert_array_equal(grid[1], [255, 255])

    def test_degenerate_axis_maps_to_zero(self):
        pts = np.array([[0.5, 2.0], [0.7, 2.0]])
        grid = normalize_to_grid(pts, pts.min(0), pts.max(0), bits=8)
        assert grid[0, 1] == grid[1, 1] == 0


class TestMortonCodes:
    def test_supported_dims(self):
        for d in (1, 2, 3):
            assert bits_per_axis(d) > 0
        with pytest.raises(ValueError, match="dim"):
            bits_per_axis(4)

    def test_codes_nonnegative_int64(self):
        rng = np.random.default_rng(1)
        for d in (1, 2, 3):
            codes = morton_codes(rng.uniform(-5, 5, size=(200, d)))
            assert codes.dtype == np.int64
            assert (codes >= 0).all()

    def test_empty_input(self):
        assert morton_codes(np.zeros((0, 2))).shape == (0,)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="finite"):
            morton_codes(np.array([[np.nan, 0.0]]))

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError, match="must be"):
            morton_codes(np.zeros(5))

    def test_identical_points_identical_codes(self):
        pts = np.ones((4, 2))
        codes = morton_codes(pts, lo=np.zeros(2), hi=np.full(2, 2.0))
        assert np.unique(codes).size == 1

    def test_monotone_along_single_axis(self):
        # With other coordinates fixed at the scene minimum, codes must be
        # non-decreasing in each coordinate (Z-order property).
        for d in (1, 2, 3):
            for axis in range(d):
                pts = np.zeros((100, d))
                pts[:, axis] = np.linspace(0, 1, 100)
                codes = morton_codes(pts, lo=np.zeros(d), hi=np.ones(d))
                assert np.all(np.diff(codes) >= 0), (d, axis)

    @given(st.integers(0, 10_000), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_locality_order_vs_lexicographic_quadrant(self, seed, d):
        # The high bit of the code is the high bit of the last axis:
        # points in the upper half of the last axis sort after points in
        # the lower half when all other axes stay in the lower half.
        rng = np.random.default_rng(seed)
        low = rng.uniform(0.0, 0.49, size=(20, d))
        high = low.copy()
        high[:, -1] += 0.5
        both = np.concatenate([low, high])
        codes = morton_codes(both, lo=np.zeros(d), hi=np.ones(d))
        assert codes[:20].max() < codes[20:].min()
