"""Property tests: clustering output is invariant to execution schedule.

The paper's batched traversal processes queries in chunks (the
resident-thread limit) and the sweep harness reuses prebuilt indexes —
both are *schedule* choices and must not change the clustering.  The
buffered pair resolver attaches each border point to its *minimum* core
neighbour, a commutative reduction — so labels match bit for bit across
chunkings, not merely up to the border-tie equivalence of
:func:`assert_dbscan_equivalent` (still asserted as the semantic floor).
Warm-vs-cold index reuse replays the identical schedule, so there the
labels trivially must match too.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.densebox import fdbscan_densebox
from repro.core.fdbscan import fdbscan
from repro.core.index import DBSCANIndex
from repro.device.device import Device
from repro.metrics.equivalence import assert_dbscan_equivalent

ALGORITHMS = {"fdbscan": fdbscan, "fdbscan-densebox": fdbscan_densebox}

#: Chunk sizes spanning the degenerate (one query per wavefront), odd,
#: moderate, and unchunked schedules.
CHUNK_SIZES = (1, 7, 100, None)


def _mixed_points(seed: int, n: int):
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [
            rng.normal(0.0, 0.05, size=(n // 2, 2)),
            rng.uniform(-1.0, 1.0, size=(n - n // 2, 2)),
        ]
    )


class TestScheduleInvariance:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @given(seed=st.integers(0, 10_000), eps=st.floats(0.02, 0.3))
    @settings(max_examples=15, deadline=None)
    def test_clustering_invariant_to_chunk_size(self, name, seed, eps):
        algo = ALGORITHMS[name]
        X = _mixed_points(seed, 120)
        baseline = algo(X, eps, 5, chunk_size=CHUNK_SIZES[0])
        for chunk in CHUNK_SIZES[1:]:
            result = algo(X, eps, 5, chunk_size=chunk)
            np.testing.assert_array_equal(
                result.is_core,
                baseline.is_core,
                err_msg=f"{name} core mask changed at chunk_size={chunk}",
            )
            np.testing.assert_array_equal(
                result.labels,
                baseline.labels,
                err_msg=f"{name} labels changed at chunk_size={chunk}",
            )
            assert_dbscan_equivalent(result, baseline, X, eps)

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @given(seed=st.integers(0, 10_000), eps=st.floats(0.02, 0.3))
    @settings(max_examples=15, deadline=None)
    def test_labels_identical_warm_vs_cold_index(self, name, seed, eps):
        algo = ALGORITHMS[name]
        X = _mixed_points(seed, 120)
        cold = algo(X, eps, 5, device=Device())
        index = cold.info["index"]
        warm = algo(X, eps, 5, device=Device(), index=index)
        assert warm.info["index_reused"]
        np.testing.assert_array_equal(warm.labels, cold.labels)
        np.testing.assert_array_equal(warm.is_core, cold.is_core)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_shared_index_both_algorithms_chunked(self, seed):
        # one index serves both algorithms under every chunking; within an
        # algorithm, every schedule must produce an equivalent clustering
        X = _mixed_points(seed, 100)
        index = DBSCANIndex(X)
        for name, algo in sorted(ALGORITHMS.items()):
            baseline = None
            for chunk in CHUNK_SIZES:
                result = algo(X, 0.1, 5, chunk_size=chunk, index=index)
                if baseline is None:
                    baseline = result
                else:
                    np.testing.assert_array_equal(result.labels, baseline.labels)
                    assert_dbscan_equivalent(result, baseline, X, 0.1)
