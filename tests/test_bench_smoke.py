"""Tests for the CI bench-smoke gate (``repro.bench.smoke``).

The gate replays a baseline's saved ``meta["argv"]`` through the CLI's
own parser, so the round trip — ``repro bench --save`` then
``python -m repro.bench.smoke`` — must be green on an untouched
baseline, red on a tampered one, and loud on a baseline that cannot be
replayed at all.
"""

import json

import numpy as np
import pytest

from repro.bench.harness import RunRecord
from repro.bench.history import load_records, save_records
from repro.bench.smoke import _strip_option, dual_ratio_alarms, run_smoke
from repro.cli import main
from repro.datasets import gaussian_blobs
from repro.datasets.io import save_points


@pytest.fixture
def points_file(tmp_path):
    X = gaussian_blobs(300, seed=3)
    path = tmp_path / "points.npy"
    save_points(str(path), np.asarray(X))
    return str(path)


@pytest.fixture
def baseline(points_file, tmp_path, capsys):
    path = tmp_path / "baseline.json"
    rc = main(
        [
            "bench",
            points_file,
            "--eps",
            "0.2",
            "--minpts-sweep",
            "5,10",
            "--algorithms",
            "fdbscan",
            "--query-order",
            "morton",
            "--save",
            str(path),
        ]
    )
    assert rc == 0
    capsys.readouterr()
    return str(path)


class TestStripOption:
    def test_separate_value(self):
        assert _strip_option(["a", "--save", "f.json", "b"], "--save") == ["a", "b"]

    def test_equals_form(self):
        assert _strip_option(["a", "--save=f.json", "b"], "--save") == ["a", "b"]

    def test_flag_followed_by_option(self):
        # value slot occupied by another option: must not swallow it
        assert _strip_option(["--save", "--eps", "0.1"], "--save") == ["--eps", "0.1"]

    def test_absent(self):
        assert _strip_option(["a", "b"], "--save") == ["a", "b"]


def _mode_pair(single_counters, dual_counters, status="ok"):
    common = dict(algorithm="fdbscan", dataset="d", n=100, eps=0.1, min_samples=5)
    return [
        RunRecord(**common, traversal="single", status=status,
                  counters=single_counters),
        RunRecord(**common, traversal="dual", status=status,
                  counters=dual_counters),
    ]


class TestDualRatioGate:
    def test_pruning_win_passes(self):
        records = _mode_pair(
            {"box_tests": 1000, "nodes_visited": 1000},
            {"box_tests": 300, "group_box_tests": 100, "nodes_visited": 200},
        )
        assert dual_ratio_alarms(records, 0.7) == []

    def test_degraded_pruning_alarms(self):
        records = _mode_pair(
            {"box_tests": 1000, "nodes_visited": 1000},
            {"box_tests": 900, "group_box_tests": 500, "nodes_visited": 900},
        )
        alarms = dual_ratio_alarms(records, 0.7)
        assert len(alarms) == 1
        assert "dual/single pruning work" in alarms[0]

    def test_non_tree_and_failed_cells_ignored(self):
        # no box tests under the single engine (a baseline) -> no signal
        records = _mode_pair(
            {"nodes_visited": 1000},
            {"group_box_tests": 99999, "nodes_visited": 99999},
        )
        assert dual_ratio_alarms(records, 0.7) == []
        records = _mode_pair(
            {"box_tests": 1000, "nodes_visited": 1000},
            {"group_box_tests": 99999, "nodes_visited": 99999},
            status="oom",
        )
        assert dual_ratio_alarms(records, 0.7) == []


class TestRunSmoke:
    def test_green_on_untouched_baseline(self, baseline, capsys):
        assert run_smoke(baseline, wall_threshold=50.0, rate_threshold=1.25) == 0
        out = capsys.readouterr().out
        assert "no wall, rate, status or result regressions" in out

    def test_saved_argv_is_replayable(self, baseline):
        # main() was called programmatically; the recorded argv must be the
        # bench argv, not the host process's sys.argv.
        _, meta = load_records(baseline)
        assert meta["argv"][0] == "bench"
        assert "--save" in meta["argv"]

    def test_red_on_rate_regression(self, baseline, capsys):
        # shrink the baseline's work counters so the fresh run looks like
        # it does 2x the work per point (rates derive from counters)
        with open(baseline) as fh:
            payload = json.load(fh)
        for rec in payload["records"]:
            rec["counters"] = {k: v // 2 for k, v in rec["counters"].items()}
        with open(baseline, "w") as fh:
            json.dump(payload, fh)
        assert run_smoke(baseline, wall_threshold=50.0, rate_threshold=1.25) == 1
        assert "rate_regression" in capsys.readouterr().out

    def test_error_without_argv(self, tmp_path, capsys):
        path = tmp_path / "no_argv.json"
        save_records(str(path), [], meta={})
        assert run_smoke(str(path)) == 2
        assert "no meta['argv']" in capsys.readouterr().err

    def test_error_on_non_bench_argv(self, tmp_path):
        path = tmp_path / "bad_argv.json"
        save_records(str(path), [], meta={"argv": ["cluster", "x.npy"]})
        with pytest.raises(ValueError, match="bench"):
            run_smoke(str(path))
