"""Parity and pruning tests for the dual (query-aggregated) traversal.

The dual engine is a pure work-scheduling change: every test here pins
the contract that labels, delivered hits and ``distance_evals`` are
*bit-identical* to the single-query engine, while the pruning counters
(``box_tests``/``nodes_visited``, plus the new ``group_box_tests`` /
``box_tests_saved``) account the aggregated traversal honestly.
"""

import numpy as np
import pytest

from repro.bvh.aabb import boxes_from_points
from repro.bvh.builder import build_bvh
from repro.bvh.traversal import count_within, for_each_leaf_hit
from repro.core.densebox import fdbscan_densebox
from repro.core.fdbscan import fdbscan
from repro.core.index import DBSCANIndex
from repro.device.device import Device

ALGORITHMS = {"fdbscan": fdbscan, "fdbscan-densebox": fdbscan_densebox}


def clustered_points(rng, n, dim):
    """A clustered set (the regime group pruning is built for) + noise."""
    centers = rng.uniform(0.0, 4.0, size=(6, dim))
    per = n // 8
    blobs = [c + rng.normal(0.0, 0.08, size=(per, dim)) for c in centers]
    noise = rng.uniform(0.0, 4.0, size=(n - 6 * per, dim))
    return np.concatenate(blobs + [noise])


def point_tree(X, device=None):
    lo, hi = boxes_from_points(X)
    return build_bvh(lo, hi, device=device)


class TestClusteringParity:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @pytest.mark.parametrize("dim", [2, 3])
    def test_labels_and_distance_evals_identical(self, rng, name, dim):
        X = clustered_points(rng, 600, dim)
        runs = {}
        for traversal in ("single", "dual"):
            dev = Device(name=f"parity-{traversal}")
            res = ALGORITHMS[name](X, 0.15, 5, device=dev, traversal=traversal)
            runs[traversal] = (res, dev.counters.snapshot())
        single, s_counts = runs["single"]
        dual, d_counts = runs["dual"]
        np.testing.assert_array_equal(dual.labels, single.labels)
        np.testing.assert_array_equal(dual.is_core, single.is_core)
        assert d_counts["distance_evals"] == s_counts["distance_evals"]
        assert d_counts["scatter_adds"] == s_counts["scatter_adds"]
        assert single.info["traversal"] == "single"
        assert dual.info["traversal"] == "dual"

    @pytest.mark.parametrize("chunk_size", [None, 17, 64])
    def test_parity_across_chunk_sizes(self, rng, chunk_size):
        X = clustered_points(rng, 400, 2)
        outs = [
            ALGORITHMS["fdbscan"](
                X, 0.15, 5, chunk_size=chunk_size, traversal=t
            ).labels
            for t in ("single", "dual")
        ]
        np.testing.assert_array_equal(outs[0], outs[1])

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_weighted_parity(self, rng, name):
        # Float weights make the core test accumulation-order sensitive:
        # parity here means the dual engine delivers each query's hits in
        # the same order the single engine does, bit for bit.
        X = clustered_points(rng, 500, 2)
        w = rng.uniform(0.25, 3.0, size=X.shape[0])
        single = ALGORITHMS[name](X, 0.15, 4.0, sample_weight=w, traversal="single")
        dual = ALGORITHMS[name](X, 0.15, 4.0, sample_weight=w, traversal="dual")
        np.testing.assert_array_equal(dual.labels, single.labels)
        np.testing.assert_array_equal(dual.is_core, single.is_core)

    def test_index_preference_and_override(self, rng):
        X = clustered_points(rng, 300, 2)
        index = DBSCANIndex(X, traversal="dual")
        res = fdbscan(X, 0.15, 5, index=index)
        assert res.info["traversal"] == "dual"
        res = fdbscan(X, 0.15, 5, index=index, traversal="single")
        assert res.info["traversal"] == "single"
        with pytest.raises(ValueError, match="traversal"):
            DBSCANIndex(X, traversal="triple")


class TestTraversalParity:
    @pytest.mark.parametrize("stop_at", [None, 5])
    def test_count_within_counts_and_evals(self, rng, stop_at):
        X = clustered_points(rng, 700, 2)
        tree = point_tree(X)
        results = {}
        for traversal in ("single", "dual"):
            dev = Device(name=f"cw-{traversal}")
            counts = count_within(
                tree, X, 0.12, stop_at=stop_at, device=dev, traversal=traversal
            )
            results[traversal] = (counts, dev.counters.snapshot())
        np.testing.assert_array_equal(results["dual"][0], results["single"][0])
        assert (
            results["dual"][1]["distance_evals"]
            == results["single"][1]["distance_evals"]
        )

    def test_leaf_hits_identical_with_mask_and_early_exit(self, rng):
        # The fused main phase's exact configuration: a traversal mask,
        # a monotone finished_fn, streaming callbacks.
        X = clustered_points(rng, 500, 2)
        tree = point_tree(X)
        m = X.shape[0]
        sorted_pos = np.empty(m, dtype=np.int64)
        sorted_pos[tree.order] = np.arange(m)
        budget = 40

        def run(traversal):
            seen = np.zeros(m, dtype=np.int64)
            hits = []

            def on_hits(q_ids, leaf_pos):
                np.add.at(seen, q_ids, 1)
                hits.append((q_ids.copy(), leaf_pos.copy()))

            dev = Device(name=f"hits-{traversal}")
            for_each_leaf_hit(
                tree, X, 0.12, on_hits,
                mask_positions=sorted_pos,
                finished_fn=lambda ids: seen[ids] >= budget,
                device=dev, chunk_size=129, traversal=traversal,
            )
            q = np.concatenate([h[0] for h in hits]) if hits else np.zeros(0, int)
            p = np.concatenate([h[1] for h in hits]) if hits else np.zeros(0, int)
            return q, p, dev.counters.snapshot()

        sq, sp, sc = run("single")
        dq, dp, dc = run("dual")
        # identical hit multisets (delivery interleaving may differ)
        order_s = np.lexsort((sp, sq))
        order_d = np.lexsort((dp, dq))
        np.testing.assert_array_equal(dq[order_d], sq[order_s])
        np.testing.assert_array_equal(dp[order_d], sp[order_s])
        assert dc["distance_evals"] == sc["distance_evals"]

    def test_group_size_one_degenerates_to_per_query(self, rng):
        X = clustered_points(rng, 300, 2)
        tree = point_tree(X)
        single = count_within(tree, X, 0.12, traversal="single")
        dual = count_within(tree, X, 0.12, traversal="dual", group_size=1)
        np.testing.assert_array_equal(dual, single)

    def test_invalid_traversal_rejected(self, rng):
        X = rng.uniform(0, 1, size=(20, 2))
        tree = point_tree(X)
        with pytest.raises(ValueError, match="traversal"):
            count_within(tree, X, 0.1, traversal="triple")


class TestPruning:
    def test_dual_prunes_clustered_data(self, rng):
        # The acceptance property: on clustered data the dual engine's
        # total pruning work (box tests, group tests and frontier node
        # visits) undercuts the single engine's — and never exceeds it.
        X = clustered_points(rng, 2000, 2)
        work = {}
        for traversal in ("single", "dual"):
            dev = Device(name=f"prune-{traversal}")
            tree = point_tree(X, device=dev)
            count_within(tree, X, 0.1, device=dev, traversal=traversal)
            work[traversal] = dev.counters.snapshot()
        s, d = work["single"], work["dual"]
        assert d["nodes_visited"] <= s["nodes_visited"]
        dual_total = (
            d.get("box_tests", 0) + d.get("group_box_tests", 0) + d["nodes_visited"]
        )
        single_total = s["box_tests"] + s["nodes_visited"]
        assert dual_total <= single_total
        # the clustered regime should beat the acceptance bar (>= 30%)
        assert dual_total <= 0.7 * single_total
        assert d.get("group_box_tests", 0) > 0
        assert d.get("box_tests_saved", 0) > 0

    def test_single_engine_has_no_group_counters(self, rng):
        X = clustered_points(rng, 300, 2)
        dev = Device(name="single-only")
        tree = point_tree(X, device=dev)
        count_within(tree, X, 0.1, device=dev, traversal="single")
        snap = dev.counters.snapshot()
        assert snap.get("group_box_tests", 0) == 0
        assert snap.get("box_tests_saved", 0) == 0
