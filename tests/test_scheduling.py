"""Property tests for the output-preserving scheduling levers (PR 4).

The traversal frontier pool, Morton query ordering, buffered pair
resolution and the eps-keyed grid-binning cache are all *performance*
levers: every one of them must leave the clustering labels and the
deterministic work counters bit-identical.  These tests pin that
contract, plus the frontier pool's memory-accounting guarantee (its
transient peak is monotone in ``chunk_size``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh.aabb import boxes_from_points
from repro.bvh.builder import build_bvh
from repro.bvh.traversal import count_within, query_schedule
from repro.core.densebox import fdbscan_densebox
from repro.core.fdbscan import fdbscan
from repro.core.index import DBSCANIndex
from repro.device.device import Device
from repro.device.primitives import scatter_add

ALGORITHMS = {"fdbscan": fdbscan, "fdbscan-densebox": fdbscan_densebox}

#: Work counters that must not move under any scheduling choice.
INVARIANT_COUNTERS = (
    "distance_evals",
    "box_tests",
    "nodes_visited",
    "pairs_processed",
    "union_ops",
    "scatter_adds",
)


def _mixed_points(seed: int, n: int):
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [
            rng.normal(0.0, 0.05, size=(n // 2, 2)),
            rng.uniform(-1.0, 1.0, size=(n - n // 2, 2)),
        ]
    )


def _invariant_counters(dev: Device) -> dict:
    snap = dev.counters.snapshot()
    return {k: snap.get(k, 0) for k in INVARIANT_COUNTERS}


class TestQueryOrderParity:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @given(seed=st.integers(0, 10_000), eps=st.floats(0.02, 0.3))
    @settings(max_examples=15, deadline=None)
    def test_labels_and_counters_identical(self, name, seed, eps):
        algo = ALGORITHMS[name]
        X = _mixed_points(seed, 130)
        dev_in, dev_mo = Device(), Device()
        a = algo(X, eps, 5, device=dev_in, chunk_size=32, query_order="input")
        b = algo(X, eps, 5, device=dev_mo, chunk_size=32, query_order="morton")
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.is_core, b.is_core)
        assert _invariant_counters(dev_in) == _invariant_counters(dev_mo)

    def test_count_within_identical(self):
        X = _mixed_points(3, 200)
        lo, hi = boxes_from_points(X)
        tree = build_bvh(lo, hi)
        for stop_at in (None, 5):
            base = count_within(tree, X, 0.1, stop_at=stop_at, chunk_size=64)
            morton = count_within(
                tree, X, 0.1, stop_at=stop_at, chunk_size=64, query_order="morton"
            )
            np.testing.assert_array_equal(base, morton)

    def test_schedule_is_a_permutation(self):
        X = _mixed_points(1, 50)
        sched = query_schedule(X, "morton")
        assert sorted(sched.tolist()) == list(range(50))

    def test_schedule_input_is_none(self):
        assert query_schedule(_mixed_points(1, 50), "input") is None
        # fewer than 2 queries: nothing to reorder
        assert query_schedule(np.zeros((1, 2)), "morton") is None

    def test_bad_order_rejected(self):
        X = _mixed_points(1, 10)
        with pytest.raises(ValueError, match="query_order"):
            query_schedule(X, "zorder")
        with pytest.raises(ValueError, match="query_order"):
            fdbscan(X, 0.1, 3, query_order="zorder")


class TestChunkAndBufferParity:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @given(seed=st.integers(0, 10_000), eps=st.floats(0.02, 0.3))
    @settings(max_examples=15, deadline=None)
    def test_labels_identical_across_chunk_sizes(self, name, seed, eps):
        # The deterministic border attachment makes labels (not merely the
        # partition) identical across chunkings.
        algo = ALGORITHMS[name]
        X = _mixed_points(seed, 120)
        baseline = algo(X, eps, 5, chunk_size=1)
        for chunk in (7, 100, None):
            result = algo(X, eps, 5, chunk_size=chunk)
            np.testing.assert_array_equal(result.labels, baseline.labels)
            np.testing.assert_array_equal(result.is_core, baseline.is_core)

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_labels_and_pairs_identical_across_buffering(self, name, seed):
        algo = ALGORITHMS[name]
        X = _mixed_points(seed, 120)
        dev0 = Device()
        baseline = algo(X, 0.1, 5, device=dev0, pair_buffer=None)
        for buffer_pairs in (1, 64, 1 << 16):
            dev = Device()
            result = algo(X, 0.1, 5, device=dev, pair_buffer=buffer_pairs)
            np.testing.assert_array_equal(result.labels, baseline.labels)
            assert _invariant_counters(dev) == _invariant_counters(dev0)


class TestBinningCache:
    def test_minpts_sweep_bins_once(self):
        # The ROADMAP item this PR closes: a minpts sweep at fixed eps
        # re-thresholds the cached binning instead of redecomposing.
        X = _mixed_points(5, 300)
        index = DBSCANIndex(X)
        dev = Device()
        sweep = {}
        for minpts in (3, 5, 8, 12):
            sweep[minpts] = fdbscan_densebox(X, 0.1, minpts, device=dev, index=index)
        assert index.binning_builds == 1
        assert index.binning_hits == 3
        # exactly one *live* grid binning ran on the device; the warm hits
        # replayed the recorded cost (counter totals still look cold).
        grid_bin = dev.profile()["grid_bin"]
        assert grid_bin["launches"] - grid_bin["replayed"] == 1
        assert grid_bin["replayed"] == 3
        assert dev.counters.extra["grid_binnings"] == 4
        # the cache is output-preserving: each sweep cell matches a cold run
        for minpts, warm in sweep.items():
            cold = fdbscan_densebox(X, 0.1, minpts)
            np.testing.assert_array_equal(warm.labels, cold.labels)

    def test_warm_binning_cold_threshold_accounting_matches_cold(self):
        # A *new* (eps, minpts) key at a warm eps replays the binning and
        # runs only the threshold + tree live; its device totals must be
        # indistinguishable from a fully cold decomposition.
        X = _mixed_points(6, 250)
        cold_dev = Device()
        cold = fdbscan_densebox(X, 0.1, 4, device=cold_dev)
        warm_dev = Device()
        index = DBSCANIndex(X)
        fdbscan_densebox(X, 0.1, 9, device=Device(), index=index)  # seeds eps=0.1
        warm = fdbscan_densebox(X, 0.1, 4, device=warm_dev, index=index)
        np.testing.assert_array_equal(warm.labels, cold.labels)
        assert warm_dev.counters.snapshot() == cold_dev.counters.snapshot()

    def test_binning_cache_fifo_bound(self):
        X = _mixed_points(7, 100)
        index = DBSCANIndex(X, max_binnings=2)
        for eps in (0.05, 0.1, 0.2):
            index.grid_binning(eps)
        assert len(index._binnings) == 2
        # the oldest eps was evicted; re-requesting it builds live again
        _, _, reused = index.grid_binning(0.05)
        assert not reused
        assert index.binning_builds == 4

    def test_weighted_and_unweighted_share_binning(self):
        X = _mixed_points(8, 150)
        w = np.random.default_rng(0).uniform(0.5, 2.0, size=150)
        index = DBSCANIndex(X)
        fdbscan_densebox(X, 0.1, 5, index=index)
        fdbscan_densebox(X, 0.1, 5, index=index, sample_weight=w)
        # different dense keys (weights differ), one shared binning
        assert index.n_dense_entries == 2
        assert index.binning_builds == 1
        assert index.binning_hits == 1


class TestFrontierPool:
    def test_peak_monotone_in_chunk_size(self):
        # The pool grows to exactly the requested high-water mark, and a
        # larger chunk's frontier is the union of its sub-chunks' at every
        # step — so the transient peak can only grow with chunk_size.
        X = _mixed_points(9, 400)
        lo, hi = boxes_from_points(X)
        peaks = []
        for chunk in (32, 64, 128, 256, 400):
            dev = Device()
            tree = build_bvh(lo, hi, device=dev)
            count_within(tree, X, 0.1, device=dev, chunk_size=chunk)
            peaks.append(dev.memory.report()["peak_by_tag"]["frontier"])
        assert peaks == sorted(peaks)
        assert peaks[0] > 0

    def test_pool_released_after_traversal(self):
        X = _mixed_points(10, 200)
        dev = Device()
        lo, hi = boxes_from_points(X)
        tree = build_bvh(lo, hi, device=dev)
        count_within(tree, X, 0.1, device=dev)
        assert dev.memory.peak_by_tag["frontier"] > 0
        assert dev.memory.live_by_tag.get("frontier", 0) == 0

    def test_frontier_peak_counter_recorded(self):
        X = _mixed_points(11, 150)
        dev = Device()
        lo, hi = boxes_from_points(X)
        tree = build_bvh(lo, hi, device=dev)
        count_within(tree, X, 0.1, device=dev, chunk_size=50)
        # the peak counts live (query, node) frontier entries — many nodes
        # per query, so it exceeds chunk_size but is bounded by the pool.
        assert dev.counters.frontier_peak > 0
        assert dev.counters.frontier_peak * 8 <= dev.memory.peak_by_tag["frontier"]


class TestScatterAdd:
    def test_matches_add_at_unweighted(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 20, size=500)
        expected = np.zeros(20, dtype=np.int64)
        np.add.at(expected, idx, 1)
        out = np.zeros(20, dtype=np.int64)
        scatter_add(out, idx)
        np.testing.assert_array_equal(out, expected)

    def test_matches_add_at_weighted(self):
        rng = np.random.default_rng(1)
        idx = rng.integers(0, 15, size=300)
        w = rng.uniform(0.1, 2.0, size=300)
        expected = np.zeros(15)
        np.add.at(expected, idx, w)
        out = np.zeros(15)
        scatter_add(out, idx, w)
        np.testing.assert_allclose(out, expected)

    def test_bool_values_count_true(self):
        idx = np.array([0, 1, 1, 2, 2, 2])
        mask = np.array([True, False, True, True, True, False])
        out = np.zeros(3, dtype=np.int64)
        scatter_add(out, idx, mask)
        np.testing.assert_array_equal(out, [1, 1, 2])

    def test_counter_increment(self, device):
        out = np.zeros(4, dtype=np.int64)
        scatter_add(out, np.array([0, 1, 2]), counters=device.counters)
        scatter_add(out, np.array([3, 3]), counters=device.counters)
        assert device.counters.extra["scatter_adds"] == 5

    def test_empty_index_noop(self):
        out = np.ones(3, dtype=np.int64)
        scatter_add(out, np.zeros(0, dtype=np.int64))
        np.testing.assert_array_equal(out, [1, 1, 1])

    def test_out_of_range_rejected(self):
        out = np.zeros(3, dtype=np.int64)
        with pytest.raises(ValueError, match="out of range"):
            scatter_add(out, np.array([0, 3]))
        with pytest.raises(ValueError, match="out of range"):
            scatter_add(out, np.array([-1]))
