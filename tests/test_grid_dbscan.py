"""Tests for the grid/binary-search baseline (the rejected Section-4.2
alternative) — oracle equivalence plus its design-specific behaviours."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.grid_dbscan import _chunks_by_load, _neighbor_offsets, grid_dbscan
from repro.baselines.sequential_dbscan import sequential_dbscan
from repro.device.device import Device
from repro.grid.grid import RegularGrid
from repro.metrics.equivalence import assert_dbscan_equivalent


class TestNeighborOffsets:
    @pytest.mark.parametrize("dim,expected_side", [(1, 3), (2, 5), (3, 5)])
    def test_offset_volume(self, dim, expected_side):
        offsets = _neighbor_offsets(dim)
        assert offsets.shape == (expected_side**dim, dim)

    def test_covers_eps_reach(self):
        # max per-axis cell distance of an eps-neighbour is ceil(sqrt(d))
        for d in (1, 2, 3):
            radius = int(np.ceil(np.sqrt(d)))
            offsets = _neighbor_offsets(d)
            assert offsets.min() == -radius
            assert offsets.max() == radius

    def test_includes_self(self):
        offsets = _neighbor_offsets(2)
        assert (offsets == 0).all(axis=1).any()


class TestChunksByLoad:
    def test_respects_limit_roughly(self):
        loads = np.array([5, 5, 5, 5])
        slices = list(_chunks_by_load(loads, 10))
        assert [s.stop - s.start for s in slices] == [2, 2]

    def test_single_huge_item_alone(self):
        loads = np.array([100, 1, 1])
        slices = list(_chunks_by_load(loads, 10))
        assert slices[0] == slice(0, 1)

    def test_covers_everything_once(self):
        rng = np.random.default_rng(0)
        loads = rng.integers(0, 50, size=37)
        covered = []
        for s in _chunks_by_load(loads, 60):
            covered.extend(range(s.start, s.stop))
        assert covered == list(range(37))

    def test_empty(self):
        assert list(_chunks_by_load(np.zeros(0, dtype=np.int64), 10)) == []


class TestGridDbscan:
    @pytest.mark.parametrize("minpts", [1, 2, 3, 5, 10, 40])
    def test_matches_oracle_blobs(self, blobs_2d, minpts):
        a = grid_dbscan(blobs_2d, 0.3, minpts)
        b = sequential_dbscan(blobs_2d, 0.3, minpts)
        assert_dbscan_equivalent(a, b, blobs_2d, 0.3)

    @pytest.mark.parametrize("eps", [0.2, 0.5])
    def test_matches_oracle_3d(self, blobs_3d, eps):
        a = grid_dbscan(blobs_3d, eps, 5)
        b = sequential_dbscan(blobs_3d, eps, 5)
        assert_dbscan_equivalent(a, b, blobs_3d, eps)

    def test_1d(self, rng):
        X = rng.uniform(0, 5, size=(200, 1))
        a = grid_dbscan(X, 0.05, 3)
        b = sequential_dbscan(X, 0.05, 3)
        assert_dbscan_equivalent(a, b, X, 0.05)

    @given(st.integers(0, 5000), st.floats(0.05, 0.7), st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_matches_oracle_property(self, seed, eps, minpts):
        rng = np.random.default_rng(seed)
        X = np.concatenate(
            [
                rng.normal(0, 0.1, size=(rng.integers(5, 60), 2)),
                rng.uniform(-1, 2, size=(rng.integers(5, 60), 2)),
            ]
        )
        a = grid_dbscan(X, eps, minpts)
        b = sequential_dbscan(X, eps, minpts)
        assert_dbscan_equivalent(a, b, X, eps)

    def test_dense_shortcuts_cut_distance_work(self, rng):
        # Two tight clumps: nearly all pairs resolve through dense-cell
        # logic without per-pair distance tests.
        X = np.concatenate(
            [rng.normal(0, 0.01, size=(300, 2)), rng.normal(2, 0.01, size=(300, 2))]
        )
        dev = Device()
        res = grid_dbscan(X, 0.2, 20, device=dev)
        assert res.n_clusters == 2
        # far fewer than the ~2 * (300^2) pairwise tests a naive grid does
        assert dev.counters.distance_evals < 300 * 300

    def test_probe_counters_recorded(self, blobs_2d):
        dev = Device()
        grid_dbscan(blobs_2d, 0.3, 5, device=dev)
        assert dev.counters.extra["cell_probes"] > 0
        assert dev.counters.extra["cell_probe_hits"] > 0
        # most probes miss on scattered data
        assert dev.counters.extra["cell_probe_hits"] < dev.counters.extra["cell_probes"]

    def test_huge_virtual_grid_rejected(self):
        # This is the design's documented limitation (the tree needs no
        # flat cell id).
        X = np.array([[0.0, 0.0, 0.0], [1e9, 1e9, 1e9]])
        with pytest.raises(OverflowError, match="flat int64"):
            grid_dbscan(X, 1e-3, 2)

    def test_single_point(self):
        res = grid_dbscan(np.zeros((1, 2)), 0.1, 1)
        assert res.n_clusters == 1

    def test_all_duplicates(self):
        X = np.ones((25, 2))
        res = grid_dbscan(X, 0.5, 10)
        assert res.n_clusters == 1
        assert res.is_core.all()

    def test_via_registry(self, blobs_2d):
        from repro import dbscan

        res = dbscan(blobs_2d, 0.3, 5, algorithm="grid")
        base = sequential_dbscan(blobs_2d, 0.3, 5)
        assert_dbscan_equivalent(base, res, blobs_2d, 0.3)

    def test_info_fields(self, blobs_2d):
        res = grid_dbscan(blobs_2d, 0.3, 5)
        for key in ("n_cells", "dense_fraction", "t_total"):
            assert key in res.info
