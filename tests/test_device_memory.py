"""Tests for the device-memory ledger, including the OOM failure mode."""

import numpy as np
import pytest

from repro.device.memory import DeviceMemoryError, MemoryTracker


class TestBasicAccounting:
    def test_allocate_free_roundtrip(self):
        mem = MemoryTracker()
        mem.allocate(100, "a")
        assert mem.live_bytes == 100
        mem.free(100, "a")
        assert mem.live_bytes == 0
        assert mem.peak_bytes == 100

    def test_peak_is_high_watermark(self):
        mem = MemoryTracker()
        mem.allocate(50, "a")
        mem.free(50, "a")
        mem.allocate(30, "b")
        assert mem.peak_bytes == 50
        assert mem.live_bytes == 30

    def test_per_tag_peaks(self):
        mem = MemoryTracker()
        mem.allocate(10, "tree")
        mem.allocate(20, "labels")
        mem.free(10, "tree")
        mem.allocate(5, "tree")
        report = mem.report()
        assert report["peak_by_tag"]["tree"] == 10
        assert report["peak_by_tag"]["labels"] == 20

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            MemoryTracker().allocate(-1)

    def test_overfree_rejected(self):
        mem = MemoryTracker()
        mem.allocate(10, "a")
        with pytest.raises(ValueError, match="freeing"):
            mem.free(11, "a")

    def test_free_wrong_tag_rejected(self):
        mem = MemoryTracker()
        mem.allocate(10, "a")
        with pytest.raises(ValueError, match="freeing"):
            mem.free(10, "b")

    def test_reset(self):
        mem = MemoryTracker(capacity_bytes=100)
        mem.allocate(40, "x")
        mem.reset()
        assert mem.live_bytes == 0
        assert mem.peak_bytes == 0
        assert mem.capacity_bytes == 100


class TestCapacity:
    def test_oom_raised_at_cap(self):
        mem = MemoryTracker(capacity_bytes=100)
        mem.allocate(60, "a")
        with pytest.raises(DeviceMemoryError) as exc:
            mem.allocate(41, "b")
        assert exc.value.requested == 41
        assert exc.value.live == 60
        assert exc.value.capacity == 100
        assert exc.value.tag == "b"

    def test_ledger_unchanged_after_oom(self):
        mem = MemoryTracker(capacity_bytes=100)
        mem.allocate(60, "a")
        with pytest.raises(DeviceMemoryError):
            mem.allocate(50, "b")
        assert mem.live_bytes == 60
        assert "b" not in mem.live_by_tag

    def test_exact_fit_allowed(self):
        mem = MemoryTracker(capacity_bytes=100)
        mem.allocate(100, "a")  # no raise
        assert mem.live_bytes == 100

    def test_oom_is_a_memory_error(self):
        # Callers catching MemoryError must catch the device OOM too.
        assert issubclass(DeviceMemoryError, MemoryError)


class TestScopedAndArrays:
    def test_scoped_releases_on_exit(self):
        mem = MemoryTracker()
        with mem.scoped(64, "tmp"):
            assert mem.live_bytes == 64
        assert mem.live_bytes == 0

    def test_scoped_releases_on_exception(self):
        mem = MemoryTracker()
        with pytest.raises(RuntimeError):
            with mem.scoped(64, "tmp"):
                raise RuntimeError("boom")
        assert mem.live_bytes == 0

    def test_array_allocation(self):
        mem = MemoryTracker()
        arr = mem.array((10, 3), np.float64, "pts")
        assert arr.shape == (10, 3)
        assert mem.live_bytes == arr.nbytes
        mem.free_array(arr, "pts")
        assert mem.live_bytes == 0

    def test_track_existing_array(self):
        mem = MemoryTracker()
        arr = np.ones(16, dtype=np.int64)
        out = mem.track_array(arr, "x")
        assert out is arr
        assert mem.live_bytes == 128


class TestTransientAllocations:
    def test_transient_exempt_from_cap(self):
        mem = MemoryTracker(capacity_bytes=100)
        mem.allocate(90, "persistent")
        # scratch beyond the cap is allowed: it has no device counterpart
        mem.allocate(500, "frontier", transient=True)
        assert mem.live_bytes == 590
        mem.free(500, "frontier")
        assert mem.live_bytes == 90

    def test_transient_still_recorded_in_peaks(self):
        mem = MemoryTracker(capacity_bytes=100)
        mem.allocate(500, "frontier", transient=True)
        mem.free(500, "frontier")
        assert mem.peak_by_tag["frontier"] == 500

    def test_persistent_still_capped(self):
        mem = MemoryTracker(capacity_bytes=100)
        mem.allocate(500, "frontier", transient=True)
        with pytest.raises(DeviceMemoryError):
            mem.allocate(101, "tree")
