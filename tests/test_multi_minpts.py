"""Tests for the amortised multi-minpts sweep (Section 3.2)."""

import numpy as np
import pytest

from repro import dbscan_minpts_sweep, fdbscan
from repro.device.device import Device
from repro.metrics.equivalence import assert_dbscan_equivalent


class TestSweepCorrectness:
    @pytest.mark.parametrize("values", [[5], [3, 5, 10], [1, 2, 5], [2], [40, 3]])
    def test_matches_individual_runs(self, blobs_2d, values):
        sweep = dbscan_minpts_sweep(blobs_2d, 0.3, values)
        assert set(sweep) == set(values)
        for mp in values:
            single = fdbscan(blobs_2d, 0.3, mp)
            assert_dbscan_equivalent(sweep[mp], single, blobs_2d, 0.3)

    def test_duplicate_values_collapse(self, blobs_2d):
        sweep = dbscan_minpts_sweep(blobs_2d, 0.3, [5, 5, 5])
        assert list(sweep) == [5]

    def test_3d(self, blobs_3d):
        sweep = dbscan_minpts_sweep(blobs_3d, 0.5, [4, 8])
        for mp in (4, 8):
            assert_dbscan_equivalent(sweep[mp], fdbscan(blobs_3d, 0.5, mp), blobs_3d, 0.5)

    def test_empty_values_rejected(self, blobs_2d):
        with pytest.raises(ValueError, match="non-empty"):
            dbscan_minpts_sweep(blobs_2d, 0.3, [])

    def test_invalid_value_rejected(self, blobs_2d):
        with pytest.raises(ValueError):
            dbscan_minpts_sweep(blobs_2d, 0.3, [5, 0])

    def test_results_monotone_in_minpts(self, blobs_2d):
        # raising minpts can only shrink the core set
        sweep = dbscan_minpts_sweep(blobs_2d, 0.3, [3, 6, 12])
        c3 = sweep[3].is_core
        c6 = sweep[6].is_core
        c12 = sweep[12].is_core
        assert (c6 <= c3).all()
        assert (c12 <= c6).all()


class TestAmortisation:
    def test_index_built_once(self, blobs_2d):
        dev = Device()
        dbscan_minpts_sweep(blobs_2d, 0.3, [3, 5, 10], device=dev)
        assert sum(1 for l in dev.launches if l.name == "bvh_build") == 1

    def test_one_count_pass_many_mains(self, blobs_2d):
        dev = Device()
        dbscan_minpts_sweep(blobs_2d, 0.3, [3, 5, 10], device=dev)
        counts = sum(1 for l in dev.launches if l.name == "bvh_count")
        mains = sum(1 for l in dev.launches if l.name.startswith("sweep_main"))
        assert counts == 1
        assert mains == 3

    def test_no_count_pass_for_low_minpts_only(self, blobs_2d):
        dev = Device()
        dbscan_minpts_sweep(blobs_2d, 0.3, [1, 2], device=dev)
        assert not any(l.name == "bvh_count" for l in dev.launches)

    def test_shared_timings_reported(self, blobs_2d):
        sweep = dbscan_minpts_sweep(blobs_2d, 0.3, [3, 9])
        t_counts = {sweep[mp].info["t_count"] for mp in (3, 9)}
        assert len(t_counts) == 1  # literally the same shared pass

    def test_sweep_cheaper_than_independent_runs(self, rng):
        # The paper's amortisation argument (Section 3.2): when the sweep
        # has several minpts values comparable to |N(x)|, early exit saves
        # little per run, so one shared full count (plus one shared tree
        # build) beats re-counting for every value.
        X = np.concatenate(
            [rng.normal(0, 0.02, size=(400, 2)), rng.normal(1, 0.02, size=(400, 2))]
        )
        values = [150, 200, 250, 300, 350]
        dev_sweep = Device()
        dbscan_minpts_sweep(X, 0.3, values, device=dev_sweep)
        dev_indiv = Device()
        for mp in values:
            fdbscan(X, 0.3, mp, device=dev_indiv)
        assert dev_sweep.counters.nodes_visited < dev_indiv.counters.nodes_visited
