"""Tests for AABB operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh.aabb import (
    box_contains_box,
    boxes_from_points,
    merge_aabbs,
    mindist_point_box_sq,
    scene_bounds,
    validate_boxes,
)


class TestConstruction:
    def test_boxes_from_points_degenerate(self):
        pts = np.array([[1.0, 2.0], [3.0, 4.0]])
        lo, hi = boxes_from_points(pts)
        np.testing.assert_array_equal(lo, pts)
        np.testing.assert_array_equal(hi, pts)
        # copies, not views
        lo[0, 0] = 99
        assert pts[0, 0] == 1.0

    def test_scene_bounds(self):
        lo = np.array([[0.0, 1.0], [2.0, -1.0]])
        hi = np.array([[1.0, 2.0], [3.0, 0.0]])
        slo, shi = scene_bounds(lo, hi)
        np.testing.assert_array_equal(slo, [0.0, -1.0])
        np.testing.assert_array_equal(shi, [3.0, 2.0])

    def test_scene_bounds_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            scene_bounds(np.zeros((0, 2)), np.zeros((0, 2)))

    def test_merge(self):
        lo, hi = merge_aabbs(
            np.array([[0.0, 0.0]]),
            np.array([[1.0, 1.0]]),
            np.array([[0.5, -1.0]]),
            np.array([[2.0, 0.5]]),
        )
        np.testing.assert_array_equal(lo, [[0.0, -1.0]])
        np.testing.assert_array_equal(hi, [[2.0, 1.0]])


class TestMinDist:
    def test_point_inside_box_is_zero(self):
        d2 = mindist_point_box_sq(
            np.array([[0.5, 0.5]]), np.array([[0.0, 0.0]]), np.array([[1.0, 1.0]])
        )
        assert d2[0] == 0.0

    def test_point_outside_face(self):
        d2 = mindist_point_box_sq(
            np.array([[2.0, 0.5]]), np.array([[0.0, 0.0]]), np.array([[1.0, 1.0]])
        )
        assert d2[0] == pytest.approx(1.0)

    def test_point_outside_corner(self):
        d2 = mindist_point_box_sq(
            np.array([[2.0, 2.0]]), np.array([[0.0, 0.0]]), np.array([[1.0, 1.0]])
        )
        assert d2[0] == pytest.approx(2.0)

    def test_degenerate_box_equals_point_distance(self):
        rng = np.random.default_rng(3)
        p = rng.normal(size=(50, 3))
        q = rng.normal(size=(50, 3))
        d2 = mindist_point_box_sq(p, q, q)
        np.testing.assert_allclose(d2, ((p - q) ** 2).sum(axis=1))

    @given(st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_mindist_lower_bounds_any_inner_point(self, seed):
        # mindist(point, box) must lower-bound the distance to every point
        # inside the box — the property traversal pruning relies on.
        rng = np.random.default_rng(seed)
        lo = rng.uniform(-1, 0, size=(1, 2))
        hi = lo + rng.uniform(0.1, 1, size=(1, 2))
        q = rng.uniform(-3, 3, size=(1, 2))
        d2 = mindist_point_box_sq(q, lo, hi)[0]
        inner = rng.uniform(lo, hi, size=(20, 2))
        inner_d2 = ((q - inner) ** 2).sum(axis=1)
        assert (inner_d2 >= d2 - 1e-12).all()


class TestValidate:
    def test_accepts_valid(self):
        validate_boxes(np.zeros((3, 2)), np.ones((3, 2)))

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError, match="matching"):
            validate_boxes(np.zeros((3, 2)), np.ones((2, 2)))

    def test_rejects_nonfinite(self):
        lo = np.zeros((1, 2))
        hi = np.array([[np.inf, 1.0]])
        with pytest.raises(ValueError, match="finite"):
            validate_boxes(lo, hi)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError, match="lo > hi"):
            validate_boxes(np.ones((1, 2)), np.zeros((1, 2)))

    def test_contains(self):
        outer_lo = np.array([[0.0, 0.0]])
        outer_hi = np.array([[2.0, 2.0]])
        inner_lo = np.array([[0.5, 0.5]])
        inner_hi = np.array([[1.0, 1.0]])
        assert box_contains_box(outer_lo, outer_hi, inner_lo, inner_hi)[0]
        assert not box_contains_box(inner_lo, inner_hi, outer_lo, outer_hi)[0]
