"""Baseline-specific behaviours: G-DBSCAN's memory profile and OOM mode,
CUDA-DClust's chains/collisions, DSDBSCAN, and the brute reference."""

import numpy as np
import pytest

from repro.baselines import (
    brute_dbscan,
    cuda_dclust,
    dsdbscan,
    gdbscan,
    sequential_dbscan,
)
from repro.device.device import Device
from repro.device.memory import DeviceMemoryError
from repro.metrics.equivalence import assert_dbscan_equivalent


class TestGDBSCAN:
    def test_adjacency_memory_charged(self, blobs_2d):
        dev = Device()
        gdbscan(blobs_2d, 0.3, 5, device=dev)
        assert dev.memory.peak_by_tag["adjacency"] > 0

    def test_memory_grows_with_eps(self, blobs_2d):
        dev_small, dev_big = Device(), Device()
        gdbscan(blobs_2d, 0.1, 5, device=dev_small)
        gdbscan(blobs_2d, 0.8, 5, device=dev_big)
        assert (
            dev_big.memory.peak_by_tag["adjacency"]
            > dev_small.memory.peak_by_tag["adjacency"]
        )

    def test_oom_on_capped_device(self, rng):
        # Dense data + tiny device: the paper's Figure 4(h) failure mode.
        X = rng.normal(0, 0.01, size=(500, 2))
        dev = Device(capacity_bytes=10_000)
        with pytest.raises(DeviceMemoryError):
            gdbscan(X, 0.5, 5, device=dev)

    def test_oom_charged_before_materialisation(self, rng):
        X = rng.normal(0, 0.01, size=(300, 2))
        dev = Device(capacity_bytes=1)
        with pytest.raises(DeviceMemoryError) as exc:
            gdbscan(X, 0.5, 5, device=dev)
        assert exc.value.tag == "adjacency"

    def test_distance_evals_are_all_to_all(self, blobs_2d):
        dev = Device()
        gdbscan(blobs_2d, 0.3, 5, device=dev)
        n = blobs_2d.shape[0]
        assert dev.counters.distance_evals == n * n

    def test_info_edge_count(self, blobs_2d):
        res = gdbscan(blobs_2d, 0.3, 5)
        assert res.info["n_edges"] >= 0


class TestCudaDclust:
    def test_chain_and_collision_stats(self, blobs_2d):
        res = cuda_dclust(blobs_2d, 0.3, 5)
        assert res.info["n_chains"] >= res.n_clusters
        assert res.info["n_collisions"] >= 0

    def test_small_blocks_force_collisions(self, rng):
        # One big cluster, one chain per round: every later seed collides.
        X = rng.normal(0, 0.05, size=(300, 2))
        res = cuda_dclust(X, 0.3, 5, chains_per_round=1)
        assert res.n_clusters == 1

    @pytest.mark.parametrize("chains_per_round", [1, 4, 256])
    def test_block_size_does_not_change_clustering(self, blobs_2d, chains_per_round):
        base = sequential_dbscan(blobs_2d, 0.3, 5)
        res = cuda_dclust(blobs_2d, 0.3, 5, chains_per_round=chains_per_round)
        assert_dbscan_equivalent(base, res, blobs_2d, 0.3)

    def test_collision_matrix_memory_quadratic_in_chains(self, blobs_2d):
        dev = Device()
        res = cuda_dclust(blobs_2d, 0.3, 5, device=dev)
        assert dev.memory.peak_by_tag["collision_matrix"] == max(res.info["n_chains"], 1) ** 2

    def test_all_noise(self, rng):
        X = rng.uniform(0, 100, size=(100, 2))
        res = cuda_dclust(X, 0.01, 3)
        assert res.n_clusters == 0
        assert res.info["n_chains"] == 0


class TestDSDBSCAN:
    def test_matches_oracle(self, blobs_2d):
        base = sequential_dbscan(blobs_2d, 0.3, 5)
        res = dsdbscan(blobs_2d, 0.3, 5)
        assert_dbscan_equivalent(base, res, blobs_2d, 0.3)

    def test_minpts_regimes(self, blobs_2d):
        for mp in (1, 2, 10):
            base = sequential_dbscan(blobs_2d, 0.3, mp)
            res = dsdbscan(blobs_2d, 0.3, mp)
            assert_dbscan_equivalent(base, res, blobs_2d, 0.3)


class TestBrute:
    def test_matches_oracle(self, blobs_2d):
        base = sequential_dbscan(blobs_2d, 0.3, 5)
        res = brute_dbscan(blobs_2d, 0.3, 5)
        assert_dbscan_equivalent(base, res, blobs_2d, 0.3)

    def test_high_dimensional_accepted(self, rng):
        # Baselines are not Morton-limited.
        X = rng.normal(0, 1, size=(60, 5))
        res = brute_dbscan(X, 1.5, 4)
        assert res.labels.shape == (60,)


class TestSequentialOracleInternals:
    def test_noise_reclaimed_as_border(self):
        # A point visited before its cluster exists must still end up a
        # border point (the "tentatively marked as noise" path).
        # Index 0 is non-core and scanned first; the cluster around index 1+
        # reaches it later.
        line = np.column_stack([0.1 + 0.01 * np.arange(30), np.zeros(30)])
        lone = np.array([[0.0, 0.0]])  # only within eps of the first line point
        X = np.concatenate([lone, line])
        res = sequential_dbscan(X, 0.1, 10)
        assert not res.is_core[0]
        assert res.labels[0] >= 0  # reclaimed, not noise

    def test_border_first_cluster_wins_deterministic(self, blobs_2d):
        a = sequential_dbscan(blobs_2d, 0.3, 5)
        b = sequential_dbscan(blobs_2d, 0.3, 5)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_cluster_ids_are_consecutive(self, blobs_2d):
        res = sequential_dbscan(blobs_2d, 0.3, 5)
        got = np.unique(res.labels[res.labels >= 0])
        np.testing.assert_array_equal(got, np.arange(res.n_clusters))
