"""Structural tests for the Karras linear BVH construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bvh.aabb import boxes_from_points
from repro.bvh.builder import _clz64, _delta, build_bvh, release_bvh
from repro.device.device import Device


def _random_tree(n, d, seed, clustered=False):
    rng = np.random.default_rng(seed)
    if clustered:
        centers = rng.uniform(0, 10, size=(max(1, n // 20), d))
        pts = centers[rng.integers(0, centers.shape[0], n)] + rng.normal(0, 0.01, (n, d))
    else:
        pts = rng.uniform(0, 1, size=(n, d))
    lo, hi = boxes_from_points(pts)
    return pts, build_bvh(lo, hi)


class TestClz:
    def test_known_values(self):
        vals = np.array([0, 1, 2, 2**63], dtype=np.uint64)
        np.testing.assert_array_equal(_clz64(vals), [64, 63, 62, 0])

    @given(st.integers(0, 63))
    @settings(max_examples=64, deadline=None)
    def test_single_bit(self, k):
        assert _clz64(np.array([1 << k], dtype=np.uint64))[0] == 63 - k


class TestDelta:
    def test_out_of_range_is_minus_one(self):
        codes = np.array([0, 1], dtype=np.int64)
        assert _delta(codes, np.array([0]), np.array([-1]))[0] == -1
        assert _delta(codes, np.array([0]), np.array([2]))[0] == -1

    def test_equal_codes_use_index_tiebreak(self):
        codes = np.array([5, 5, 6], dtype=np.int64)
        d_equal = _delta(codes, np.array([0]), np.array([1]))[0]
        d_diff = _delta(codes, np.array([1]), np.array([2]))[0]
        assert d_equal > 64  # tie-break regime
        assert d_diff <= 63

    def test_symmetry(self):
        codes = np.array([3, 9, 12, 12], dtype=np.int64)
        for i in range(4):
            for j in range(4):
                a = _delta(codes, np.array([i]), np.array([j]))[0]
                b = _delta(codes, np.array([j]), np.array([i]))[0]
                assert a == b


def _check_invariants(tree):
    """Full structural validation of a built tree."""
    n = tree.n_primitives
    tree.validate()
    if n == 1:
        assert tree.levels == []
        return
    # Each internal node's range is the concatenation of its children's.
    for i in range(n - 1):
        l, r = tree.left[i], tree.right[i]
        assert tree.node_range_lo[i] == tree.node_range_lo[l]
        assert tree.node_range_hi[i] == tree.node_range_hi[r]
        assert tree.node_range_hi[l] + 1 == tree.node_range_lo[r]
    # Root covers everything.
    assert tree.node_range_lo[0] == 0
    assert tree.node_range_hi[0] == n - 1
    # parent pointers invert children.
    for i in range(n - 1):
        assert tree.parent[tree.left[i]] == i
        assert tree.parent[tree.right[i]] == i
    assert tree.parent[0] == -1
    # order/position are inverse permutations.
    np.testing.assert_array_equal(tree.position[tree.order], np.arange(n))
    # levels cover each internal node exactly once, parents above children.
    seen = np.concatenate(tree.levels)
    assert sorted(seen.tolist()) == list(range(n - 1))
    depth = np.empty(n - 1, dtype=int)
    for d, level in enumerate(tree.levels):
        depth[level] = d
    for i in range(n - 1):
        for child in (tree.left[i], tree.right[i]):
            if child < n - 1:
                assert depth[child] == depth[i] + 1


class TestConstruction:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 64, 257])
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_invariants_random(self, n, d):
        _, tree = _random_tree(n, d, seed=n * 10 + d)
        assert tree.n_primitives == n
        _check_invariants(tree)

    @pytest.mark.parametrize("n", [16, 100])
    def test_invariants_clustered(self, n):
        _, tree = _random_tree(n, 2, seed=n, clustered=True)
        _check_invariants(tree)

    def test_all_duplicate_points(self):
        pts = np.ones((32, 2))
        lo, hi = boxes_from_points(pts)
        tree = build_bvh(lo, hi)
        _check_invariants(tree)
        np.testing.assert_array_equal(tree.node_lo[0], [1.0, 1.0])

    def test_collinear_points(self):
        pts = np.column_stack([np.linspace(0, 1, 50), np.zeros(50)])
        lo, hi = boxes_from_points(pts)
        tree = build_bvh(lo, hi)
        _check_invariants(tree)

    def test_mixed_boxes_and_points(self):
        rng = np.random.default_rng(5)
        pt = rng.uniform(0, 1, size=(20, 2))
        lo = np.concatenate([pt, rng.uniform(0, 1, size=(10, 2))])
        hi = lo.copy()
        hi[20:] += 0.1  # real boxes
        tree = build_bvh(lo, hi)
        _check_invariants(tree)

    def test_leaf_boxes_match_primitives(self):
        pts, tree = _random_tree(40, 2, seed=9)
        n = tree.n_primitives
        np.testing.assert_array_equal(tree.node_lo[n - 1 :], pts[tree.order])
        np.testing.assert_array_equal(tree.node_hi[n - 1 :], pts[tree.order])

    def test_root_box_is_scene_bounds(self):
        pts, tree = _random_tree(100, 3, seed=2)
        np.testing.assert_allclose(tree.node_lo[0], pts.min(axis=0))
        np.testing.assert_allclose(tree.node_hi[0], pts.max(axis=0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="zero primitives"):
            build_bvh(np.zeros((0, 2)), np.zeros((0, 2)))

    def test_memory_charged_and_released(self):
        dev = Device()
        pts = np.random.default_rng(0).uniform(size=(50, 2))
        lo, hi = boxes_from_points(pts)
        tree = build_bvh(lo, hi, device=dev)
        assert dev.memory.live_by_tag["bvh"] == tree.nbytes() > 0
        release_bvh(tree, device=dev)
        assert dev.memory.live_by_tag["bvh"] == 0

    def test_build_records_kernel(self):
        dev = Device()
        pts = np.random.default_rng(0).uniform(size=(8, 2))
        lo, hi = boxes_from_points(pts)
        build_bvh(lo, hi, device=dev)
        assert any(l.name == "bvh_build" for l in dev.launches)

    @given(st.integers(2, 200), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_invariants_property(self, n, seed):
        _, tree = _random_tree(n, 2, seed=seed)
        _check_invariants(tree)

    @given(st.integers(2, 60), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_invariants_with_heavy_duplicates(self, n, seed):
        rng = np.random.default_rng(seed)
        # Points drawn from 3 exact locations: massive Morton ties.
        sites = rng.uniform(0, 1, size=(3, 2))
        pts = sites[rng.integers(0, 3, size=n)]
        lo, hi = boxes_from_points(pts)
        tree = build_bvh(lo, hi)
        _check_invariants(tree)
