"""Tests for kernel counters and the Device handle."""

import time

from repro.device.counters import KernelCounters
from repro.device.device import Device, default_device, get_default_device


class TestKernelCounters:
    def test_add_known_field(self):
        c = KernelCounters()
        c.add("distance_evals", 5)
        c.add("distance_evals")
        assert c.distance_evals == 6

    def test_add_adhoc_counter(self):
        c = KernelCounters()
        c.add("box_tests", 3)
        assert c.extra["box_tests"] == 3
        c.add("box_tests", 2)
        assert c.extra["box_tests"] == 5

    def test_observe_peak(self):
        c = KernelCounters()
        c.observe_peak("frontier_peak", 10)
        c.observe_peak("frontier_peak", 4)
        assert c.frontier_peak == 10

    def test_snapshot_and_diff(self):
        c = KernelCounters()
        c.add("union_ops", 2)
        before = c.snapshot()
        c.add("union_ops", 5)
        c.observe_peak("frontier_peak", 7)
        delta = c.diff(before)
        assert delta["union_ops"] == 5
        # high-watermark reported as current value, not a delta
        assert delta["frontier_peak"] == 7

    def test_reset(self):
        c = KernelCounters()
        c.add("find_steps", 3)
        c.add("custom", 1)
        c.reset()
        assert c.find_steps == 0
        assert c.extra == {}


class TestDevice:
    def test_kernel_records_launch(self):
        dev = Device()
        with dev.kernel("k1", threads=128) as launch:
            launch.steps = 4
            time.sleep(0.001)
        assert dev.counters.kernel_launches == 1
        assert dev.counters.thread_steps == 4
        assert dev.launches[0].name == "k1"
        assert dev.launches[0].threads == 128
        assert dev.launches[0].seconds > 0

    def test_phase_seconds_accumulates_by_name(self):
        dev = Device()
        with dev.kernel("a", 1):
            pass
        with dev.kernel("a", 1):
            pass
        with dev.kernel("b", 1):
            pass
        phases = dev.phase_seconds()
        assert set(phases) == {"a", "b"}

    def test_launch_recorded_even_on_exception(self):
        dev = Device()
        try:
            with dev.kernel("boom", 1):
                raise RuntimeError()
        except RuntimeError:
            pass
        assert len(dev.launches) == 1

    def test_capacity_forwarded(self):
        dev = Device(capacity_bytes=123)
        assert dev.memory.capacity_bytes == 123

    def test_reset_clears_everything(self):
        dev = Device()
        with dev.kernel("x", 1):
            dev.counters.add("union_ops", 1)
            dev.memory.allocate(10, "t")
        dev.reset()
        assert dev.counters.union_ops == 0
        assert dev.memory.live_bytes == 0
        assert len(dev.launches) == 0
        assert dev.launches_total == 0

    def test_report_shape(self):
        dev = Device(name="gpu-x")
        report = dev.report()
        assert report["device"] == "gpu-x"
        assert {"counters", "memory", "kernels"} <= set(report)

    def test_default_device_resolution(self):
        assert default_device(None) is get_default_device()
        dev = Device()
        assert default_device(dev) is dev
