"""Algorithm-level tests for FDBSCAN against the sequential oracle."""

import numpy as np
import pytest

from repro.baselines.sequential_dbscan import sequential_dbscan
from repro.core.fdbscan import fdbscan
from repro.device.device import Device
from repro.metrics.equivalence import assert_dbscan_equivalent


class TestAgainstOracle:
    @pytest.mark.parametrize("minpts", [3, 5, 10])
    @pytest.mark.parametrize("eps", [0.15, 0.3, 0.6])
    def test_blobs_2d(self, blobs_2d, eps, minpts):
        a = fdbscan(blobs_2d, eps, minpts)
        b = sequential_dbscan(blobs_2d, eps, minpts)
        assert_dbscan_equivalent(a, b, blobs_2d, eps)

    @pytest.mark.parametrize("minpts", [4, 8])
    def test_blobs_3d(self, blobs_3d, minpts):
        a = fdbscan(blobs_3d, 0.5, minpts)
        b = sequential_dbscan(blobs_3d, 0.5, minpts)
        assert_dbscan_equivalent(a, b, blobs_3d, 0.5)

    def test_1d_data(self, rng):
        X = np.sort(rng.uniform(0, 10, size=(300, 1)), axis=0)
        a = fdbscan(X, 0.05, 4)
        b = sequential_dbscan(X, 0.05, 4)
        assert_dbscan_equivalent(a, b, X, 0.05)

    @pytest.mark.parametrize("use_mask", [True, False])
    @pytest.mark.parametrize("early_exit", [True, False])
    def test_optimisation_switches_do_not_change_output(
        self, blobs_2d, use_mask, early_exit
    ):
        a = fdbscan(blobs_2d, 0.3, 6, use_mask=use_mask, early_exit=early_exit)
        b = sequential_dbscan(blobs_2d, 0.3, 6)
        assert_dbscan_equivalent(a, b, blobs_2d, 0.3)


class TestSpecialRegimes:
    def test_minpts_2_friends_of_friends(self, blobs_2d):
        a = fdbscan(blobs_2d, 0.25, 2)
        b = sequential_dbscan(blobs_2d, 0.25, 2)
        assert_dbscan_equivalent(a, b, blobs_2d, 0.25)
        # minpts=2: no border points can exist
        assert a.n_border == 0

    def test_minpts_2_skips_preprocessing(self, blobs_2d):
        dev = Device()
        fdbscan(blobs_2d, 0.25, 2, device=dev)
        assert not any(l.name == "bvh_count" for l in dev.launches)

    def test_minpts_1_everything_core(self, blobs_2d):
        res = fdbscan(blobs_2d, 0.2, 1)
        assert res.is_core.all()
        assert res.n_noise == 0

    def test_huge_minpts_everything_noise(self, blobs_2d):
        res = fdbscan(blobs_2d, 0.2, 10_000)
        assert res.n_clusters == 0
        assert res.n_noise == blobs_2d.shape[0]

    def test_tiny_eps_isolates_everything(self, rng):
        X = rng.uniform(0, 100, size=(200, 2))
        res = fdbscan(X, 1e-9, 2)
        assert res.n_clusters == 0

    def test_huge_eps_single_cluster(self, blobs_2d):
        res = fdbscan(blobs_2d, 1000.0, 5)
        assert res.n_clusters == 1
        assert res.n_noise == 0

    def test_all_duplicate_points(self):
        X = np.ones((40, 2))
        res = fdbscan(X, 0.1, 5)
        assert res.n_clusters == 1
        assert res.is_core.all()

    def test_single_point(self):
        res = fdbscan(np.zeros((1, 2)), 0.1, 1)
        assert res.n_clusters == 1
        res2 = fdbscan(np.zeros((1, 2)), 0.1, 2)
        assert res2.n_clusters == 0

    def test_two_points_within_eps(self):
        X = np.array([[0.0, 0.0], [0.05, 0.0]])
        res = fdbscan(X, 0.1, 2)
        assert res.n_clusters == 1
        np.testing.assert_array_equal(res.labels, [0, 0])

    def test_two_points_beyond_eps(self):
        X = np.array([[0.0, 0.0], [5.0, 0.0]])
        res = fdbscan(X, 0.1, 2)
        np.testing.assert_array_equal(res.labels, [-1, -1])


class TestDiagnostics:
    def test_info_fields(self, blobs_2d):
        res = fdbscan(blobs_2d, 0.3, 5)
        for key in ("t_build", "t_preprocess", "t_main", "t_finalize", "n", "eps"):
            assert key in res.info
        assert res.info["algorithm"] == "fdbscan"

    def test_core_counts_exposed_without_early_exit(self, blobs_2d):
        res = fdbscan(blobs_2d, 0.3, 5, early_exit=False)
        counts = res.info["core_counts"]
        assert counts.shape == (blobs_2d.shape[0],)
        np.testing.assert_array_equal(counts >= 5, res.is_core)

    def test_mask_halves_pairs_processed(self, blobs_2d):
        dev_m, dev_u = Device(), Device()
        fdbscan(blobs_2d, 0.3, 5, device=dev_m, use_mask=True)
        fdbscan(blobs_2d, 0.3, 5, device=dev_u, use_mask=False)
        assert dev_m.counters.pairs_processed * 2 == dev_u.counters.pairs_processed

    def test_memory_linear_tags(self, blobs_2d):
        dev = Device()
        fdbscan(blobs_2d, 0.3, 5, device=dev)
        report = dev.memory.report()
        assert report["peak_by_tag"]["bvh"] > 0
        assert report["peak_by_tag"]["labels"] == blobs_2d.shape[0] * 8
        # no adjacency graph is ever stored
        assert "adjacency" not in report["peak_by_tag"]

    def test_labels_contract(self, blobs_2d):
        res = fdbscan(blobs_2d, 0.3, 5)
        labels = res.labels
        assert labels.min() >= -1
        if res.n_clusters:
            assert set(labels[labels >= 0].tolist()) == set(range(res.n_clusters))


class TestValidation:
    def test_rejects_bad_eps(self, blobs_2d):
        for bad in (0, -1, np.nan, np.inf):
            with pytest.raises(ValueError):
                fdbscan(blobs_2d, bad, 5)

    def test_rejects_bad_minpts(self, blobs_2d):
        for bad in (0, -3, 2.5):
            with pytest.raises(ValueError):
                fdbscan(blobs_2d, 0.3, bad)

    def test_rejects_high_dim(self, rng):
        with pytest.raises(ValueError, match="d <= 3"):
            fdbscan(rng.uniform(size=(10, 4)), 0.3, 5)

    def test_rejects_nan_points(self):
        X = np.array([[0.0, np.nan]])
        with pytest.raises(ValueError, match="non-finite"):
            fdbscan(X, 0.3, 5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one point"):
            fdbscan(np.zeros((0, 2)), 0.3, 5)
