"""Chaos suite: fuzz the distributed driver with random seeded fault
plans and assert DBSCAN equivalence plus exact seed-replay determinism.

Marked ``chaos`` so CI can run it as its own matrix job over fault
seeds: ``CHAOS_SEED=<base> pytest -m chaos``.  Every plan used here is
derived deterministically from the base seed, so a failing seed is a
complete reproduction recipe.
"""

import os

import numpy as np
import pytest

from repro.baselines.sequential_dbscan import sequential_dbscan
from repro.distributed import distributed_dbscan
from repro.faults import FaultPlan, FaultSpec
from repro.metrics.equivalence import assert_dbscan_equivalent

pytestmark = pytest.mark.chaos

#: Base seed for the fuzzed plans; CI sweeps it via the environment.
BASE_SEED = int(os.environ.get("CHAOS_SEED", "0"))


def _dataset(seed: int, n: int = 180) -> np.ndarray:
    rng = np.random.default_rng([seed, 0xDA7A])
    return np.concatenate(
        [
            rng.normal(0.0, 0.12, size=(n // 3, 2)),
            rng.normal([1.0, 1.0], 0.12, size=(n // 3, 2)),
            rng.uniform(-0.5, 1.5, size=(n - 2 * (n // 3), 2)),
        ]
    )


class TestChaosEquivalence:
    @pytest.mark.parametrize("round_", range(6))
    def test_fuzzed_plans_stay_equivalent(self, round_):
        seed = BASE_SEED * 1000 + round_
        X = _dataset(seed)
        plan = FaultPlan.random(seed, intensity=0.25)
        n_ranks = 3 + round_ % 4
        minpts = (2, 5, 1, 8)[round_ % 4]
        dist = distributed_dbscan(X, 0.25, minpts, n_ranks=n_ranks, fault_plan=plan)
        single = sequential_dbscan(X, 0.25, minpts)
        assert_dbscan_equivalent(dist, single, X, 0.25)
        assert len(dist.info["alive_ranks"]) >= 1
        # every dead rank's partitions ended on a surviving executor
        for p, executor in enumerate(dist.info["executor_of_partition"]):
            assert executor in dist.info["alive_ranks"], p

    def test_crash_heavy_plan_still_equivalent(self):
        X = _dataset(BASE_SEED + 17)
        plan = FaultPlan(
            BASE_SEED + 17,
            FaultSpec(p_rank_crash=0.8, p_drop=0.2, p_device_fault=0.3),
        )
        dist = distributed_dbscan(X, 0.25, 5, n_ranks=6, fault_plan=plan)
        assert dist.info["dead_ranks"]  # the storm actually killed ranks
        assert dist.info["recoveries"]
        single = sequential_dbscan(X, 0.25, 5)
        assert_dbscan_equivalent(dist, single, X, 0.25)

    def test_fault_free_plan_changes_nothing(self):
        X = _dataset(BASE_SEED + 29)
        quiet = distributed_dbscan(X, 0.25, 5, n_ranks=4, fault_plan=FaultPlan(0))
        clean = distributed_dbscan(X, 0.25, 5, n_ranks=4)
        np.testing.assert_array_equal(quiet.labels, clean.labels)
        assert quiet.info["fault_log"] == []
        assert quiet.info["comm_retransmits"] == 0


class TestChaosDeterminism:
    def test_seed_replay_is_exact(self):
        """Replaying a seed reproduces the identical fault log, retry
        counts, comm stats and labelling — the acceptance criterion."""
        seed = BASE_SEED + 41
        X = _dataset(seed)

        def run():
            plan = FaultPlan.random(seed, intensity=0.3)
            res = distributed_dbscan(X, 0.25, 5, n_ranks=5, fault_plan=plan)
            return res

        a, b = run(), run()
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.is_core, b.is_core)
        assert a.info["fault_log"] == b.info["fault_log"]
        assert a.info["fault_log"]  # the plan actually injected something
        assert a.info["retries"] == b.info["retries"]
        assert a.info["recoveries"] == b.info["recoveries"]
        assert a.info["comm"] == b.info["comm"]
        assert a.info["sim_wait_seconds"] == b.info["sim_wait_seconds"]

    def test_different_seeds_inject_differently(self):
        X = _dataset(BASE_SEED + 53)
        logs = []
        for offset in range(3):
            plan = FaultPlan.random(BASE_SEED + 53 + offset, intensity=0.3)
            distributed_dbscan(X, 0.25, 5, n_ranks=4, fault_plan=plan)
            logs.append(plan.log_as_dicts())
        assert logs[0] != logs[1] or logs[1] != logs[2]
