"""Tests for weighted-density DBSCAN (``sample_weight``).

The defining property: with integer weights, weighted clustering of a
point set equals unweighted clustering of the multiset where each point
is repeated ``weight`` times.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DBSCAN, dbscan
from repro.baselines.sequential_dbscan import sequential_dbscan
from repro.metrics.equivalence import assert_dbscan_equivalent, partitions_equal

WEIGHTED_ALGOS = ["fdbscan", "densebox", "sequential"]


def _weighted_case(seed, n=120):
    rng = np.random.default_rng(seed)
    X = np.concatenate(
        [rng.normal(0, 0.1, size=(n // 2, 2)), rng.uniform(-1, 2, size=(n // 2, 2))]
    )
    w = rng.integers(1, 5, size=n).astype(np.float64)
    return X, w


class TestWeightedEquivalence:
    @pytest.mark.parametrize("algorithm", ["fdbscan", "densebox"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_weighted_oracle(self, algorithm, seed):
        X, w = _weighted_case(seed)
        base = sequential_dbscan(X, 0.25, 8, sample_weight=w)
        res = dbscan(X, 0.25, 8, algorithm=algorithm, sample_weight=w)
        assert_dbscan_equivalent(base, res, X, 0.25)

    @pytest.mark.parametrize("algorithm", WEIGHTED_ALGOS)
    def test_integer_weights_equal_repetition(self, algorithm):
        # weighted run on X == unweighted run on X-with-repeats, compared
        # on the original points
        rng = np.random.default_rng(7)
        X = np.concatenate(
            [rng.normal(0, 0.08, size=(50, 2)), rng.uniform(-1, 1, size=(40, 2))]
        )
        w = rng.integers(1, 4, size=90)
        weighted = dbscan(X, 0.2, 6, algorithm=algorithm, sample_weight=w.astype(float))
        # replicate: first copy of each point occupies the original row order
        reps = np.repeat(np.arange(90), w)
        expanded = dbscan(X[reps], 0.2, 6, algorithm="sequential")
        first_copy = np.searchsorted(reps, np.arange(90))
        np.testing.assert_array_equal(
            weighted.is_core, expanded.is_core[first_copy]
        )
        np.testing.assert_array_equal(
            weighted.labels == -1, expanded.labels[first_copy] == -1
        )
        assert partitions_equal(
            weighted.labels, expanded.labels[first_copy], weighted.is_core
        )

    def test_unit_weights_equal_unweighted(self):
        X, _ = _weighted_case(3)
        plain = dbscan(X, 0.25, 8, algorithm="fdbscan")
        weighted = dbscan(
            X, 0.25, 8, algorithm="fdbscan", sample_weight=np.ones(X.shape[0])
        )
        np.testing.assert_array_equal(plain.labels, weighted.labels)
        np.testing.assert_array_equal(plain.is_core, weighted.is_core)

    def test_heavy_point_is_its_own_cluster_seed(self):
        # one point with weight >= minpts is core on its own
        X = np.array([[0.0, 0.0], [10.0, 10.0]])
        w = np.array([5.0, 1.0])
        res = dbscan(X, 0.5, 5, algorithm="fdbscan", sample_weight=w)
        assert res.is_core[0]
        assert not res.is_core[1]
        assert res.labels[0] == 0
        assert res.labels[1] == -1

    def test_fractional_weights(self):
        # 3 points of weight 0.5 within eps: total 1.5 < 2 -> noise;
        # adding weight makes them core.
        X = np.array([[0.0, 0.0], [0.01, 0.0], [0.02, 0.0]])
        light = dbscan(X, 0.1, 2, algorithm="fdbscan", sample_weight=np.full(3, 0.5))
        assert light.n_clusters == 0
        heavy = dbscan(X, 0.1, 2, algorithm="fdbscan", sample_weight=np.full(3, 0.7))
        assert heavy.n_clusters == 1

    @pytest.mark.parametrize("algorithm", ["fdbscan", "densebox"])
    def test_early_exit_invariant(self, algorithm):
        X, w = _weighted_case(11)
        a = dbscan(X, 0.25, 8, algorithm=algorithm, sample_weight=w, early_exit=True)
        b = dbscan(X, 0.25, 8, algorithm=algorithm, sample_weight=w, early_exit=False)
        np.testing.assert_array_equal(a.is_core, b.is_core)
        np.testing.assert_array_equal(a.labels == -1, b.labels == -1)

    @given(st.integers(0, 3000), st.integers(2, 12))
    @settings(max_examples=15, deadline=None)
    def test_weighted_property(self, seed, minpts):
        X, w = _weighted_case(seed, n=80)
        base = sequential_dbscan(X, 0.3, minpts, sample_weight=w)
        for algorithm in ("fdbscan", "densebox"):
            res = dbscan(X, 0.3, minpts, algorithm=algorithm, sample_weight=w)
            assert_dbscan_equivalent(base, res, X, 0.3)


class TestWeightValidation:
    def test_wrong_shape(self):
        X = np.zeros((3, 2))
        with pytest.raises(ValueError, match="sample_weight"):
            dbscan(X + np.arange(3)[:, None], 0.1, 2, algorithm="fdbscan",
                   sample_weight=np.ones(4))

    @pytest.mark.parametrize("bad", [0.0, -1.0, np.nan, np.inf])
    def test_bad_values(self, bad):
        X = np.random.default_rng(0).uniform(size=(5, 2))
        w = np.ones(5)
        w[2] = bad
        with pytest.raises(ValueError, match="positive and finite"):
            dbscan(X, 0.1, 2, algorithm="fdbscan", sample_weight=w)


class TestEstimatorWeights:
    def test_fit_accepts_sample_weight(self):
        X = np.array([[0.0, 0.0], [0.02, 0.0], [5.0, 5.0]])
        model = DBSCAN(eps=0.1, min_samples=3, algorithm="fdbscan")
        labels = model.fit_predict(X, sample_weight=np.array([2.0, 1.0, 1.0]))
        np.testing.assert_array_equal(labels, [0, 0, -1])
