"""Tests for the DBSCAN* variant (border points removed)."""

import numpy as np
import pytest

from repro import dbscan, dbscan_star
from repro.metrics.equivalence import partitions_equal


class TestDbscanStar:
    def test_no_border_points(self, blobs_2d):
        res = dbscan_star(blobs_2d, 0.3, 5)
        assert res.n_border == 0
        # clustered <=> core
        np.testing.assert_array_equal(res.labels >= 0, res.is_core)

    def test_core_partition_matches_plain_dbscan(self, blobs_2d):
        plain = dbscan(blobs_2d, 0.3, 5, algorithm="fdbscan")
        star = dbscan_star(blobs_2d, 0.3, 5, algorithm="fdbscan")
        np.testing.assert_array_equal(plain.is_core, star.is_core)
        assert partitions_equal(plain.labels, star.labels, plain.is_core)
        assert plain.n_clusters == star.n_clusters

    def test_borders_become_noise(self, blobs_2d):
        plain = dbscan(blobs_2d, 0.3, 5, algorithm="fdbscan")
        star = dbscan_star(blobs_2d, 0.3, 5, algorithm="fdbscan")
        border = (plain.labels >= 0) & ~plain.is_core
        assert (star.labels[border] == -1).all()
        assert star.info["demoted_border_points"] == int(border.sum())

    @pytest.mark.parametrize("algorithm", ["fdbscan", "densebox", "gdbscan"])
    def test_composes_with_registry(self, blobs_2d, algorithm):
        res = dbscan_star(blobs_2d, 0.3, 5, algorithm=algorithm)
        assert res.info["variant"] == "dbscan*"
        assert res.n_border == 0

    def test_cluster_ids_consecutive(self, blobs_2d):
        res = dbscan_star(blobs_2d, 0.3, 5)
        kept = res.labels[res.labels >= 0]
        if kept.size:
            np.testing.assert_array_equal(
                np.unique(kept), np.arange(res.n_clusters)
            )

    def test_minpts2_identical_to_plain(self, blobs_2d):
        # With minpts=2 there are no border points to demote.
        plain = dbscan(blobs_2d, 0.25, 2, algorithm="fdbscan")
        star = dbscan_star(blobs_2d, 0.25, 2, algorithm="fdbscan")
        np.testing.assert_array_equal(plain.labels, star.labels)
