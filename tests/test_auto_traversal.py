"""``traversal="auto"`` parity, determinism and gating.

Auto is a *dispatcher*, not an engine: per chunk it prices the single
and dual engines with the cost model and runs the cheaper one.  Its
whole contract is that this choice is pure scheduling — labels,
``distance_evals`` and every other work counter must equal the single
engine's bit for bit across every scheduling knob (query order, chunk
size, backend, dimension), and the same inputs plus the same cost model
must always produce the same per-chunk decisions.  These tests pin both
halves of the contract, the Morton-schedule cache that feeds it, and
the CI smoke gates that price auto's regret.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import RunRecord
from repro.bench.smoke import auto_regret_alarms, auto_selection_alarms
from repro.bvh.autotune import AUTO_MARGIN, EngineDecision, choose_engine
from repro.bvh.aabb import boxes_from_points
from repro.bvh.builder import build_bvh
from repro.core.densebox import fdbscan_densebox
from repro.core.fdbscan import fdbscan
from repro.core.index import DBSCANIndex
from repro.device.backends import ProcessBackend
from repro.device.device import Device


@pytest.fixture(scope="module")
def pool():
    bk = ProcessBackend(workers=2)
    yield bk
    bk.close()


def _clustered(n: int = 700, d: int = 2, seed: int = 11) -> np.ndarray:
    """Two tight blobs plus a sparse background — the mix that makes the
    chooser pick dual on the dense chunks and single on the tail."""
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [
            rng.normal(0.0, 0.12, size=(n // 2, d)),
            rng.normal(1.5, 0.15, size=(n - n // 2 - n // 6, d)),
            rng.uniform(-1.0, 3.0, size=(n // 6, d)),
        ]
    )


def _run(X, traversal, backend=None, **kwargs):
    dev = Device()
    res = fdbscan(X, 0.25, 5, device=dev, traversal=traversal,
                  backend=backend, **kwargs)
    return res, dev


class _StubModel:
    """Duck-typed FittedCostModel with fixed marginal rates."""

    RATES = {"nodes_visited": 2.0e-7, "distance_evals": 1.0e-7}

    def predict(self, counters: dict, kernel: str, launches: float) -> float:
        total = launches * 1.0e-5
        for name, value in counters.items():
            total += self.RATES.get(name, 0.0) * value
        return total


class TestAutoParity:
    @pytest.mark.parametrize("query_order", ["input", "morton"])
    @pytest.mark.parametrize("chunk_size", [128, 250])
    @pytest.mark.parametrize("d", [2, 3])
    def test_auto_equals_single_across_knobs(self, query_order, chunk_size, d):
        X = _clustered(d=d)
        base, bdev = _run(
            X, "single", query_order=query_order, chunk_size=chunk_size
        )
        auto, adev = _run(
            X, "auto", query_order=query_order, chunk_size=chunk_size
        )
        assert np.array_equal(auto.labels, base.labels)
        assert np.array_equal(auto.is_core, base.is_core)
        for counter in ("distance_evals", "scatter_adds", "pairs_processed"):
            assert adev.counters.snapshot().get(counter) == \
                bdev.counters.snapshot().get(counter), counter

    def test_auto_process_backend_matches_serial(self, pool):
        X = _clustered()
        serial, sdev = _run(X, "auto", chunk_size=150)
        proc, pdev = _run(X, "auto", backend=pool, chunk_size=150)
        assert np.array_equal(proc.labels, serial.labels)
        scount = sdev.counters.snapshot()
        pcount = pdev.counters.snapshot()
        # full snapshot equality, auto decision counters included: the
        # parent-side chooser must reproduce the serial loop's decisions.
        # kernel_launches alone may differ — the serial dispatcher wraps
        # each chunk in its own launch, the process backend batches them —
        # which is launch accounting, not work.
        for key in set(scount) | set(pcount):
            if key == "kernel_launches":
                continue
            assert scount.get(key, 0) == pcount.get(key, 0), key

    def test_auto_densebox_matches_single(self):
        X = _clustered()
        dev_s, dev_a = Device(), Device()
        base = fdbscan_densebox(X, 0.25, 5, device=dev_s, traversal="single")
        auto = fdbscan_densebox(X, 0.25, 5, device=dev_a, traversal="auto")
        assert np.array_equal(auto.labels, base.labels)
        assert dev_a.counters.distance_evals == dev_s.counters.distance_evals
        assert "auto" in auto.info

    def test_auto_picks_dual_on_clustered_cells(self):
        # the reason auto exists: clustered high-eps chunks go dual
        X = _clustered(n=1200)
        res, dev = _run(X, "auto", chunk_size=300)
        assert res.info["auto"]["dual_chunks"] >= 1
        assert res.info["auto"]["pred_cost_seconds"] > 0.0
        extra = dev.counters.extra
        assert (
            extra["auto_single_chunks"] + extra["auto_dual_chunks"]
            == res.info["auto"]["single_chunks"] + res.info["auto"]["dual_chunks"]
        )


class TestAutoDeterminism:
    def test_same_inputs_same_decisions(self):
        X = _clustered()
        runs = [_run(X, "auto", chunk_size=200)[0].info["auto"] for _ in range(2)]
        assert runs[0] == runs[1]

    @pytest.mark.parametrize("cost_model", [None, _StubModel()])
    def test_choose_engine_is_a_pure_function(self, cost_model):
        X = _clustered(n=400)
        tree = build_bvh(*boxes_from_points(X))
        decisions = [
            choose_engine(tree, X[:256], 0.25, 32, cost_model, "fdbscan_main", None)
            for _ in range(3)
        ]
        assert all(d == decisions[0] for d in decisions)
        first = decisions[0]
        assert first.engine in ("single", "dual")
        expected = (
            first.pred_dual_seconds
            if first.engine == "dual"
            else first.pred_single_seconds
        )
        assert first.pred_seconds == expected > 0.0

    def test_margin_hysteresis(self):
        # the decision uses AUTO_MARGIN, not a bare comparison: dual must
        # be predicted meaningfully cheaper before it is chosen
        d = EngineDecision("single", pred_single_seconds=1.0,
                           pred_dual_seconds=AUTO_MARGIN + 0.01)
        assert d.pred_seconds == 1.0
        assert 0.0 < AUTO_MARGIN <= 1.0


class TestMortonScheduleCache:
    def test_schedule_cached_per_index(self):
        X = _clustered()
        index = DBSCANIndex(X)
        assert index.morton_builds == 0 and index.morton_hits == 0
        dev = Device()
        fdbscan(X, 0.25, 5, device=dev, traversal="dual", index=index)
        assert index.morton_builds == 1
        fdbscan(X, 0.2, 5, device=dev, traversal="auto", index=index)
        fdbscan(X, 0.25, 5, device=dev, traversal="single",
                query_order="morton", index=index)
        assert index.morton_builds == 1  # eps-independent: never rebuilt
        assert index.morton_hits >= 2

    def test_cached_schedule_changes_nothing(self):
        X = _clustered()
        index = DBSCANIndex(X)
        cold = fdbscan(X, 0.25, 5, device=Device(), traversal="dual")
        warm = fdbscan(X, 0.25, 5, device=Device(), traversal="dual",
                       index=index)
        warm2 = fdbscan(X, 0.25, 5, device=Device(), traversal="dual",
                        index=index)
        assert np.array_equal(cold.labels, warm.labels)
        assert np.array_equal(warm.labels, warm2.labels)


def _engine_triple(auto_seconds, single_seconds, dual_seconds,
                   auto_counters=None):
    common = dict(algorithm="fdbscan", dataset="d", n=100, eps=0.1,
                  min_samples=5)
    if auto_counters is None:
        auto_counters = {"auto_single_chunks": 1, "auto_dual_chunks": 1}
    return [
        RunRecord(**common, traversal="single", seconds=single_seconds),
        RunRecord(**common, traversal="dual", seconds=dual_seconds),
        RunRecord(**common, traversal="auto", seconds=auto_seconds,
                  counters=auto_counters),
    ]


class TestSmokeAutoGates:
    def test_regret_within_threshold_passes(self):
        records = _engine_triple(0.10, 0.12, 0.095)
        assert auto_regret_alarms(records, 1.1) == []

    def test_regret_over_threshold_alarms(self):
        records = _engine_triple(0.30, 0.12, 0.095)
        alarms = auto_regret_alarms(records, 1.1)
        assert len(alarms) == 1 and "auto wall" in alarms[0]

    def test_millisecond_cells_exempt(self):
        # at ~20ms the wall is launch noise, not the engine choice
        records = _engine_triple(0.040, 0.020, 0.022)
        assert auto_regret_alarms(records, 1.1) == []

    def test_non_deciding_cells_exempt(self):
        # a baseline algorithm carries the traversal key but never chooses
        records = _engine_triple(0.30, 0.12, 0.095, auto_counters={})
        assert auto_regret_alarms(records, 1.1) == []

    def test_selection_gate(self):
        chose_dual = _engine_triple(
            0.1, 0.1, 0.1,
            auto_counters={"auto_single_chunks": 3, "auto_dual_chunks": 1},
        )
        assert auto_selection_alarms(chose_dual) == []
        never_dual = _engine_triple(
            0.1, 0.1, 0.1,
            auto_counters={"auto_single_chunks": 4, "auto_dual_chunks": 0},
        )
        alarms = auto_selection_alarms(never_dual)
        assert len(alarms) == 1 and "never selected" in alarms[0]
        assert auto_selection_alarms(_engine_triple(0.1, 0.1, 0.1,
                                                    auto_counters={})) == []
