"""Tests for the kernel-launch trace, profiling and cost replay."""

import time

import pytest

from repro.device.device import Device, ReplayableCost
from repro.device.memory import DeviceMemoryError


def _burn(dev, name="k", threads=10, steps=3, evals=7):
    with dev.kernel(name, threads=threads) as launch:
        launch.steps = steps
        dev.counters.add("distance_evals", evals)


class TestTraceRing:
    def test_spans_record_shape(self, device):
        _burn(device, name="alpha", threads=4, steps=2, evals=5)
        (span,) = device.trace_snapshot()
        assert span["name"] == "alpha"
        assert span["threads"] == 4
        assert span["steps"] == 2
        assert span["seconds"] >= 0
        assert span["t_start"] >= 0
        assert span["replayed"] is False
        assert span["counters"]["distance_evals"] == 5

    def test_spans_ordered_by_start(self, device):
        for name in ("a", "b", "c"):
            _burn(device, name=name)
        starts = [s["t_start"] for s in device.trace_snapshot()]
        assert starts == sorted(starts)

    def test_ring_bounded_and_drop_counted(self):
        dev = Device(trace_maxlen=3)
        for i in range(10):
            _burn(dev, name=f"k{i}")
        assert len(dev.launches) == 3
        assert dev.launches_total == 10
        assert dev.trace_dropped == 7
        # oldest evicted first: the ring holds the newest three
        assert [s["name"] for s in dev.trace_snapshot()] == ["k7", "k8", "k9"]

    def test_profile_aggregates_by_name(self, device):
        _burn(device, name="a", threads=10, steps=1)
        _burn(device, name="a", threads=20, steps=2)
        _burn(device, name="b", threads=5, steps=4)
        prof = device.profile()
        assert prof["a"]["launches"] == 2
        assert prof["a"]["threads"] == 30
        assert prof["a"]["steps"] == 3
        assert prof["a"]["replayed"] == 0
        assert prof["b"]["launches"] == 1
        assert prof["a"]["seconds"] >= 0

    def test_profile_matches_phase_seconds(self, device):
        _burn(device, name="a")
        _burn(device, name="b")
        prof = device.profile()
        assert set(prof) == set(device.phase_seconds())
        for name, secs in device.phase_seconds().items():
            assert prof[name]["seconds"] == pytest.approx(secs)

    def test_wall_time_measured(self, device):
        with device.kernel("slow", threads=1):
            time.sleep(0.01)
        assert device.profile()["slow"]["seconds"] >= 0.009

    def test_reset_clears_trace(self, device):
        _burn(device)
        device.reset()
        assert len(device.launches) == 0
        assert device.launches_total == 0
        assert device.trace_dropped == 0
        assert device.profile() == {}

    def test_report_includes_profile(self, device):
        _burn(device, name="a")
        report = device.report()
        assert "a" in report["profile"]
        assert report["trace_dropped"] == 0


class TestSelfTime:
    """Inclusive vs exclusive time for nested kernel spans (the
    ``Device.profile`` docstring's contract: ``seconds`` double-counts
    nested wall time, ``self_seconds`` never does)."""

    def _nested(self, dev, outer_sleep=0.01, inner_sleep=0.01):
        with dev.kernel("outer", threads=1):
            time.sleep(outer_sleep)
            with dev.kernel("inner", threads=1):
                time.sleep(inner_sleep)

    def test_outer_self_time_excludes_inner(self, device):
        self._nested(device)
        prof = device.profile()
        outer, inner = prof["outer"], prof["inner"]
        # inclusive: the outer span contains the inner one
        assert outer["seconds"] >= inner["seconds"]
        # exclusive: outer self time subtracts the nested inner span
        assert outer["self_seconds"] == pytest.approx(
            outer["seconds"] - inner["seconds"], abs=1e-6
        )
        assert inner["self_seconds"] == pytest.approx(inner["seconds"])

    def test_self_seconds_sum_never_exceeds_wall(self, device):
        start = time.perf_counter()
        self._nested(device)
        wall = time.perf_counter() - start
        prof = device.profile()
        total_self = sum(row["self_seconds"] for row in prof.values())
        total_inclusive = sum(row["seconds"] for row in prof.values())
        assert total_self <= wall + 1e-3
        # the naive inclusive sum double-counts the nested sleep
        assert total_inclusive > total_self

    def test_flat_launches_self_equals_inclusive(self, device):
        _burn(device, name="a")
        _burn(device, name="b")
        for row in device.profile().values():
            assert row["self_seconds"] == pytest.approx(row["seconds"])

    def test_trace_snapshot_carries_self_seconds(self, device):
        self._nested(device)
        spans = {s["name"]: s for s in device.trace_snapshot()}
        assert spans["outer"]["self_seconds"] < spans["outer"]["seconds"]

    def test_deeper_nesting_subtracts_only_direct_children(self, device):
        with device.kernel("a", threads=1):
            time.sleep(0.004)
            with device.kernel("b", threads=1):
                time.sleep(0.004)
                with device.kernel("c", threads=1):
                    time.sleep(0.004)
        prof = device.profile()
        # b's self time subtracts c, a's subtracts b (which includes c)
        assert prof["a"]["self_seconds"] == pytest.approx(
            prof["a"]["seconds"] - prof["b"]["seconds"], abs=1e-6
        )
        assert prof["b"]["self_seconds"] == pytest.approx(
            prof["b"]["seconds"] - prof["c"]["seconds"], abs=1e-6
        )
        total_self = sum(r["self_seconds"] for r in prof.values())
        assert total_self <= prof["a"]["seconds"] + 1e-6


class TestNestedEviction:
    """Trace-ring eviction accounting when kernels nest: every finished
    launch counts toward ``launches_total`` exactly once, so
    ``trace_dropped`` stays exact under nesting."""

    def test_nested_launches_counted_once(self):
        dev = Device(trace_maxlen=4096)
        with dev.kernel("outer", threads=1):
            with dev.kernel("inner", threads=1):
                pass
        assert dev.launches_total == 2
        assert dev.trace_dropped == 0

    def test_eviction_under_nesting(self):
        dev = Device(trace_maxlen=2)
        for i in range(3):
            with dev.kernel(f"outer{i}", threads=1):
                with dev.kernel(f"inner{i}", threads=1):
                    pass
        assert dev.launches_total == 6
        assert len(dev.launches) == 2
        assert dev.trace_dropped == 4
        # the ring keeps the newest pair; the inner span finished first
        assert [s["name"] for s in dev.trace_snapshot()] == ["inner2", "outer2"]

    def test_chrome_export_of_truncated_device_has_marker(self):
        from repro.obs import chrome_trace, validate_chrome_trace

        dev = Device(trace_maxlen=2)
        for i in range(3):
            with dev.kernel(f"o{i}", threads=1):
                with dev.kernel(f"i{i}", threads=1):
                    pass
        payload = chrome_trace(dev)
        assert payload["metadata"]["dropped_spans"] == 4
        assert any(
            e["name"] == "trace_truncated" for e in payload["traceEvents"]
        )
        counts = validate_chrome_trace(payload)
        assert counts["dropped_spans"] == 4


class TestRecordingReplay:
    def _record_build(self, dev):
        with dev.recording() as cost:
            with dev.kernel("build", threads=100) as launch:
                launch.steps = 5
                dev.counters.add("distance_evals", 42)
                dev.counters.observe_peak("frontier_peak", 64)
            dev.memory.allocate(1000, "tree")
            dev.memory.allocate(500, "scratch", transient=True)
            dev.memory.free(500, "scratch")
        return cost

    def test_recording_captures_block(self, device):
        cost = self._record_build(device)
        assert isinstance(cost, ReplayableCost)
        assert cost.seconds > 0
        assert cost.counters["distance_evals"] == 42
        assert cost.counters["kernel_launches"] == 1
        assert [l.name for l in cost.launches] == ["build"]
        # only the *net* growth is recorded; the freed transient is not
        assert cost.mem_by_tag == {"tree": 1000}

    def test_replay_reaccounts_counters_and_memory(self, device):
        cost = self._record_build(device)
        other = Device(name="warm")
        other.replay(cost)
        snap = other.counters.snapshot()
        assert snap["distance_evals"] == 42
        assert snap["kernel_launches"] == 1
        assert other.memory.live_by_tag["tree"] == 1000

    def test_replay_flags_spans_and_keeps_seconds(self, device):
        cost = self._record_build(device)
        other = Device(name="warm")
        other.replay(cost)
        (span,) = other.trace_snapshot()
        assert span["replayed"] is True
        assert span["seconds"] == pytest.approx(cost.launches[0].seconds)
        assert other.profile()["build"]["replayed"] == 1

    def test_replay_merges_high_watermark(self, device):
        cost = self._record_build(device)
        other = Device(name="warm")
        other.counters.observe_peak("frontier_peak", 1000)
        other.replay(cost)
        # peak is merged, not summed: 1000 stays, 64 would not regress it
        assert other.counters.snapshot()["frontier_peak"] == 1000

    def test_replay_respects_memory_cap(self, device):
        cost = self._record_build(device)
        capped = Device(capacity_bytes=100)
        with pytest.raises(DeviceMemoryError):
            capped.replay(cost)
        # counters were applied before the failing allocation (cold-run order)
        assert capped.counters.snapshot()["distance_evals"] == 42

    def test_double_replay_double_counts(self, device):
        cost = self._record_build(device)
        other = Device()
        other.replay(cost)
        other.replay(cost)
        assert other.counters.snapshot()["distance_evals"] == 84
        assert other.profile()["build"]["launches"] == 2
