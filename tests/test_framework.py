"""Tests for the shared Algorithm-3 pair-resolution rules, in particular
the CAS border attachment and its no-bridging guarantee."""

import numpy as np

from repro.core.framework import attach_border, resolve_pairs
from repro.device.device import Device
from repro.unionfind.ecl import EclUnionFind


class TestAttachBorder:
    def test_attaches_to_core_cluster(self):
        uf = EclUnionFind(4)
        uf.union(np.array([0]), np.array([1]))  # core cluster {0,1}
        attach_border(uf, np.array([0]), np.array([2]))
        labels = uf.finalize()
        assert labels[2] == labels[0]

    def test_no_bridging_between_clusters(self):
        # Border 4 is within eps of cores in two clusters; only the first
        # attachment wins, and the clusters stay separate.
        uf = EclUnionFind(5)
        uf.union(np.array([0]), np.array([1]))  # cluster A
        uf.union(np.array([2]), np.array([3]))  # cluster B
        attach_border(uf, np.array([0, 2]), np.array([4, 4]))
        labels = uf.finalize()
        assert labels[0] != labels[2]  # clusters never merged
        assert labels[4] == labels[0]  # first core won the CAS

    def test_second_batch_cannot_steal(self):
        uf = EclUnionFind(4)
        attach_border(uf, np.array([0]), np.array([3]))
        attach_border(uf, np.array([1]), np.array([3]))
        labels = uf.finalize()
        assert labels[3] == labels[0]
        assert labels[3] != labels[1]

    def test_empty_batch(self):
        uf = EclUnionFind(3)
        attach_border(uf, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        assert uf.n_sets() == 3


class TestResolvePairs:
    def test_core_core_unions(self):
        uf = EclUnionFind(4)
        is_core = np.array([True, True, False, False])
        resolve_pairs(uf, is_core, np.array([0]), np.array([1]))
        assert uf.find(np.array([0]))[0] == uf.find(np.array([1]))[0]

    def test_core_noncore_attaches_either_orientation(self):
        for orientation in ("xy", "yx"):
            uf = EclUnionFind(3)
            is_core = np.array([True, False, True])
            if orientation == "xy":
                resolve_pairs(uf, is_core, np.array([0]), np.array([1]))
            else:
                resolve_pairs(uf, is_core, np.array([1]), np.array([0]))
            labels = uf.finalize()
            assert labels[1] == labels[0], orientation

    def test_noncore_pair_ignored(self):
        uf = EclUnionFind(2)
        resolve_pairs(uf, np.array([False, False]), np.array([0]), np.array([1]))
        assert uf.n_sets() == 2

    def test_mixed_batch(self):
        uf = EclUnionFind(6)
        is_core = np.array([True, True, True, False, False, False])
        resolve_pairs(
            uf,
            is_core,
            np.array([0, 1, 3, 4]),
            np.array([1, 2, 2, 5]),  # core-core, core-core, border-core, border-border
        )
        labels = uf.finalize()
        assert labels[0] == labels[1] == labels[2] == labels[3]
        assert labels[4] == 4 and labels[5] == 5  # untouched

    def test_counters(self):
        dev = Device()
        uf = EclUnionFind(4, device=dev)
        is_core = np.array([True, True, True, False])
        resolve_pairs(uf, is_core, np.array([0, 0]), np.array([1, 3]), dev)
        assert dev.counters.pairs_processed == 2
        assert dev.counters.union_ops == 1
        assert dev.counters.cas_attempts >= 1
        assert dev.counters.cas_successes == 1

    def test_attached_border_never_unioned_through(self):
        # Even if a border point appears in many pairs with cores from
        # different clusters, the clusters remain separate (the paper's
        # bridging effect is prevented).
        uf = EclUnionFind(7)
        is_core = np.array([True, True, True, True, False, False, False])
        uf.union(np.array([0]), np.array([1]))
        uf.union(np.array([2]), np.array([3]))
        rng = np.random.default_rng(0)
        for _ in range(5):
            cores = rng.choice([0, 1, 2, 3], size=6)
            borders = rng.choice([4, 5, 6], size=6)
            resolve_pairs(uf, is_core, cores, borders)
        labels = uf.finalize()
        assert labels[0] != labels[2]
