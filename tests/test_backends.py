"""Cross-backend execution parity: ``"process"`` must be bit-identical
to ``"serial"``.

The process backend's whole contract is *identical work, different
scheduling*: labels, every work counter (``distance_evals``,
``box_tests``, ``scatter_adds``, ...) and therefore any fingerprint
derived from them must match the serial engine bit for bit across every
scheduling knob — traversal engine, query order, chunk size, pair
buffer.  These tests sweep that grid, then exercise the failure
surface (worker SIGKILL mid-chunk, deadline watchdogs, real OS-process
ranks in the distributed driver) and the trace/epoch handshake that
keeps worker kernel lanes monotone on the parent's timeline.
"""

from __future__ import annotations

import hashlib
import os

import numpy as np
import pytest

from repro.core.fdbscan import fdbscan
from repro.device.backends import ProcessBackend, coerce_backend
from repro.device.device import Device, KernelFaultError
from repro.faults.deadline import Deadline, DeadlineExceededError


@pytest.fixture(scope="module")
def pool():
    """One private two-worker pool for the whole module (pools are
    expensive to spawn; the backend is stateless between calls)."""
    bk = ProcessBackend(workers=2)
    yield bk
    bk.close()


def _dataset(n: int = 600, d: int = 2, seed: int = 9) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [
            rng.normal(0.0, 0.15, size=(n // 2, d)),
            rng.normal(1.5, 0.2, size=(n - n // 2 - n // 6, d)),
            rng.uniform(-1.0, 3.0, size=(n // 6, d)),
        ]
    )


def _fingerprint(labels: np.ndarray, counters: dict) -> str:
    h = hashlib.sha256(np.ascontiguousarray(labels, dtype=np.int64).tobytes())
    for key in sorted(counters):
        h.update(f"{key}={counters[key]};".encode())
    return h.hexdigest()


def _run(X, backend=None, **kwargs):
    dev = Device()
    res = fdbscan(X, 0.2, 5, device=dev, backend=backend, **kwargs)
    return res, dev


class TestSchedulingKnobParity:
    @pytest.mark.parametrize("traversal", ["single", "dual"])
    @pytest.mark.parametrize("query_order", ["input", "morton"])
    @pytest.mark.parametrize("chunk_size", [64, 150])
    def test_labels_counters_fingerprints_equal(
        self, pool, traversal, query_order, chunk_size
    ):
        X = _dataset()
        serial, sdev = _run(
            X, traversal=traversal, query_order=query_order, chunk_size=chunk_size
        )
        proc, pdev = _run(
            X,
            backend=pool,
            traversal=traversal,
            query_order=query_order,
            chunk_size=chunk_size,
        )
        assert proc.info["backend"] == "process"
        assert serial.info["backend"] == "serial"
        np.testing.assert_array_equal(serial.labels, proc.labels)
        s_counters = sdev.counters.snapshot()
        p_counters = pdev.counters.snapshot()
        assert s_counters == p_counters
        for key in ("distance_evals", "box_tests", "scatter_adds"):
            assert s_counters[key] == p_counters[key]
        assert _fingerprint(serial.labels, s_counters) == _fingerprint(
            proc.labels, p_counters
        )

    @pytest.mark.parametrize("pair_buffer", [None, 64, 1])
    def test_pair_buffer_parity(self, pool, pair_buffer):
        X = _dataset()
        serial, sdev = _run(X, chunk_size=100, pair_buffer=pair_buffer)
        proc, pdev = _run(X, backend=pool, chunk_size=100, pair_buffer=pair_buffer)
        np.testing.assert_array_equal(serial.labels, proc.labels)
        assert sdev.counters.snapshot() == pdev.counters.snapshot()

    def test_3d_parity(self, pool):
        X = _dataset(d=3)
        serial, sdev = _run(X, chunk_size=128)
        proc, pdev = _run(X, backend=pool, chunk_size=128)
        np.testing.assert_array_equal(serial.labels, proc.labels)
        assert sdev.counters.snapshot() == pdev.counters.snapshot()


class TestAlgorithmParity:
    def test_densebox_parity(self, pool):
        from repro.core.densebox import fdbscan_densebox

        X = _dataset(n=700)
        out = {}
        for name, bk in (("serial", None), ("process", pool)):
            dev = Device()
            res = fdbscan_densebox(
                X, 0.12, 5, device=dev, chunk_size=96, backend=bk
            )
            out[name] = (res.labels, dev.counters.snapshot(), res.info["backend"])
        np.testing.assert_array_equal(out["serial"][0], out["process"][0])
        assert out["serial"][1] == out["process"][1]
        assert out["process"][2] == "process"

    def test_hdbscan_parity(self, pool):
        from repro.hierarchy.hdbscan import hdbscan

        X = _dataset(n=350)
        out = {}
        for name, bk in (("serial", None), ("process", pool)):
            dev = Device()
            res = hdbscan(X, min_cluster_size=8, min_samples=5, device=dev, backend=bk)
            out[name] = (res.labels, dev.counters.snapshot())
        np.testing.assert_array_equal(out["serial"][0], out["process"][0])
        assert out["serial"][1] == out["process"][1]

    def test_device_attached_backend_is_picked_up(self, pool):
        X = _dataset()
        serial, sdev = _run(X, chunk_size=100)
        dev = Device()
        dev.backend = pool
        res = fdbscan(X, 0.2, 5, device=dev, chunk_size=100)
        assert res.info["backend"] == "process"
        np.testing.assert_array_equal(serial.labels, res.labels)
        assert sdev.counters.snapshot() == dev.counters.snapshot()


class TestCoercion:
    def test_coerce_specs(self, pool):
        assert coerce_backend(None).name == "serial"
        assert coerce_backend("serial").name == "serial"
        assert coerce_backend(pool) is pool
        shared = coerce_backend("process", workers=2)
        assert shared.name == "process"
        # the shared singleton is reused, not respawned per call
        assert coerce_backend("process", workers=2) is shared

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            coerce_backend("gpu")


class TestWorkerFaults:
    def test_worker_death_mid_chunk_raises_typed_then_recovers(self):
        bk = ProcessBackend(workers=1)
        try:
            X = _dataset()
            baseline, sdev = _run(X, chunk_size=100)
            bk._inject_worker_crash()
            with pytest.raises(KernelFaultError):
                _run(X, backend=bk, chunk_size=100)
            # the pool respawns its dead worker on the next dispatch and
            # the rerun is bit-identical to serial
            res, dev = _run(X, backend=bk, chunk_size=100)
            np.testing.assert_array_equal(baseline.labels, res.labels)
            assert sdev.counters.snapshot() == dev.counters.snapshot()
        finally:
            bk.close()

    def test_deadline_watchdog_fires_under_process_backend(self, pool):
        X = _dataset()
        deadline = Deadline(max_checks=1, label="backend-test")
        with pytest.raises(DeadlineExceededError):
            fdbscan(
                X, 0.2, 5, device=Device(), backend=pool,
                chunk_size=100, watchdog=deadline.check,
            )


class TestWorkerLanes:
    def test_worker_lanes_are_monotone_on_parent_timeline(self, pool):
        """Satellite: the per-process ``perf_counter`` epoch handshake
        must land every worker launch at a translated ``t_start`` that is
        monotone within its ``kernel@wN`` lane and non-negative on the
        parent device's clock."""
        dev = Device()
        fdbscan(_dataset(n=900), 0.2, 5, device=dev, backend=pool, chunk_size=64)
        lanes: dict[str, list[float]] = {}
        for rec in dev.launches:
            if "@w" in rec.name:
                lanes.setdefault(rec.name, []).append(rec.t_start)
        assert lanes, "process run recorded no worker lanes"
        for name, starts in lanes.items():
            assert all(t >= 0.0 for t in starts), name
            assert starts == sorted(starts), f"lane {name} not monotone"
        # lane launches carry no self time and no counters: the wrapping
        # parent kernel already accounts both (no double counting)
        for rec in dev.launches:
            if "@w" in rec.name:
                assert rec.self_seconds == 0.0

    def test_profile_keeps_wall_attribution(self, pool):
        dev = Device()
        fdbscan(_dataset(n=900), 0.2, 5, device=dev, backend=pool, chunk_size=64)
        prof = dev.profile()
        assert "fdbscan_main" in prof
        worker = [k for k in prof if "@w" in k]
        assert worker
        # counters live on the wrapping kernels, not the worker lanes
        for k in worker:
            assert not any((prof[k].get("counters") or {}).values())


class TestBenchAB:
    def test_run_once_roundtrip_and_ab_report(self, tmp_path):
        from repro.bench.harness import run_once
        from repro.bench.history import load_records, save_records
        from repro.bench.report import format_backend_ab

        X = _dataset(n=800)
        records = [
            run_once(
                "fdbscan", X, 0.2, 5, dataset="ab",
                tree_kwargs={"chunk_size": 128}, backend=bk, workers=2,
            )
            for bk in ("serial", "process")
        ]
        assert [r.backend for r in records] == ["serial", "process"]
        assert records[0].counters == records[1].counters
        path = tmp_path / "h.json"
        save_records(str(path), records)
        loaded, _ = load_records(str(path))
        assert [r.backend for r in loaded] == ["serial", "process"]
        text = format_backend_ab(loaded)
        assert "equal" in text and "MISMATCH" not in text

    def test_ab_report_strict_raises_on_counter_divergence(self):
        from repro.bench.harness import RunRecord
        from repro.bench.report import format_backend_ab

        kw = dict(algorithm="fdbscan", dataset="x", n=10, eps=0.1, min_samples=5,
                  seconds=1.0, status="ok")
        ser = RunRecord(backend="serial", counters={"distance_evals": 10}, **kw)
        proc = RunRecord(backend="process", counters={"distance_evals": 11}, **kw)
        with pytest.raises(AssertionError, match="distance_evals"):
            format_backend_ab([ser, proc])
        text = format_backend_ab([ser, proc], strict=False)
        assert "MISMATCH" in text

    def test_backend_is_part_of_history_identity(self):
        from repro.bench.harness import RunRecord
        from repro.bench.history import _key

        kw = dict(algorithm="fdbscan", dataset="x", n=10, eps=0.1, min_samples=5)
        assert _key(RunRecord(backend="serial", **kw)) != _key(
            RunRecord(backend="process", **kw)
        )


class TestDistributedProcessRanks:
    def test_clean_run_matches_simulated_ranks(self):
        from repro.distributed import distributed_dbscan

        X = _dataset(n=400)
        sim_dev, proc_dev = Device(), Device()
        sim = distributed_dbscan(X, 0.25, 5, n_ranks=3, device=sim_dev)
        proc = distributed_dbscan(
            X, 0.25, 5, n_ranks=3, device=proc_dev, backend="process"
        )
        np.testing.assert_array_equal(sim.labels, proc.labels)
        assert sim_dev.counters.snapshot() == proc_dev.counters.snapshot()
        assert proc.info["rank_processes"] is True
        assert sim.info["rank_processes"] is False
        assert proc.info["backend"] == "process"
        rank_lanes = [r.name for r in proc_dev.launches if "@r" in r.name]
        assert rank_lanes, "rank kernels were not replayed onto the parent"


@pytest.mark.chaos
class TestDistributedProcessRankChaos:
    BASE_SEED = int(os.environ.get("CHAOS_SEED", "0"))

    @pytest.mark.parametrize("round_", range(2))
    def test_faulted_run_matches_simulated_and_reference(self, round_):
        from repro.baselines.sequential_dbscan import sequential_dbscan
        from repro.distributed import distributed_dbscan
        from repro.faults import FaultPlan, FaultSpec
        from repro.metrics.equivalence import assert_dbscan_equivalent

        seed = self.BASE_SEED * 100 + round_
        X = _dataset(n=300, seed=seed + 1)
        plan = lambda: FaultPlan(seed, FaultSpec.uniform(0.3, crash=0.4))  # noqa: E731
        sim_dev, proc_dev = Device(), Device()
        sim = distributed_dbscan(
            X, 0.25, 5, n_ranks=4, device=sim_dev, fault_plan=plan()
        )
        proc = distributed_dbscan(
            X, 0.25, 5, n_ranks=4, device=proc_dev, fault_plan=plan(),
            backend="process",
        )
        # real SIGKILLed rank processes recover to the simulated run's
        # exact output: same labels, same fault log, same counters
        np.testing.assert_array_equal(sim.labels, proc.labels)
        assert [f["kind"] for f in sim.info["fault_log"]] == [
            f["kind"] for f in proc.info["fault_log"]
        ]
        assert sim.info["faults"] == proc.info["faults"]
        assert sim.info["dead_ranks"] == proc.info["dead_ranks"]
        assert sim_dev.counters.snapshot() == proc_dev.counters.snapshot()
        assert_dbscan_equivalent(proc, sequential_dbscan(X, 0.25, 5), X, 0.25)
