"""Tests for label conventions, relabeling and finalisation."""

import numpy as np
import pytest

from repro.core.labels import DBSCANResult, finalize_clusters, relabel_consecutive
from repro.unionfind.ecl import union_batch


class TestRelabel:
    def test_consecutive_from_arbitrary_reps(self):
        raw = np.array([7, 7, 3, 3, 9])
        mask = np.ones(5, dtype=bool)
        labels, k = relabel_consecutive(raw, mask)
        assert k == 3
        np.testing.assert_array_equal(labels, [1, 1, 0, 0, 2])

    def test_unclustered_become_noise(self):
        raw = np.array([0, 1, 2])
        mask = np.array([True, False, True])
        labels, k = relabel_consecutive(raw, mask)
        assert k == 2
        np.testing.assert_array_equal(labels, [0, -1, 1])

    def test_all_noise(self):
        labels, k = relabel_consecutive(np.arange(4), np.zeros(4, dtype=bool))
        assert k == 0
        np.testing.assert_array_equal(labels, [-1, -1, -1, -1])

    def test_numbering_by_smallest_representative(self):
        raw = np.array([5, 2, 5, 2])
        labels, _ = relabel_consecutive(raw, np.ones(4, dtype=bool))
        # rep 2 < rep 5, so rep-2 cluster gets id 0
        np.testing.assert_array_equal(labels, [1, 0, 1, 0])


class TestFinalize:
    def test_core_border_noise_split(self):
        # 0-1-2 a core chain; 3 border attached to 0's tree; 4 noise
        parents = np.arange(5)
        union_batch(parents, np.array([0, 1]), np.array([1, 2]))
        parents[3] = 0  # CAS attachment
        is_core = np.array([True, True, True, False, False])
        labels, core, k = finalize_clusters(parents, is_core)
        assert k == 1
        np.testing.assert_array_equal(labels, [0, 0, 0, 0, -1])
        np.testing.assert_array_equal(core, is_core)

    def test_minpts2_mode_singletons_are_noise(self):
        parents = np.arange(5)
        union_batch(parents, np.array([0]), np.array([1]))
        labels, core, k = finalize_clusters(parents, None)
        assert k == 1
        np.testing.assert_array_equal(labels, [0, 0, -1, -1, -1])
        np.testing.assert_array_equal(core, [True, True, False, False, False])

    def test_singleton_core_cluster_kept(self):
        # minpts=1 style: a core point alone forms a cluster.
        parents = np.arange(2)
        is_core = np.array([True, False])
        labels, _, k = finalize_clusters(parents, is_core)
        assert k == 1
        np.testing.assert_array_equal(labels, [0, -1])

    def test_parents_flattened_in_place(self):
        parents = np.arange(4)
        union_batch(parents, np.array([0, 1, 2]), np.array([1, 2, 3]))
        finalize_clusters(parents, np.ones(4, dtype=bool))
        np.testing.assert_array_equal(parents[parents], parents)


class TestResult:
    def _result(self):
        return DBSCANResult(
            labels=np.array([0, 0, 1, -1, 1, 1]),
            is_core=np.array([True, False, True, False, True, False]),
            n_clusters=2,
        )

    def test_counts(self):
        r = self._result()
        assert r.n_noise == 1
        assert r.n_border == 2

    def test_cluster_sizes(self):
        np.testing.assert_array_equal(self._result().cluster_sizes(), [2, 3])

    def test_empty_clusters(self):
        r = DBSCANResult(
            labels=np.array([-1, -1]), is_core=np.zeros(2, dtype=bool), n_clusters=0
        )
        assert r.cluster_sizes().shape == (0,)
        assert r.n_noise == 2
