"""Tests for the clustering-agreement scores (Rand / ARI / pair P-R)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics.scores import (
    adjusted_rand_index,
    contingency_table,
    pair_confusion,
    pair_precision_recall,
    rand_index,
)

label_arrays = hnp.arrays(
    dtype=np.int64, shape=st.integers(2, 40), elements=st.integers(-1, 4)
)


class TestContingency:
    def test_basic(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 1, 1])
        table = contingency_table(a, b)
        np.testing.assert_array_equal(table, [[1, 1], [0, 2]])

    def test_noise_as_singletons(self):
        a = np.array([-1, -1])
        table = contingency_table(a, a)
        # each noise point its own cluster: identity 2x2
        np.testing.assert_array_equal(table, np.eye(2, dtype=np.int64))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            contingency_table(np.array([0]), np.array([0, 1]))


class TestRand:
    def test_identical_is_one(self):
        a = np.array([0, 0, 1, 1, -1])
        assert rand_index(a, a) == 1.0
        assert adjusted_rand_index(a, a) == 1.0

    def test_permutation_invariant(self):
        a = np.array([0, 0, 1, 1, 2])
        b = np.array([2, 2, 0, 0, 1])
        assert adjusted_rand_index(a, b) == 1.0

    def test_known_value(self):
        # classic example: ARI of these two labelings is 0.24242...
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(a, b) == pytest.approx(0.24242424, abs=1e-6)

    def test_opposite_split_near_zero_or_negative(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        assert adjusted_rand_index(a, b) <= 0.0

    def test_single_point(self):
        assert adjusted_rand_index(np.array([0]), np.array([5])) == 1.0

    def test_all_singletons_vs_one_cluster(self):
        a = np.array([0, 1, 2, 3])
        b = np.array([0, 0, 0, 0])
        assert adjusted_rand_index(a, b) == 0.0
        assert rand_index(a, b) == 0.0  # all 6 pairs disagree

    @given(label_arrays)
    @settings(max_examples=60, deadline=None)
    def test_ari_bounds_and_self_identity(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)
        other = np.roll(labels, 1)
        ari = adjusted_rand_index(labels, other)
        assert -1.0 <= ari <= 1.0 + 1e-12

    @given(label_arrays, st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, labels, seed):
        rng = np.random.default_rng(seed)
        other = rng.integers(-1, 3, size=labels.shape[0])
        assert adjusted_rand_index(labels, other) == pytest.approx(
            adjusted_rand_index(other, labels)
        )
        assert rand_index(labels, other) == pytest.approx(rand_index(other, labels))


class TestPairCounting:
    def test_confusion_sums_to_total_pairs(self):
        a = np.array([0, 0, 1, -1, 1])
        b = np.array([1, 0, 1, 1, 1])
        pc = pair_confusion(a, b)
        n = 5
        assert sum(pc.values()) == n * (n - 1) // 2

    def test_precision_recall_identical(self):
        a = np.array([0, 0, 1, 1])
        p, r = pair_precision_recall(a, a)
        assert p == r == 1.0

    def test_precision_recall_refinement(self):
        # prediction splits the true cluster: precision 1, recall < 1
        truth = np.array([0, 0, 0, 0])
        pred = np.array([0, 0, 1, 1])
        p, r = pair_precision_recall(pred, truth)
        assert p == 1.0
        assert r == pytest.approx(2 / 6)

    def test_precision_recall_coarsening(self):
        truth = np.array([0, 0, 1, 1])
        pred = np.array([0, 0, 0, 0])
        p, r = pair_precision_recall(pred, truth)
        assert p == pytest.approx(2 / 6)
        assert r == 1.0

    def test_all_singletons_degenerate(self):
        a = np.array([-1, -1, -1])
        p, r = pair_precision_recall(a, a)
        assert p == r == 1.0


class TestOnRealClusterings:
    def test_dbscan_outputs_score_high(self, blobs_2d):
        from repro import dbscan

        a = dbscan(blobs_2d, 0.3, 5, algorithm="fdbscan")
        b = dbscan(blobs_2d, 0.3, 5, algorithm="gdbscan")
        # DBSCAN-equivalent results may differ only on border points;
        # ARI must be essentially 1.
        assert adjusted_rand_index(a.labels, b.labels) > 0.99

    def test_different_parameters_score_lower(self, blobs_2d):
        from repro import dbscan

        a = dbscan(blobs_2d, 0.3, 5, algorithm="fdbscan")
        b = dbscan(blobs_2d, 5.0, 2, algorithm="fdbscan")  # everything merges
        assert adjusted_rand_index(a.labels, b.labels) < 0.9
