"""Tests for benchmark record persistence and regression comparison."""

import math

import numpy as np
import pytest

from repro.bench.harness import RunRecord, run_once
from repro.bench.history import compare_records, load_records, save_records
from repro.datasets import gaussian_blobs


def _rec(algorithm="fdbscan", n=100, seconds=1.0, status="ok", clusters=3, noise=5):
    return RunRecord(
        algorithm=algorithm,
        dataset="d",
        n=n,
        eps=0.1,
        min_samples=5,
        seconds=seconds,
        status=status,
        n_clusters=clusters,
        n_noise=noise,
        counters={"distance_evals": 42},
    )


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        path = str(tmp_path / "run.json")
        records = [_rec(), _rec(algorithm="gdbscan", status="oom", seconds=float("nan"))]
        save_records(path, records, meta={"commit": "abc"})
        back, meta = load_records(path)
        assert meta == {"commit": "abc"}
        assert len(back) == 2
        assert back[0].algorithm == "fdbscan"
        assert back[0].counters == {"distance_evals": 42}
        assert back[1].status == "oom"
        assert math.isnan(back[1].seconds)

    def test_real_record_roundtrip(self, tmp_path):
        X = gaussian_blobs(200, centers=2, std=0.05, seed=0)
        rec = run_once("fdbscan", X, 0.2, 5, dataset="blobs")
        path = str(tmp_path / "real.json")
        save_records(path, [rec])
        back, _ = load_records(path)
        assert back[0].n_clusters == rec.n_clusters
        assert back[0].seconds == pytest.approx(rec.seconds)
        assert back[0].counters == {k: int(v) for k, v in rec.counters.items()}


class TestCompare:
    def test_regression_flagged(self):
        report = compare_records([_rec(seconds=1.0)], [_rec(seconds=2.0)])
        assert len(report["regressions"]) == 1
        assert report["regressions"][0]["ratio"] == pytest.approx(2.0)
        assert not report["improvements"]

    def test_improvement_flagged(self):
        report = compare_records([_rec(seconds=2.0)], [_rec(seconds=1.0)])
        assert len(report["improvements"]) == 1

    def test_within_threshold_quiet(self):
        report = compare_records([_rec(seconds=1.0)], [_rec(seconds=1.1)])
        assert not report["regressions"]
        assert not report["improvements"]

    def test_status_change(self):
        report = compare_records([_rec(status="ok")], [_rec(status="oom")])
        assert report["status_changes"][0]["after"] == "oom"

    def test_result_change_is_correctness_alarm(self):
        report = compare_records([_rec(clusters=3)], [_rec(clusters=4)])
        assert len(report["result_changes"]) == 1

    def test_unmatched_cells(self):
        report = compare_records([_rec(n=100)], [_rec(n=200)])
        assert len(report["unmatched"]) == 2

    def test_custom_threshold(self):
        report = compare_records(
            [_rec(seconds=1.0)], [_rec(seconds=1.4)], regression_threshold=1.5
        )
        assert not report["regressions"]
