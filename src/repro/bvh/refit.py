"""Bottom-up AABB refit for the linear BVH.

On the GPU this is the classic one-kernel bottom-up pass where each thread
starts at a leaf and climbs, with an atomic flag letting only the second
visitor of each internal node proceed.  The vectorised equivalent used
here first groups internal nodes by depth with a level-order BFS from the
root (each node appears exactly once, so the BFS is ``O(n)`` total work in
``O(depth)`` vectorised steps), then fits each level from the deepest up —
when a level is processed, every child box is already final.

The level list is kept on the tree (:attr:`repro.bvh.tree.BVH.levels`) so
the refit can be re-run after primitive boxes change without re-deriving
the topology.
"""

from __future__ import annotations

import numpy as np


def internal_levels(left: np.ndarray, right: np.ndarray, n_primitives: int) -> list[np.ndarray]:
    """Group internal node ids by depth (root level first).

    ``left``/``right`` are the per-internal-node child ids; leaf nodes have
    ids ``>= n_primitives - 1`` and terminate the BFS.
    """
    n_internal = n_primitives - 1
    if n_internal <= 0:
        return []
    levels: list[np.ndarray] = []
    current = np.array([0], dtype=np.int64)
    total = 0
    while current.size:
        levels.append(current)
        total += current.size
        children = np.concatenate([left[current], right[current]])
        current = children[children < n_internal]
    if total != n_internal:
        raise AssertionError(
            f"BFS reached {total} internal nodes, expected {n_internal} (malformed topology)"
        )
    return levels


def refit(
    node_lo: np.ndarray,
    node_hi: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    levels: list[np.ndarray],
    tree=None,
) -> None:
    """Fit every internal node's box to the union of its children, in place.

    Leaf boxes (``node_lo/hi[n-1:]``) must already hold the primitive
    boxes.  Levels are processed deepest-first so each union reads final
    child boxes.

    ``tree`` (a :class:`~repro.bvh.tree.BVH`) must be passed whenever the
    arrays belong to an already-built tree: the traversal reads node boxes
    through the cached parent-major packed layout
    (:meth:`~repro.bvh.tree.BVH.packed_children`), so a refit that mutates
    ``node_lo``/``node_hi`` without dropping that cache leaves traversals
    reading *stale* child boxes — silently wrong neighbours.  Prefer
    :func:`refit_bvh` for that case; the bare-array form exists for the
    builder, which refits before the :class:`BVH` object (and hence any
    packed cache) exists.
    """
    for level in reversed(levels):
        l_child = left[level]
        r_child = right[level]
        # Assignment, not ufunc-out: node_lo[level] is a fancy-indexing
        # copy, so an `out=` write would be lost.
        node_lo[level] = np.minimum(node_lo[l_child], node_lo[r_child])
        node_hi[level] = np.maximum(node_hi[l_child], node_hi[r_child])
    if tree is not None:
        tree.invalidate_packed()


def refit_bvh(tree) -> None:
    """Refit a built :class:`~repro.bvh.tree.BVH` after its leaf boxes
    moved, dropping the cached packed traversal layout.

    Write the new primitive boxes into ``tree.node_lo/hi[n-1:]`` (in
    sorted-leaf order) and call this; internal boxes are refit bottom-up
    and the next traversal rebuilds the packed child layout from the
    fresh boxes.
    """
    refit(tree.node_lo, tree.node_hi, tree.left, tree.right, tree.levels, tree=tree)
