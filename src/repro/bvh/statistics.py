"""BVH quality metrics and alternative orderings for the tree ablation.

The paper picks the linear BVH "for its good data and thread divergence
characteristics" (Section 1).  The metrics here quantify what "good"
means for a built tree, and :func:`scanline_codes` /
:func:`shuffled_codes` provide degraded orderings so the ablation
benchmark can show how much of the algorithm's speed comes from the
Z-curve layout rather than from the tree machinery itself:

- **SAH cost** — the classic surface-area-heuristic expected traversal
  cost: ``sum(area(node)) / area(root)`` over internal nodes; lower is
  better (fewer expected box tests per random query);
- **sibling overlap** — total overlap volume of sibling boxes relative to
  the root volume; overlapping siblings force traversals to descend both
  subtrees, the direct cause of extra node visits;
- **leaf depth distribution** — deeper or more skewed trees mean longer
  wavefront tails.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh.morton import bits_per_axis, normalize_to_grid
from repro.bvh.tree import BVH


@dataclass
class TreeStats:
    """Quality summary of one built BVH."""

    n_primitives: int
    max_depth: int
    mean_leaf_depth: float
    sah_cost: float
    sibling_overlap: float

    def as_dict(self) -> dict:
        return {
            "n_primitives": self.n_primitives,
            "max_depth": self.max_depth,
            "mean_leaf_depth": self.mean_leaf_depth,
            "sah_cost": self.sah_cost,
            "sibling_overlap": self.sibling_overlap,
        }


def _half_area(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Surface-area proxy per box (sum of pairwise extent products; in 1-D
    the extent itself)."""
    ext = hi - lo
    d = ext.shape[1]
    if d == 1:
        return ext[:, 0]
    total = np.zeros(ext.shape[0])
    for i in range(d):
        for j in range(i + 1, d):
            total += ext[:, i] * ext[:, j]
    return total


def leaf_depths(tree: BVH) -> np.ndarray:
    """Depth of every leaf (root = depth 0)."""
    n = tree.n_primitives
    depth = np.zeros(2 * n - 1, dtype=np.int64)
    if n == 1:
        return depth[:1]
    for level_no, level in enumerate(tree.levels):
        depth[tree.left[level]] = level_no + 1
        depth[tree.right[level]] = level_no + 1
    return depth[n - 1 :]


def tree_statistics(tree: BVH) -> TreeStats:
    """Compute the quality metrics for a built tree."""
    n = tree.n_primitives
    depths = leaf_depths(tree)
    if n == 1:
        return TreeStats(
            n_primitives=1,
            max_depth=0,
            mean_leaf_depth=0.0,
            sah_cost=1.0,
            sibling_overlap=0.0,
        )
    areas = _half_area(tree.node_lo, tree.node_hi)
    root_area = max(areas[tree.root], np.finfo(np.float64).tiny)
    sah = float(areas[: n - 1].sum() / root_area)

    # Sibling overlap volume relative to the root volume.
    left, right = tree.left, tree.right
    ov_lo = np.maximum(tree.node_lo[left], tree.node_lo[right])
    ov_hi = np.minimum(tree.node_hi[left], tree.node_hi[right])
    ov = np.clip(ov_hi - ov_lo, 0, None).prod(axis=1)
    root_vol = np.prod(tree.node_hi[tree.root] - tree.node_lo[tree.root])
    overlap = float(ov.sum() / root_vol) if root_vol > 0 else float(ov.sum())

    return TreeStats(
        n_primitives=n,
        max_depth=int(depths.max()),
        mean_leaf_depth=float(depths.mean()),
        sah_cost=sah,
        sibling_overlap=overlap,
    )


def scanline_codes(points: np.ndarray) -> np.ndarray:
    """A deliberately weaker spatial order: sort by the first axis only.

    A scanline groups points that are close in x but arbitrarily far in
    the remaining axes, producing long thin (high-overlap) internal boxes
    — the degradation the Morton curve avoids.
    """
    points = np.asarray(points, dtype=np.float64)
    bits = bits_per_axis(1)
    grid = normalize_to_grid(
        points[:, :1], points[:, :1].min(axis=0), points[:, :1].max(axis=0), bits
    )
    return grid[:, 0].astype(np.int64)


def shuffled_codes(points: np.ndarray, seed: int = 0) -> np.ndarray:
    """The worst order: random — adjacent leaves share no locality at all."""
    rng = np.random.default_rng(seed)
    return rng.permutation(points.shape[0]).astype(np.int64)
