"""Vectorised Karras (2012) linear BVH construction.

The construction is the one the paper takes from ArborX:

1. compute a Morton code per primitive (box centroid) and sort;
2. derive, for every internal node *independently*, the range of leaves it
   covers and the split position inside that range, using only
   longest-common-prefix (``delta``) comparisons of adjacent codes — this
   is what makes the builder a single data-parallel kernel;
3. fit boxes bottom-up (:mod:`repro.bvh.refit`).

Every stage here is a numpy-vectorised translation of the corresponding
CUDA kernel: the doubling search for the range length and the binary
searches for the range end and the split advance *all* internal nodes per
iteration, so the Python-level loop count is ``O(log n)``, not ``O(n)``.

Duplicate Morton codes (points in the same quantisation cell) are handled
with Karras's standard augmentation: when two codes are equal, ``delta``
falls through to the common prefix of the *leaf indices*, which are unique
by construction.
"""

from __future__ import annotations

import numpy as np

from repro.bvh import refit as _refit
from repro.bvh.aabb import validate_boxes
from repro.bvh.morton import morton_codes
from repro.bvh.tree import BVH
from repro.device.device import Device, default_device
from repro.device.primitives import sort_by_key

_U64_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _clz64(x: np.ndarray) -> np.ndarray:
    """Count leading zeros of each uint64 (vectorised; clz(0) = 64)."""
    x = x.astype(np.uint64)
    # Smear the highest set bit rightwards, then count set bits.
    for shift in (1, 2, 4, 8, 16, 32):
        x = x | (x >> np.uint64(shift))
    return (np.uint64(64) - np.bitwise_count(x)).astype(np.int64)


def _delta(codes: np.ndarray, i: np.ndarray, j: np.ndarray) -> np.ndarray:
    """Karras's ``delta(i, j)``: longest common prefix of codes ``i`` and
    ``j`` in bits, with the index tie-break for equal codes, and -1 when
    ``j`` is out of range.

    With the tie-break, ``delta`` values for equal codes live in
    ``[65, 128]`` and are therefore always larger than any unequal-code
    prefix (≤ 63), which is exactly the total order Karras's construction
    needs.
    """
    n = codes.shape[0]
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    valid = (j >= 0) & (j < n)
    j_safe = np.where(valid, j, 0)
    ci = codes[i].astype(np.uint64)
    cj = codes[j_safe].astype(np.uint64)
    x = ci ^ cj
    prefix = _clz64(x)
    same = x == 0
    if np.any(same):
        idx_x = (i.astype(np.uint64) ^ j_safe.astype(np.uint64))
        prefix = np.where(same, np.int64(64) + _clz64(idx_x), prefix)
    return np.where(valid, prefix, np.int64(-1))


def _build_topology(codes: np.ndarray):
    """Derive children and leaf ranges for all internal nodes at once.

    Returns ``(left, right, range_lo, range_hi)`` with node ids in the
    convention of :class:`~repro.bvh.tree.BVH`.
    """
    n = codes.shape[0]
    m = n - 1  # internal node count
    i = np.arange(m, dtype=np.int64)

    # Direction of the range: towards the neighbour with the longer
    # common prefix.
    d = np.where(_delta(codes, i, i + 1) >= _delta(codes, i, i - 1), 1, -1).astype(np.int64)
    delta_min = _delta(codes, i, i - d)

    # Upper bound for the range length by doubling.
    l_max = np.full(m, 2, dtype=np.int64)
    active = _delta(codes, i, i + l_max * d) > delta_min
    while np.any(active):
        l_max = np.where(active, l_max * 2, l_max)
        active = _delta(codes, i, i + l_max * d) > delta_min
    # Binary search for the exact length l.
    l = np.zeros(m, dtype=np.int64)
    t = l_max // 2
    while np.any(t >= 1):
        cand = l + t
        ok = (t >= 1) & (_delta(codes, i, i + cand * d) > delta_min)
        l = np.where(ok, cand, l)
        t = t // 2
    j = i + l * d
    first = np.minimum(i, j)
    last = np.maximum(i, j)

    # Binary search for the split position (Karras's do-while, one
    # vectorised iteration per halving).
    delta_node = _delta(codes, i, j)
    s = np.zeros(m, dtype=np.int64)
    t = l.copy()
    pending = np.ones(m, dtype=bool)
    while np.any(pending):
        t = np.where(pending, (t + 1) // 2, t)
        cand = s + t
        ok = pending & (_delta(codes, i, i + cand * d) > delta_node)
        s = np.where(ok, cand, s)
        pending = pending & (t > 1)
    gamma = i + s * d + np.minimum(d, 0)

    # Children: a side collapses to a leaf when its sub-range is a single
    # position.
    left = np.where(first == gamma, gamma + m, gamma)
    right = np.where(last == gamma + 1, gamma + 1 + m, gamma + 1)
    return left, right, first, last


def build_bvh(
    lo: np.ndarray,
    hi: np.ndarray,
    scene_lo: np.ndarray | None = None,
    scene_hi: np.ndarray | None = None,
    device: Device | None = None,
    codes: np.ndarray | None = None,
) -> BVH:
    """Build a linear BVH over a box set.

    Parameters
    ----------
    lo, hi:
        ``(n, d)`` primitive boxes, ``1 <= d <= 3``.  Points are passed as
        degenerate boxes (see :func:`repro.bvh.aabb.boxes_from_points`).
    scene_lo, scene_hi:
        Optional quantisation bounds for the Morton codes; default to the
        primitive set's bounds.
    device:
        Accounting device; the tree's footprint is charged to the ``"bvh"``
        tag and the construction runs under a ``"bvh_build"`` kernel record.
    codes:
        Optional pre-computed spatial sort keys (non-negative int64, one
        per primitive) replacing the Morton codes — used by the tree-order
        ablation to quantify how much the Z-curve ordering buys (a tree
        built over a worse order is still *correct*, only slower to
        traverse).

    Returns
    -------
    :class:`~repro.bvh.tree.BVH`
    """
    dev = default_device(device)
    lo = np.ascontiguousarray(lo, dtype=np.float64)
    hi = np.ascontiguousarray(hi, dtype=np.float64)
    validate_boxes(lo, hi)
    n, dim = lo.shape
    if n == 0:
        raise ValueError("cannot build a BVH over zero primitives")

    with dev.kernel("bvh_build", threads=n) as launch:
        centroids = 0.5 * (lo + hi)
        if codes is None:
            codes_raw = morton_codes(centroids, scene_lo, scene_hi)
        else:
            codes_raw = np.asarray(codes, dtype=np.int64)
            if codes_raw.shape != (n,):
                raise ValueError(
                    f"codes must be ({n},); got shape {codes_raw.shape}"
                )
            if codes_raw.size and codes_raw.min() < 0:
                raise ValueError("codes must be non-negative")
        codes, order = sort_by_key(codes_raw)
        position = np.empty(n, dtype=np.int64)
        position[order] = np.arange(n, dtype=np.int64)

        node_lo = np.empty((2 * n - 1, dim), dtype=np.float64)
        node_hi = np.empty((2 * n - 1, dim), dtype=np.float64)
        node_lo[n - 1 :] = lo[order]
        node_hi[n - 1 :] = hi[order]

        node_range_lo = np.empty(2 * n - 1, dtype=np.int64)
        node_range_hi = np.empty(2 * n - 1, dtype=np.int64)
        node_range_lo[n - 1 :] = np.arange(n, dtype=np.int64)
        node_range_hi[n - 1 :] = np.arange(n, dtype=np.int64)

        parent = np.full(2 * n - 1, -1, dtype=np.int64)

        if n == 1:
            left = np.zeros(0, dtype=np.int64)
            right = np.zeros(0, dtype=np.int64)
            levels: list[np.ndarray] = []
            launch.steps = 1
        else:
            left, right, range_lo, range_hi = _build_topology(codes)
            node_range_lo[: n - 1] = range_lo
            node_range_hi[: n - 1] = range_hi
            parent[left] = np.arange(n - 1, dtype=np.int64)
            parent[right] = np.arange(n - 1, dtype=np.int64)
            levels = _refit.internal_levels(left, right, n)
            _refit.refit(node_lo, node_hi, left, right, levels)
            launch.steps = len(levels)

    tree = BVH(
        n_primitives=n,
        node_lo=node_lo,
        node_hi=node_hi,
        left=left,
        right=right,
        parent=parent,
        node_range_lo=node_range_lo,
        node_range_hi=node_range_hi,
        order=order.astype(np.int64),
        position=position,
        codes=codes,
        levels=levels,
    )
    # materialise the parent-major traversal layout now so the device
    # charge below covers it (and release_bvh frees the same amount)
    tree.packed_children()
    dev.memory.allocate(tree.nbytes(), tag="bvh")
    return tree


def release_bvh(tree: BVH, device: Device | None = None) -> None:
    """Release the tree's footprint from the device ledger."""
    default_device(device).memory.free(tree.nbytes(), tag="bvh")
