"""Cost-model-driven engine choice for ``traversal="auto"``.

``auto`` is not a third traversal engine: it is a *scheduler* that, for
each query chunk, predicts what the single and dual engines would cost
and dispatches the chunk to the cheaper one.  Both engines are
bit-identical in every result, so the choice can never change labels,
counters of logical work (``distance_evals``) or hit streams — only wall
clock and scheduling counters.

The prediction follows the classic tree-query cost decomposition: a
radius-``eps`` query against a spatial tree over ``n`` points in ``d``
dimensions touches about ``prod_j min(a, 2·eps/E_j·a + 1)`` leaves
(``a = n^(1/d)`` leaves per axis over scene extents ``E``), each reached
through ``~depth`` internal nodes whose frontier pairs the wavefront
carries.  The single engine pays that per *query*; the dual engine pays a
widened version (the query node's own extent inflates the radius) per
*query-BVH node*, of which there are ``~cn/group_size``, plus per-member
work at the leaf fringe.  The query-set dispersion enters through the
expected group extent ``(vol(chunk)/cn)^(1/d) · group_size^(1/d)`` — a
tightly clustered chunk yields tiny groups whose widened radius is
barely larger than ``eps``, which is exactly when aggregation wins.

Predicted counts are priced with the fitted cost model's marginal rates
(:class:`repro.obs.fit.FittedCostModel`; the per-kernel entry when one
exists) so the engine choice tracks the *measured* cost of a frontier
pair on this machine; without a model, built-in rates keep the decision
well-defined (and deterministic — same inputs, same choice, always).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Fallback marginal rates (seconds per counted unit) when no fitted cost
#: model is available, in the rough proportion the vectorised engines
#: exhibit: a frontier pair costs more than a leaf distance test because
#: it carries the gather/compact bookkeeping.
DEFAULT_RATES = {"nodes_visited": 1.5e-7, "distance_evals": 8.0e-8}
#: Fallback per-launch overhead (seconds).
DEFAULT_PER_LAUNCH = 5.0e-5

#: Multiplier on the dual engine's predicted (query node, tree node)
#: pair count: a dual pair is costlier than a single-engine frontier row
#: (box-box tests, the looser-side refinement loop, query-BVH build).
DUAL_PAIR_FACTOR = 3.0

#: Multiplier on the dual engine's per-member leaf-fringe work (parent
#: re-tests and fringe classification) relative to the shared leaf-test
#: count.
DUAL_MEMBER_FACTOR = 1.25

#: The dual engine must be predicted at least this much cheaper to be
#: chosen: near-ties go to the single engine, whose constants are better
#: understood (hysteresis against prediction noise).
AUTO_MARGIN = 0.95


@dataclass(frozen=True)
class EngineDecision:
    """One chunk's engine choice with the predictions behind it."""

    engine: str
    pred_single_seconds: float
    pred_dual_seconds: float

    @property
    def pred_seconds(self) -> float:
        """Predicted cost of the engine actually chosen."""
        return (
            self.pred_dual_seconds
            if self.engine == "dual"
            else self.pred_single_seconds
        )


def _marginal_rate(cost_model, counter: str, kernel: str) -> float:
    """The model's marginal seconds-per-unit for one counter (0 launches
    isolates the linear term), falling back to the built-in rate when the
    model is absent or assigns the counter no cost."""
    if cost_model is not None:
        try:
            rate = float(cost_model.predict({counter: 1.0}, kernel, 0.0))
        except Exception:
            rate = 0.0
        if rate > 0.0:
            return rate
    return DEFAULT_RATES[counter]


def _per_launch(cost_model, kernel: str) -> float:
    if cost_model is not None:
        try:
            rate = float(cost_model.predict({}, kernel, 1.0))
        except Exception:
            rate = 0.0
        if rate > 0.0:
            return rate
    return DEFAULT_PER_LAUNCH


def _leaf_overlap(a: float, extents: np.ndarray, diameter: float) -> float:
    """Expected leaves touched by a query of the given search *diameter*:
    ``prod_j min(a, diameter/E_j · a + 1)`` with ``a`` leaves per axis."""
    out = 1.0
    for e in extents:
        if e > 0.0:
            out *= min(a, diameter / e * a + 1.0)
    return out


def choose_engine(
    tree,
    chunk_points: np.ndarray,
    eps: float,
    group_size: int,
    cost_model=None,
    kernel_name: str = "bvh_traverse",
    tree_stats=None,
) -> EngineDecision:
    """Pick ``"single"`` or ``"dual"`` for one chunk of queries.

    A pure function of its inputs (tree geometry, chunk geometry, eps,
    group size, the cost model's rates): the same chunk always gets the
    same engine, which is what makes ``auto`` runs reproducible.
    """
    cn, d = chunk_points.shape
    n = max(int(tree.n_primitives), 1)
    a = n ** (1.0 / d)
    scene_ext = np.asarray(
        tree.node_hi[tree.root] - tree.node_lo[tree.root], dtype=np.float64
    )
    if tree_stats is not None:
        depth = float(tree_stats.mean_leaf_depth)
    else:
        depth = math.log2(n) if n > 1 else 1.0

    l_single = _leaf_overlap(a, scene_ext, 2.0 * eps)
    nv_single = cn * (2.0 * l_single + depth)
    leaf_tests = cn * l_single

    # Query-set dispersion -> expected query-group extent.
    gs = max(1, int(group_size))
    chunk_ext = chunk_points.max(axis=0) - chunk_points.min(axis=0)
    vol = float(np.prod(np.maximum(chunk_ext, 1e-300)))
    spacing = (vol / cn) ** (1.0 / d) if cn else 0.0
    g_ext = spacing * gs ** (1.0 / d)
    l_dual = _leaf_overlap(a, scene_ext, 2.0 * eps + g_ext)
    nv_dual = DUAL_PAIR_FACTOR * (cn / gs) * (2.0 * l_dual + depth)
    member_work = DUAL_MEMBER_FACTOR * leaf_tests

    r_nv = _marginal_rate(cost_model, "nodes_visited", kernel_name)
    r_de = _marginal_rate(cost_model, "distance_evals", kernel_name)
    launch = _per_launch(cost_model, kernel_name)
    pred_single = launch + r_nv * nv_single + r_de * leaf_tests
    pred_dual = launch + r_nv * (nv_dual + member_work) + r_de * leaf_tests

    engine = "dual" if pred_dual < AUTO_MARGIN * pred_single else "single"
    return EngineDecision(
        engine=engine,
        pred_single_seconds=pred_single,
        pred_dual_seconds=pred_dual,
    )
