"""Linear bounding volume hierarchy (BVH) — the paper's search index.

The paper builds its neighbour search on a *linear BVH* (Karras 2012), the
structure ArborX provides, "chosen for its good data and thread divergence
characteristics" (Section 1).  This package is a from-scratch, fully
vectorised reproduction:

``morton``
    2-D (31 bits/axis) and 3-D (21 bits/axis) Morton codes via magic-number
    bit spreading; the space-filling-curve order that makes the linear
    builder possible.

``aabb``
    Vectorised axis-aligned-bounding-box operations, including the
    sphere/box minimum-distance test used as the traversal predicate.

``builder`` / ``tree`` / ``refit``
    The Karras construction: sort primitives by Morton code, derive every
    internal node's leaf range and split with vectorised binary searches
    (no per-node loops), then refit AABBs bottom-up level by level.
    Duplicate codes are handled with the standard index-augmented
    tie-break.  The builder accepts *boxes*, not just points — exactly the
    property FDBSCAN-DenseBox exploits by mixing isolated points with
    dense-cell boxes (Section 4.2, Figure 2).

``traversal``
    Batched wavefront sphere queries: all queries advance through the tree
    simultaneously, one frontier per step (the data-parallel analogue of
    the paper's "batched mode, i.e. with all threads launching at the same
    time").  Provides early termination at ``minpts`` (preprocessing),
    streaming leaf-hit callbacks that never materialise neighbour lists
    (the fused main phase) and the leaf-index *mask* of Section 4.1 that
    processes each neighbour pair exactly once.  Two engines share this
    interface: ``traversal="single"`` (one frontier row per query) and
    ``traversal="dual"`` (dual-tree: whole query-BVH nodes pruned per tree
    node in one box test), plus ``traversal="auto"`` which picks between
    them per chunk from the fitted cost model.

``qgroups``
    The query-side BVH backing the dual engine: density-adaptive groups of
    Morton-sorted queries built by median bisection, in the same packed
    internal-before-leaf layout as the tree.

``autotune``
    The ``traversal="auto"`` chooser: prices both engines from tree
    statistics, query-set dispersion and the fitted cost model's
    per-counter rates, then dispatches each chunk to the cheaper one.

``statistics``
    Tree-shape summaries (depths, SAH cost, sibling overlap) feeding the
    chooser and the observability surface.
"""

from repro.bvh.aabb import (
    boxes_from_points,
    merge_aabbs,
    mindist_point_box_sq,
    scene_bounds,
)
from repro.bvh.builder import build_bvh
from repro.bvh.morton import morton_codes, normalize_to_grid
from repro.bvh.qgroups import QueryBVH, build_query_bvh
from repro.bvh.refit import refit_bvh
from repro.bvh.traversal import (
    TRAVERSALS,
    TraversalResult,
    count_within,
    for_each_leaf_hit,
)
from repro.bvh.tree import BVH

__all__ = [
    "BVH",
    "QueryBVH",
    "TRAVERSALS",
    "TraversalResult",
    "boxes_from_points",
    "build_bvh",
    "build_query_bvh",
    "count_within",
    "for_each_leaf_hit",
    "merge_aabbs",
    "mindist_point_box_sq",
    "morton_codes",
    "normalize_to_grid",
    "refit_bvh",
    "scene_bounds",
]
