"""Batched k-nearest-neighbour queries on the linear BVH.

The hierarchical variant (HDBSCAN, built on the paper's DBSCAN* — Section
2.1) needs each point's *core distance*: the distance to its ``k``-th
nearest neighbour.  ArborX ships a kNN traversal next to its radius
search; here the batched equivalent is an **expanding-radius search**, a
formulation that reuses the wavefront radius machinery unchanged:

1. start from a density-based radius guess and run the early-terminated
   *count* kernel; queries with fewer than ``k`` neighbours double their
   radius and repeat (every round is one batched traversal of only the
   unsatisfied queries);
2. with a per-query sufficient radius known, one gather traversal
   collects (query, distance) pairs, and a segmented selection extracts
   the ``k``-th smallest per query.

The expected number of rounds is O(1) for any density regime (each round
multiplies the searched volume by ``2^d``), and transient memory stays
proportional to the final gather, which the radius bound keeps within a
constant factor of ``k`` per query in bounded-density data.
"""

from __future__ import annotations

import numpy as np

from repro.bvh.traversal import DEFAULT_CHUNK_SIZE, count_within, for_each_leaf_hit
from repro.bvh.tree import BVH
from repro.device.device import Device, default_device


def _initial_radius(tree: BVH, k: int) -> float:
    """Density-based starting radius: the scene volume spread over the
    primitives suggests the k-point ball scale."""
    extent = tree.node_hi[tree.root] - tree.node_lo[tree.root]
    extent = np.where(extent > 0, extent, np.max(extent) if np.max(extent) > 0 else 1.0)
    volume = float(np.prod(extent))
    n = tree.n_primitives
    d = tree.dim
    return max((volume * k / max(n, 1)) ** (1.0 / d), 1e-12)


def knn_radii(
    tree: BVH,
    queries: np.ndarray,
    k: int,
    device: Device | None = None,
    chunk_size: int | None = DEFAULT_CHUNK_SIZE,
) -> np.ndarray:
    """Distance from each query to its ``k``-th nearest primitive.

    A query that is itself a primitive counts itself (distance 0) — so for
    core distances, ``k = minpts`` matches the repository's "a point is
    its own neighbour" convention.  Requires ``k <= n_primitives``.

    Returns the ``(m,)`` float64 radii.
    """
    dev = default_device(device)
    queries = np.ascontiguousarray(queries, dtype=np.float64)
    m = queries.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1; got {k}")
    if k > tree.n_primitives:
        raise ValueError(
            f"k={k} exceeds the number of primitives ({tree.n_primitives})"
        )
    if m == 0:
        return np.zeros(0, dtype=np.float64)

    # --- phase 1: expanding-radius counting -------------------------------
    radius = np.full(m, _initial_radius(tree, k), dtype=np.float64)
    satisfied = np.zeros(m, dtype=bool)
    with dev.kernel("knn_expand", threads=m) as launch:
        rounds = 0
        while not satisfied.all():
            rounds += 1
            pending = np.flatnonzero(~satisfied)
            # counting with a uniform radius per batch keeps the kernel
            # identical to the preprocessing count; group by radius value
            # (all pending queries share the round's doubling count)
            r = radius[pending[0]]
            counts = count_within(
                tree,
                queries[pending],
                r,
                stop_at=k,
                device=dev,
                chunk_size=chunk_size,
            )
            done = counts >= k
            satisfied[pending[done]] = True
            radius[pending[~done]] *= 2.0
        launch.steps = rounds

    # --- phase 2: gather + segmented k-th smallest --------------------------
    # Queries may have very different final radii; gather in chunks to
    # bound the transient pair set.
    out = np.empty(m, dtype=np.float64)
    order = np.argsort(radius, kind="stable")  # group similar radii
    if chunk_size is None or chunk_size <= 0:
        chunk_size = m
    with dev.kernel("knn_gather", threads=m):
        for start in range(0, m, chunk_size):
            rows = order[start : start + chunk_size]
            r = float(radius[rows].max())
            q_pts = queries[rows]
            collected_q: list[np.ndarray] = []
            collected_d: list[np.ndarray] = []

            def on_hits(q_ids: np.ndarray, leaf_pos: np.ndarray) -> None:
                prim = tree.order[leaf_pos]
                diff = q_pts[q_ids] - 0.5 * (
                    tree.node_lo[tree.n_internal + leaf_pos]
                    + tree.node_hi[tree.n_internal + leaf_pos]
                )
                # q_ids is a pool-backed view only valid during the call;
                # copy because the gather holds it across steps.
                collected_q.append(q_ids.copy())
                collected_d.append(np.einsum("ij,ij->i", diff, diff))
                _ = prim

            for_each_leaf_hit(
                tree,
                q_pts,
                r,
                on_hits,
                device=dev,
                kernel_name="knn_gather_chunk",
                chunk_size=None,
            )
            qs = np.concatenate(collected_q)
            ds = np.concatenate(collected_d)
            # segmented k-th smallest: lexsort by (query, distance)
            sel = np.lexsort((ds, qs))
            qs_sorted = qs[sel]
            ds_sorted = ds[sel]
            starts = np.searchsorted(qs_sorted, np.arange(rows.shape[0]))
            kth = ds_sorted[starts + (k - 1)]
            out[rows] = np.sqrt(kth)
    return out


def core_distances(
    tree: BVH,
    X: np.ndarray,
    min_samples: int,
    device: Device | None = None,
) -> np.ndarray:
    """HDBSCAN core distances: distance to the ``min_samples``-th nearest
    point, the point itself included (Campello et al.'s ``d_core`` with the
    self-counting convention used throughout this repository)."""
    return knn_radii(tree, X, min_samples, device=device)
