"""Batched k-nearest-neighbour queries on the linear BVH.

The hierarchical variant (HDBSCAN, built on the paper's DBSCAN* — Section
2.1) needs each point's *core distance*: the distance to its ``k``-th
nearest neighbour.  ArborX ships a kNN traversal next to its radius
search; here the batched equivalent is an **expanding-radius search**, a
formulation that reuses the wavefront radius machinery unchanged:

1. start from a density-based radius guess and run the early-terminated
   *count* kernel; queries with fewer than ``k`` neighbours double their
   radius and repeat (every round is one batched traversal of only the
   unsatisfied queries);
2. with a per-query sufficient radius known, one gather traversal
   collects (query, distance) pairs, and a segmented selection extracts
   the ``k``-th smallest per query.

The expected number of rounds is O(1) for any density regime (each round
multiplies the searched volume by ``2^d``), and transient memory stays
proportional to the final gather, which the radius bound keeps within a
constant factor of ``k`` per query in bounded-density data.

Distances are always measured to the *primitive coordinates*: for trees
whose leaves are zero-extent point boxes those coincide with the leaf
AABBs, but for general boxes the caller must pass ``points`` (one
coordinate per primitive, in the caller's primitive numbering) so the
gather ranks true point distances rather than leaf-box geometry.
"""

from __future__ import annotations

import numpy as np

from repro.bvh.traversal import DEFAULT_CHUNK_SIZE, count_within, for_each_leaf_hit
from repro.bvh.tree import BVH
from repro.device.device import Device, default_device
from repro.device.primitives import scatter_add


def _initial_radius(tree: BVH, k: int) -> float:
    """Density-based starting radius: the scene volume spread over the
    primitives suggests the k-point ball scale.

    Degenerate (zero-extent) dimensions carry no volume — collinear or
    axis-aligned data lives in a lower-dimensional subspace, so the
    density estimate uses only the extents that are actually positive.
    """
    extent = tree.node_hi[tree.root] - tree.node_lo[tree.root]
    positive = extent[extent > 0]
    if positive.size == 0:
        return 1e-12  # all primitives coincide; any radius finds them
    volume = float(np.prod(positive))
    n = tree.n_primitives
    return max((volume * k / max(n, 1)) ** (1.0 / positive.size), 1e-12)


def _points_by_position(tree: BVH, points: np.ndarray | None) -> np.ndarray:
    """Primitive coordinates indexed by *sorted leaf position*.

    Without ``points`` the tree must have zero-extent (point) leaves —
    the only case where leaf geometry determines the primitive
    coordinate.  With ``points`` (per-primitive coordinates in the
    caller's numbering) any leaf boxes are accepted.
    """
    n_int = tree.n_internal
    if points is None:
        leaf_lo = tree.node_lo[n_int:]
        leaf_hi = tree.node_hi[n_int:]
        if leaf_lo.shape[0] and not np.array_equal(leaf_lo, leaf_hi):
            raise ValueError(
                "knn_radii on a tree with non-degenerate leaf boxes requires "
                "points= (per-primitive coordinates); leaf AABBs do not "
                "determine primitive positions"
            )
        return leaf_lo
    points = np.ascontiguousarray(points, dtype=np.float64)
    expected = (tree.n_primitives, tree.dim)
    if points.shape != expected:
        raise ValueError(f"points must have shape {expected}; got {points.shape}")
    return points[tree.order]


def _count_points_within(
    tree: BVH,
    queries: np.ndarray,
    pts_by_pos: np.ndarray,
    r: float,
    stop_at: int,
    device: Device,
    chunk_size: int | None,
    query_order: str,
    traversal: str,
    watchdog=None,
    backend=None,
) -> np.ndarray:
    """Exact point-in-ball counts on trees with non-degenerate leaves.

    ``count_within`` counts *leaf-box* hits, which over-counts true point
    neighbours when leaves have extent; this variant re-tests every leaf
    hit against the primitive coordinate so the expanding-radius loop
    never declares a query satisfied on box geometry alone.
    """
    m = queries.shape[0]
    counts = np.zeros(m, dtype=np.int64)
    r2 = r * r

    def on_hits(q_ids: np.ndarray, leaf_pos: np.ndarray) -> None:
        diff = queries[q_ids] - pts_by_pos[leaf_pos]
        d2 = np.einsum("ij,ij->i", diff, diff)
        device.counters.add("distance_evals", q_ids.shape[0])
        within = d2 <= r2
        scatter_add(counts, q_ids[within], counters=device.counters)

    def finished(ids: np.ndarray) -> np.ndarray:
        return counts[ids] >= stop_at

    for_each_leaf_hit(
        tree,
        queries,
        r,
        on_hits,
        finished_fn=finished,
        device=device,
        kernel_name="knn_count_exact",
        leaf_test_is_distance=False,
        chunk_size=chunk_size,
        query_order=query_order,
        traversal=traversal,
        watchdog=watchdog,
        backend=backend,
    )
    return counts


def knn_radii(
    tree: BVH,
    queries: np.ndarray,
    k: int,
    device: Device | None = None,
    chunk_size: int | None = DEFAULT_CHUNK_SIZE,
    points: np.ndarray | None = None,
    initial_radius: np.ndarray | float | None = None,
    query_order: str = "input",
    traversal: str = "single",
    watchdog=None,
    backend=None,
) -> np.ndarray:
    """Distance from each query to its ``k``-th nearest primitive.

    A query that is itself a primitive counts itself (distance 0) — so for
    core distances, ``k = minpts`` matches the repository's "a point is
    its own neighbour" convention.  Requires ``k <= n_primitives``.

    Parameters
    ----------
    points:
        ``(n_primitives, d)`` primitive coordinates in the caller's
        numbering.  Required when the tree's leaf boxes have extent;
        optional (and bit-neutral) for point-leaf trees.
    initial_radius:
        Warm-start search radius — a scalar or per-query ``(m,)`` array.
        Must not exceed each query's true k-th neighbour distance is NOT
        required; any positive value is correct (undersized radii just
        spend extra doubling rounds).  Defaults to the density estimate.
    watchdog:
        Optional zero-argument callable polled once per traversal
        wavefront step across every counting round and the gather phase;
        aborts by raising (deadline enforcement).

    Returns the ``(m,)`` float64 radii.
    """
    dev = default_device(device)
    queries = np.ascontiguousarray(queries, dtype=np.float64)
    m = queries.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1; got {k}")
    if k > tree.n_primitives:
        raise ValueError(
            f"k={k} exceeds the number of primitives ({tree.n_primitives})"
        )
    if m == 0:
        return np.zeros(0, dtype=np.float64)
    pts_by_pos = _points_by_position(tree, points)
    n_int = tree.n_internal
    degenerate_leaves = np.array_equal(tree.node_lo[n_int:], tree.node_hi[n_int:])

    # --- phase 1: expanding-radius counting -------------------------------
    if initial_radius is None:
        radius = np.full(m, _initial_radius(tree, k), dtype=np.float64)
    else:
        radius = np.broadcast_to(
            np.asarray(initial_radius, dtype=np.float64), (m,)
        ).copy()
        if not np.all(radius > 0):
            raise ValueError("initial_radius entries must be positive")
    satisfied = np.zeros(m, dtype=bool)
    with dev.kernel("knn_expand", threads=m) as launch:
        rounds = 0
        while not satisfied.all():
            rounds += 1
            pending = np.flatnonzero(~satisfied)
            # The count kernel takes one radius per batch; pending queries
            # may carry distinct radii (warm starts, uneven doubling), so
            # group them by radius value — with the default uniform start
            # this is exactly one group per round.
            pending_r = radius[pending]
            for r in np.unique(pending_r):
                rows = pending[pending_r == r]
                if degenerate_leaves:
                    counts = count_within(
                        tree,
                        queries[rows],
                        float(r),
                        stop_at=k,
                        device=dev,
                        chunk_size=chunk_size,
                        query_order=query_order,
                        traversal=traversal,
                        watchdog=watchdog,
                        backend=backend,
                    )
                else:
                    counts = _count_points_within(
                        tree,
                        queries[rows],
                        pts_by_pos,
                        float(r),
                        k,
                        dev,
                        chunk_size,
                        query_order,
                        traversal,
                        watchdog,
                        backend,
                    )
                done = counts >= k
                satisfied[rows[done]] = True
                radius[rows[~done]] *= 2.0
        launch.steps = rounds

    # --- phase 2: gather + segmented k-th smallest --------------------------
    # Queries may have very different final radii; gather in chunks to
    # bound the transient pair set.
    out = np.empty(m, dtype=np.float64)
    order = np.argsort(radius, kind="stable")  # group similar radii
    if chunk_size is None or chunk_size <= 0:
        chunk_size = m
    with dev.kernel("knn_gather", threads=m):
        for start in range(0, m, chunk_size):
            rows = order[start : start + chunk_size]
            r = float(radius[rows].max())
            q_pts = queries[rows]
            collected_q: list[np.ndarray] = []
            collected_d: list[np.ndarray] = []

            def on_hits(q_ids: np.ndarray, leaf_pos: np.ndarray) -> None:
                # Distance to the primitive coordinate itself — leaf-box
                # geometry (centres) ranks wrong the moment a leaf has
                # extent, and the k-th selection below needs true point
                # distances.
                diff = q_pts[q_ids] - pts_by_pos[leaf_pos]
                # q_ids is a pool-backed view only valid during the call;
                # copy because the gather holds it across steps.
                collected_q.append(q_ids.copy())
                collected_d.append(np.einsum("ij,ij->i", diff, diff))
                if not degenerate_leaves:
                    dev.counters.add("distance_evals", q_ids.shape[0])

            for_each_leaf_hit(
                tree,
                q_pts,
                r,
                on_hits,
                device=dev,
                kernel_name="knn_gather_chunk",
                leaf_test_is_distance=degenerate_leaves,
                chunk_size=None,
                query_order=query_order,
                traversal=traversal,
                watchdog=watchdog,
            )
            qs = np.concatenate(collected_q)
            ds = np.concatenate(collected_d)
            # segmented k-th smallest: lexsort by (query, distance)
            sel = np.lexsort((ds, qs))
            qs_sorted = qs[sel]
            ds_sorted = ds[sel]
            starts = np.searchsorted(qs_sorted, np.arange(rows.shape[0]))
            kth = ds_sorted[starts + (k - 1)]
            out[rows] = np.sqrt(kth)
    return out


def core_distances(
    tree: BVH,
    X: np.ndarray,
    min_samples: int,
    device: Device | None = None,
    query_order: str = "input",
    traversal: str = "single",
    watchdog=None,
    backend=None,
) -> np.ndarray:
    """HDBSCAN core distances: distance to the ``min_samples``-th nearest
    point, the point itself included (Campello et al.'s ``d_core`` with the
    self-counting convention used throughout this repository)."""
    return knn_radii(
        tree,
        X,
        min_samples,
        device=device,
        points=X,
        query_order=query_order,
        traversal=traversal,
        watchdog=watchdog,
        backend=backend,
    )
