"""Morton (Z-order) codes for 1-, 2- and 3-dimensional data.

The linear BVH builder (Karras 2012) works on primitives sorted along a
space-filling curve.  Following ArborX we use Morton order: each axis is
quantised to a fixed-width integer grid and the per-axis bits are
interleaved.  Bit budgets per axis (codes fit in a non-negative int64):

=========  ==============  ===========
dimension  bits per axis   code bits
=========  ==============  ===========
1          62              62
2          31              62
3          21              63
=========  ==============  ===========

The paper targets "low-dimensional (e.g., spatial) data"; dimensions above
3 are rejected, matching that scope.

All routines are fully vectorised over the point set; the bit spreading
uses the classic magic-number sequences.
"""

from __future__ import annotations

import numpy as np

MAX_MORTON_DIM = 3

_BITS_PER_AXIS = {1: 62, 2: 31, 3: 21}


def bits_per_axis(dim: int) -> int:
    """Quantisation width per axis for ``dim``-dimensional codes."""
    try:
        return _BITS_PER_AXIS[dim]
    except KeyError:
        raise ValueError(
            f"Morton codes support 1 <= dim <= {MAX_MORTON_DIM}; got dim={dim}"
        ) from None


def expand_bits_2d(x: np.ndarray) -> np.ndarray:
    """Spread the low 31 bits of each uint64 so one zero separates them
    (bit ``i`` moves to position ``2 i``)."""
    x = x.astype(np.uint64) & np.uint64(0x7FFFFFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    x = (x | (x << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << np.uint64(2))) & np.uint64(0x3333333333333333)
    x = (x | (x << np.uint64(1))) & np.uint64(0x5555555555555555)
    return x


def expand_bits_3d(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each uint64 so two zeros separate them
    (bit ``i`` moves to position ``3 i``)."""
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x001F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x001F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def normalize_to_grid(points: np.ndarray, lo: np.ndarray, hi: np.ndarray, bits: int) -> np.ndarray:
    """Quantise points inside the scene box ``[lo, hi]`` to integer grid
    coordinates in ``[0, 2**bits - 1]`` per axis.

    Degenerate axes (``hi == lo``) map to 0 — a scene flat in one dimension
    still gets a valid ordering from the remaining axes.
    """
    points = np.asarray(points, dtype=np.float64)
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    extent = hi - lo
    safe_extent = np.where(extent > 0, extent, 1.0)
    unit = (points - lo) / safe_extent
    unit = np.where(extent > 0, unit, 0.0)
    scale = float(2**bits - 1)
    cells = np.clip(np.floor(unit * scale + 0.5), 0, scale)
    return cells.astype(np.uint64)


def morton_codes(points: np.ndarray, lo: np.ndarray | None = None, hi: np.ndarray | None = None) -> np.ndarray:
    """Morton code per point, returned as non-negative ``int64``.

    ``lo``/``hi`` give the scene bounds used for quantisation; by default
    they are the point set's own bounds.  Codes order the points along the
    Z-curve; equal codes (points sharing a quantisation cell) are legal and
    handled downstream by the builder's index tie-break.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be (n, d); got shape {points.shape}")
    n, dim = points.shape
    bits = bits_per_axis(dim)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if not np.isfinite(points).all():
        raise ValueError("points must be finite to compute Morton codes")
    if lo is None:
        lo = points.min(axis=0)
    if hi is None:
        hi = points.max(axis=0)
    grid = normalize_to_grid(points, lo, hi, bits)
    if dim == 1:
        code = grid[:, 0]
    elif dim == 2:
        code = expand_bits_2d(grid[:, 0]) | (expand_bits_2d(grid[:, 1]) << np.uint64(1))
    else:
        code = (
            expand_bits_3d(grid[:, 0])
            | (expand_bits_3d(grid[:, 1]) << np.uint64(1))
            | (expand_bits_3d(grid[:, 2]) << np.uint64(2))
        )
    return code.astype(np.int64)


def compact_bits_2d(code: np.ndarray) -> np.ndarray:
    """Inverse of :func:`expand_bits_2d` (used only by tests)."""
    x = code.astype(np.uint64) & np.uint64(0x5555555555555555)
    x = (x | (x >> np.uint64(1))) & np.uint64(0x3333333333333333)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x00FF00FF00FF00FF)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x0000FFFF0000FFFF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0x00000000FFFFFFFF)
    return x


def compact_bits_3d(code: np.ndarray) -> np.ndarray:
    """Inverse of :func:`expand_bits_3d` (used only by tests)."""
    x = code.astype(np.uint64) & np.uint64(0x1249249249249249)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x001F0000FF0000FF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0x001F00000000FFFF)
    x = (x | (x >> np.uint64(32))) & np.uint64(0x00000000001FFFFF)
    return x
