"""Query-side hierarchy for the dual-tree (query-aggregated) traversal.

The single-query wavefront carries one frontier row per ``(query, node)``
pair, so Morton-adjacent queries that visit nearly identical subtrees each
pay the same box tests again.  The dual engine instead aggregates the
chunk's Morton-sorted queries into a *shallow query-side hierarchy* — the
query-grouping JZ-Tree uses and the ArborX exascale follow-up ships as
aggregated traversal:

- a **group** covers ``group_size`` consecutive queries of the sorted
  chunk (the Z-curve makes consecutive = spatially close);
- a **supergroup** covers ``fanout`` consecutive groups.

Both levels live in the same packed layout style as
:meth:`repro.bvh.tree.BVH.packed_children`: one id space (supergroups
first, then groups — mirroring the internal-then-leaf node numbering of
``bvh/tree.py``), flat box arrays, and CSR-ish ``[lo, hi)`` ranges for
members (chunk positions) and children (group ids).  A query node's box
is the tight AABB of its member *points* (not eps-inflated): testing
``mindist(group_box, node_box) <= eps`` is the exact Minkowski form of
"the eps-inflated group AABB intersects the node box" under the L2
metric — tighter than inflating by eps per axis, and for a single-member
group it degenerates to exactly the per-query sphere/box test the single
engine runs.

All arrays are taken from the caller's scratch pool (duck-typed — any
object with the :class:`repro.bvh.traversal._FrontierPool` ``take``
methods), so the hierarchy's footprint is charged to the memory model
under the pool's tag and reused across chunks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default queries per group.  32 mirrors a warp: the group is the unit
#: whose members share one box test, exactly as a warp's threads share a
#: cooperatively-tested node.
DEFAULT_GROUP_SIZE = 32

#: Default groups per supergroup (so one supergroup covers
#: ``fanout * group_size`` queries at the default sizes).
DEFAULT_SUPER_FANOUT = 8


@dataclass
class QueryGroups:
    """Packed two-level query hierarchy over one sorted chunk.

    Node ids: supergroups are ``0 .. n_super-1``, groups (the leaf level)
    are ``n_super .. n_super+n_groups-1`` — the internal-before-leaf id
    convention of :class:`repro.bvh.tree.BVH`.

    Attributes
    ----------
    lo, hi:
        ``(n_nodes, d)`` tight member-point AABB per query node.
    mem_lo, mem_hi:
        ``(n_nodes,)`` member range ``[lo, hi)`` in *chunk positions* —
        contiguous by construction at both levels.
    child_lo, child_hi:
        ``(n_super,)`` child-group id range per supergroup.
    ext:
        ``(n_nodes,)`` longest box edge — the split heuristic compares it
        against the tree node's extent.
    mask_min:
        ``(n_nodes,)`` minimum traversal-mask position over members (or
        ``None``): a subtree with ``range_hi <= mask_min`` is hidden from
        *every* member, so the whole query node skips it in one test.
    top:
        Seed node ids (the supergroups, or the lone group).
    """

    n_super: int
    n_groups: int
    lo: np.ndarray
    hi: np.ndarray
    mem_lo: np.ndarray
    mem_hi: np.ndarray
    child_lo: np.ndarray
    child_hi: np.ndarray
    ext: np.ndarray
    mask_min: np.ndarray | None
    top: np.ndarray

    @property
    def n_nodes(self) -> int:
        return self.n_super + self.n_groups


def build_query_groups(
    points: np.ndarray,
    mask: np.ndarray | None,
    group_size: int,
    fanout: int,
    pool,
) -> QueryGroups:
    """Build the two-level hierarchy over one chunk's sorted query points.

    ``points`` are the chunk's queries in schedule (Morton) order;
    ``mask`` the matching traversal-mask positions (or ``None``).  Output
    arrays are views into ``pool`` slots (grown once, reused per chunk).
    """
    cn, _dim = points.shape
    group_size = max(1, int(group_size))
    fanout = max(2, int(fanout))
    n_groups = -(-cn // group_size)
    n_super = -(-n_groups // fanout) if n_groups >= 2 else 0
    n_nodes = n_super + n_groups

    lo = pool.take2d("qg_lo", n_nodes)
    hi = pool.take2d("qg_hi", n_nodes)
    mem_lo = pool.take("qg_mem_lo", n_nodes)
    mem_hi = pool.take("qg_mem_hi", n_nodes)

    gstarts = np.arange(n_groups, dtype=np.int64) * group_size
    # reduceat handles the ragged last group (segments run to the next
    # start, the final one to the end of the chunk).
    np.minimum.reduceat(points, gstarts, axis=0, out=lo[n_super:])
    np.maximum.reduceat(points, gstarts, axis=0, out=hi[n_super:])
    mem_lo[n_super:] = gstarts
    mem_hi[n_super:] = np.minimum(gstarts + group_size, cn)

    if n_super:
        sstarts = np.arange(n_super, dtype=np.int64) * fanout
        # through temporaries: reduceat in/out views sharing one base
        # array is an aliasing hazard.
        lo[:n_super] = np.minimum.reduceat(lo[n_super:], sstarts, axis=0)
        hi[:n_super] = np.maximum.reduceat(hi[n_super:], sstarts, axis=0)
        mem_lo[:n_super] = sstarts * group_size
        mem_hi[:n_super] = np.minimum((sstarts + fanout) * group_size, cn)
        child_lo = pool.take("qg_child_lo", n_super)
        child_hi = pool.take("qg_child_hi", n_super)
        child_lo[:] = n_super + sstarts
        child_hi[:] = n_super + np.minimum(sstarts + fanout, n_groups)
        top = np.arange(n_super, dtype=np.int32)
    else:
        child_lo = child_hi = np.zeros(0, dtype=np.int64)
        top = np.arange(n_nodes, dtype=np.int32)

    ext = pool.take("qg_ext", n_nodes, dtype=np.float64)
    span = pool.take2d("qg_span", n_nodes)
    np.subtract(hi, lo, out=span)
    span.max(axis=1, out=ext)

    mask_min = None
    if mask is not None:
        mask_min = pool.take("qg_mask", n_nodes)
        np.minimum.reduceat(mask, gstarts, out=mask_min[n_super:])
        if n_super:
            mask_min[:n_super] = np.minimum.reduceat(mask_min[n_super:], sstarts)

    return QueryGroups(
        n_super=n_super,
        n_groups=n_groups,
        lo=lo,
        hi=hi,
        mem_lo=mem_lo,
        mem_hi=mem_hi,
        child_lo=child_lo,
        child_hi=child_hi,
        ext=ext,
        mask_min=mask_min,
        top=top,
    )
