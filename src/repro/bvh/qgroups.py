"""Query-side BVH for the dual-tree (query-aggregated) traversal.

The single-query wavefront carries one frontier row per ``(query, node)``
pair, so Morton-adjacent queries that visit nearly identical subtrees each
pay the same box tests again.  The dual engine instead aggregates the
chunk's Morton-sorted queries into a **query-side BVH** — the full dual
tree walk JZ-Tree uses, rather than the fixed two-level packing of the
early aggregated-traversal prototypes:

- the hierarchy is built by recursive **median bisection** of the
  Morton-sorted chunk (the same spatial-median machinery the points tree
  gets from its Morton codes), so every node covers a *contiguous* range
  of sorted chunk positions;
- leaf sizes are **density-adaptive**: splitting stops at
  ``group_size`` members, or earlier when a node's box is already *dense*
  (its longest edge at or below :data:`DENSE_LEAF_EXT_FRACTION` of the
  search radius) — a tight cluster becomes one large leaf whose single
  box test covers many queries, while sparse regions split down to small
  groups that stay prunable.  :data:`DENSE_LEAF_CAP_FACTOR` bounds how
  large a dense leaf may grow, keeping the per-member work at the leaf
  fringe linear.

Node ids live in one packed id space mirroring the internal-before-leaf
numbering of :class:`repro.bvh.tree.BVH`: internal nodes are
``0 .. n_inner-1`` (in creation = breadth-first order, so each level's
internal ids are contiguous), leaves are ``n_inner .. n_nodes-1``.  A
query node's box is the tight AABB of its member *points* (not
eps-inflated): testing ``mindist(node_box, tree_box) <= eps`` is the
exact Minkowski form of "the eps-inflated query AABB intersects the tree
box" under the L2 metric, and for a single-member leaf it degenerates to
exactly the per-query sphere/box test the single engine runs.

All output arrays are taken from the caller's scratch pool (duck-typed —
any object with the :class:`repro.bvh.traversal._FrontierPool` ``take``
methods), so the hierarchy's footprint is charged to the memory model
under the pool's tag and reused across chunks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default target queries per leaf.  32 mirrors a warp: the leaf is the
#: unit whose members share one box test, exactly as a warp's threads
#: share a cooperatively-tested node.
DEFAULT_GROUP_SIZE = 32

#: A *dense* leaf (box edge already tiny next to eps) may absorb up to
#: this many times ``group_size`` members before it is forced to split —
#: the density-adaptive upper bound on leaf size.
DENSE_LEAF_CAP_FACTOR = 8

#: A node counts as dense once its longest box edge is at or below this
#: fraction of the search radius: its members are nearly co-located at
#: the scale of the query, so one shared box test resolves almost every
#: member identically and further splitting only adds frontier entries.
DENSE_LEAF_EXT_FRACTION = 0.5


@dataclass
class QueryBVH:
    """Packed query-side BVH over one Morton-sorted chunk.

    Node ids: internal nodes are ``0 .. n_inner-1`` (breadth-first, so a
    construction level's internal ids are contiguous — see
    :attr:`levels`), leaves are ``n_inner .. n_nodes-1``.  The root is
    always node ``0``.

    Attributes
    ----------
    lo, hi:
        ``(n_nodes, d)`` tight member-point AABB per query node.
    mem_lo, mem_hi:
        ``(n_nodes,)`` member range ``[lo, hi)`` in *chunk positions* —
        contiguous by construction at every node (median bisection never
        reorders the chunk).
    child0, child1:
        ``(n_inner,)`` child node ids per internal node (binary tree).
    ext:
        ``(n_nodes,)`` longest box edge — the refinement heuristic
        compares it against the tree node's extent to decide which side
        of a frontier pair is looser.
    mask_min:
        ``(n_nodes,)`` minimum traversal-mask position over members (or
        ``None``): a subtree with ``range_hi <= mask_min`` is hidden from
        *every* member, so the whole query node skips it in one test.
    top:
        Seed node ids — always ``[0]`` (the root).
    levels:
        ``((lo, hi), ...)`` internal-id ranges per construction depth,
        root first.  Iterating them *reversed* visits children before
        parents, which is what lets per-node summaries (the traversal's
        uniform-component array) propagate bottom-up with one vectorised
        combine per level.
    leaf_order:
        ``(n_leaves,)`` leaf node ids ordered by ``mem_lo``.  Leaves tile
        the chunk, so ``mem_lo[leaf_order]`` is a valid ``reduceat``
        boundary list over per-member arrays — the hook the traversal
        uses to seed bottom-up summaries.
    """

    n_inner: int
    n_leaves: int
    lo: np.ndarray
    hi: np.ndarray
    mem_lo: np.ndarray
    mem_hi: np.ndarray
    child0: np.ndarray
    child1: np.ndarray
    ext: np.ndarray
    mask_min: np.ndarray | None
    top: np.ndarray
    levels: tuple
    leaf_order: np.ndarray

    @property
    def n_nodes(self) -> int:
        return self.n_inner + self.n_leaves


def build_query_bvh(
    points: np.ndarray,
    mask: np.ndarray | None,
    group_size: int,
    eps: float,
    pool,
) -> QueryBVH:
    """Build the query BVH over one chunk's Morton-sorted query points.

    ``points`` are the chunk's queries in schedule (Morton) order;
    ``mask`` the matching traversal-mask positions (or ``None``);
    ``eps`` feeds the density-adaptive leaf rule only (never results).
    The build is a pure function of its inputs — same chunk, same
    hierarchy.  Output arrays are views into ``pool`` slots (grown once,
    reused per chunk).
    """
    cn, _dim = points.shape
    group_size = max(1, int(group_size))
    dense_cap = group_size * DENSE_LEAF_CAP_FACTOR
    # group_size=1 means "degenerate to per-query traversal": the dense
    # rule is disabled so every leaf holds exactly one query.
    dense_ext = DENSE_LEAF_EXT_FRACTION * float(eps) if group_size > 1 else -1.0

    # Level-by-level construction over a *tiling* of [0, cn): every
    # segment is owned by a node (finalised leaves stay in the tiling so
    # one reduceat per level covers all active ranges).  Nodes are
    # recorded in creation order — level by level, within a level in
    # member order — so sibling pairs get adjacent creation ids.
    starts = np.zeros(1, dtype=np.int64)
    is_new = np.ones(1, dtype=bool)

    lo_l: list[np.ndarray] = []
    hi_l: list[np.ndarray] = []
    ext_l: list[np.ndarray] = []
    mlo_l: list[np.ndarray] = []
    mhi_l: list[np.ndarray] = []
    msk_l: list[np.ndarray] = []
    leaf_l: list[np.ndarray] = []
    fchild_l: list[np.ndarray] = []
    level_sizes: list[int] = []
    n_total = 0

    while True:
        ends = np.append(starts[1:], cn)
        seg_lo = np.minimum.reduceat(points, starts, axis=0)
        seg_hi = np.maximum.reduceat(points, starts, axis=0)
        seg_mask = (
            np.minimum.reduceat(mask, starts) if mask is not None else None
        )
        new = np.flatnonzero(is_new)
        n_lo = seg_lo[new]
        n_hi = seg_hi[new]
        n_ext = (n_hi - n_lo).max(axis=1)
        n_cnt = ends[new] - starts[new]
        leaf = (n_cnt <= group_size) | ((n_ext <= dense_ext) & (n_cnt <= dense_cap))

        lo_l.append(n_lo)
        hi_l.append(n_hi)
        ext_l.append(n_ext)
        mlo_l.append(starts[new].copy())
        mhi_l.append(ends[new].copy())
        if seg_mask is not None:
            msk_l.append(seg_mask[new])
        leaf_l.append(leaf)
        level_sizes.append(new.size)
        n_total += new.size

        split = ~leaf
        n_split = int(np.count_nonzero(split))
        fc = np.full(new.size, -1, dtype=np.int64)
        if n_split:
            # Children are the *next* level's new nodes, in member order:
            # a splitting node's two halves are adjacent there, so the
            # first child's creation id determines both.
            rank = np.cumsum(split) - 1
            fc[split] = n_total + 2 * rank[split]
        fchild_l.append(fc)
        if n_split == 0:
            break

        # Rebuild the tiling: splitting segments bisect at the member
        # median; every other segment (finalised or older leaf) stays.
        split_seg = np.zeros(starts.size, dtype=bool)
        split_seg[new[split]] = True
        reps = np.where(split_seg, 2, 1)
        pos_first = np.cumsum(reps) - reps
        sp = np.flatnonzero(split_seg)
        mid = starts[sp] + (ends[sp] - starts[sp]) // 2
        next_starts = np.repeat(starts, reps)
        next_starts[pos_first[sp] + 1] = mid
        next_new = np.zeros(next_starts.size, dtype=bool)
        next_new[pos_first[sp]] = True
        next_new[pos_first[sp] + 1] = True
        starts, is_new = next_starts, next_new

    # -- renumber creation order into the packed internal-before-leaf
    #    id space and materialise the pool-backed arrays ----------------
    c_leaf = np.concatenate(leaf_l)
    c_fc = np.concatenate(fchild_l)
    inner = ~c_leaf
    n_inner = int(np.count_nonzero(inner))
    n_leaves = n_total - n_inner
    perm = np.empty(n_total, dtype=np.int64)
    perm[inner] = np.cumsum(inner)[inner] - 1
    perm[c_leaf] = n_inner + np.cumsum(c_leaf)[c_leaf] - 1

    lo = pool.take2d("qg_lo", n_total)
    hi = pool.take2d("qg_hi", n_total)
    mem_lo = pool.take("qg_mem_lo", n_total)
    mem_hi = pool.take("qg_mem_hi", n_total)
    ext = pool.take("qg_ext", n_total, dtype=np.float64)
    lo[perm] = np.concatenate(lo_l, axis=0)
    hi[perm] = np.concatenate(hi_l, axis=0)
    mem_lo[perm] = np.concatenate(mlo_l)
    mem_hi[perm] = np.concatenate(mhi_l)
    ext[perm] = np.concatenate(ext_l)

    mask_min = None
    if mask is not None:
        mask_min = pool.take("qg_mask", n_total)
        mask_min[perm] = np.concatenate(msk_l)

    child0 = pool.take("qg_child0", n_inner, dtype=np.int32)
    child1 = pool.take("qg_child1", n_inner, dtype=np.int32)
    if n_inner:
        fc_inner = c_fc[inner]
        child0[:] = perm[fc_inner]
        child1[:] = perm[fc_inner + 1]

    # Internal-id ranges per construction level (creation order keeps a
    # level's internals contiguous after renumbering).
    levels = []
    done = 0
    seen = 0
    for size, lvl_leaf in zip(level_sizes, leaf_l):
        k = int(np.count_nonzero(~lvl_leaf))
        if k:
            levels.append((done, done + k))
        done += k
        seen += size

    # Leaves sorted by member start: a reduceat-ready tiling of the chunk.
    leaf_ids = perm[c_leaf]
    leaf_starts = np.concatenate(mlo_l)[c_leaf]
    order = np.argsort(leaf_starts, kind="stable")
    leaf_order = pool.take("qg_leaf_order", n_leaves, dtype=np.int32)
    leaf_order[:] = leaf_ids[order]

    top = np.zeros(1, dtype=np.int32)
    return QueryBVH(
        n_inner=n_inner,
        n_leaves=n_leaves,
        lo=lo,
        hi=hi,
        mem_lo=mem_lo,
        mem_hi=mem_hi,
        child0=child0,
        child1=child1,
        ext=ext,
        mask_min=mask_min,
        top=top,
        levels=tuple(levels),
        leaf_order=leaf_order,
    )
