"""The linear BVH container.

Node identifier convention (the classic Karras layout):

- internal nodes are ``0 .. n-2``; node ``0`` is the root;
- leaf ``p`` (the primitive at *sorted position* ``p``) is node
  ``(n - 1) + p``;
- with a single primitive there are no internal nodes and node ``0`` is
  the lone leaf — the same arithmetic still holds.

The tree stores, besides children/parents and the fitted boxes, each
node's *leaf range* ``[range_lo, range_hi]`` in sorted order.  The range is
a by-product of the Karras construction and is what makes the paper's
traversal mask (Section 4.1, Figure 1) a constant-time test: a subtree is
hidden from the query at sorted position ``p`` exactly when its
``range_hi <= p``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class BVH:
    """A built linear BVH over ``n_primitives`` boxes.

    Attributes
    ----------
    n_primitives:
        Number of leaves ``n``.
    node_lo, node_hi:
        ``(2 n - 1, d)`` fitted boxes for every node (internal + leaf),
        indexed by node id.
    left, right:
        ``(n - 1,)`` child node ids per internal node.
    parent:
        ``(2 n - 1,)`` parent node id per node; the root's parent is -1.
    node_range_lo, node_range_hi:
        ``(2 n - 1,)`` sorted-leaf-position range covered by each node
        (for a leaf, both equal its own position).
    order:
        ``(n,)`` primitive index (caller's numbering) at each sorted
        position: ``order[p]`` is the primitive stored in leaf ``p``.
    position:
        ``(n,)`` inverse of ``order``: sorted position of each primitive.
    codes:
        ``(n,)`` sorted Morton codes (kept for inspection/tests).
    levels:
        Internal-node ids grouped by depth (root first); produced by the
        builder's BFS and reused by the bottom-up refit.
    """

    n_primitives: int
    node_lo: np.ndarray
    node_hi: np.ndarray
    left: np.ndarray
    right: np.ndarray
    parent: np.ndarray
    node_range_lo: np.ndarray
    node_range_hi: np.ndarray
    order: np.ndarray
    position: np.ndarray
    codes: np.ndarray
    levels: list[np.ndarray]
    #: Parent-major traversal layout (see :meth:`packed_children`); built
    #: lazily and cached.
    _packed: tuple | None = field(default=None, repr=False, compare=False)

    @property
    def n_internal(self) -> int:
        """Number of internal nodes (= leaf-node id offset)."""
        return self.n_primitives - 1

    @property
    def root(self) -> int:
        """Node id of the root (0 in both the general and the n=1 case)."""
        return 0

    @property
    def dim(self) -> int:
        return self.node_lo.shape[1]

    def leaf_node_id(self, positions: np.ndarray) -> np.ndarray:
        """Node ids of the leaves at the given sorted positions."""
        return np.asarray(positions) + self.n_internal

    def packed_children(self) -> tuple:
        """Parent-major child layout for the wavefront traversal.

        Returns ``(child, child_lo, child_hi, child_range_hi)`` where
        ``child`` is ``(n_internal, 2)`` node ids and the box/range arrays
        hold both children's data contiguously per parent —
        ``child_lo[p, 0]`` is the left child's box, ``child_lo[p, 1]`` the
        right's.  One gather over parent ids then fetches everything a
        frontier step needs, instead of two gathers over a
        doubled-and-concatenated child list; this is the interleaved node
        layout GPU BVHs store for exactly this reason.  (lo and hi stay
        separate arrays so the downstream box tests run over contiguous
        memory — numpy's ufunc fast path.)  Ids and ranges are int32
        whenever they fit (they do until ~1e9 primitives), halving the
        index traffic like a real implementation would.

        The layout is derived from ``left``/``right``/``node_lo``/
        ``node_hi`` on first use and cached; anything that mutates the
        fitted boxes afterwards (an out-of-builder refit) must call
        :meth:`invalidate_packed`.
        """
        if self._packed is None:
            child = np.stack([self.left, self.right], axis=1)
            if 2 * self.n_primitives - 1 <= np.iinfo(np.int32).max:
                child = child.astype(np.int32)
            self._packed = (
                child,
                np.ascontiguousarray(self.node_lo[child]),
                np.ascontiguousarray(self.node_hi[child]),
                np.ascontiguousarray(self.node_range_hi[child].astype(child.dtype)),
            )
        return self._packed

    def invalidate_packed(self) -> None:
        """Drop the cached parent-major layout (after a box refit).

        Also drops the shared-memory publication stamp: the process
        backend keys its published copy of the tree's arrays on this
        attribute, and a refit means workers must receive fresh boxes
        (see :mod:`repro.device.backends`).
        """
        self._packed = None
        self._shm_stamp = None

    def nbytes(self) -> int:
        """Device footprint of the tree's arrays (incl. the packed
        traversal layout, materialised eagerly by the builder)."""
        total = 0
        for arr in (
            self.node_lo,
            self.node_hi,
            self.left,
            self.right,
            self.parent,
            self.node_range_lo,
            self.node_range_hi,
            self.order,
            self.position,
            self.codes,
        ):
            total += arr.nbytes
        if self._packed is not None:
            total += sum(arr.nbytes for arr in self._packed)
        return total

    def validate(self) -> None:
        """Structural sanity checks (used by tests; O(n))."""
        n = self.n_primitives
        if n == 0:
            raise ValueError("BVH with zero primitives")
        if n == 1:
            return
        seen = np.zeros(2 * n - 1, dtype=bool)
        seen[self.root] = True
        for arr in (self.left, self.right):
            if np.any(seen[arr]):
                raise AssertionError("node referenced as a child twice (cycle)")
            seen[arr] = True
        if not seen.all():
            raise AssertionError("unreachable node")
        # every parent's box must contain both children's boxes
        for child in (self.left, self.right):
            if np.any(self.node_lo[np.arange(n - 1)] > self.node_lo[child] + 1e-12):
                raise AssertionError("parent box does not contain child (lo)")
            if np.any(self.node_hi[np.arange(n - 1)] < self.node_hi[child] - 1e-12):
                raise AssertionError("parent box does not contain child (hi)")
