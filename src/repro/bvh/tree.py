"""The linear BVH container.

Node identifier convention (the classic Karras layout):

- internal nodes are ``0 .. n-2``; node ``0`` is the root;
- leaf ``p`` (the primitive at *sorted position* ``p``) is node
  ``(n - 1) + p``;
- with a single primitive there are no internal nodes and node ``0`` is
  the lone leaf — the same arithmetic still holds.

The tree stores, besides children/parents and the fitted boxes, each
node's *leaf range* ``[range_lo, range_hi]`` in sorted order.  The range is
a by-product of the Karras construction and is what makes the paper's
traversal mask (Section 4.1, Figure 1) a constant-time test: a subtree is
hidden from the query at sorted position ``p`` exactly when its
``range_hi <= p``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BVH:
    """A built linear BVH over ``n_primitives`` boxes.

    Attributes
    ----------
    n_primitives:
        Number of leaves ``n``.
    node_lo, node_hi:
        ``(2 n - 1, d)`` fitted boxes for every node (internal + leaf),
        indexed by node id.
    left, right:
        ``(n - 1,)`` child node ids per internal node.
    parent:
        ``(2 n - 1,)`` parent node id per node; the root's parent is -1.
    node_range_lo, node_range_hi:
        ``(2 n - 1,)`` sorted-leaf-position range covered by each node
        (for a leaf, both equal its own position).
    order:
        ``(n,)`` primitive index (caller's numbering) at each sorted
        position: ``order[p]`` is the primitive stored in leaf ``p``.
    position:
        ``(n,)`` inverse of ``order``: sorted position of each primitive.
    codes:
        ``(n,)`` sorted Morton codes (kept for inspection/tests).
    levels:
        Internal-node ids grouped by depth (root first); produced by the
        builder's BFS and reused by the bottom-up refit.
    """

    n_primitives: int
    node_lo: np.ndarray
    node_hi: np.ndarray
    left: np.ndarray
    right: np.ndarray
    parent: np.ndarray
    node_range_lo: np.ndarray
    node_range_hi: np.ndarray
    order: np.ndarray
    position: np.ndarray
    codes: np.ndarray
    levels: list[np.ndarray]

    @property
    def n_internal(self) -> int:
        """Number of internal nodes (= leaf-node id offset)."""
        return self.n_primitives - 1

    @property
    def root(self) -> int:
        """Node id of the root (0 in both the general and the n=1 case)."""
        return 0

    @property
    def dim(self) -> int:
        return self.node_lo.shape[1]

    def leaf_node_id(self, positions: np.ndarray) -> np.ndarray:
        """Node ids of the leaves at the given sorted positions."""
        return np.asarray(positions) + self.n_internal

    def nbytes(self) -> int:
        """Device footprint of the tree's arrays."""
        total = 0
        for arr in (
            self.node_lo,
            self.node_hi,
            self.left,
            self.right,
            self.parent,
            self.node_range_lo,
            self.node_range_hi,
            self.order,
            self.position,
            self.codes,
        ):
            total += arr.nbytes
        return total

    def validate(self) -> None:
        """Structural sanity checks (used by tests; O(n))."""
        n = self.n_primitives
        if n == 0:
            raise ValueError("BVH with zero primitives")
        if n == 1:
            return
        seen = np.zeros(2 * n - 1, dtype=bool)
        seen[self.root] = True
        for arr in (self.left, self.right):
            if np.any(seen[arr]):
                raise AssertionError("node referenced as a child twice (cycle)")
            seen[arr] = True
        if not seen.all():
            raise AssertionError("unreachable node")
        # every parent's box must contain both children's boxes
        for child in (self.left, self.right):
            if np.any(self.node_lo[np.arange(n - 1)] > self.node_lo[child] + 1e-12):
                raise AssertionError("parent box does not contain child (lo)")
            if np.any(self.node_hi[np.arange(n - 1)] < self.node_hi[child] - 1e-12):
                raise AssertionError("parent box does not contain child (hi)")
