"""Batched wavefront traversal: the paper's "batched mode" neighbour search.

A GPU DBSCAN thread per query walking the tree asynchronously suffers the
execution/data divergence the paper sets out to avoid (Section 3.2).  The
reproduction therefore advances *all* queries through the hierarchy in
lockstep: the traversal state is a frontier of ``(query, node)`` pairs, and
each step expands every pair simultaneously with pure array operations.
This is the wavefront formulation of batched BVH traversal — the
data-parallel schedule a GPU executes, with the frontier playing the role
of the warps' collective stack.

Three properties of the paper's algorithms map directly onto arguments:

- **early termination** (Section 3.2, preprocessing): a ``finished_fn``
  filter drops a query's frontier entries as soon as it has seen
  ``minpts`` neighbours, so "searching for any more neighbors after that"
  never happens;
- **fused, on-the-fly processing** (Section 3.2, main phase): leaf hits
  are streamed to a callback in per-step batches and then discarded —
  no neighbour list is ever materialised, keeping memory linear in ``n``
  plus the transient frontier (whose peak is recorded);
- **the leaf-index mask** (Section 4.1, Figure 1): with
  ``mask_positions[q] = p``, every subtree whose sorted-leaf range lies at
  or below ``p`` is hidden from query ``q``, so only neighbours at sorted
  positions ``> p`` are reported and each pair is processed exactly once.

Two scheduling levers shape the constant factors without changing any
result:

- the **frontier pool**: all per-step arrays (the double-buffered
  frontier, compacted hit/parent views, gathered boxes, predicates) live
  in one grow-only scratch pool reused across steps and chunks, so the
  hot loop performs no per-step ``concatenate``/fancy-index allocation.
  The pool's high-water mark is charged to the memory model as a single
  transient ``"frontier"`` allocation — the faithful analogue of a GPU's
  preallocated traversal workspace;
- **Morton query ordering** (``query_order="morton"``): queries are
  chunked in Z-curve order instead of input order, so each wavefront
  holds spatially coherent queries whose frontiers overlap — the locality
  lever ArborX pulls by sorting queries along the space-filling curve.
  The hit stream per query is unchanged (only the chunk membership
  moves), so every derived result is identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bvh.tree import BVH
from repro.bvh.morton import morton_codes
from repro.device.device import Device, default_device
from repro.device.primitives import scatter_add

LeafCallback = Callable[[np.ndarray, np.ndarray], None]

#: Accepted values for ``query_order``.
QUERY_ORDERS = ("input", "morton")


@dataclass
class TraversalResult:
    """Summary of one batched traversal.

    Attributes
    ----------
    steps:
        Wavefront steps executed (the batched analogue of the longest
        per-thread traversal).
    leaf_hits:
        Total ``(query, leaf)`` pairs delivered to the callback.
    frontier_peak:
        Largest frontier (pairs) held at any step.
    """

    steps: int = 0
    leaf_hits: int = 0
    frontier_peak: int = 0


#: Default number of queries advanced per wavefront (the analogue of the
#: resident-thread limit on a GPU: a V100 runs ~163k threads concurrently;
#: queries beyond the chunk wait for a free "slot").  Bounding the chunk
#: bounds the frontier, keeping transient memory proportional to the chunk's
#: neighbourhood mass rather than the whole dataset's.
DEFAULT_CHUNK_SIZE = 8192


class _FrontierPool:
    """Grow-only scratch pool backing the wavefront frontier.

    Every per-step array the traversal needs — the frontier double buffer,
    the compacted hit/parent views, the gathered query/box coordinates and
    the boolean predicates — is a named slot here.  A slot grows to
    exactly the largest size ever requested (no geometric slack), is never
    shrunk, and is reused across steps and chunks, so after the first few
    steps the hot loop allocates nothing.

    Memory accounting: each growth is charged as a transient ``"frontier"``
    allocation and the whole pool is freed once at the end of the
    traversal, so ``peak_by_tag["frontier"]`` reports the pool's
    high-water mark — monotone in ``chunk_size``, because a larger chunk's
    frontier is the union of its sub-chunks' frontiers at every step.
    """

    def __init__(self, device: Device, dim: int):
        self._dev = device
        self._dim = dim
        self._arrays: dict[str, np.ndarray] = {}
        self.nbytes = 0

    def _grow(self, name: str, shape: tuple, dtype) -> np.ndarray:
        arr = self._arrays.get(name)
        if arr is None or arr.shape[0] < shape[0]:
            old_nbytes = 0 if arr is None else arr.nbytes
            arr = np.empty(shape, dtype=dtype)
            self._arrays[name] = arr
            delta = arr.nbytes - old_nbytes
            self.nbytes += delta
            self._dev.memory.allocate(delta, "frontier", transient=True)
        return arr

    def take(self, name: str, size: int, dtype=np.int64) -> np.ndarray:
        """A ``(size,)`` view of the named slot (grown if needed).

        Growing a slot discards its previous contents; callers must have
        consumed a slot's data before re-taking it with a larger size.
        """
        return self._grow(name, (size,), dtype)[:size]

    def take2(self, name: str, size: int, dtype=np.int64) -> np.ndarray:
        """A ``(size, 2)`` view of the named slot (one row per parent)."""
        return self._grow(name, (size, 2), dtype)[:size]

    def take2d(self, name: str, size: int) -> np.ndarray:
        """A ``(size, dim)`` float64 view of the named slot."""
        return self._grow(name, (size, self._dim), np.float64)[:size]

    def take_boxes(self, name: str, size: int) -> np.ndarray:
        """A ``(size, 2, dim)`` float64 view (both children's boxes)."""
        return self._grow(name, (size, 2, self._dim), np.float64)[:size]

    def release(self) -> None:
        """Return the pool's footprint to the memory ledger."""
        if self.nbytes:
            self._dev.memory.free(self.nbytes, "frontier")
            self.nbytes = 0


def query_schedule(queries: np.ndarray, query_order: str) -> np.ndarray | None:
    """The chunking permutation for ``query_order`` (``None`` = input order).

    ``"morton"`` sorts queries along the Z-curve (stable, so ties keep
    input order) and is a pure *scheduling* choice: the traversal stores
    absolute query ids in the frontier, so callbacks, masks and early-exit
    checks see the same ids either way and every per-query result is
    bit-identical.
    """
    if query_order not in QUERY_ORDERS:
        raise ValueError(
            f"query_order must be one of {QUERY_ORDERS}; got {query_order!r}"
        )
    if query_order != "morton" or np.asarray(queries).shape[0] < 2:
        return None
    return np.argsort(morton_codes(queries), kind="stable").astype(np.int64)


def for_each_leaf_hit(
    tree: BVH,
    queries: np.ndarray,
    eps: float,
    callback: LeafCallback,
    mask_positions: np.ndarray | None = None,
    finished_fn: Callable[[np.ndarray], np.ndarray] | None = None,
    device: Device | None = None,
    kernel_name: str = "bvh_traverse",
    leaf_test_is_distance: bool = True,
    chunk_size: int | None = DEFAULT_CHUNK_SIZE,
    query_order: str = "input",
) -> TraversalResult:
    """Stream every ``(query, leaf)`` pair within ``eps`` to ``callback``.

    Parameters
    ----------
    tree:
        A built :class:`~repro.bvh.tree.BVH`.
    queries:
        ``(m, d)`` query centres; each is searched with radius ``eps``.
    eps:
        Search radius; a leaf is *hit* when the minimum distance from the
        query to the leaf's box is ``<= eps``.  For degenerate (point)
        leaves this is the exact point-distance predicate.
    callback:
        ``callback(query_ids, leaf_positions)`` invoked once per wavefront
        step with the step's hits.  ``leaf_positions`` are *sorted* leaf
        positions; map through ``tree.order`` for the caller's primitive
        ids.  The arrays are pool-backed views, only valid for the
        duration of the call.
    mask_positions:
        Optional ``(m,)`` int array; query ``q`` only sees leaves at sorted
        positions strictly greater than ``mask_positions[q]`` (the paper's
        traversal mask).  Pass ``-1`` entries for unmasked queries.
    finished_fn:
        Optional early-termination hook, called every step with the
        frontier's *query ids* (one entry per expanding parent pair — both
        children share the verdict) and returning a boolean array of the
        same length; ``True`` entries stop traversing.  The check is
        restricted to the ids actually on the frontier — never the full
        ``(m,)`` query set.  The returned array must be freshly allocated
        (the traversal negates it in place).
    device:
        Accounting device.
    leaf_test_is_distance:
        Count leaf box tests as ``distance_evals`` (true for point leaves,
        where the box test *is* the distance computation); internal box
        tests always land in the ``box_tests`` counter.
    chunk_size:
        Queries advanced per wavefront (``None`` = all at once).  Models
        the device's resident-thread limit and bounds the transient
        frontier memory; results are identical for any chunking.
    query_order:
        ``"input"`` (default) chunks queries in input order; ``"morton"``
        chunks them in Z-curve order for spatial coherence.  Results are
        identical either way — only the wavefront composition changes.

    Returns
    -------
    :class:`TraversalResult`
    """
    dev = default_device(device)
    queries = np.ascontiguousarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[1] != tree.dim:
        raise ValueError(
            f"queries must be (m, {tree.dim}); got shape {queries.shape}"
        )
    if eps < 0 or not np.isfinite(eps):
        raise ValueError(f"eps must be finite and non-negative; got {eps}")
    m = queries.shape[0]
    eps2 = float(eps) * float(eps)
    n_int = tree.n_internal
    result = TraversalResult()
    if m == 0:
        return result
    if mask_positions is not None:
        mask_positions = np.asarray(mask_positions, dtype=np.int64)
    schedule = query_schedule(queries, query_order)
    if chunk_size is None or chunk_size <= 0:
        chunk_size = m

    ch_ids, ch_lo, ch_hi, ch_rng_hi = tree.packed_children()
    # Narrow index dtypes wherever they fit — real traversal kernels carry
    # 32-bit node/query ids, and on a bandwidth-bound wavefront halving the
    # index traffic is a direct win.  Purely a storage choice: every id is
    # exact in either width.
    ndt = ch_ids.dtype
    qdt = np.int32 if m <= np.iinfo(np.int32).max else np.int64
    if schedule is not None:
        schedule = schedule.astype(qdt, copy=False)
    pool = _FrontierPool(dev, tree.dim)
    try:
        with dev.kernel(kernel_name, threads=m) as launch:
            for chunk_start in range(0, m, chunk_size):
                chunk_end = min(chunk_start + chunk_size, m)
                if schedule is not None:
                    chunk_ids = schedule[chunk_start:chunk_end]
                else:
                    chunk_ids = np.arange(chunk_start, chunk_end, dtype=qdt)
                # Seed the frontier with the root, testing it like any other
                # node (also prunes queries entirely outside the scene).
                root_lo = tree.node_lo[tree.root]
                root_hi = tree.node_hi[tree.root]
                clamped = np.clip(queries[chunk_ids], root_lo, root_hi)
                diff = queries[chunk_ids] - clamped
                ok = np.einsum("nd,nd->n", diff, diff) <= eps2
                if mask_positions is not None:
                    ok &= tree.node_range_hi[tree.root] > mask_positions[chunk_ids]
                if finished_fn is not None:
                    ok &= ~finished_fn(chunk_ids)
                size = int(np.count_nonzero(ok))
                fr_q = pool.take("fr_q", size, dtype=qdt)
                np.compress(ok, chunk_ids, out=fr_q)
                fr_n = pool.take("fr_n", size, dtype=ndt)
                fr_n.fill(tree.root)

                while size:
                    result.steps += 1
                    result.frontier_peak = max(result.frontier_peak, size)
                    dev.counters.add("nodes_visited", size)
                    dev.counters.observe_peak("frontier_peak", size)

                    # -- split the frontier into leaf hits and parents ------
                    leaf = pool.take("leaf", size, dtype=bool)
                    np.greater_equal(fr_n, n_int, out=leaf)
                    n_hits = int(np.count_nonzero(leaf))
                    n_par = size - n_hits
                    if n_hits:
                        hit_q = pool.take("hit_q", n_hits, dtype=qdt)
                        hit_pos = pool.take("hit_pos", n_hits, dtype=ndt)
                        np.compress(leaf, fr_q, out=hit_q)
                        np.compress(leaf, fr_n, out=hit_pos)
                        hit_pos -= n_int
                        result.leaf_hits += n_hits
                        callback(hit_q, hit_pos)
                    if n_par == 0:
                        break
                    np.logical_not(leaf, out=leaf)
                    par_q = pool.take("par_q", n_par, dtype=qdt)
                    par_n = pool.take("par_n", n_par, dtype=ndt)
                    np.compress(leaf, fr_q, out=par_q)
                    np.compress(leaf, fr_n, out=par_n)

                    # -- expand parents, parent-major: one gather over
                    # par_n fetches both children's ids, boxes and ranges
                    # (the interleaved layout from tree.packed_children) --
                    two_k = 2 * n_par
                    ex_q = pool.take2("ex_q", n_par, dtype=qdt)
                    ex_n = pool.take2("ex_n", n_par, dtype=ndt)
                    ex_q[:] = par_q[:, None]
                    np.take(ch_ids, par_n, axis=0, out=ex_n)

                    # -- test the children against the search sphere --------
                    g_pts = pool.take2d("g_pts", n_par)
                    g_lo = pool.take_boxes("g_lo", n_par)
                    g_hi = pool.take_boxes("g_hi", n_par)
                    np.take(queries, par_q, axis=0, out=g_pts)
                    np.take(ch_lo, par_n, axis=0, out=g_lo)
                    np.take(ch_hi, par_n, axis=0, out=g_hi)
                    d2 = pool.take2("d2", n_par, dtype=np.float64)
                    pts = g_pts[:, None, :]
                    np.clip(pts, g_lo, g_hi, out=g_lo)
                    np.subtract(pts, g_lo, out=g_lo)
                    np.einsum("nkd,nkd->nk", g_lo, g_lo, out=d2)

                    keep = pool.take2("keep", n_par, dtype=bool)
                    np.greater_equal(ex_n, n_int, out=keep)
                    n_leaf_tests = int(np.count_nonzero(keep))
                    if leaf_test_is_distance:
                        dev.counters.add("distance_evals", n_leaf_tests)
                        dev.counters.add("box_tests", two_k - n_leaf_tests)
                    else:
                        dev.counters.add("box_tests", two_k)
                    np.less_equal(d2, eps2, out=keep)
                    if mask_positions is not None:
                        rng_hi = pool.take2("rng_hi", n_par, dtype=ndt)
                        q_mask = pool.take("q_mask", n_par)
                        np.take(ch_rng_hi, par_n, axis=0, out=rng_hi)
                        np.take(mask_positions, par_q, out=q_mask)
                        visible = pool.take2("visible", n_par, dtype=bool)
                        np.greater(rng_hi, q_mask[:, None], out=visible)
                        keep &= visible
                    if finished_fn is not None:
                        fin = finished_fn(par_q)
                        np.logical_not(fin, out=fin)
                        keep &= fin[:, None]

                    # -- compact the survivors back into the frontier -------
                    size = int(np.count_nonzero(keep))
                    fr_q = pool.take("fr_q", size, dtype=qdt)
                    fr_n = pool.take("fr_n", size, dtype=ndt)
                    flat = keep.reshape(two_k)
                    np.compress(flat, ex_q.reshape(two_k), out=fr_q)
                    np.compress(flat, ex_n.reshape(two_k), out=fr_n)
            launch.steps = result.steps
    finally:
        pool.release()
    return result


def count_within(
    tree: BVH,
    queries: np.ndarray,
    eps: float,
    stop_at: float | None = None,
    mask_positions: np.ndarray | None = None,
    device: Device | None = None,
    chunk_size: int | None = DEFAULT_CHUNK_SIZE,
    leaf_weights: np.ndarray | None = None,
    query_order: str = "input",
) -> np.ndarray:
    """Count leaves within ``eps`` of each query (point-leaf trees).

    With ``stop_at`` set, a query's traversal terminates early once its
    count reaches ``stop_at`` — the paper's core-point determination
    shortcut (Section 3.2).  The early-exit contract, for unweighted and
    weighted counts alike:

    - a returned count ``< stop_at`` is **exact** — the query's traversal
      ran to completion;
    - a returned count ``>= stop_at`` means **at least this many**: the
      query stopped as soon as its running total reached ``stop_at``, so
      the value is a lower bound whose exact magnitude depends on
      traversal order.  Reaching ``stop_at`` exactly terminates too
      (``counts >= stop_at``, not ``>``) — a weighted query whose
      neighbourhood weights sum to exactly ``stop_at`` still short-cuts,
      and the threshold test ``counts >= stop_at`` downstream is
      unaffected.

    The early-exit check is evaluated per step against the *frontier's*
    query ids only — an O(frontier) gather, not an O(m) recompute — and a
    query's per-step hit batches depend only on its own tree path, so the
    returned counts are identical for every ``chunk_size`` and
    ``query_order``.

    ``stop_at`` may be fractional when ``leaf_weights`` is given (weights
    are arbitrary positive floats, so any finite threshold is meaningful);
    it must be positive and finite either way.

    ``leaf_weights`` (indexed by *sorted leaf position*) turns the count
    into a weighted sum — the weighted-density generalisation where each
    primitive contributes its sample weight instead of 1.

    Returns the ``(m,)`` count array (int64, or float64 when weighted).
    A query point that is itself a primitive of the tree counts itself
    (distance 0).
    """
    dev = default_device(device)
    m = np.asarray(queries).shape[0]
    if leaf_weights is None:
        counts = np.zeros(m, dtype=np.int64)

        def on_hits(q_ids: np.ndarray, _pos: np.ndarray) -> None:
            scatter_add(counts, q_ids, counters=dev.counters)

    else:
        leaf_weights = np.asarray(leaf_weights, dtype=np.float64)
        if leaf_weights.shape != (tree.n_primitives,):
            raise ValueError(
                f"leaf_weights must be ({tree.n_primitives},); got {leaf_weights.shape}"
            )
        counts = np.zeros(m, dtype=np.float64)

        def on_hits(q_ids: np.ndarray, pos: np.ndarray) -> None:
            scatter_add(counts, q_ids, leaf_weights[pos], counters=dev.counters)

    finished_fn = None
    if stop_at is not None:
        if not np.isfinite(stop_at) or stop_at <= 0:
            raise ValueError(f"stop_at must be positive and finite; got {stop_at}")

        def finished_fn(ids: np.ndarray) -> np.ndarray:
            return counts[ids] >= stop_at

    for_each_leaf_hit(
        tree,
        queries,
        eps,
        on_hits,
        mask_positions=mask_positions,
        finished_fn=finished_fn,
        device=dev,
        kernel_name="bvh_count",
        chunk_size=chunk_size,
        query_order=query_order,
    )
    return counts
