"""Batched wavefront traversal: the paper's "batched mode" neighbour search.

A GPU DBSCAN thread per query walking the tree asynchronously suffers the
execution/data divergence the paper sets out to avoid (Section 3.2).  The
reproduction therefore advances *all* queries through the hierarchy in
lockstep: the traversal state is a frontier of ``(query, node)`` pairs, and
each step expands every pair simultaneously with pure array operations.
This is the wavefront formulation of batched BVH traversal — the
data-parallel schedule a GPU executes, with the frontier playing the role
of the warps' collective stack.

Three properties of the paper's algorithms map directly onto arguments:

- **early termination** (Section 3.2, preprocessing): a ``finished_fn``
  filter drops a query's frontier entries as soon as it has seen
  ``minpts`` neighbours, so "searching for any more neighbors after that"
  never happens;
- **fused, on-the-fly processing** (Section 3.2, main phase): leaf hits
  are streamed to a callback in per-step batches and then discarded —
  no neighbour list is ever materialised, keeping memory linear in ``n``
  plus the transient frontier (whose peak is recorded);
- **the leaf-index mask** (Section 4.1, Figure 1): with
  ``mask_positions[q] = p``, every subtree whose sorted-leaf range lies at
  or below ``p`` is hidden from query ``q``, so only neighbours at sorted
  positions ``> p`` are reported and each pair is processed exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bvh.aabb import mindist_point_box_sq
from repro.bvh.tree import BVH
from repro.device.device import Device, default_device

LeafCallback = Callable[[np.ndarray, np.ndarray], None]


@dataclass
class TraversalResult:
    """Summary of one batched traversal.

    Attributes
    ----------
    steps:
        Wavefront steps executed (the batched analogue of the longest
        per-thread traversal).
    leaf_hits:
        Total ``(query, leaf)`` pairs delivered to the callback.
    frontier_peak:
        Largest frontier (pairs) held at any step.
    """

    steps: int = 0
    leaf_hits: int = 0
    frontier_peak: int = 0


#: Default number of queries advanced per wavefront (the analogue of the
#: resident-thread limit on a GPU: a V100 runs ~163k threads concurrently;
#: queries beyond the chunk wait for a free "slot").  Bounding the chunk
#: bounds the frontier, keeping transient memory proportional to the chunk's
#: neighbourhood mass rather than the whole dataset's.
DEFAULT_CHUNK_SIZE = 8192


def for_each_leaf_hit(
    tree: BVH,
    queries: np.ndarray,
    eps: float,
    callback: LeafCallback,
    mask_positions: np.ndarray | None = None,
    finished_fn: Callable[[], np.ndarray] | None = None,
    device: Device | None = None,
    kernel_name: str = "bvh_traverse",
    leaf_test_is_distance: bool = True,
    chunk_size: int | None = DEFAULT_CHUNK_SIZE,
) -> TraversalResult:
    """Stream every ``(query, leaf)`` pair within ``eps`` to ``callback``.

    Parameters
    ----------
    tree:
        A built :class:`~repro.bvh.tree.BVH`.
    queries:
        ``(m, d)`` query centres; each is searched with radius ``eps``.
    eps:
        Search radius; a leaf is *hit* when the minimum distance from the
        query to the leaf's box is ``<= eps``.  For degenerate (point)
        leaves this is the exact point-distance predicate.
    callback:
        ``callback(query_ids, leaf_positions)`` invoked once per wavefront
        step with the step's hits.  ``leaf_positions`` are *sorted* leaf
        positions; map through ``tree.order`` for the caller's primitive
        ids.  The arrays are only valid for the duration of the call.
    mask_positions:
        Optional ``(m,)`` int array; query ``q`` only sees leaves at sorted
        positions strictly greater than ``mask_positions[q]`` (the paper's
        traversal mask).  Pass ``-1`` entries for unmasked queries.
    finished_fn:
        Optional nullary callable returning an ``(m,)`` boolean array;
        queries marked ``True`` stop traversing (checked every step —
        the early-termination hook).
    device:
        Accounting device.
    leaf_test_is_distance:
        Count leaf box tests as ``distance_evals`` (true for point leaves,
        where the box test *is* the distance computation); internal box
        tests always land in the ``box_tests`` counter.
    chunk_size:
        Queries advanced per wavefront (``None`` = all at once).  Models
        the device's resident-thread limit and bounds the transient
        frontier memory; results are identical for any chunking.

    Returns
    -------
    :class:`TraversalResult`
    """
    dev = default_device(device)
    queries = np.ascontiguousarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[1] != tree.dim:
        raise ValueError(
            f"queries must be (m, {tree.dim}); got shape {queries.shape}"
        )
    if eps < 0 or not np.isfinite(eps):
        raise ValueError(f"eps must be finite and non-negative; got {eps}")
    m = queries.shape[0]
    eps2 = float(eps) * float(eps)
    n_int = tree.n_internal
    result = TraversalResult()
    if m == 0:
        return result
    if mask_positions is not None:
        mask_positions = np.asarray(mask_positions, dtype=np.int64)
    if chunk_size is None or chunk_size <= 0:
        chunk_size = m

    with dev.kernel(kernel_name, threads=m) as launch:
        for chunk_start in range(0, m, chunk_size):
            chunk_ids = np.arange(
                chunk_start, min(chunk_start + chunk_size, m), dtype=np.int64
            )
            # Seed the frontier with the root, testing it like any other
            # node (also prunes queries entirely outside the scene).
            root_lo = tree.node_lo[tree.root][None, :]
            root_hi = tree.node_hi[tree.root][None, :]
            ok = mindist_point_box_sq(queries[chunk_ids], root_lo, root_hi) <= eps2
            if mask_positions is not None:
                ok &= tree.node_range_hi[tree.root] > mask_positions[chunk_ids]
            if finished_fn is not None:
                ok &= ~finished_fn()[chunk_ids]
            frontier_q = chunk_ids[ok]
            frontier_n = np.full(frontier_q.shape[0], tree.root, dtype=np.int64)

            while frontier_q.size:
                result.steps += 1
                size = frontier_q.size
                result.frontier_peak = max(result.frontier_peak, size)
                dev.counters.add("nodes_visited", size)
                dev.counters.observe_peak("frontier_peak", size)
                scratch = frontier_q.nbytes + frontier_n.nbytes
                dev.memory.allocate(scratch, "frontier", transient=True)
                dev.memory.free(scratch, "frontier")

                is_leaf = frontier_n >= n_int
                if is_leaf.any():
                    hit_q = frontier_q[is_leaf]
                    hit_pos = frontier_n[is_leaf] - n_int
                    result.leaf_hits += hit_q.size
                    callback(hit_q, hit_pos)

                parent_q = frontier_q[~is_leaf]
                parents = frontier_n[~is_leaf]
                if parents.size == 0:
                    break

                children = np.concatenate([tree.left[parents], tree.right[parents]])
                child_q = np.concatenate([parent_q, parent_q])
                d2 = mindist_point_box_sq(
                    queries[child_q], tree.node_lo[children], tree.node_hi[children]
                )
                child_is_leaf = children >= n_int
                n_leaf_tests = int(child_is_leaf.sum())
                if leaf_test_is_distance:
                    dev.counters.add("distance_evals", n_leaf_tests)
                    dev.counters.add("box_tests", children.size - n_leaf_tests)
                else:
                    dev.counters.add("box_tests", children.size)
                ok = d2 <= eps2
                if mask_positions is not None:
                    ok &= tree.node_range_hi[children] > mask_positions[child_q]
                if finished_fn is not None:
                    ok &= ~finished_fn()[child_q]
                frontier_q = child_q[ok]
                frontier_n = children[ok]
        launch.steps = result.steps
    return result


def count_within(
    tree: BVH,
    queries: np.ndarray,
    eps: float,
    stop_at: float | None = None,
    mask_positions: np.ndarray | None = None,
    device: Device | None = None,
    chunk_size: int | None = DEFAULT_CHUNK_SIZE,
    leaf_weights: np.ndarray | None = None,
) -> np.ndarray:
    """Count leaves within ``eps`` of each query (point-leaf trees).

    With ``stop_at`` set, a query's traversal terminates early once its
    count reaches ``stop_at`` — the paper's core-point determination
    shortcut (Section 3.2).  The early-exit contract, for unweighted and
    weighted counts alike:

    - a returned count ``< stop_at`` is **exact** — the query's traversal
      ran to completion;
    - a returned count ``>= stop_at`` means **at least this many**: the
      query stopped as soon as its running total reached ``stop_at``, so
      the value is a lower bound whose exact magnitude depends on
      traversal order.  Reaching ``stop_at`` exactly terminates too
      (``counts >= stop_at``, not ``>``) — a weighted query whose
      neighbourhood weights sum to exactly ``stop_at`` still short-cuts,
      and the threshold test ``counts >= stop_at`` downstream is
      unaffected.

    ``stop_at`` may be fractional when ``leaf_weights`` is given (weights
    are arbitrary positive floats, so any finite threshold is meaningful);
    it must be positive and finite either way.

    ``leaf_weights`` (indexed by *sorted leaf position*) turns the count
    into a weighted sum — the weighted-density generalisation where each
    primitive contributes its sample weight instead of 1.

    Returns the ``(m,)`` count array (int64, or float64 when weighted).
    A query point that is itself a primitive of the tree counts itself
    (distance 0).
    """
    m = np.asarray(queries).shape[0]
    if leaf_weights is None:
        counts = np.zeros(m, dtype=np.int64)

        def on_hits(q_ids: np.ndarray, _pos: np.ndarray) -> None:
            np.add.at(counts, q_ids, 1)

    else:
        leaf_weights = np.asarray(leaf_weights, dtype=np.float64)
        if leaf_weights.shape != (tree.n_primitives,):
            raise ValueError(
                f"leaf_weights must be ({tree.n_primitives},); got {leaf_weights.shape}"
            )
        counts = np.zeros(m, dtype=np.float64)

        def on_hits(q_ids: np.ndarray, pos: np.ndarray) -> None:
            np.add.at(counts, q_ids, leaf_weights[pos])

    finished_fn = None
    if stop_at is not None:
        if not np.isfinite(stop_at) or stop_at <= 0:
            raise ValueError(f"stop_at must be positive and finite; got {stop_at}")

        def finished_fn() -> np.ndarray:
            return counts >= stop_at

    for_each_leaf_hit(
        tree,
        queries,
        eps,
        on_hits,
        mask_positions=mask_positions,
        finished_fn=finished_fn,
        device=device,
        kernel_name="bvh_count",
        chunk_size=chunk_size,
    )
    return counts
