"""Batched wavefront traversal: the paper's "batched mode" neighbour search.

A GPU DBSCAN thread per query walking the tree asynchronously suffers the
execution/data divergence the paper sets out to avoid (Section 3.2).  The
reproduction therefore advances *all* queries through the hierarchy in
lockstep: the traversal state is a frontier of ``(query, node)`` pairs, and
each step expands every pair simultaneously with pure array operations.
This is the wavefront formulation of batched BVH traversal — the
data-parallel schedule a GPU executes, with the frontier playing the role
of the warps' collective stack.

Three properties of the paper's algorithms map directly onto arguments:

- **early termination** (Section 3.2, preprocessing): a ``finished_fn``
  filter drops a query's frontier entries as soon as it has seen
  ``minpts`` neighbours, so "searching for any more neighbors after that"
  never happens;
- **fused, on-the-fly processing** (Section 3.2, main phase): leaf hits
  are streamed to a callback in per-step batches and then discarded —
  no neighbour list is ever materialised, keeping memory linear in ``n``
  plus the transient frontier (whose peak is recorded);
- **the leaf-index mask** (Section 4.1, Figure 1): with
  ``mask_positions[q] = p``, every subtree whose sorted-leaf range lies at
  or below ``p`` is hidden from query ``q``, so only neighbours at sorted
  positions ``> p`` are reported and each pair is processed exactly once.

Two scheduling levers shape the constant factors without changing any
result:

- the **frontier pool**: all per-step arrays (the double-buffered
  frontier, compacted hit/parent views, gathered boxes, predicates) live
  in one grow-only scratch pool reused across steps and chunks, so the
  hot loop performs no per-step ``concatenate``/fancy-index allocation.
  The pool's high-water mark is charged to the memory model as a single
  transient ``"frontier"`` allocation — the faithful analogue of a GPU's
  preallocated traversal workspace;
- **Morton query ordering** (``query_order="morton"``): queries are
  chunked in Z-curve order instead of input order, so each wavefront
  holds spatially coherent queries whose frontiers overlap — the locality
  lever ArborX pulls by sorting queries along the space-filling curve.
  The hit stream per query is unchanged (only the chunk membership
  moves), so every derived result is identical.

A second engine, ``traversal="dual"`` (:func:`_dual_leaf_hits`),
aggregates Morton-adjacent queries into a density-adaptive query-side BVH
(:mod:`repro.bvh.qgroups`) and advances *(query node, tree node)* pairs
instead, refining whichever side of a pair is looser: one box-box test
prunes a whole query subtree per tree node, collapsing the (queries ×
visited nodes) box-test bill to (query nodes × visited nodes) while
reproducing the single engine's hits, labels and ``distance_evals``
bit-for-bit.  A third value, ``traversal="auto"``, is not an engine at
all but a per-chunk dispatcher: it prices both engines with the fitted
cost model (:mod:`repro.bvh.autotune`) and runs the cheaper one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bvh.tree import BVH
from repro.bvh.morton import morton_codes
from repro.bvh.qgroups import DEFAULT_GROUP_SIZE, build_query_bvh
from repro.device.device import Device, default_device
from repro.device.primitives import (
    concatenated_ranges,
    scatter_add,
    segment_ids_from_counts,
)

LeafCallback = Callable[[np.ndarray, np.ndarray], None]

#: Accepted values for ``query_order``.
QUERY_ORDERS = ("input", "morton")

#: Accepted values for ``traversal``: ``"single"`` walks one frontier row
#: per query; ``"dual"`` aggregates Morton-adjacent queries into a query
#: BVH and prunes whole query nodes per tree node (see
#: :func:`_dual_leaf_hits`); ``"auto"`` picks single or dual *per chunk*
#: from the cost model's predicted work (see :mod:`repro.bvh.autotune`) —
#: a pure scheduling choice, results are bit-identical regardless.
TRAVERSALS = ("single", "dual", "auto")


@dataclass
class TraversalResult:
    """Summary of one batched traversal.

    Attributes
    ----------
    steps:
        Wavefront steps executed (the batched analogue of the longest
        per-thread traversal).
    leaf_hits:
        Total ``(query, leaf)`` pairs delivered to the callback.
    frontier_peak:
        Largest frontier (pairs) held at any step.
    """

    steps: int = 0
    leaf_hits: int = 0
    frontier_peak: int = 0


#: Default number of queries advanced per wavefront (the analogue of the
#: resident-thread limit on a GPU: a V100 runs ~163k threads concurrently;
#: queries beyond the chunk wait for a free "slot").  Bounding the chunk
#: bounds the frontier, keeping transient memory proportional to the chunk's
#: neighbourhood mass rather than the whole dataset's.
DEFAULT_CHUNK_SIZE = 8192


class _FrontierPool:
    """Grow-only scratch pool backing the wavefront frontier.

    Every per-step array the traversal needs — the frontier double buffer,
    the compacted hit/parent views, the gathered query/box coordinates and
    the boolean predicates — is a named slot here.  A slot grows to
    exactly the largest size ever requested (no geometric slack), is never
    shrunk, and is reused across steps and chunks, so after the first few
    steps the hot loop allocates nothing.

    Memory accounting: each growth is charged as a transient ``"frontier"``
    allocation and the whole pool is freed once at the end of the
    traversal, so ``peak_by_tag["frontier"]`` reports the pool's
    high-water mark — monotone in ``chunk_size``, because a larger chunk's
    frontier is the union of its sub-chunks' frontiers at every step.
    """

    def __init__(self, device: Device, dim: int, tag: str = "frontier"):
        self._dev = device
        self._dim = dim
        self._tag = tag
        self._arrays: dict[str, np.ndarray] = {}
        self.nbytes = 0

    def _grow(self, name: str, shape: tuple, dtype) -> np.ndarray:
        arr = self._arrays.get(name)
        if arr is None or arr.shape[0] < shape[0]:
            old_nbytes = 0 if arr is None else arr.nbytes
            arr = np.empty(shape, dtype=dtype)
            self._arrays[name] = arr
            delta = arr.nbytes - old_nbytes
            self.nbytes += delta
            self._dev.memory.allocate(delta, self._tag, transient=True)
        return arr

    def take(self, name: str, size: int, dtype=np.int64) -> np.ndarray:
        """A ``(size,)`` view of the named slot (grown if needed).

        Growing a slot discards its previous contents; callers must have
        consumed a slot's data before re-taking it with a larger size.
        """
        return self._grow(name, (size,), dtype)[:size]

    def take2(self, name: str, size: int, dtype=np.int64) -> np.ndarray:
        """A ``(size, 2)`` view of the named slot (one row per parent)."""
        return self._grow(name, (size, 2), dtype)[:size]

    def take2d(self, name: str, size: int) -> np.ndarray:
        """A ``(size, dim)`` float64 view of the named slot."""
        return self._grow(name, (size, self._dim), np.float64)[:size]

    def take_boxes(self, name: str, size: int) -> np.ndarray:
        """A ``(size, 2, dim)`` float64 view (both children's boxes)."""
        return self._grow(name, (size, 2, self._dim), np.float64)[:size]

    def release(self) -> None:
        """Return the pool's footprint to the memory ledger."""
        if self.nbytes:
            self._dev.memory.free(self.nbytes, self._tag)
            self.nbytes = 0


def query_schedule(queries: np.ndarray, query_order: str) -> np.ndarray | None:
    """The chunking permutation for ``query_order`` (``None`` = input order).

    ``"morton"`` sorts queries along the Z-curve (stable, so ties keep
    input order) and is a pure *scheduling* choice: the traversal stores
    absolute query ids in the frontier, so callbacks, masks and early-exit
    checks see the same ids either way and every per-query result is
    bit-identical.
    """
    if query_order not in QUERY_ORDERS:
        raise ValueError(
            f"query_order must be one of {QUERY_ORDERS}; got {query_order!r}"
        )
    if query_order != "morton" or np.asarray(queries).shape[0] < 2:
        return None
    return np.argsort(morton_codes(queries), kind="stable").astype(np.int64)


def for_each_leaf_hit(
    tree: BVH,
    queries: np.ndarray,
    eps: float,
    callback: LeafCallback,
    mask_positions: np.ndarray | None = None,
    finished_fn: Callable[[np.ndarray], np.ndarray] | None = None,
    device: Device | None = None,
    kernel_name: str = "bvh_traverse",
    leaf_test_is_distance: bool = True,
    chunk_size: int | None = DEFAULT_CHUNK_SIZE,
    query_order: str = "input",
    traversal: str = "single",
    group_size: int | None = None,
    component_of: np.ndarray | None = None,
    node_components: np.ndarray | None = None,
    watchdog: Callable[[], None] | None = None,
    backend=None,
    morton_schedule: np.ndarray | None = None,
    cost_model=None,
    tree_stats=None,
    _chunk_ids: np.ndarray | None = None,
) -> TraversalResult:
    """Stream every ``(query, leaf)`` pair within ``eps`` to ``callback``.

    Parameters
    ----------
    tree:
        A built :class:`~repro.bvh.tree.BVH`.
    queries:
        ``(m, d)`` query centres; each is searched with radius ``eps``.
    eps:
        Search radius; a leaf is *hit* when the minimum distance from the
        query to the leaf's box is ``<= eps``.  For degenerate (point)
        leaves this is the exact point-distance predicate.
    callback:
        ``callback(query_ids, leaf_positions)`` invoked once per wavefront
        step with the step's hits.  ``leaf_positions`` are *sorted* leaf
        positions; map through ``tree.order`` for the caller's primitive
        ids.  The arrays are pool-backed views, only valid for the
        duration of the call.
    mask_positions:
        Optional ``(m,)`` int array; query ``q`` only sees leaves at sorted
        positions strictly greater than ``mask_positions[q]`` (the paper's
        traversal mask).  Pass ``-1`` entries for unmasked queries.
    finished_fn:
        Optional early-termination hook, called every step with the
        frontier's *query ids* (one entry per expanding parent pair — both
        children share the verdict) and returning a boolean array of the
        same length; ``True`` entries stop traversing.  The check is
        restricted to the ids actually on the frontier — never the full
        ``(m,)`` query set.  The returned array must be freshly allocated
        (the traversal negates it in place).
    device:
        Accounting device.
    leaf_test_is_distance:
        Count leaf box tests as ``distance_evals`` (true for point leaves,
        where the box test *is* the distance computation); internal box
        tests always land in the ``box_tests`` counter.
    chunk_size:
        Queries advanced per wavefront (``None`` = all at once).  Models
        the device's resident-thread limit and bounds the transient
        frontier memory; results are identical for any chunking.
    query_order:
        ``"input"`` (default) chunks queries in input order; ``"morton"``
        chunks them in Z-curve order for spatial coherence.  Results are
        identical either way — only the wavefront composition changes.
    traversal:
        ``"single"`` (default) walks one frontier row per query;
        ``"dual"`` aggregates Morton-sorted queries into groups and prunes
        whole groups against each node in one box test, expanding to the
        per-query path only where a node has leaf children.  Labels,
        delivered hits and ``distance_evals`` are bit-identical between
        the engines; ``box_tests``/``nodes_visited`` drop (group pruning
        is the point) while new ``group_box_tests``/``box_tests_saved``
        counters account the aggregated work.  The dual engine requires a
        *monotone* ``finished_fn`` (once finished, always finished) —
        true of every early-exit in this codebase — and always schedules
        queries in Morton order (``query_order`` is validated but does
        not change results in either engine).
    group_size:
        Queries per group for ``traversal="dual"`` (default
        :data:`~repro.bvh.qgroups.DEFAULT_GROUP_SIZE`); ``1`` degenerates
        to per-query traversal.
    component_of / node_components:
        Optional *component mask* (passed together): ``component_of[q]``
        is query ``q``'s component id (``>= 0``) and
        ``node_components[v]`` is tree node ``v``'s component — uniform
        id when every primitive below ``v`` shares one component, ``-1``
        when mixed.  A query never sees leaves of its own component, and
        subtrees uniform in the query's component are pruned without
        descending (Borůvka's "nearest neighbour outside my component"
        query).  Because a subtree uniform in component ``c`` contains
        only ``c``-leaves, internal pruning is a pure work optimisation:
        the delivered hit stream equals leaf-level filtering exactly, in
        both engines.  Same-component leaf children are not counted as
        leaf tests (they are resolved by the id comparison, not a
        distance computation).
    watchdog:
        Optional zero-argument callable polled once on entry and once per
        wavefront step (piggybacking on the ``finished_fn`` evaluation
        points, so both engines poll it identically).  It aborts the
        traversal by *raising* — the service's deadline enforcement
        threads :meth:`repro.faults.Deadline.check` through here.  A
        watchdog that returns normally never changes results.  (Under a
        parallel backend the watchdog is polled between result batches
        instead of per step — it still aborts the launch by raising.)
    backend:
        Execution backend: ``None`` (inherit the device's backend, which
        defaults to serial), ``"serial"``, ``"process"`` or an
        :class:`~repro.device.backends.ExecutionBackend` instance.  A
        parallel backend fans the chunks out over worker processes and
        replays each chunk's per-step hit batches through ``callback`` in
        (chunk, step) order — the identical callback sequence the serial
        engine produces — so results and counters are bit-identical.
        Traversals carrying cross-chunk state (``finished_fn``,
        ``component_of``) or fitting in one chunk fall back to the serial
        path silently.
    morton_schedule:
        Optional precomputed Morton permutation for ``queries`` (the
        exact array :func:`query_schedule` would return) — lets callers
        that cache the schedule (``DBSCANIndex.morton_schedule``) skip
        recomputing the codes here.  Used whenever a Morton order is
        needed (``query_order="morton"`` or the dual/auto engines);
        ignored otherwise.
    cost_model / tree_stats:
        ``traversal="auto"`` inputs: a fitted cost model (duck-typed
        :class:`repro.obs.fit.FittedCostModel`; ``None`` falls back to
        built-in rates) pricing the per-chunk engine choice, and the
        tree's :class:`repro.bvh.statistics.TreeStats` feeding the
        predicted frontier sizes.  Both are advisory — they steer the
        scheduling decision only, never any result.
    _chunk_ids:
        Internal (worker-side) hook: run exactly one chunk over these
        absolute query ids, bypassing ``query_order`` scheduling.  Used by
        the process backend to execute a parent-scheduled chunk; results
        equal the corresponding slice of a full serial traversal.

    Returns
    -------
    :class:`TraversalResult`
    """
    dev = default_device(device)
    if traversal not in TRAVERSALS:
        raise ValueError(
            f"traversal must be one of {TRAVERSALS}; got {traversal!r}"
        )
    if query_order not in QUERY_ORDERS:
        raise ValueError(
            f"query_order must be one of {QUERY_ORDERS}; got {query_order!r}"
        )
    queries = np.ascontiguousarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[1] != tree.dim:
        raise ValueError(
            f"queries must be (m, {tree.dim}); got shape {queries.shape}"
        )
    if eps < 0 or not np.isfinite(eps):
        raise ValueError(f"eps must be finite and non-negative; got {eps}")
    m = queries.shape[0]
    eps2 = float(eps) * float(eps)
    n_int = tree.n_internal
    result = TraversalResult()
    if m == 0:
        return result
    if mask_positions is not None:
        mask_positions = np.asarray(mask_positions, dtype=np.int64)
    if (component_of is None) != (node_components is None):
        raise ValueError(
            "component_of and node_components must be passed together"
        )
    if component_of is not None:
        component_of = np.asarray(component_of, dtype=np.int64)
        if component_of.shape != (m,):
            raise ValueError(
                f"component_of must be ({m},); got {component_of.shape}"
            )
        node_components = np.asarray(node_components, dtype=np.int64)
        n_nodes = tree.node_lo.shape[0]
        if node_components.shape != (n_nodes,):
            raise ValueError(
                f"node_components must be ({n_nodes},); got {node_components.shape}"
            )
    if chunk_size is None or chunk_size <= 0:
        chunk_size = m
    if _chunk_ids is None:
        bk = backend if backend is not None else getattr(dev, "backend", None)
        if bk is not None:
            from repro.device.backends import coerce_backend

            bk = coerce_backend(bk)
            if (
                bk.parallel
                and finished_fn is None
                and component_of is None
                and m > chunk_size
            ):
                # Chunk work is independent here (no cross-chunk state),
                # so the backend runs each chunk in a worker process and
                # replays the recorded per-step hit batches through
                # `callback` in (chunk, step) order — the exact serial
                # sequence.  Counters merge inside the wrapping kernel
                # span; see repro.device.backends.
                return bk.run_leaf_hits(
                    tree,
                    queries,
                    eps,
                    callback,
                    mask_positions=mask_positions,
                    device=dev,
                    kernel_name=kernel_name,
                    leaf_test_is_distance=leaf_test_is_distance,
                    chunk_size=chunk_size,
                    query_order=query_order,
                    traversal=traversal,
                    group_size=group_size,
                    watchdog=watchdog,
                    morton_schedule=morton_schedule,
                    cost_model=cost_model,
                    tree_stats=tree_stats,
                )
    if watchdog is not None:
        # Thread the watchdog through the finished_fn evaluation points:
        # both engines already consult finished_fn every wavefront step,
        # so composing it there gives per-step deadline polling with no
        # new hook in the hot loops.  The zeros path (no inner
        # finished_fn) is freshly allocated per call — the engines negate
        # the returned array in place — and trivially monotone, so the
        # dual engine's requirements hold.
        watchdog()
        inner_finished = finished_fn

        def finished_fn(ids: np.ndarray) -> np.ndarray:
            watchdog()
            if inner_finished is None:
                return np.zeros(ids.shape[0], dtype=bool)
            return inner_finished(ids)

    if traversal == "auto":
        from repro.bvh.autotune import choose_engine

        gsz = group_size if group_size is not None else DEFAULT_GROUP_SIZE
        if _chunk_ids is not None:
            # Worker-side: decide for exactly this chunk, then fall
            # through to the chosen engine below.
            ids = np.asarray(_chunk_ids, dtype=np.int64)
            decision = choose_engine(
                tree, queries[ids], eps, gsz, cost_model, kernel_name, tree_stats
            )
            dev.counters.add(f"auto_{decision.engine}_chunks", 1)
            dev.counters.add(
                "auto_pred_cost_us", int(decision.pred_seconds * 1e6)
            )
            traversal = decision.engine
        else:
            # Per-chunk dispatch: chunk in Morton order (the dual
            # engine's chunking — a pure scheduling choice), price each
            # chunk with the cost model and run the cheaper engine on it.
            # Chunks run sequentially, so cross-chunk state (finished_fn
            # closures, component masks) behaves exactly as in either
            # engine's own chunk loop.  The watchdog is already composed
            # into finished_fn above, so the recursive calls must not
            # re-compose it.
            schedule = (
                morton_schedule
                if morton_schedule is not None
                else query_schedule(queries, "morton")
            )
            total = TraversalResult()
            for chunk_start in range(0, m, chunk_size):
                chunk_end = min(chunk_start + chunk_size, m)
                if schedule is not None:
                    ids = np.asarray(schedule[chunk_start:chunk_end], dtype=np.int64)
                else:
                    ids = np.arange(chunk_start, chunk_end, dtype=np.int64)
                decision = choose_engine(
                    tree, queries[ids], eps, gsz, cost_model, kernel_name, tree_stats
                )
                dev.counters.add(f"auto_{decision.engine}_chunks", 1)
                dev.counters.add(
                    "auto_pred_cost_us", int(decision.pred_seconds * 1e6)
                )
                sub = for_each_leaf_hit(
                    tree,
                    queries,
                    eps,
                    callback,
                    mask_positions=mask_positions,
                    finished_fn=finished_fn,
                    device=dev,
                    kernel_name=kernel_name,
                    leaf_test_is_distance=leaf_test_is_distance,
                    chunk_size=None,
                    query_order="input",
                    traversal=decision.engine,
                    group_size=group_size,
                    component_of=component_of,
                    node_components=node_components,
                    watchdog=None,
                    backend="serial",
                    _chunk_ids=ids,
                )
                total.steps += sub.steps
                total.leaf_hits += sub.leaf_hits
                total.frontier_peak = max(total.frontier_peak, sub.frontier_peak)
            return total
    if traversal == "dual":
        return _dual_leaf_hits(
            tree,
            queries,
            float(eps),
            eps2,
            callback,
            mask_positions,
            finished_fn,
            dev,
            kernel_name,
            leaf_test_is_distance,
            chunk_size,
            group_size if group_size is not None else DEFAULT_GROUP_SIZE,
            component_of,
            node_components,
            morton_schedule,
            _chunk_ids,
        )
    if _chunk_ids is not None:
        # Worker-side single-chunk execution: the provided absolute ids
        # *are* the chunk (the parent already applied the scheduling
        # permutation), so the loop below runs exactly once over them.
        schedule = np.asarray(_chunk_ids, dtype=np.int64)
        m_sched = int(schedule.shape[0])
        chunk_size = max(m_sched, 1)
    else:
        if query_order == "morton" and morton_schedule is not None:
            schedule = morton_schedule
        else:
            schedule = query_schedule(queries, query_order)
        m_sched = m

    ch_ids, ch_lo, ch_hi, ch_rng_hi = tree.packed_children()
    # Narrow index dtypes wherever they fit — real traversal kernels carry
    # 32-bit node/query ids, and on a bandwidth-bound wavefront halving the
    # index traffic is a direct win.  Purely a storage choice: every id is
    # exact in either width.
    ndt = ch_ids.dtype
    qdt = np.int32 if m <= np.iinfo(np.int32).max else np.int64
    if schedule is not None:
        schedule = schedule.astype(qdt, copy=False)
    pool = _FrontierPool(dev, tree.dim)
    try:
        with dev.kernel(kernel_name, threads=m) as launch:
            for chunk_start in range(0, m_sched, chunk_size):
                chunk_end = min(chunk_start + chunk_size, m_sched)
                if schedule is not None:
                    chunk_ids = schedule[chunk_start:chunk_end]
                else:
                    chunk_ids = np.arange(chunk_start, chunk_end, dtype=qdt)
                # Seed the frontier with the root, testing it like any other
                # node (also prunes queries entirely outside the scene).
                root_lo = tree.node_lo[tree.root]
                root_hi = tree.node_hi[tree.root]
                clamped = np.clip(queries[chunk_ids], root_lo, root_hi)
                diff = queries[chunk_ids] - clamped
                ok = np.einsum("nd,nd->n", diff, diff) <= eps2
                if mask_positions is not None:
                    ok &= tree.node_range_hi[tree.root] > mask_positions[chunk_ids]
                if component_of is not None:
                    ok &= node_components[tree.root] != component_of[chunk_ids]
                if finished_fn is not None:
                    ok &= ~finished_fn(chunk_ids)
                size = int(np.count_nonzero(ok))
                fr_q = pool.take("fr_q", size, dtype=qdt)
                np.compress(ok, chunk_ids, out=fr_q)
                fr_n = pool.take("fr_n", size, dtype=ndt)
                fr_n.fill(tree.root)

                while size:
                    result.steps += 1
                    result.frontier_peak = max(result.frontier_peak, size)
                    dev.counters.add("nodes_visited", size)
                    dev.counters.observe_peak("frontier_peak", size)

                    # -- split the frontier into leaf hits and parents ------
                    leaf = pool.take("leaf", size, dtype=bool)
                    np.greater_equal(fr_n, n_int, out=leaf)
                    n_hits = int(np.count_nonzero(leaf))
                    n_par = size - n_hits
                    if n_hits:
                        hit_q = pool.take("hit_q", n_hits, dtype=qdt)
                        hit_pos = pool.take("hit_pos", n_hits, dtype=ndt)
                        np.compress(leaf, fr_q, out=hit_q)
                        np.compress(leaf, fr_n, out=hit_pos)
                        hit_pos -= n_int
                        result.leaf_hits += n_hits
                        callback(hit_q, hit_pos)
                    if n_par == 0:
                        break
                    np.logical_not(leaf, out=leaf)
                    par_q = pool.take("par_q", n_par, dtype=qdt)
                    par_n = pool.take("par_n", n_par, dtype=ndt)
                    np.compress(leaf, fr_q, out=par_q)
                    np.compress(leaf, fr_n, out=par_n)

                    # -- expand parents, parent-major: one gather over
                    # par_n fetches both children's ids, boxes and ranges
                    # (the interleaved layout from tree.packed_children) --
                    two_k = 2 * n_par
                    ex_q = pool.take2("ex_q", n_par, dtype=qdt)
                    ex_n = pool.take2("ex_n", n_par, dtype=ndt)
                    ex_q[:] = par_q[:, None]
                    np.take(ch_ids, par_n, axis=0, out=ex_n)

                    # -- test the children against the search sphere --------
                    g_pts = pool.take2d("g_pts", n_par)
                    g_lo = pool.take_boxes("g_lo", n_par)
                    g_hi = pool.take_boxes("g_hi", n_par)
                    np.take(queries, par_q, axis=0, out=g_pts)
                    np.take(ch_lo, par_n, axis=0, out=g_lo)
                    np.take(ch_hi, par_n, axis=0, out=g_hi)
                    d2 = pool.take2("d2", n_par, dtype=np.float64)
                    pts = g_pts[:, None, :]
                    np.clip(pts, g_lo, g_hi, out=g_lo)
                    np.subtract(pts, g_lo, out=g_lo)
                    np.einsum("nkd,nkd->nk", g_lo, g_lo, out=d2)

                    keep = pool.take2("keep", n_par, dtype=bool)
                    np.greater_equal(ex_n, n_int, out=keep)
                    tested = None
                    if component_of is not None:
                        # Children whose subtree is uniform in the query's
                        # component are pruned by the id comparison alone —
                        # no box or distance work is performed (or counted)
                        # for them.
                        ncomp = pool.take2("ncomp", n_par)
                        qcomp = pool.take("qcomp", n_par)
                        np.take(node_components, ex_n, out=ncomp)
                        np.take(component_of, par_q, out=qcomp)
                        tested = pool.take2("ctest", n_par, dtype=bool)
                        np.not_equal(ncomp, qcomp[:, None], out=tested)
                        n_tested = int(np.count_nonzero(tested))
                        n_leaf_tests = int(np.count_nonzero(keep & tested))
                    else:
                        n_tested = two_k
                        n_leaf_tests = int(np.count_nonzero(keep))
                    if leaf_test_is_distance:
                        dev.counters.add("distance_evals", n_leaf_tests)
                        dev.counters.add("box_tests", n_tested - n_leaf_tests)
                    else:
                        dev.counters.add("box_tests", n_tested)
                    np.less_equal(d2, eps2, out=keep)
                    if tested is not None:
                        keep &= tested
                    if mask_positions is not None:
                        rng_hi = pool.take2("rng_hi", n_par, dtype=ndt)
                        q_mask = pool.take("q_mask", n_par)
                        np.take(ch_rng_hi, par_n, axis=0, out=rng_hi)
                        np.take(mask_positions, par_q, out=q_mask)
                        visible = pool.take2("visible", n_par, dtype=bool)
                        np.greater(rng_hi, q_mask[:, None], out=visible)
                        keep &= visible
                    if finished_fn is not None:
                        fin = finished_fn(par_q)
                        np.logical_not(fin, out=fin)
                        keep &= fin[:, None]

                    # -- compact the survivors back into the frontier -------
                    size = int(np.count_nonzero(keep))
                    fr_q = pool.take("fr_q", size, dtype=qdt)
                    fr_n = pool.take("fr_n", size, dtype=ndt)
                    flat = keep.reshape(two_k)
                    np.compress(flat, ex_q.reshape(two_k), out=fr_q)
                    np.compress(flat, ex_n.reshape(two_k), out=fr_n)
            launch.steps = result.steps
    finally:
        pool.release()
    return result


def _dual_leaf_hits(
    tree: BVH,
    queries: np.ndarray,
    eps: float,
    eps2: float,
    callback: LeafCallback,
    mask_positions: np.ndarray | None,
    finished_fn: Callable[[np.ndarray], np.ndarray] | None,
    dev: Device,
    kernel_name: str,
    leaf_test_is_distance: bool,
    chunk_size: int,
    group_size: int,
    component_of: np.ndarray | None = None,
    node_components: np.ndarray | None = None,
    morton_schedule: np.ndarray | None = None,
    _chunk_ids: np.ndarray | None = None,
) -> TraversalResult:
    """Dual-tree wavefront traversal over both hierarchies.

    Each chunk's Morton-sorted queries are built into a density-adaptive
    query BVH (:func:`repro.bvh.qgroups.build_query_bvh`) and the
    frontier carries ``(query_node, tree_node)`` pairs seeded at
    (query root, tree root).  The tree side descends strictly one level
    per step (that is what keeps the finished-generation bookkeeping
    aligned with the single engine); the query side descends *adaptively*
    within each step: before the pair test, any pair whose query node is
    internal and longer-edged than the tree child it faces is replaced by
    its two children, repeatedly, so the box-box test always compares
    boxes of commensurate extent — the "split the looser side" policy of
    a classic dual-tree walk, realised level-synchronously.  One box-box
    test then decides a whole query subtree's descent
    (``group_box_tests``), so the per-query sphere-box tests the single
    engine pays at every internal node collapse to one test per query
    node (``box_tests_saved``).

    **Why results are bit-identical to the single engine.**  Child boxes
    nest inside parent boxes and leaf visibility ranges nest inside their
    ancestors', and ``finished_fn`` is monotone, so "query ``q`` reaches
    node ``P``" in the single engine is the *local* predicate

    ``d2(q, P.box) <= eps²  and  range_hi(P) > mask[q]  and  not
    finished(q, at P's generation)``

    — independent of the path taken to ``P``.  The dual engine therefore
    defers all per-query decisions to the nodes where they matter:
    whenever a frontier entry's tree node has a leaf child, the engine
    re-evaluates that reach predicate per member (the parent re-test,
    charged to ``box_tests``), counts one leaf test per reaching member
    per leaf child (exactly the single engine's ``distance_evals``), and
    emits hits through the same per-query predicate the single engine
    applies.  Both engines advance strictly level-by-level and deliver a
    depth-``d`` leaf's hits on step ``d+1``, so the ``finished_fn``
    generations line up: hits computed on step ``s`` are gated by the
    finished state *after* step ``s``'s deliveries (``fin_now``) and
    counted work by the state that admitted the frontier (``fin_prev``),
    mirroring the single engine's admit-then-expand ordering.  Per-query
    hit streams are chunk- and order-invariant (each query's path and
    early-exit depend only on its own hits), so forcing Morton order here
    changes no result.

    Query-side scratch (sorted chunk coordinates, the query BVH, the
    finished double-buffer) is charged to the memory model under the
    ``"qgroups"`` tag; the frontier itself stays under ``"frontier"``.

    Component masking extends the reach predicate with "``node``'s
    subtree is not uniform in ``q``'s component": query nodes carry a
    uniform-component summary (seeded at the query leaves by the same
    reduceat the AABBs use and combined bottom-up over the query BVH's
    levels), so a (query node, tree node) pair whose components provably
    coincide is pruned in one comparison, and the per-member leaf test
    applies the exact leaf-vs-query component check the single engine
    applies.
    """
    m = queries.shape[0]
    n_int = tree.n_internal
    result = TraversalResult()
    leaf_counter = "distance_evals" if leaf_test_is_distance else "box_tests"
    if _chunk_ids is not None:
        # Worker-side single-chunk execution: the ids are a slice of the
        # full Morton schedule the parent computed (the dual engine's
        # chunk membership), so one iteration reproduces that chunk.
        schedule = np.asarray(_chunk_ids, dtype=np.int64)
        m_sched = int(schedule.shape[0])
        chunk_size = max(m_sched, 1)
    else:
        schedule = (
            morton_schedule
            if morton_schedule is not None
            else query_schedule(queries, "morton")
        )
        m_sched = m
    qdt = np.int32 if m <= np.iinfo(np.int32).max else np.int64
    if schedule is not None:
        schedule = schedule.astype(qdt, copy=False)
    node_lo, node_hi = tree.node_lo, tree.node_hi
    node_rng_hi = tree.node_range_hi
    ch_ids, ch_lo, ch_hi, ch_rng_hi = tree.packed_children()
    ndt = ch_ids.dtype
    root = tree.root
    pool = _FrontierPool(dev, tree.dim)
    qpool = _FrontierPool(dev, tree.dim, tag="qgroups")
    try:
        with dev.kernel(kernel_name, threads=m) as launch:
            for chunk_start in range(0, m_sched, chunk_size):
                chunk_end = min(chunk_start + chunk_size, m_sched)
                if schedule is not None:
                    chunk_ids = schedule[chunk_start:chunk_end]
                else:
                    chunk_ids = np.arange(chunk_start, chunk_end, dtype=qdt)
                cn = chunk_ids.shape[0]
                chunk_pts = qpool.take2d("chunk_pts", cn)
                np.take(queries, chunk_ids, axis=0, out=chunk_pts)
                chunk_mask = None
                if mask_positions is not None:
                    chunk_mask = qpool.take("chunk_mask", cn)
                    np.take(mask_positions, chunk_ids, out=chunk_mask)
                chunk_comp = None
                if component_of is not None:
                    chunk_comp = qpool.take("chunk_comp", cn)
                    np.take(component_of, chunk_ids, out=chunk_comp)

                if n_int == 0:
                    # Single-leaf tree: mirror the single engine's one
                    # seed-and-deliver step (seed test uncounted).
                    clamped = np.clip(chunk_pts, node_lo[root], node_hi[root])
                    diff = chunk_pts - clamped
                    ok = np.einsum("nd,nd->n", diff, diff) <= eps2
                    if chunk_mask is not None:
                        ok &= node_rng_hi[root] > chunk_mask
                    if chunk_comp is not None:
                        ok &= node_components[root] != chunk_comp
                    if finished_fn is not None:
                        ok &= ~finished_fn(chunk_ids)
                    n_hits = int(np.count_nonzero(ok))
                    if n_hits:
                        result.steps += 1
                        result.frontier_peak = max(result.frontier_peak, n_hits)
                        dev.counters.add("nodes_visited", n_hits)
                        dev.counters.observe_peak("frontier_peak", n_hits)
                        result.leaf_hits += n_hits
                        callback(chunk_ids[ok], np.zeros(n_hits, dtype=ndt))
                    continue

                qg = build_query_bvh(
                    chunk_pts, chunk_mask, group_size, eps, qpool
                )
                n_qinner = qg.n_inner

                # Uniform-component summary per query node (-1 = mixed):
                # the component analogue of the node AABB.  Seeded at the
                # leaves (which tile the chunk, so one reduceat covers
                # them) and combined bottom-up over the BVH's levels.
                ucomp = None
                if chunk_comp is not None:
                    lstarts = qg.mem_lo[qg.leaf_order]
                    lmin = np.minimum.reduceat(chunk_comp, lstarts)
                    lmax = np.maximum.reduceat(chunk_comp, lstarts)
                    ucomp = qpool.take("ucomp", qg.n_nodes)
                    ucomp[qg.leaf_order] = np.where(lmin == lmax, lmin, -1)
                    for lvl_lo, lvl_hi in reversed(qg.levels):
                        c0 = ucomp[qg.child0[lvl_lo:lvl_hi]]
                        c1 = ucomp[qg.child1[lvl_lo:lvl_hi]]
                        ucomp[lvl_lo:lvl_hi] = np.where(c0 == c1, c0, -1)

                fin_prev = fin_now = cumfin = None
                if finished_fn is not None:
                    fin_now = qpool.take("fin_a", cn, dtype=bool)
                    fin_prev = qpool.take("fin_b", cn, dtype=bool)
                    fin_now[:] = finished_fn(chunk_ids)
                    cumfin = qpool.take("cumfin", cn + 1)

                # Seed: the query root against the tree root, with the
                # uncounted box-box analogue of the single engine's seed
                # test.
                top = qg.top
                gap = np.maximum(
                    0.0,
                    np.maximum(node_lo[root] - qg.hi[top], qg.lo[top] - node_hi[root]),
                )
                okt = np.einsum("nd,nd->n", gap, gap) <= eps2
                if chunk_mask is not None:
                    okt &= node_rng_hi[root] > qg.mask_min[top]
                if ucomp is not None:
                    uct = ucomp[top]
                    okt &= ~((uct >= 0) & (uct == node_components[root]))
                size = int(np.count_nonzero(okt))
                fr_g = pool.take("fr_g", size, dtype=np.int32)
                fr_n = pool.take("fr_n", size, dtype=ndt)
                np.compress(okt, top, out=fr_g)
                fr_n.fill(root)
                pend_q: list[np.ndarray] = []
                pend_p: list[np.ndarray] = []
                n_pend = 0

                while size or n_pend:
                    result.steps += 1
                    foot = size + n_pend
                    result.frontier_peak = max(result.frontier_peak, foot)
                    dev.counters.add("nodes_visited", size)
                    dev.counters.observe_peak("frontier_peak", foot)

                    # -- (1) deliver the previous step's leaf hits --------
                    if n_pend:
                        hit_q = pend_q[0] if len(pend_q) == 1 else np.concatenate(pend_q)
                        hit_pos = pend_p[0] if len(pend_p) == 1 else np.concatenate(pend_p)
                        pend_q.clear()
                        pend_p.clear()
                        n_pend = 0
                        # The single engine hands each query its step's
                        # hits in ascending leaf position (children expand
                        # left-then-right and compaction is stable).
                        # Restore that order so even float accumulations
                        # (weighted counts) match bit-for-bit.
                        order = np.lexsort((hit_pos, hit_q))
                        hit_q = hit_q[order]
                        hit_pos = hit_pos[order]
                        result.leaf_hits += hit_q.shape[0]
                        callback(hit_q, hit_pos)
                    if size == 0:
                        break

                    # -- (2) roll the finished generations ----------------
                    # fin_prev = the state that admitted this frontier;
                    # fin_now = the state after this step's deliveries
                    # (monotone, so only not-yet-finished ids re-checked).
                    if finished_fn is not None:
                        fin_prev, fin_now = fin_now, fin_prev
                        np.copyto(fin_now, fin_prev)
                        live_idx = np.flatnonzero(~fin_prev)
                        if live_idx.size:
                            fin_now[live_idx] = finished_fn(chunk_ids[live_idx])
                        cumfin[0] = 0
                        np.cumsum(fin_prev, out=cumfin[1:])
                        # Drop entries whose members have all finished
                        # (uncounted — the single engine's frontier loses
                        # finished queries the same way).
                        mlo = qg.mem_lo[fr_g]
                        mhi = qg.mem_hi[fr_g]
                        lcount = (mhi - mlo) - (cumfin[mhi] - cumfin[mlo])
                        alive = lcount > 0
                        if not alive.all():
                            fr_g = fr_g[alive]
                            fr_n = fr_n[alive]
                            size = fr_g.shape[0]
                            if size == 0:
                                continue

                    # -- (3) gather both children of every entry ----------
                    ch = ch_ids[fr_n]
                    crng = ch_rng_hi[fr_n]
                    clo = ch_lo[fr_n]
                    chi = ch_hi[fr_n]
                    is_leaf = ch >= n_int
                    has_leaf = is_leaf[:, 0] | is_leaf[:, 1]

                    # -- (4) per-member expansion at leaf parents ---------
                    # Counters here measure the *logical* per-query work
                    # (exactly what the single engine performs); the
                    # entry-level min/max-distance classifications below
                    # are uncounted vectorisation shortcuts that resolve
                    # whole groups of member tests collectively with
                    # bit-identical outcomes — the same licence the device
                    # model's bincount-backed scatter_add takes.
                    sel = np.flatnonzero(has_leaf)
                    if sel.size:
                        e_g = fr_g[sel]
                        e_n = fr_n[sel]
                        starts = qg.mem_lo[e_g]
                        cnts = qg.mem_hi[e_g] - starts
                        mpos = concatenated_ranges(starts, cnts)
                        seg = segment_ids_from_counts(cnts)
                        live = None
                        if finished_fn is not None:
                            live = ~fin_prev[mpos]
                        if chunk_mask is not None:
                            vis = node_rng_hi[e_n][seg] > chunk_mask[mpos]
                            live = vis if live is None else live & vis
                        if chunk_comp is not None:
                            # A member whose component fills this node's
                            # subtree never reached it in the single
                            # engine — drop it from the parent re-test.
                            cok = node_components[e_n][seg] != chunk_comp[mpos]
                            live = cok if live is None else live & cok
                        # Admission guarantees mindist(group, node) <= eps;
                        # when even the farthest member corner is within
                        # eps, every member reaches — no per-member test.
                        far = np.maximum(
                            node_hi[e_n] - qg.lo[e_g], qg.hi[e_g] - node_lo[e_n]
                        )
                        allin = np.einsum("nd,nd->n", far, far) <= eps2
                        reach = allin[seg] if live is None else allin[seg] & live
                        need = ~allin[seg]
                        if live is not None:
                            need &= live
                        ridx = np.flatnonzero(need)
                        if ridx.size:
                            pn = e_n[seg[ridx]]
                            pts_r = chunk_pts[mpos[ridx]]
                            d = pts_r - np.clip(pts_r, node_lo[pn], node_hi[pn])
                            reach[ridx] = np.einsum("nd,nd->n", d, d) <= eps2
                        dev.counters.add(
                            "box_tests",
                            mpos.shape[0] if live is None
                            else int(np.count_nonzero(live)),
                        )
                        for k in (0, 1):
                            lk = is_leaf[sel, k]
                            if not lk.any():
                                continue
                            take = lk[seg] & reach
                            if chunk_comp is not None:
                                # Leaf-vs-member component check — the
                                # exact gate the single engine applies
                                # before testing a leaf child (a leaf's
                                # component is always uniform).
                                lcomp = node_components[ch[sel, k]]
                                take &= lcomp[seg] != chunk_comp[mpos]
                            idx = np.flatnonzero(take)
                            dev.counters.add(leaf_counter, idx.shape[0])
                            if idx.shape[0] == 0:
                                continue
                            # Entry-level leaf classification: members of a
                            # group whose box cannot reach the leaf all
                            # miss; members of a group entirely within eps
                            # of the whole leaf box all hit.  Only the
                            # ambiguous band computes per-member distances.
                            lo_k = clo[sel, k]
                            hi_k = chi[sel, k]
                            gapl = np.maximum(
                                0.0,
                                np.maximum(lo_k - qg.hi[e_g], qg.lo[e_g] - hi_k),
                            )
                            near = np.einsum("nd,nd->n", gapl, gapl) <= eps2
                            farl = np.maximum(
                                hi_k - qg.lo[e_g], qg.hi[e_g] - lo_k
                            )
                            allhit = np.einsum("nd,nd->n", farl, farl) <= eps2
                            sidx = seg[idx]
                            hit = allhit[sidx]
                            sub = np.flatnonzero((near & ~allhit)[sidx])
                            if sub.size:
                                li = idx[sub]
                                leaf_n = ch[sel, k][seg[li]]
                                lpts = chunk_pts[mpos[li]]
                                dd = lpts - np.clip(
                                    lpts, node_lo[leaf_n], node_hi[leaf_n]
                                )
                                hit[sub] = np.einsum("nd,nd->n", dd, dd) <= eps2
                            if chunk_mask is not None:
                                hit &= crng[sel, k][sidx] > chunk_mask[mpos[idx]]
                            if finished_fn is not None:
                                hit &= ~fin_now[mpos[idx]]
                            h = np.flatnonzero(hit)
                            if h.size:
                                pend_q.append(chunk_ids[mpos[idx[h]]])
                                pend_p.append(
                                    (ch[sel, k][seg[idx[h]]] - n_int).astype(
                                        ndt, copy=False
                                    )
                                )
                                n_pend += h.shape[0]

                    # -- (5) group-level descent into internal children ---
                    fe, fk = np.nonzero(~is_leaf)
                    if fe.size == 0:
                        size = 0
                        continue
                    cand_q = fr_g[fe]
                    cand_n = ch[fe, fk]
                    cand_lo = clo[fe, fk]
                    cand_hi = chi[fe, fk]
                    cand_rng = crng[fe, fk]
                    if n_qinner:
                        # Split the looser side: while a pair's query node
                        # is internal and longer-edged than the tree child
                        # it faces, replace it by its two halves, so the
                        # box-box test below always compares commensurate
                        # boxes.  Terminates because every split moves one
                        # level down the (finite-depth) query BVH.
                        # Counters-only heuristic — the per-member re-test
                        # at leaf parents keeps results exact regardless.
                        child_ext = (cand_hi - cand_lo).max(axis=1)
                        while True:
                            split = (cand_q < n_qinner) & (
                                qg.ext[cand_q] > child_ext
                            )
                            if not split.any():
                                break
                            stay = ~split
                            s_q = cand_q[split]
                            sub_q = np.empty(2 * s_q.shape[0], dtype=cand_q.dtype)
                            sub_q[0::2] = qg.child0[s_q]
                            sub_q[1::2] = qg.child1[s_q]
                            rep2 = np.repeat(np.flatnonzero(split), 2)
                            cand_q = np.concatenate([cand_q[stay], sub_q])
                            cand_n = np.concatenate([cand_n[stay], cand_n[rep2]])
                            cand_lo = np.concatenate([cand_lo[stay], cand_lo[rep2]])
                            cand_hi = np.concatenate([cand_hi[stay], cand_hi[rep2]])
                            cand_rng = np.concatenate([cand_rng[stay], cand_rng[rep2]])
                            child_ext = np.concatenate(
                                [child_ext[stay], child_ext[rep2]]
                            )
                    # One box-box test per (query node, tree child): the
                    # exact Minkowski form of "eps-inflated group AABB
                    # intersects node box".
                    gap = np.maximum(
                        0.0,
                        np.maximum(cand_lo - qg.hi[cand_q], qg.lo[cand_q] - cand_hi),
                    )
                    d2g = np.einsum("nd,nd->n", gap, gap)
                    dev.counters.add("group_box_tests", cand_q.shape[0])
                    mlo = qg.mem_lo[cand_q]
                    mhi = qg.mem_hi[cand_q]
                    if finished_fn is not None:
                        lcount = (mhi - mlo) - (cumfin[mhi] - cumfin[mlo])
                    else:
                        lcount = mhi - mlo
                    dev.counters.add(
                        "box_tests_saved", int(np.maximum(lcount - 1, 0).sum())
                    )
                    keep = d2g <= eps2
                    if chunk_mask is not None:
                        keep &= cand_rng > qg.mask_min[cand_q]
                    if ucomp is not None:
                        # Prune a (query node, tree node) pair whose
                        # components provably coincide: both uniform and
                        # equal means every member/leaf pair below is
                        # same-component.
                        ucq = ucomp[cand_q]
                        keep &= ~((ucq >= 0) & (ucq == node_components[cand_n]))
                    size = int(np.count_nonzero(keep))
                    fr_g = pool.take("fr_g", size, dtype=np.int32)
                    fr_n = pool.take("fr_n", size, dtype=ndt)
                    np.compress(keep, cand_q, out=fr_g)
                    np.compress(keep, cand_n, out=fr_n)
            launch.steps = result.steps
    finally:
        qpool.release()
        pool.release()
    return result


def count_within(
    tree: BVH,
    queries: np.ndarray,
    eps: float,
    stop_at: float | None = None,
    mask_positions: np.ndarray | None = None,
    device: Device | None = None,
    chunk_size: int | None = DEFAULT_CHUNK_SIZE,
    leaf_weights: np.ndarray | None = None,
    query_order: str = "input",
    traversal: str = "single",
    group_size: int | None = None,
    watchdog: Callable[[], None] | None = None,
    backend=None,
    morton_schedule: np.ndarray | None = None,
    cost_model=None,
    tree_stats=None,
    _chunk_ids: np.ndarray | None = None,
) -> np.ndarray:
    """Count leaves within ``eps`` of each query (point-leaf trees).

    With ``stop_at`` set, a query's traversal terminates early once its
    count reaches ``stop_at`` — the paper's core-point determination
    shortcut (Section 3.2).  The early-exit contract, for unweighted and
    weighted counts alike:

    - a returned count ``< stop_at`` is **exact** — the query's traversal
      ran to completion;
    - a returned count ``>= stop_at`` means **at least this many**: the
      query stopped as soon as its running total reached ``stop_at``, so
      the value is a lower bound whose exact magnitude depends on
      traversal order.  Reaching ``stop_at`` exactly terminates too
      (``counts >= stop_at``, not ``>``) — a weighted query whose
      neighbourhood weights sum to exactly ``stop_at`` still short-cuts,
      and the threshold test ``counts >= stop_at`` downstream is
      unaffected.

    The early-exit check is evaluated per step against the *frontier's*
    query ids only — an O(frontier) gather, not an O(m) recompute — and a
    query's per-step hit batches depend only on its own tree path, so the
    returned counts are identical for every ``chunk_size``,
    ``query_order`` and ``traversal`` engine.

    ``stop_at`` may be fractional when ``leaf_weights`` is given (weights
    are arbitrary positive floats, so any finite threshold is meaningful);
    it must be positive and finite either way.

    ``leaf_weights`` (indexed by *sorted leaf position*) turns the count
    into a weighted sum — the weighted-density generalisation where each
    primitive contributes its sample weight instead of 1.

    Returns the ``(m,)`` count array (int64, or float64 when weighted).
    A query point that is itself a primitive of the tree counts itself
    (distance 0).
    """
    dev = default_device(device)
    m = np.asarray(queries).shape[0]
    if stop_at is not None and (not np.isfinite(stop_at) or stop_at <= 0):
        raise ValueError(f"stop_at must be positive and finite; got {stop_at}")
    if leaf_weights is not None:
        leaf_weights = np.asarray(leaf_weights, dtype=np.float64)
        if leaf_weights.shape != (tree.n_primitives,):
            raise ValueError(
                f"leaf_weights must be ({tree.n_primitives},); got {leaf_weights.shape}"
            )
    from repro.device.backends import coerce_backend

    bk = coerce_backend(
        backend if backend is not None else getattr(dev, "backend", None)
    )
    eff_chunk = chunk_size if (chunk_size is not None and chunk_size > 0) else m
    if bk.parallel and _chunk_ids is None and m > eff_chunk:
        # A query's count (and its stop_at early exit) accumulates
        # entirely within its own chunk, so chunk counting parallelises
        # without any cross-chunk state: workers run the exact serial
        # per-chunk kernel and the parent reassembles the disjoint count
        # slices.  Results are bit-identical for every knob.
        queries = np.ascontiguousarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != tree.dim:
            raise ValueError(
                f"queries must be (m, {tree.dim}); got shape {queries.shape}"
            )
        if eps < 0 or not np.isfinite(eps):
            raise ValueError(f"eps must be finite and non-negative; got {eps}")
        if traversal not in TRAVERSALS:
            raise ValueError(
                f"traversal must be one of {TRAVERSALS}; got {traversal!r}"
            )
        if mask_positions is not None:
            mask_positions = np.asarray(mask_positions, dtype=np.int64)
        return bk.run_count(
            tree,
            queries,
            eps,
            stop_at=stop_at,
            mask_positions=mask_positions,
            device=dev,
            chunk_size=eff_chunk,
            leaf_weights=leaf_weights,
            query_order=query_order,
            traversal=traversal,
            group_size=group_size,
            watchdog=watchdog,
            morton_schedule=morton_schedule,
            cost_model=cost_model,
            tree_stats=tree_stats,
        )
    if leaf_weights is None:
        counts = np.zeros(m, dtype=np.int64)

        def on_hits(q_ids: np.ndarray, _pos: np.ndarray) -> None:
            scatter_add(counts, q_ids, counters=dev.counters)

    else:
        counts = np.zeros(m, dtype=np.float64)

        def on_hits(q_ids: np.ndarray, pos: np.ndarray) -> None:
            scatter_add(counts, q_ids, leaf_weights[pos], counters=dev.counters)

    finished_fn = None
    if stop_at is not None:

        def finished_fn(ids: np.ndarray) -> np.ndarray:
            return counts[ids] >= stop_at

    for_each_leaf_hit(
        tree,
        queries,
        eps,
        on_hits,
        mask_positions=mask_positions,
        finished_fn=finished_fn,
        device=dev,
        kernel_name="bvh_count",
        chunk_size=chunk_size,
        query_order=query_order,
        traversal=traversal,
        group_size=group_size,
        watchdog=watchdog,
        backend=bk,
        morton_schedule=morton_schedule,
        cost_model=cost_model,
        tree_stats=tree_stats,
        _chunk_ids=_chunk_ids,
    )
    return counts
