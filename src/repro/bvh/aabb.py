"""Vectorised axis-aligned bounding box (AABB) operations.

An AABB set is represented as a pair of ``(n, d)`` float64 arrays
``(lo, hi)`` with ``lo <= hi`` per component.  Points are degenerate boxes
(``lo == hi``); this degeneracy is load-bearing: the sphere/box
minimum-distance predicate applied to a degenerate box *is* the exact
point-distance predicate, which is why one traversal routine serves both
FDBSCAN (point leaves) and FDBSCAN-DenseBox (mixed point/box leaves).
"""

from __future__ import annotations

import numpy as np


def boxes_from_points(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Degenerate AABBs for a point set: ``lo = hi = points``."""
    points = np.asarray(points, dtype=np.float64)
    return points.copy(), points.copy()


def scene_bounds(lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The AABB enclosing an entire box set (one ``(d,)`` pair)."""
    if lo.shape[0] == 0:
        raise ValueError("scene_bounds of an empty box set")
    return lo.min(axis=0), hi.max(axis=0)


def merge_aabbs(
    lo_a: np.ndarray, hi_a: np.ndarray, lo_b: np.ndarray, hi_b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Elementwise union of two box sets."""
    return np.minimum(lo_a, lo_b), np.maximum(hi_a, hi_b)


def mindist_point_box_sq(
    points: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """Squared minimum distance from each point to its paired box.

    ``points``, ``lo``, ``hi`` are ``(m, d)`` arrays (row ``i`` pairs point
    ``i`` with box ``i``; broadcastable shapes are accepted).  The distance
    is 0 for points inside the box.  For a degenerate box this is exactly
    the squared point-to-point distance.
    """
    points = np.asarray(points, dtype=np.float64)
    clamped = np.clip(points, lo, hi)
    diff = points - clamped
    return np.einsum("...d,...d->...", diff, diff)


def box_contains_box(
    lo_outer: np.ndarray, hi_outer: np.ndarray, lo_inner: np.ndarray, hi_inner: np.ndarray
) -> np.ndarray:
    """``True`` per row where the outer box contains the inner box."""
    return np.all((lo_outer <= lo_inner) & (hi_outer >= hi_inner), axis=-1)


def validate_boxes(lo: np.ndarray, hi: np.ndarray) -> None:
    """Raise ``ValueError`` for malformed box sets (shape mismatch,
    non-finite coordinates, or inverted extents)."""
    lo = np.asarray(lo)
    hi = np.asarray(hi)
    if lo.shape != hi.shape or lo.ndim != 2:
        raise ValueError(f"box arrays must be matching (n, d); got {lo.shape} and {hi.shape}")
    if not (np.isfinite(lo).all() and np.isfinite(hi).all()):
        raise ValueError("box coordinates must be finite")
    if np.any(lo > hi):
        raise ValueError("box has lo > hi")
