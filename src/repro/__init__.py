"""repro — tree-based DBSCAN for low-dimensional data on (simulated) GPUs.

A from-scratch Python reproduction of *"Fast tree-based algorithms for
DBSCAN on GPUs"* (Prokopenko, Lebrun-Grandié, Arndt — ICPP 2023):
the batched two-phase DBSCAN framework, the FDBSCAN and FDBSCAN-DenseBox
algorithms, every substrate they depend on (linear BVH, Morton codes,
ECL-style union-find, dense-cell grid, a data-parallel device model), the
evaluation's baselines (G-DBSCAN, CUDA-DClust, disjoint-set DBSCAN,
textbook DBSCAN) and a benchmark harness regenerating every figure of the
paper's Section 5.

Quickstart
----------
>>> import numpy as np
>>> from repro import dbscan
>>> rng = np.random.default_rng(7)
>>> X = np.vstack([rng.normal(0, .05, (100, 2)), rng.normal(1, .05, (100, 2))])
>>> result = dbscan(X, eps=0.2, min_samples=5)
>>> result.n_clusters
2

Package map
-----------
- :mod:`repro.core`       — the paper's framework + FDBSCAN / FDBSCAN-DenseBox
- :mod:`repro.bvh`        — linear BVH (Karras construction, batched traversal)
- :mod:`repro.grid`       — regular grid + dense-cell decomposition
- :mod:`repro.unionfind`  — ECL-style synchronisation-free union-find
- :mod:`repro.device`     — data-parallel device model (counters, atomics, memory)
- :mod:`repro.baselines`  — G-DBSCAN, CUDA-DClust, DSDBSCAN, grid DBSCAN, textbook DBSCAN
- :mod:`repro.hierarchy`  — HDBSCAN over the same substrates (paper future work)
- :mod:`repro.distributed`— multi-rank DBSCAN (paper future work)
- :mod:`repro.datasets`   — synthetic stand-ins for the evaluation datasets
- :mod:`repro.metrics`    — clustering equivalence / statistics
- :mod:`repro.bench`      — figure-regeneration harness
- :mod:`repro.obs`        — unified tracing + metrics (spans, Chrome/CSV
  exporters, Prometheus-style registry, cost-model reports)
"""

from repro.core import (
    DBSCAN,
    DBSCANIndex,
    DBSCANResult,
    choose_algorithm,
    dbscan,
    dbscan_minpts_sweep,
    dbscan_star,
    dense_fraction_estimate,
    fdbscan,
    fdbscan_densebox,
    periodic_dbscan,
)
from repro.device import Device
from repro.hierarchy import hdbscan

__version__ = "1.0.0"

__all__ = [
    "DBSCAN",
    "DBSCANIndex",
    "DBSCANResult",
    "Device",
    "__version__",
    "choose_algorithm",
    "dbscan",
    "dbscan_minpts_sweep",
    "dbscan_star",
    "dense_fraction_estimate",
    "fdbscan",
    "fdbscan_densebox",
    "hdbscan",
    "periodic_dbscan",
]
