"""CUDA-DClust (Böhm et al., CIKM'09): parallel chains + collision matrix.

The algorithm grows *chains* — sub-clusters of density-reachable points —
from many seed points simultaneously (one chain per thread block).  When
a chain's expansion reaches a core point already owned by another chain,
the contact is recorded in a *collision matrix*; after all points are
processed, the collisions are resolved on the CPU, merging chains into
final clusters.  Border points are claimed by the first chain that
reaches them and never propagate collisions (no bridging).

The reproduction processes ``chains_per_round`` chains per round (one
kernel launch's worth of blocks) in a fixed linearisation of the
concurrent growth, expanding each chain level-by-level with vectorised
gathers over a CSR neighbourhood oracle.  Device memory is charged for
what the original keeps resident — ownership array, seed lists and the
quadratic collision matrix — *not* for the CSR (the real code recomputes
neighbourhoods on the fly; the CSR is the host-side emulation shortcut).
The CPU-side collision resolution and the round-by-round relaunching are
the structural overheads that make this algorithm the consistent outlier
of Figure 4.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines._adjacency import csr_eps_graph
from repro.core.labels import DBSCANResult, relabel_consecutive
from repro.core.validation import validate_params, validate_points
from repro.device.device import Device, default_device
from repro.device.primitives import concatenated_ranges
from repro.unionfind.sequential import SequentialUnionFind

_UNOWNED = -1


def cuda_dclust(
    X: np.ndarray,
    eps: float,
    min_samples: int,
    device: Device | None = None,
    chains_per_round: int = 64,
) -> DBSCANResult:
    """Cluster with the CUDA-DClust chain/collision-matrix scheme.

    ``chains_per_round`` mirrors the original's number of concurrently
    grown chains (thread blocks per kernel launch).
    """
    X = validate_points(X, max_dim=None)
    eps, minpts = validate_params(eps, min_samples)
    dev = default_device(device)
    n = X.shape[0]
    t0 = time.perf_counter()

    offsets, edges, degree = csr_eps_graph(X, eps)
    dev.counters.add("distance_evals", int(degree.sum()))
    is_core = (degree + 1) >= minpts

    owner = np.full(n, _UNOWNED, dtype=np.int64)
    dev.memory.allocate(owner.nbytes, tag="labels")
    collisions: set[tuple[int, int]] = set()
    chain_count = 0
    next_seed = 0

    def expand_level(frontier: np.ndarray, chain: int) -> np.ndarray:
        """Claim/collide the neighbourhood of a (core-only) frontier;
        returns the next frontier (newly claimed core points)."""
        starts = offsets[frontier]
        counts = offsets[frontier + 1] - starts
        nbrs = np.unique(edges[concatenated_ranges(starts, counts)])
        core_nb = nbrs[is_core[nbrs]]
        owners = owner[core_nb]
        fresh = core_nb[owners == _UNOWNED]
        owner[fresh] = chain
        foreign = owners[(owners != _UNOWNED) & (owners != chain)]
        for other in np.unique(foreign):
            collisions.add((min(chain, int(other)), max(chain, int(other))))
        border_nb = nbrs[~is_core[nbrs]]
        unclaimed = border_nb[owner[border_nb] == _UNOWNED]
        owner[unclaimed] = chain
        return fresh

    while True:
        seeds = []
        while next_seed < n and len(seeds) < chains_per_round:
            if is_core[next_seed] and owner[next_seed] == _UNOWNED:
                seeds.append(next_seed)
            next_seed += 1
        if not seeds:
            break
        with dev.kernel("dclust_chains", threads=len(seeds)) as launch:
            levels = 0
            for seed in seeds:
                chain = chain_count
                chain_count += 1
                if owner[seed] != _UNOWNED:
                    # Raced within the round: an earlier chain claimed the
                    # seed; record the contact and move on.
                    collisions.add(
                        (min(chain, int(owner[seed])), max(chain, int(owner[seed])))
                    )
                    continue
                owner[seed] = chain
                frontier = np.array([seed], dtype=np.int64)
                while frontier.size:
                    levels += 1
                    frontier = expand_level(frontier, chain)
            launch.steps = levels

    # The original keeps a chains x chains byte matrix on the device.
    dev.memory.allocate(max(chain_count, 1) ** 2, tag="collision_matrix")
    dev.counters.add("union_ops", len(collisions))

    # Host-side resolution: merge colliding chains.
    uf = SequentialUnionFind(max(chain_count, 1))
    for a, b in collisions:
        uf.union(a, b)
    chain_root = uf.labels()
    clustered = owner != _UNOWNED
    raw = np.full(n, -1, dtype=np.int64)
    raw[clustered] = chain_root[owner[clustered]]
    labels, n_clusters = relabel_consecutive(raw, clustered)
    info = {
        "algorithm": "cuda-dclust",
        "n": n,
        "eps": eps,
        "min_samples": minpts,
        "n_chains": chain_count,
        "n_collisions": len(collisions),
        "t_total": time.perf_counter() - t0,
    }
    return DBSCANResult(labels=labels, is_core=is_core, n_clusters=n_clusters, info=info)
