"""Textbook DBSCAN (Ester et al. 1996) — Algorithm 1 of the paper.

Breadth-first cluster growth: pick an unvisited point, fetch its
``eps``-neighbourhood from a k-d tree, and if it is a core point grow the
cluster by a seed queue, expanding every core point encountered and
absorbing border points into the *first* cluster that reaches them
(points "tentatively marked as noise" are reclaimed when a later cluster
reaches them).

This is the repository's semantic oracle: its core set, noise set and
core partition are exactly DBSCAN's definition; only the border-point
cluster choice is implementation-defined, and the scan order here (point
index order, neighbours in index order) makes even that deterministic.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np
from scipy.spatial import cKDTree

from repro.core.labels import DBSCANResult
from repro.core.validation import validate_params, validate_points
from repro.device.device import Device, default_device

_NOISE = -1
_UNVISITED = -2


def sequential_dbscan(
    X: np.ndarray,
    eps: float,
    min_samples: int,
    device: Device | None = None,
    sample_weight=None,
) -> DBSCANResult:
    """Cluster with the original breadth-first DBSCAN.

    Accepts any dimensionality (the k-d tree is not Morton-limited), so it
    also oracles hypothetical high-dimensional extensions.  With
    ``sample_weight``, a point is core when its neighbourhood's summed
    weight reaches ``min_samples`` (the weighted-density oracle).
    """
    X = validate_points(X, max_dim=None)
    eps, minpts = validate_params(eps, min_samples)
    weights = None
    if sample_weight is not None:
        from repro.core.validation import validate_weights

        weights = validate_weights(sample_weight, X.shape[0])
    dev = default_device(device)
    n = X.shape[0]
    t0 = time.perf_counter()

    tree = cKDTree(X)
    # Batch the neighbourhood queries (one C call); the BFS below then only
    # walks precomputed lists.  Memory for the lists is charged like any
    # other device structure.
    neighborhoods = tree.query_ball_point(X, eps, workers=-1)
    dev.memory.allocate(sum(len(nb) for nb in neighborhoods) * 8, tag="adjacency")
    dev.counters.add("distance_evals", sum(len(nb) for nb in neighborhoods))

    def neighborhood_mass(nbrs) -> float:
        if weights is None:
            return len(nbrs)
        return float(weights[nbrs].sum())

    labels = np.full(n, _UNVISITED, dtype=np.int64)
    is_core = np.zeros(n, dtype=bool)
    cluster = 0
    for i in range(n):
        if labels[i] != _UNVISITED:
            continue
        nbrs = neighborhoods[i]
        if neighborhood_mass(nbrs) < minpts:
            labels[i] = _NOISE  # tentative; may be reclaimed as border
            continue
        is_core[i] = True
        labels[i] = cluster
        seeds = deque(nbrs)
        while seeds:
            j = seeds.popleft()
            if labels[j] == _NOISE:
                labels[j] = cluster  # border point, reclaimed from noise
                continue
            if labels[j] != _UNVISITED:
                continue
            labels[j] = cluster
            nj = neighborhoods[j]
            if neighborhood_mass(nj) >= minpts:
                is_core[j] = True
                seeds.extend(nj)
        cluster += 1

    labels[labels == _UNVISITED] = _NOISE  # unreachable; defensive
    info = {
        "algorithm": "sequential-dbscan",
        "n": n,
        "eps": eps,
        "min_samples": minpts,
        "t_total": time.perf_counter() - t0,
    }
    return DBSCANResult(labels=labels, is_core=is_core, n_clusters=cluster, info=info)
