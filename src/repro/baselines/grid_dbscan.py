"""Grid-only DBSCAN: the cell-binary-search alternative the paper rejects.

Section 4.2: "While it is possible to do a series of binary searches over
a list of cells to produce a list of neighboring non-empty cells, in this
work we use an alternative approach [the mixed-primitive BVH]."  This
module implements that rejected design so the ablation benchmarks can
compare the two.  It is essentially the structure of the cell-based halo
finder of Sewell et al. [36] and the grid of Gowanlock [14] that the
paper builds on:

1. impose the same ``eps / sqrt(d)`` grid and compact the non-empty cells
   into a *sorted* flat-id list;
2. for every non-empty cell, enumerate the ``(2 ceil(sqrt(d)) + 1)^d``
   neighbour offsets and **binary-search** each candidate id in the
   sorted list (the step the BVH traversal replaces);
3. exploit the cell guarantees: same-cell pairs are within ``eps`` by
   construction (no distance tests), dense cells are pre-unioned, and
   dense-dense cell contacts need only *one* hit (short-circuited scan);
4. everything else goes through the shared framework pair resolution.

The design's weaknesses — the reason the paper prefers the BVH — show in
the counters: ``cell_probes`` grows with the offset volume (25 cells in
2-D, 125 in 3-D) and most probes miss on sparse data, each being a
dependent ``log(cells)`` walk; and the flat int64 cell id must exist,
which the cosmology-scale virtual grids of Section 5.2 already exceed
in higher resolutions (the tree needs no such id).
"""

from __future__ import annotations

import itertools
import time
from typing import Iterator

import numpy as np

from repro.core.framework import DEFAULT_PAIR_BUFFER, PairResolver
from repro.core.labels import DBSCANResult, finalize_clusters
from repro.core.validation import validate_params, validate_points
from repro.device.device import Device, default_device
from repro.device.primitives import (
    concatenated_ranges,
    scatter_add,
    segment_ids_from_counts,
)
from repro.grid.grid import build_grid, compact_cells
from repro.unionfind.ecl import EclUnionFind

#: Point-pair expansion chunk: bounds transient memory like the traversal
#: chunking does for the tree algorithms.
_EXPAND_LIMIT = 2_000_000


def _neighbor_offsets(dim: int) -> np.ndarray:
    """Cell-coordinate offsets whose cells can contain eps-neighbours.

    With cell edge ``eps/sqrt(d)``, points within ``eps`` can be at most
    ``ceil(sqrt(d))`` cells apart along each axis.
    """
    radius = int(np.ceil(np.sqrt(dim)))
    return np.array(
        list(itertools.product(range(-radius, radius + 1), repeat=dim)), dtype=np.int64
    )


def _chunks_by_load(loads: np.ndarray, limit: int) -> Iterator[slice]:
    """Split index range into slices whose summed loads stay near limit."""
    total = loads.shape[0]
    start = 0
    running = np.cumsum(loads)
    while start < total:
        base = running[start - 1] if start else 0
        end = int(np.searchsorted(running, base + limit, side="right"))
        end = max(end, start + 1)  # an over-limit item still travels alone
        yield slice(start, min(end, total))
        start = end


class _GridIndex:
    """Compact occupied-cell index with binary-search neighbour lookup."""

    def __init__(self, X: np.ndarray, eps: float, minpts: int, dev: Device):
        self.X = X
        self.eps2 = eps * eps
        grid = build_grid(X, eps)
        if not grid.flat_ids_fit():
            raise OverflowError(
                "grid-only DBSCAN needs flat int64 cell ids; the virtual grid "
                "is too large (a limitation of this design — use the tree "
                "algorithms for such domains)"
            )
        self.grid = grid
        coords = grid.cell_coords(X)
        (
            self.cell_of_point,
            self.n_cells,
            self.members,
            self.cell_starts,
            self.cell_counts,
        ) = compact_cells(grid, coords)
        rep_coords = coords[self.members[self.cell_starts]]
        self.cell_coords = rep_coords
        self.sorted_flat = grid.flatten_coords(rep_coords)  # sorted: cells are
        # compacted in flat-id order by construction
        self.dense_mask = self.cell_counts >= minpts
        self.dev = dev

    def neighbor_cell_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """All unordered pairs (a <= b) of non-empty cells whose boxes may
        contain eps-neighbours, found by binary-searching each offset."""
        offsets = _neighbor_offsets(self.grid.dim)
        srcs, dsts = [], []
        probes = 0
        with self.dev.kernel("grid_cell_search", threads=self.n_cells) as launch:
            for off in offsets:
                cand = self.cell_coords + off
                valid = np.all((cand >= 0) & (cand < self.grid.shape), axis=1)
                flat = self.grid.flatten_coords(cand[valid])
                pos = np.searchsorted(self.sorted_flat, flat)
                probes += flat.shape[0]
                found = (pos < self.n_cells) & (
                    self.sorted_flat[np.minimum(pos, self.n_cells - 1)] == flat
                )
                srcs.append(np.flatnonzero(valid)[found])
                dsts.append(pos[found])
            launch.steps = offsets.shape[0]
        self.dev.counters.add("cell_probes", probes)
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
        self.dev.counters.add("cell_probe_hits", src.shape[0])
        keep = src <= dst
        return src[keep], dst[keep]

    def expand_pairs(self, cells_a: np.ndarray, cells_b: np.ndarray):
        """Yield ``(pa, pb, pair_row)`` chunks of all cross point pairs for
        the matched cell rows, bounded by the expansion limit."""
        ca = self.cell_counts[cells_a]
        cb = self.cell_counts[cells_b]
        combos = ca * cb
        for rows in _chunks_by_load(combos, _EXPAND_LIMIT):
            sub_a, sub_b = cells_a[rows], cells_b[rows]
            sub_ca, sub_cb = ca[rows], cb[rows]
            sub_combos = combos[rows]
            seg = segment_ids_from_counts(sub_combos)
            within = np.arange(int(sub_combos.sum()), dtype=np.int64) - np.repeat(
                np.cumsum(sub_combos) - sub_combos, sub_combos
            )
            ai = within // sub_cb[seg]
            bi = within % sub_cb[seg]
            pa = self.members[self.cell_starts[sub_a][seg] + ai]
            pb = self.members[self.cell_starts[sub_b][seg] + bi]
            yield pa, pb, seg, rows

    def within(self, pa: np.ndarray, pb: np.ndarray) -> np.ndarray:
        diff = self.X[pa] - self.X[pb]
        self.dev.counters.add("distance_evals", int(pa.shape[0]))
        return np.einsum("ij,ij->i", diff, diff) <= self.eps2


def _count_phase(index: _GridIndex, src, dst, minpts: int) -> np.ndarray:
    """Exact |N_eps(x)| for points in non-dense cells (dense-cell points
    are core by construction and never need a count)."""
    n = index.X.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    # Same-cell contribution: every same-cell pair is within eps (cell
    # diameter <= eps), so each point starts at its cell population.
    counts += index.cell_counts[index.cell_of_point]
    # Cross-cell contributions, directed from non-dense source cells only.
    cross = src != dst
    directed = [
        (src[cross], dst[cross]),
        (dst[cross], src[cross]),
    ]
    with index.dev.kernel("grid_count", threads=n) as launch:
        steps = 0
        for a, b in directed:
            use = ~index.dense_mask[a]
            a, b = a[use], b[use]
            for pa, pb, _seg, _rows in index.expand_pairs(a, b):
                steps += 1
                hit = index.within(pa, pb)
                scatter_add(counts, pa[hit], counters=index.dev.counters)
        launch.steps = steps
    return counts


def grid_dbscan(
    X: np.ndarray,
    eps: float,
    min_samples: int,
    device: Device | None = None,
) -> DBSCANResult:
    """Cluster with the grid/binary-search design (no tree).

    Exact DBSCAN semantics shared with every other algorithm here; the
    point of the implementation is its *cost profile*, reported through
    the ``cell_probes`` / ``cell_probe_hits`` / ``distance_evals``
    counters the ablation benchmark compares against FDBSCAN-DenseBox.
    """
    X = validate_points(X)
    eps, minpts = validate_params(eps, min_samples)
    dev = default_device(device)
    n = X.shape[0]
    t0 = time.perf_counter()

    index = _GridIndex(X, eps, minpts, dev)
    src, dst = index.neighbor_cell_pairs()
    dense = index.dense_mask

    # --- core determination ------------------------------------------------
    if minpts == 2:
        is_core = None
        resolution_core = np.ones(n, dtype=bool)
    elif minpts == 1:
        is_core = np.ones(n, dtype=bool)
        resolution_core = is_core
    else:
        counts = _count_phase(index, src, dst, minpts)
        is_core = counts >= minpts
        is_core[dense[index.cell_of_point]] = True
        resolution_core = is_core

    # --- main phase ---------------------------------------------------------
    uf = EclUnionFind(n, device=dev)
    resolver = PairResolver(uf, resolution_core, device=dev, buffer_pairs=DEFAULT_PAIR_BUFFER)
    with dev.kernel("grid_main", threads=n) as launch:
        steps = 0
        same = src == dst
        # (1) same-cell: all pairs are within eps by the diameter guarantee;
        # union first member with the rest when the cell is uniformly core,
        # otherwise resolve pairs without distance tests.
        same_cells = src[same]
        uniform_core = (
            dense[same_cells]
            if minpts > 2
            else np.ones(same_cells.shape[0], dtype=bool)
        )
        # dense (or minpts<=2 multi-point) cells: chain-union members
        chain = same_cells[uniform_core | (minpts <= 2)]
        chain = chain[index.cell_counts[chain] > 1]
        if chain.size:
            starts = index.cell_starts[chain]
            cnts = index.cell_counts[chain]
            firsts = index.members[starts]
            rest = index.members[concatenated_ranges(starts + 1, cnts - 1)]
            uf.union(np.repeat(firsts, cnts - 1), rest)
            steps += 1
        # non-dense same-cell pairs at minpts>2: mixed core status, still no
        # distance tests needed (within eps guaranteed)
        if minpts > 2:
            mixed = same_cells[~uniform_core]
            mixed = mixed[index.cell_counts[mixed] > 1]
            for pa, pb, _seg, _rows in index.expand_pairs(mixed, mixed):
                keep = pa < pb
                resolver.add(pa[keep], pb[keep])
                steps += 1

        # (2) cross-cell dense-dense: one hit decides the whole contact.
        cross_src, cross_dst = src[~same], dst[~same]
        if minpts > 2:
            dd = dense[cross_src] & dense[cross_dst]
        else:
            dd = np.zeros(cross_src.shape[0], dtype=bool)
        if dd.any():
            a, b = cross_src[dd], cross_dst[dd]
            linked = np.zeros(a.shape[0], dtype=bool)
            rep_a = np.empty(a.shape[0], dtype=np.int64)
            rep_b = np.empty(a.shape[0], dtype=np.int64)
            for pa, pb, seg, rows in index.expand_pairs(a, b):
                hit = index.within(pa, pb)
                # first hit per cell pair in this chunk
                fresh = np.unique(seg[hit])
                global_rows = np.arange(rows.start, rows.stop)[fresh]
                newly = ~linked[global_rows]
                sel = fresh[newly]
                # representative pair: the first hitting (pa, pb) per row
                order = np.argsort(seg[hit], kind="stable")
                row_sorted = seg[hit][order]
                first_pos = np.searchsorted(row_sorted, sel)
                rep_a[rows.start + sel] = pa[hit][order][first_pos]
                rep_b[rows.start + sel] = pb[hit][order][first_pos]
                linked[rows.start + sel] = True
                steps += 1
            if linked.any():
                uf.union(rep_a[linked], rep_b[linked])

        # (3) everything else cross-cell: exact pair resolution.
        a, b = cross_src[~dd], cross_dst[~dd]
        for pa, pb, _seg, _rows in index.expand_pairs(a, b):
            hit = index.within(pa, pb)
            resolver.add(pa[hit], pb[hit])
            steps += 1
        resolver.finalize()
        launch.steps = steps

    labels, core_mask, n_clusters = finalize_clusters(uf.parents, is_core, dev.counters)
    info = {
        "algorithm": "grid-dbscan",
        "n": n,
        "eps": eps,
        "min_samples": minpts,
        "n_cells": index.n_cells,
        "dense_fraction": float(dense[index.cell_of_point].mean()),
        "t_total": time.perf_counter() - t0,
    }
    return DBSCANResult(labels=labels, is_core=core_mask, n_clusters=n_clusters, info=info)
