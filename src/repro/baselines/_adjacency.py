"""Shared CSR eps-graph construction for the baseline algorithms.

G-DBSCAN materialises this graph *on the device* (and is memory-charged
for it); CUDA-DClust recomputes neighbourhoods on the fly and only uses
the CSR here as the host-side emulation shortcut for neighbour queries
(its device footprint is charged separately).  The edge relation is
``dist(x, y) <= eps``, self-loops excluded, both directions stored.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.device.primitives import exclusive_scan


def csr_eps_graph(X: np.ndarray, eps: float):
    """Full eps-adjacency graph in CSR form.

    Returns ``(offsets, edges, degree)``: ``edges[offsets[i]:offsets[i+1]]``
    are the neighbours of ``i`` (unordered), ``degree[i]`` their count
    (self excluded).
    """
    n = X.shape[0]
    tree = cKDTree(X)
    pairs = tree.query_pairs(eps, output_type="ndarray")
    src = np.concatenate([pairs[:, 0], pairs[:, 1]])
    dst = np.concatenate([pairs[:, 1], pairs[:, 0]])
    degree = np.bincount(src, minlength=n).astype(np.int64)
    offsets = np.append(exclusive_scan(degree), degree.sum()).astype(np.int64)
    order = np.argsort(src, kind="stable")
    edges = dst[order].astype(np.int64)
    return offsets, edges, degree


def count_eps_pairs(X: np.ndarray, eps: float) -> int:
    """Number of directed eps-graph edges (self excluded) without
    materialising them — used to charge device memory ahead of an
    allocation that might OOM."""
    tree = cKDTree(X)
    return int(tree.count_neighbors(tree, eps)) - X.shape[0]
