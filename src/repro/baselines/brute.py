"""O(n²) dense-matrix DBSCAN reference.

An implementation deliberately *unlike* every other one in the repository
(no tree, no union-find, no BFS queue): the full boolean adjacency matrix
is materialised, core points are row sums, core clusters are connected
components of the core-core submatrix by repeated label propagation, and
borders attach to the lowest-indexed adjacent core's cluster.  Used as a
structurally independent second opinion in differential tests on small
inputs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.labels import DBSCANResult, relabel_consecutive
from repro.core.validation import validate_params, validate_points
from repro.device.device import Device, default_device


def brute_dbscan(
    X: np.ndarray,
    eps: float,
    min_samples: int,
    device: Device | None = None,
) -> DBSCANResult:
    """Cluster via the full distance matrix (small inputs only: O(n²))."""
    X = validate_points(X, max_dim=None)
    eps, minpts = validate_params(eps, min_samples)
    dev = default_device(device)
    n = X.shape[0]
    t0 = time.perf_counter()

    diff = X[:, None, :] - X[None, :, :]
    adj = np.einsum("ijk,ijk->ij", diff, diff) <= eps * eps
    dev.counters.add("distance_evals", n * n)
    dev.memory.allocate(adj.nbytes, tag="adjacency")

    is_core = adj.sum(axis=1) >= minpts

    # Connected components of the core-core subgraph by min-label
    # propagation to a fixed point.
    comp = np.arange(n, dtype=np.int64)
    comp[~is_core] = -1
    core_adj = adj & is_core[None, :] & is_core[:, None]
    while True:
        # Each core point adopts the smallest component id in its closed
        # core neighbourhood.
        padded = np.where(core_adj, comp[None, :], np.iinfo(np.int64).max)
        new = np.minimum(comp, padded.min(axis=1))
        new[~is_core] = -1
        if np.array_equal(new, comp):
            break
        comp = new

    # Borders: lowest-indexed adjacent core's component.
    border_adj = adj & is_core[None, :] & ~is_core[:, None]
    has_core_nbr = border_adj.any(axis=1)
    first_core = np.argmax(border_adj, axis=1)
    comp[has_core_nbr] = comp[first_core[has_core_nbr]]

    clustered = comp >= 0
    labels, n_clusters = relabel_consecutive(comp, clustered)
    info = {
        "algorithm": "brute",
        "n": n,
        "eps": eps,
        "min_samples": minpts,
        "t_total": time.perf_counter() - t0,
    }
    return DBSCANResult(labels=labels, is_core=is_core, n_clusters=n_clusters, info=info)
