"""Comparison algorithms from the paper's evaluation (Section 5) and oracles.

``sequential_dbscan``
    Textbook DBSCAN (Algorithm 1 of the paper): breadth-first cluster
    growth over a k-d tree index.  The semantic oracle every parallel
    algorithm is differentially tested against.

``dsdbscan``
    The disjoint-set DBSCAN of Patwary et al. (Algorithm 2) — the
    sequential reformulation the paper's framework parallelises.

``gdbscan``
    G-DBSCAN (Andrade et al. 2013): materialise the full adjacency graph,
    then run level-synchronous parallel BFS.  Memory-instrumented so the
    harness can reproduce its out-of-memory failures on large/dense data.

``cuda_dclust``
    CUDA-DClust (Böhm et al. 2009): parallel chain growth with a collision
    matrix resolved in a final host-side pass.

``grid_dbscan``
    The grid/binary-search design the paper explicitly *rejects* in favour
    of the mixed-primitive BVH (Section 4.2) — implemented for the
    index-structure ablation, following Sewell et al. [36] / Gowanlock [14].

``brute``
    O(n²) dense-matrix reference for tiny inputs; an implementation
    deliberately unlike the others, used as a second opinion in tests.
"""

from repro.baselines.brute import brute_dbscan
from repro.baselines.cuda_dclust import cuda_dclust
from repro.baselines.dsdbscan import dsdbscan
from repro.baselines.gdbscan import gdbscan
from repro.baselines.grid_dbscan import grid_dbscan
from repro.baselines.sequential_dbscan import sequential_dbscan

__all__ = [
    "brute_dbscan",
    "cuda_dclust",
    "dsdbscan",
    "gdbscan",
    "grid_dbscan",
    "sequential_dbscan",
]
