"""G-DBSCAN (Andrade et al. 2013): full adjacency graph + parallel BFS.

The algorithm has two GPU stages:

1. **graph construction** — an all-to-all distance computation produces
   the full eps-adjacency graph in CSR form (degree array, prefix-summed
   offsets, edge array).  This is the structure whose memory the survey
   [32] measured at 166x CUDA-DClust's footprint and that the paper's
   fused algorithms exist to avoid;
2. **clustering** — level-synchronous breadth-first search from each
   unvisited core point; every BFS level expands all frontier vertices in
   parallel (vectorised here over the CSR arrays, exactly the kernel
   structure of the original).

The CSR footprint is charged to the device ledger *before*
materialisation, so a capped device raises
:class:`~repro.device.memory.DeviceMemoryError` at the same point the
real code would OOM — this is how the harness reproduces the missing
G-DBSCAN points of Figure 4(h).

We reuse a k-d tree to *enumerate* the edges (an honest host-side
shortcut: the edge set is identical to the all-to-all result, and the
all-to-all work is reported in ``distance_evals`` as n² the way the GPU
kernel would perform it).
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines._adjacency import count_eps_pairs, csr_eps_graph
from repro.core.labels import DBSCANResult
from repro.core.validation import validate_params, validate_points
from repro.device.device import Device, default_device

_NOISE = -1


def _build_adjacency(X: np.ndarray, eps: float, dev: Device):
    """Full eps-graph in CSR form, memory-charged before materialisation."""
    n = X.shape[0]
    # Edge count first (cheap), so the OOM check precedes materialisation:
    # CSR = int64 offsets (n+1) + int64 edges, charged as the GPU arrays.
    n_pairs = count_eps_pairs(X, eps)
    dev.memory.allocate((n + 1) * 8 + n_pairs * 8, tag="adjacency")
    dev.counters.add("distance_evals", n * n)  # the all-to-all kernel's work
    return csr_eps_graph(X, eps)


def gdbscan(
    X: np.ndarray,
    eps: float,
    min_samples: int,
    device: Device | None = None,
) -> DBSCANResult:
    """Cluster with G-DBSCAN.

    Raises
    ------
    repro.device.DeviceMemoryError
        When the device's capacity cannot hold the adjacency graph — the
        algorithm's documented failure mode on dense/large data.
    """
    X = validate_points(X, max_dim=None)
    eps, minpts = validate_params(eps, min_samples)
    dev = default_device(device)
    n = X.shape[0]
    t0 = time.perf_counter()

    with dev.kernel("gdbscan_graph", threads=n):
        offsets, edges, degree = _build_adjacency(X, eps, dev)
    is_core = (degree + 1) >= minpts  # |N(x)| includes x itself

    labels = np.full(n, _NOISE, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)
    cluster = 0
    with dev.kernel("gdbscan_bfs", threads=n) as launch:
        levels = 0
        for seed in range(n):
            if visited[seed] or not is_core[seed]:
                continue
            # Level-synchronous BFS: the frontier is expanded wholesale.
            visited[seed] = True
            labels[seed] = cluster
            frontier = np.array([seed], dtype=np.int64)
            while frontier.size:
                levels += 1
                # Only core vertices expand; border vertices are labelled
                # but terminate the search (no density-reachability through
                # non-core points).
                expanding = frontier[is_core[frontier]]
                if expanding.size == 0:
                    break
                starts = offsets[expanding]
                counts = offsets[expanding + 1] - starts
                total = int(counts.sum())
                if total == 0:
                    break
                idx = np.arange(total, dtype=np.int64) - np.repeat(
                    np.cumsum(counts) - counts, counts
                )
                nbrs = edges[np.repeat(starts, counts) + idx]
                fresh = np.unique(nbrs[~visited[nbrs]])
                visited[fresh] = True
                labels[fresh] = cluster
                frontier = fresh
            cluster += 1
        launch.steps = levels
    info = {
        "algorithm": "gdbscan",
        "n": n,
        "eps": eps,
        "min_samples": minpts,
        "n_edges": int(edges.shape[0]),
        "t_total": time.perf_counter() - t0,
    }
    return DBSCANResult(labels=labels, is_core=is_core, n_clusters=cluster, info=info)
