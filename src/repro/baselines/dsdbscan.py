"""Disjoint-set DBSCAN (Patwary et al., SC'12) — Algorithm 2 of the paper.

The reformulation that broke DBSCAN's breadth-first nature and is the
foundation of the paper's framework: each point computes only *its own*
neighbourhood; core points union with core neighbours and claim
not-yet-membered non-core neighbours.  Reproduced here faithfully as the
sequential algorithm (the original runs one instance per thread/rank over
a partition; the paper's contribution is precisely the GPU-grade
reformulation of this scheme).
"""

from __future__ import annotations

import time

import numpy as np
from scipy.spatial import cKDTree

from repro.core.labels import DBSCANResult, relabel_consecutive
from repro.core.validation import validate_params, validate_points
from repro.device.device import Device, default_device
from repro.unionfind.sequential import SequentialUnionFind


def dsdbscan(
    X: np.ndarray,
    eps: float,
    min_samples: int,
    device: Device | None = None,
) -> DBSCANResult:
    """Cluster with the sequential disjoint-set DBSCAN (Algorithm 2)."""
    X = validate_points(X, max_dim=None)
    eps, minpts = validate_params(eps, min_samples)
    dev = default_device(device)
    n = X.shape[0]
    t0 = time.perf_counter()

    tree = cKDTree(X)
    neighborhoods = tree.query_ball_point(X, eps, workers=-1)
    dev.counters.add("distance_evals", sum(len(nb) for nb in neighborhoods))

    uf = SequentialUnionFind(n)
    is_core = np.zeros(n, dtype=bool)
    member = np.zeros(n, dtype=bool)  # "is a member of a cluster" mark (line 10)
    # First pass: core marks (|N| includes the point itself).
    for i in range(n):
        if len(neighborhoods[i]) >= minpts:
            is_core[i] = True
    # Second pass: Algorithm 2's union loop.  (Patwary et al. interleave
    # the two; splitting them only *adds* information at line 7 — the
    # clusters produced are the same partition, with border assignment
    # remaining implementation-defined.)
    for i in range(n):
        if not is_core[i]:
            continue
        member[i] = True
        for j in neighborhoods[i]:
            if is_core[j]:
                uf.union(i, j)
                dev.counters.add("union_ops", 1)
            elif not member[j]:
                member[j] = True
                uf.union(i, j)
                dev.counters.add("union_ops", 1)

    roots = uf.labels()
    labels, n_clusters = relabel_consecutive(roots, member)
    info = {
        "algorithm": "dsdbscan",
        "n": n,
        "eps": eps,
        "min_samples": minpts,
        "t_total": time.perf_counter() - t0,
    }
    return DBSCANResult(labels=labels, is_core=is_core, n_clusters=n_clusters, info=info)
