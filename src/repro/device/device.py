"""The :class:`Device` handle: one simulated GPU per algorithm run.

A :class:`Device` bundles the three pieces of per-run accounting the
reproduction reports alongside wall-clock time:

- :attr:`Device.counters` — machine-independent work counters
  (:class:`~repro.device.counters.KernelCounters`);
- :attr:`Device.memory`   — the device-memory ledger
  (:class:`~repro.device.memory.MemoryTracker`), optionally capped;
- the **kernel trace**   — every batched kernel the algorithms execute is
  wrapped in :meth:`Device.kernel`, which records a per-launch span (name,
  logical thread count, wavefront steps, wall seconds, counter deltas)
  into a bounded ring, giving a per-phase timing breakdown equivalent to
  ``nvprof`` (:meth:`Device.profile`, :meth:`Device.trace_snapshot`).

The trace additionally supports **build-cost replay**: a block of work
(e.g. one BVH construction) recorded with :meth:`Device.recording` can be
re-accounted on a *different* device with :meth:`Device.replay`.  This is
what lets a benchmark sweep reuse a prebuilt spatial index on a fresh
per-cell device while keeping that cell's counters, trace and memory peak
comparable to a cold run: the reused build's launches appear in the trace
flagged ``replayed=True`` and its counters/bytes are added exactly once
per cell.

Algorithms accept ``device=None`` and fall back to a shared default device
(:func:`get_default_device`), so casual callers never see this machinery.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

from repro.device.counters import KernelCounters
from repro.device.memory import MemoryTracker

#: Default capacity of the kernel-trace ring.  Old launches are evicted
#: first; :attr:`Device.trace_dropped` reports how many were lost.
DEFAULT_TRACE_MAXLEN = 4096


class KernelFaultError(RuntimeError):
    """A transient, retryable kernel-launch failure.

    Raised by an installed :attr:`Device.fault_hook` (see
    :mod:`repro.faults`) to model the soft faults a long-running GPU fleet
    sees — ECC events, Xid resets, preempted launches — which a resilient
    driver retries rather than treating as fatal.
    """


@dataclass
class KernelLaunch:
    """Record of one batched kernel execution (a trace span).

    ``counters`` holds the counter *deltas* observed while the kernel body
    ran (``frontier_peak``, a high-watermark, is reported as its value at
    span end).  Spans of nested :meth:`Device.kernel` blocks overlap: the
    outer span's ``seconds`` and deltas include the inner's (*inclusive*
    time), while ``self_seconds`` is the outer span's time with every
    directly nested kernel span subtracted (*self* / exclusive time) — so
    ``sum(self_seconds)`` over any trace counts each wall second at most
    once.  ``replayed`` marks spans re-accounted from a recorded build
    (see :meth:`Device.replay`) rather than executed live; their
    ``seconds`` are the original execution's.
    """

    name: str
    threads: int
    seconds: float
    steps: int = 0
    t_start: float = 0.0
    counters: dict = field(default_factory=dict)
    replayed: bool = False
    self_seconds: float = 0.0


@dataclass
class ReplayableCost:
    """A recorded block of device work that can be re-accounted later.

    Produced by :meth:`Device.recording`; consumed by
    :meth:`Device.replay`.  Holds the block's launches, counter deltas,
    *net* memory growth per tag, and wall seconds.
    """

    launches: list[KernelLaunch] = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    mem_by_tag: dict = field(default_factory=dict)
    seconds: float = 0.0


@dataclass
class Device:
    """A simulated GPU: counters + memory ledger + kernel trace.

    Parameters
    ----------
    name:
        Cosmetic identifier, shown in reports.
    capacity_bytes:
        Device memory cap forwarded to :class:`MemoryTracker`; ``None``
        (default) disables OOM simulation.
    trace_maxlen:
        Kernel-trace ring capacity (oldest launches evicted first).
    """

    name: str = "sim-gpu0"
    capacity_bytes: int | None = None
    counters: KernelCounters = field(default_factory=KernelCounters)
    memory: MemoryTracker = field(init=False)
    trace_maxlen: int = DEFAULT_TRACE_MAXLEN
    launches: "deque[KernelLaunch]" = field(init=False)
    launches_total: int = field(init=False, default=0)
    #: Optional fault-injection hook, called with the kernel name before
    #: every launch.  May raise (e.g. :class:`KernelFaultError` or
    #: :class:`~repro.device.memory.DeviceMemoryError`) to simulate the
    #: launch failing; the failed launch is not recorded in the trace.
    #: Installed/removed by :meth:`repro.faults.FaultPlan.device_faults`.
    fault_hook: object = field(default=None, compare=False)
    #: Optional :class:`~repro.obs.span.Tracer`: when set, every kernel
    #: launch (and every replayed launch) is additionally recorded as a
    #: span in the shared trace tree, parented under whatever span the
    #: tracer currently has open (a benchmark cell, a driver phase...).
    tracer: object = field(default=None, compare=False)
    #: Optional default :class:`~repro.device.backends.ExecutionBackend`
    #: (or its string name): traversal entry points called without an
    #: explicit ``backend=`` inherit this one.  ``None`` means the serial
    #: in-process path.
    backend: object = field(default=None, compare=False)
    _epoch: float = field(init=False, default=0.0)
    _kernel_stack: list = field(init=False, default_factory=list, compare=False)

    def __post_init__(self):
        self.memory = MemoryTracker(self.capacity_bytes)
        self.launches = deque(maxlen=self.trace_maxlen)
        self._epoch = time.perf_counter()

    @contextmanager
    def kernel(self, name: str, threads: int):
        """Context manager wrapping one batched kernel launch.

        ``threads`` is the logical thread count (one per query/point/edge,
        as the paper's kernels assign).  The block's wall time, counter
        deltas and the launch are recorded as a trace span; the yielded
        :class:`KernelLaunch` lets the kernel body report how many
        wavefront steps it took (a divergence proxy: fewer steps for the
        same work means better convergence of the batched traversal).

        Nested ``kernel`` blocks record both views of time: ``seconds``
        is inclusive (the outer span contains the inner's), and
        ``self_seconds`` is exclusive (nested kernel time subtracted), so
        aggregations can choose whichever semantics they need without
        double counting — see :meth:`profile`.
        """
        if self.fault_hook is not None:
            self.fault_hook(name)
        tracer = self.tracer
        tspan = (
            tracer.start(
                name, category="kernel", attributes={"device": self.name, "threads": int(threads)}
            )
            if tracer is not None
            else None
        )
        start = time.perf_counter()
        launch = KernelLaunch(
            name=name, threads=int(threads), seconds=0.0, t_start=start - self._epoch
        )
        self.counters.add("kernel_launches", 1)
        before = self.counters.snapshot()
        self._kernel_stack.append(0.0)
        try:
            yield launch
        except BaseException:
            if tspan is not None:
                tspan.status = "error"
            raise
        finally:
            launch.seconds = time.perf_counter() - start
            nested_seconds = self._kernel_stack.pop()
            launch.self_seconds = max(launch.seconds - nested_seconds, 0.0)
            if self._kernel_stack:
                self._kernel_stack[-1] += launch.seconds
            self.counters.add("thread_steps", launch.steps)
            launch.counters = self.counters.diff(before)
            self.launches.append(launch)
            self.launches_total += 1
            if tspan is not None:
                tspan.attributes["steps"] = launch.steps
                tspan.attributes.update(
                    {f"counter.{k}": v for k, v in launch.counters.items() if v}
                )
                tracer.end(tspan)
                tracer.counter("frontier_peak", self.counters.frontier_peak)
                tracer.counter("device_live_bytes", self.memory.live_bytes)

    def record_external_launch(
        self,
        name: str,
        threads: int,
        seconds: float,
        steps: int = 0,
        t_start_abs: float | None = None,
        attributes: dict | None = None,
    ) -> KernelLaunch:
        """Append a launch executed in *another process* (a worker lane).

        ``t_start_abs`` is the launch's absolute ``perf_counter`` start in
        the remote process — CLOCK_MONOTONIC is system-wide per boot, so
        the parent translates it into its own epoch (the per-worker epoch
        handshake: workers report their device epoch once at startup and
        launch starts relative to it).  Without it the launch is laid
        backwards from "now".

        The lane's ``self_seconds`` is recorded as 0: its wall time runs
        *in parallel with* (and inside) the parent's wrapping kernel
        span, so charging it again would break the "sum of self_seconds
        counts each wall second at most once" trace invariant.  Counter
        deltas are likewise **not** attached — the parent merges them
        into its own counters inside the wrapping span, which keeps
        per-kernel counter totals single-counted (see
        ``docs/backends.md``).
        """
        if t_start_abs is not None:
            t_start = t_start_abs - self._epoch
        else:
            t_start = (time.perf_counter() - self._epoch) - seconds
        launch = KernelLaunch(
            name=name,
            threads=int(threads),
            seconds=float(seconds),
            steps=int(steps),
            t_start=t_start,
            self_seconds=0.0,
        )
        self.launches.append(launch)
        self.launches_total += 1
        tracer = self.tracer
        if tracer is not None:
            now_rel = time.perf_counter() - self._epoch
            tracer.add_span(
                name,
                category="kernel.worker",
                t_start=max(tracer.now() - (now_rel - t_start), 0.0),
                seconds=launch.seconds,
                attributes={
                    "device": self.name,
                    "threads": launch.threads,
                    "steps": launch.steps,
                    **(attributes or {}),
                },
            )
        return launch

    # -- recording / replay ----------------------------------------------------

    @contextmanager
    def recording(self):
        """Record the device work of a block into a :class:`ReplayableCost`.

        Captures the launches appended, the counter deltas, the *net*
        per-tag memory growth and the wall seconds of the block.  The cost
        can then be re-accounted on another device with :meth:`replay` —
        the mechanism behind reusable-index benchmarking (the reused
        build's cost is charged to every run that shares it, keeping
        fresh-device runs comparable to cold ones).

        The yielded cost is filled in when the block exits, including on
        exception (so a failed build is never silently half-recorded —
        but callers should discard the cost in that case).
        """
        cost = ReplayableCost()
        before_counters = self.counters.snapshot()
        before_total = self.launches_total
        before_tags = dict(self.memory.live_by_tag)
        start = time.perf_counter()
        try:
            yield cost
        finally:
            cost.seconds = time.perf_counter() - start
            cost.counters = self.counters.diff(before_counters)
            new = self.launches_total - before_total
            recorded = list(self.launches)[-new:] if new else []
            cost.launches = [replace(l, counters=dict(l.counters)) for l in recorded]
            cost.mem_by_tag = {
                tag: held - before_tags.get(tag, 0)
                for tag, held in self.memory.live_by_tag.items()
                if held - before_tags.get(tag, 0) > 0
            }

    def replay(self, cost: ReplayableCost) -> None:
        """Re-account a recorded block of work on this device.

        Counter deltas are added (``frontier_peak``, a high-watermark, is
        merged with :meth:`~KernelCounters.observe_peak`), the recorded
        launches are appended to the trace flagged ``replayed=True`` with
        their original durations, and the net memory growth is allocated
        tag by tag — which raises
        :class:`~repro.device.memory.DeviceMemoryError` under a capacity
        cap exactly as the live build would have (counters are applied
        first, mirroring a cold run where the build work precedes the
        failing allocation).
        """
        for key, value in cost.counters.items():
            if key == "frontier_peak":
                self.counters.observe_peak(key, value)
            else:
                self.counters.add(key, value)
        now = time.perf_counter() - self._epoch
        tracer = self.tracer
        trace_t = tracer.now() if tracer is not None else 0.0
        for launch in cost.launches:
            self.launches.append(
                replace(launch, counters=dict(launch.counters), t_start=now, replayed=True)
            )
            self.launches_total += 1
            if tracer is not None:
                # Replayed spans keep their recorded durations; consecutive
                # launches are laid end-to-end from the replay instant so
                # the batch reconstructs the original build's timeline.
                tracer.add_span(
                    launch.name,
                    category="kernel.replayed",
                    t_start=trace_t,
                    seconds=launch.seconds,
                    attributes={
                        "device": self.name,
                        "threads": launch.threads,
                        "steps": launch.steps,
                        "replayed": True,
                        **{f"counter.{k}": v for k, v in launch.counters.items() if v},
                    },
                )
                trace_t += launch.seconds
        for tag, nbytes in cost.mem_by_tag.items():
            self.memory.allocate(nbytes, tag)

    # -- trace views -----------------------------------------------------------

    @property
    def trace_dropped(self) -> int:
        """Launches evicted from the bounded trace ring."""
        return self.launches_total - len(self.launches)

    def trace_snapshot(self) -> list[dict]:
        """The trace ring as a list of plain span dicts (oldest first)."""
        return [
            {
                "name": l.name,
                "threads": l.threads,
                "steps": l.steps,
                "seconds": l.seconds,
                "self_seconds": l.self_seconds,
                "t_start": l.t_start,
                "replayed": l.replayed,
                "counters": dict(l.counters),
            }
            for l in self.launches
        ]

    def profile(self) -> dict:
        """Per-kernel aggregation of the trace (the ``nvprof`` summary view).

        Returns ``{name: {"launches", "replayed", "seconds",
        "self_seconds", "replayed_seconds", "threads", "steps",
        "counters"}}`` where ``replayed`` counts the launches
        re-accounted from a recorded build (their seconds are included —
        that is what keeps warm-index runs comparable to cold ones) and
        ``replayed_seconds`` is those launches' wall time (what a strict
        cold-equivalent budget adds back, since a warm run never actually
        waited for it).

        **Time semantics.**  ``seconds`` is *inclusive* span time: a
        kernel launched inside another kernel's span contributes to both
        names, so summing ``seconds`` across names over-counts wall time
        whenever kernels nest.  ``self_seconds`` is *exclusive* (each
        span's time minus its directly nested kernel spans): summing
        ``self_seconds`` across all names counts every wall second at
        most once, which makes it the correct column for whole-trace
        shares.  ``counters`` are per-kernel launch-delta totals and are
        inclusive exactly like ``seconds`` (``frontier_peak``, a
        high-watermark, is merged by max) — so counter-per-second rates
        computed within one row are always consistent.
        """
        out: dict[str, dict] = {}
        for l in self.launches:
            entry = out.setdefault(
                l.name,
                {
                    "launches": 0,
                    "replayed": 0,
                    "seconds": 0.0,
                    "self_seconds": 0.0,
                    "replayed_seconds": 0.0,
                    "threads": 0,
                    "steps": 0,
                    "counters": {},
                },
            )
            entry["launches"] += 1
            entry["seconds"] += l.seconds
            entry["self_seconds"] += l.self_seconds
            entry["threads"] += l.threads
            entry["steps"] += l.steps
            if l.replayed:
                entry["replayed"] += 1
                entry["replayed_seconds"] += l.seconds
            for key, value in l.counters.items():
                if key == "frontier_peak":
                    entry["counters"][key] = max(entry["counters"].get(key, 0), value)
                else:
                    entry["counters"][key] = entry["counters"].get(key, 0) + value
        return out

    def reset(self) -> None:
        """Clear counters, memory accounting and the kernel trace."""
        self.counters.reset()
        self.memory.reset()
        self.launches.clear()
        self.launches_total = 0
        self._epoch = time.perf_counter()

    def phase_seconds(self) -> dict[str, float]:
        """Total wall seconds per kernel name (the ``nvprof`` style view)."""
        out: dict[str, float] = {}
        for launch in self.launches:
            out[launch.name] = out.get(launch.name, 0.0) + launch.seconds
        return out

    def report(self) -> dict:
        """Combined run report: counters, memory, per-kernel profile."""
        return {
            "device": self.name,
            "counters": self.counters.snapshot(),
            "memory": self.memory.report(),
            "kernels": self.phase_seconds(),
            "profile": self.profile(),
            "trace_dropped": self.trace_dropped,
        }


_DEFAULT_DEVICE = Device(name="default-sim-gpu")


def get_default_device() -> Device:
    """The shared fallback device used when callers pass ``device=None``."""
    return _DEFAULT_DEVICE


def default_device(device: Device | None) -> Device:
    """Resolve an optional device argument to a concrete :class:`Device`."""
    return device if device is not None else _DEFAULT_DEVICE
