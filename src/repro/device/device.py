"""The :class:`Device` handle: one simulated GPU per algorithm run.

A :class:`Device` bundles the three pieces of per-run accounting the
reproduction reports alongside wall-clock time:

- :attr:`Device.counters` — machine-independent work counters
  (:class:`~repro.device.counters.KernelCounters`);
- :attr:`Device.memory`   — the device-memory ledger
  (:class:`~repro.device.memory.MemoryTracker`), optionally capped;
- kernel-launch records  — every batched kernel the algorithms execute is
  wrapped in :meth:`Device.kernel`, which records the launch, its logical
  thread count, and its wall-clock duration, giving a per-phase timing
  breakdown equivalent to ``nvprof``.

Algorithms accept ``device=None`` and fall back to a shared default device
(:func:`get_default_device`), so casual callers never see this machinery.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.device.counters import KernelCounters
from repro.device.memory import MemoryTracker


@dataclass
class KernelLaunch:
    """Record of one batched kernel execution."""

    name: str
    threads: int
    seconds: float
    steps: int = 0


@dataclass
class Device:
    """A simulated GPU: counters + memory ledger + launch log.

    Parameters
    ----------
    name:
        Cosmetic identifier, shown in reports.
    capacity_bytes:
        Device memory cap forwarded to :class:`MemoryTracker`; ``None``
        (default) disables OOM simulation.
    """

    name: str = "sim-gpu0"
    capacity_bytes: int | None = None
    counters: KernelCounters = field(default_factory=KernelCounters)
    memory: MemoryTracker = field(init=False)
    launches: list[KernelLaunch] = field(default_factory=list)

    def __post_init__(self):
        self.memory = MemoryTracker(self.capacity_bytes)

    @contextmanager
    def kernel(self, name: str, threads: int):
        """Context manager wrapping one batched kernel launch.

        ``threads`` is the logical thread count (one per query/point/edge,
        as the paper's kernels assign).  The block's wall time and the
        launch are recorded; the yielded :class:`KernelLaunch` lets the
        kernel body report how many wavefront steps it took (a divergence
        proxy: fewer steps for the same work means better convergence of
        the batched traversal).
        """
        launch = KernelLaunch(name=name, threads=int(threads), seconds=0.0)
        self.counters.add("kernel_launches", 1)
        start = time.perf_counter()
        try:
            yield launch
        finally:
            launch.seconds = time.perf_counter() - start
            self.counters.add("thread_steps", launch.steps)
            self.launches.append(launch)

    def reset(self) -> None:
        """Clear counters, memory accounting and the launch log."""
        self.counters.reset()
        self.memory.reset()
        self.launches.clear()

    def phase_seconds(self) -> dict[str, float]:
        """Total wall seconds per kernel name (the ``nvprof`` style view)."""
        out: dict[str, float] = {}
        for launch in self.launches:
            out[launch.name] = out.get(launch.name, 0.0) + launch.seconds
        return out

    def report(self) -> dict:
        """Combined run report: counters, memory, per-kernel seconds."""
        return {
            "device": self.name,
            "counters": self.counters.snapshot(),
            "memory": self.memory.report(),
            "kernels": self.phase_seconds(),
        }


_DEFAULT_DEVICE = Device(name="default-sim-gpu")


def get_default_device() -> Device:
    """The shared fallback device used when callers pass ``device=None``."""
    return _DEFAULT_DEVICE


def default_device(device: Device | None) -> Device:
    """Resolve an optional device argument to a concrete :class:`Device`."""
    return device if device is not None else _DEFAULT_DEVICE
