"""Pluggable execution backends behind :class:`~repro.device.device.Device`.

Every batched kernel in the reproduction is, by default, a single-threaded
numpy wavefront executed in the calling process — the ``"serial"`` backend.
This module adds the first *real* execution substrate: the ``"process"``
backend fans the traversal's chunk work out over a persistent pool of OS
worker processes, with the tree's arrays published once through
``multiprocessing.shared_memory`` (zero-copy for the workers) and only the
per-chunk results crossing the queue.

The contract (see ``docs/backends.md``) is **bit-identical results**:

- *chunk counts* (``count_within``): each query's count accumulates
  entirely inside its own chunk, so workers run the exact serial per-chunk
  kernel — including the ``stop_at`` early exit — and the parent scatters
  the disjoint per-chunk count slices back together.
- *leaf hits* (``for_each_leaf_hit`` with no ``finished_fn`` and no
  component mask): workers record each wavefront step's ``(query, leaf)``
  batches and the parent replays them through the caller's callback in
  (chunk, step) order — the *identical* callback sequence the serial
  engine produces, so every downstream consumer (the buffered
  ``PairResolver``, weighted accumulations, union-find counters) is
  reproduced bit-for-bit by construction.

Traversals that keep cross-chunk state (a stateful ``finished_fn``, the
Borůvka component mask) silently fall back to the serial engine — same
results, no parallelism — so callers never need to know which kernels
parallelise.

Counter merge semantics: worker counter deltas are added to the parent
device *inside* the parent's wrapping :meth:`Device.kernel` span, except
``kernel_launches`` and ``thread_steps`` (the parent wrapper supplies
both, matching the serial engine's single launch) and ``frontier_peak``
(a high-watermark, merged via ``observe_peak``).  Worker launches are
additionally appended to the parent trace as ``name@w<k>`` lanes with
their wall/self seconds translated through a per-worker epoch handshake
(``perf_counter`` is CLOCK_MONOTONIC, comparable across processes on one
boot), so :meth:`Device.profile` and the span tracer keep working.
"""

from __future__ import annotations

import atexit
import os
import queue as _queue_mod
import time
import traceback
from collections import OrderedDict
from multiprocessing import shared_memory

import multiprocessing as mp

import numpy as np

from repro.device.device import Device, KernelFaultError

#: Accepted ``--backend`` names.
BACKENDS = ("serial", "process")

#: How many distinct trees the parent keeps published (and each worker
#: keeps attached) before evicting the least-recently-used segment.
_TREE_CACHE = 4
#: Per-worker cache of per-call query segments (closed LRU-style).
_CALL_CACHE = 8

#: Poll interval while waiting on worker results: bounds both watchdog
#: latency and dead-worker detection latency.
_POLL_S = 0.05


# ---------------------------------------------------------------------------
# shared-memory arenas
# ---------------------------------------------------------------------------


def _align(offset: int, alignment: int = 16) -> int:
    return (offset + alignment - 1) & ~(alignment - 1)


class ShmArena:
    """One shared-memory segment holding several named numpy arrays.

    The parent copies the arrays in once; workers attach by ``(name,
    descr)`` and get zero-copy views.  POSIX semantics make the lifecycle
    easy: the parent may ``unlink`` the segment while workers still have
    it mapped — the memory survives until the last mapping closes.
    """

    def __init__(self, arrays: dict[str, np.ndarray]):
        descr = []
        offset = 0
        prepared = {}
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            prepared[name] = arr
            offset = _align(offset)
            descr.append((name, arr.dtype.str, arr.shape, offset))
            offset += arr.nbytes
        self.shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        for (name, dtype, shape, off) in descr:
            arr = prepared[name]
            if arr.nbytes:
                dst = np.ndarray(shape, dtype=dtype, buffer=self.shm.buf, offset=off)
                dst[...] = arr
        self.descr = descr
        self.nbytes = max(offset, 1)

    @property
    def name(self) -> str:
        return self.shm.name

    def ref(self) -> tuple:
        """The picklable ``(shm_name, descr)`` handle workers attach by."""
        return (self.shm.name, self.descr)

    def destroy(self) -> None:
        try:
            self.shm.close()
        except Exception:
            pass
        try:
            self.shm.unlink()
        except Exception:
            pass


def _attach_arena(ref: tuple) -> tuple:
    """Worker side: map ``(shm_name, descr)`` to ``(shm, {name: array})``.

    The attachment is immediately unregistered from the resource tracker:
    the *parent* owns the segment's lifetime (it created and will unlink
    it); without the unregister, every worker exit would prompt the
    tracker to warn about — or worse, unlink — segments it does not own.
    """
    shm_name, descr = ref
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    arrays = {
        name: np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
        for (name, dtype, shape, off) in descr
    }
    return shm, arrays


class _SharedTree:
    """A BVH facade over shared-memory arrays.

    Carries exactly the attributes the traversal engines touch: the
    fitted boxes, the leaf-range visibility array and the packed
    parent-major child layout.  ``order``/``position`` stay in the
    parent — callbacks (which consume them) run there.
    """

    __slots__ = ("n_primitives", "node_lo", "node_hi", "node_range_hi", "_packed")

    def __init__(self, arrays: dict, meta: dict):
        self.n_primitives = int(meta["n_primitives"])
        self.node_lo = arrays["node_lo"]
        self.node_hi = arrays["node_hi"]
        self.node_range_hi = arrays["node_range_hi"]
        self._packed = (
            arrays["ch_ids"],
            arrays["ch_lo"],
            arrays["ch_hi"],
            arrays["ch_rng_hi"],
        )

    @property
    def n_internal(self) -> int:
        return self.n_primitives - 1

    @property
    def root(self) -> int:
        return 0

    @property
    def dim(self) -> int:
        return self.node_lo.shape[1]

    def packed_children(self) -> tuple:
        return self._packed


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------


def _cached_attach(cache: OrderedDict, key, ref, limit: int):
    entry = cache.get(key)
    if entry is None:
        entry = _attach_arena(ref)
        cache[key] = entry
        while len(cache) > limit:
            _, (old_shm, _) = cache.popitem(last=False)
            try:
                old_shm.close()
            except Exception:
                pass
    else:
        cache.move_to_end(key)
    return entry


def _execute_job(wdev: Device, caches: dict, payload: dict) -> dict:
    # Imported here (not at module top) so a spawned worker resolves the
    # engine through its own interpreter's import machinery.
    from repro.bvh.traversal import for_each_leaf_hit
    from repro.device.primitives import scatter_add

    stamp, tree_ref, meta = payload["tree"]
    _, tree_arrays = _cached_attach(caches["trees"], stamp, tree_ref, _TREE_CACHE)
    tree = _SharedTree(tree_arrays, meta)
    call_key, call_ref = payload["call"]
    _, call_arrays = _cached_attach(caches["calls"], call_key, call_ref, _CALL_CACHE)
    queries = call_arrays["queries"]
    mask = call_arrays.get("mask")
    weights = call_arrays.get("weights")
    ids = payload["ids"]
    eps = payload["eps"]
    kernel_name = payload["kernel_name"]

    wdev.counters.reset()
    before = wdev.counters.snapshot()

    if payload["kind"] == "count":
        # The exact per-chunk kernel `count_within` runs serially: a full
        # (m,) accumulator (only this chunk's slots are touched), the
        # same scatter_add accounting, the same `counts >= stop_at`
        # early-exit closure.
        m = queries.shape[0]
        stop_at = payload["stop_at"]
        if weights is None:
            counts = np.zeros(m, dtype=np.int64)

            def on_hits(q_ids, _pos):
                scatter_add(counts, q_ids, counters=wdev.counters)

        else:
            counts = np.zeros(m, dtype=np.float64)

            def on_hits(q_ids, pos):
                scatter_add(counts, q_ids, weights[pos], counters=wdev.counters)

        finished_fn = None
        if stop_at is not None:

            def finished_fn(f_ids):
                return counts[f_ids] >= stop_at

        res = for_each_leaf_hit(
            tree,
            queries,
            eps,
            on_hits,
            mask_positions=mask,
            finished_fn=finished_fn,
            device=wdev,
            kernel_name=kernel_name,
            chunk_size=None,
            traversal=payload["traversal"],
            group_size=payload["group_size"],
            _chunk_ids=ids,
        )
        out = {"counts": counts[ids]}
    else:
        # Leaf-hit recording: keep each wavefront step's batch so the
        # parent can replay the exact serial callback sequence.
        step_q: list[np.ndarray] = []
        step_p: list[np.ndarray] = []

        def on_hits(q_ids, pos):
            step_q.append(q_ids.copy())
            step_p.append(pos.copy())

        res = for_each_leaf_hit(
            tree,
            queries,
            eps,
            on_hits,
            mask_positions=mask,
            device=wdev,
            kernel_name=kernel_name,
            leaf_test_is_distance=payload["leaf_test_is_distance"],
            chunk_size=None,
            traversal=payload["traversal"],
            group_size=payload["group_size"],
            _chunk_ids=ids,
        )
        if step_q:
            out = {
                "hit_q": np.concatenate(step_q),
                "hit_pos": np.concatenate(step_p),
                "lens": np.array([a.shape[0] for a in step_q], dtype=np.int64),
            }
        else:
            out = {"hit_q": None, "hit_pos": None, "lens": np.zeros(0, dtype=np.int64)}

    launch = wdev.launches[-1]
    out.update(
        steps=res.steps,
        leaf_hits=res.leaf_hits,
        frontier_peak=res.frontier_peak,
        counters=wdev.counters.diff(before),
        launch={
            "threads": int(ids.shape[0]),
            "seconds": launch.seconds,
            "self_seconds": launch.self_seconds,
            "steps": launch.steps,
            "t_start": launch.t_start,
        },
    )
    return out


def _worker_main(worker_id: int, task_q, result_q) -> None:
    wdev = Device(name=f"proc-worker{worker_id}")
    # Epoch handshake: `wdev._epoch` is an *absolute* perf_counter stamp
    # (CLOCK_MONOTONIC, comparable across processes on one boot); the
    # parent uses it to translate worker-relative launch t_starts into
    # its own epoch so merged traces interleave correctly.
    result_q.put(("hello", worker_id, wdev._epoch))
    caches = {"trees": OrderedDict(), "calls": OrderedDict()}
    while True:
        msg = task_q.get()
        if msg is None:
            return
        if msg[0] == "boom":  # test hook: simulate a worker dying mid-chunk
            os._exit(17)
        _, seq, gen, payload = msg
        try:
            out = _execute_job(wdev, caches, payload)
            result_q.put(("ok", seq, gen, worker_id, out))
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            result_q.put(
                (
                    "err",
                    seq,
                    gen,
                    worker_id,
                    type(exc).__name__,
                    str(exc),
                    traceback.format_exc(),
                )
            )


# ---------------------------------------------------------------------------
# backends
# ---------------------------------------------------------------------------


class ExecutionBackend:
    """Interface every execution substrate implements.

    ``parallel`` is the dispatch gate: the traversal entry points consult
    it and hand eligible work to :meth:`run_leaf_hits` /
    :meth:`run_count`; a ``False`` backend (serial) means "execute in
    process on the caller's thread" — the engines' default path.
    """

    name = "serial"
    parallel = False

    def run_leaf_hits(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError

    def run_count(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        return None

    def describe(self) -> dict:
        return {"backend": self.name}


class SerialBackend(ExecutionBackend):
    """The in-process numpy wavefront path (the historical behaviour)."""


#: Shared serial backend instance (stateless).
SERIAL = SerialBackend()


class ProcessBackend(ExecutionBackend):
    """Multiprocess shared-memory chunk execution.

    A persistent pool of ``workers`` OS processes (forked where
    available) executes traversal chunks; tree arrays are published once
    per tree through shared memory and republished only when the tree is
    refit (``BVH.invalidate_packed`` drops the publication stamp).

    The pool is lazy (spawned on first parallel dispatch) and
    self-healing: an unexpectedly dead worker surfaces as a typed
    :class:`KernelFaultError` — feeding the existing breaker/retry
    machinery — and the next dispatch respawns a fresh pool against the
    still-published segments.
    """

    name = "process"
    parallel = True

    def __init__(self, workers: int | None = None, start_method: str | None = None):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1; got {workers}")
        self.workers = int(workers)
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else None
            )
        self._ctx = mp.get_context(start_method)
        self._procs: list = []
        self._task_q = None
        self._result_q = None
        self._epochs: dict[int, float] = {}
        self._broken = False
        self._gen = 0
        self._stamp_counter = 0
        self._trees: "OrderedDict[int, tuple]" = OrderedDict()
        self._tree_arenas: "OrderedDict[int, ShmArena]" = OrderedDict()
        self._closed = False
        atexit.register(self.close)

    # -- pool lifecycle -----------------------------------------------------

    def _ensure_pool(self) -> None:
        if self._closed:
            raise RuntimeError("ProcessBackend is closed")
        if self._procs and not self._broken:
            return
        self._teardown_procs()
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        self._procs = [
            self._ctx.Process(
                target=_worker_main,
                args=(i, self._task_q, self._result_q),
                daemon=True,
                name=f"repro-backend-w{i}",
            )
            for i in range(self.workers)
        ]
        for p in self._procs:
            p.start()
        self._epochs = {}
        deadline = time.monotonic() + 30.0
        while len(self._epochs) < self.workers:
            try:
                msg = self._result_q.get(timeout=_POLL_S)
            except _queue_mod.Empty:
                if time.monotonic() > deadline or any(
                    not p.is_alive() for p in self._procs
                ):
                    self._broken = True
                    raise KernelFaultError(
                        "process backend: worker pool failed to start"
                    )
                continue
            if msg[0] == "hello":
                self._epochs[msg[1]] = msg[2]
        self._broken = False

    def _teardown_procs(self) -> None:
        if self._task_q is not None:
            for _ in self._procs:
                try:
                    self._task_q.put_nowait(None)
                except Exception:
                    pass
        for p in self._procs:
            p.join(timeout=1.0)
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        for q in (self._task_q, self._result_q):
            if q is not None:
                try:
                    q.close()
                    q.join_thread()
                except Exception:
                    pass
        self._procs = []
        self._task_q = None
        self._result_q = None
        self._epochs = {}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._teardown_procs()
        finally:
            for arena in self._tree_arenas.values():
                arena.destroy()
            self._tree_arenas.clear()
            self._trees.clear()

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    def describe(self) -> dict:
        return {"backend": self.name, "workers": self.workers}

    # -- test hook ----------------------------------------------------------

    def _inject_worker_crash(self) -> None:
        """Enqueue a poison job: the worker that picks it up dies with
        ``os._exit`` — the 'worker killed mid-chunk' scenario."""
        self._ensure_pool()
        self._task_q.put(("boom",))

    # -- publication --------------------------------------------------------

    def _publish_tree(self, tree) -> tuple:
        stamp = getattr(tree, "_shm_stamp", None)
        if stamp is not None and stamp in self._trees:
            self._trees.move_to_end(stamp)
            self._tree_arenas.move_to_end(stamp)
            return self._trees[stamp]
        ch_ids, ch_lo, ch_hi, ch_rng_hi = tree.packed_children()
        arena = ShmArena(
            {
                "node_lo": tree.node_lo,
                "node_hi": tree.node_hi,
                "node_range_hi": tree.node_range_hi,
                "ch_ids": ch_ids,
                "ch_lo": ch_lo,
                "ch_hi": ch_hi,
                "ch_rng_hi": ch_rng_hi,
            }
        )
        self._stamp_counter += 1
        stamp = self._stamp_counter
        try:
            tree._shm_stamp = stamp
        except Exception:
            pass
        meta = {"n_primitives": tree.n_primitives}
        ref = (stamp, arena.ref(), meta)
        self._trees[stamp] = ref
        self._tree_arenas[stamp] = arena
        while len(self._tree_arenas) > _TREE_CACHE:
            old_stamp, old_arena = self._tree_arenas.popitem(last=False)
            self._trees.pop(old_stamp, None)
            old_arena.destroy()
        return ref

    @staticmethod
    def _call_arrays(queries, mask_positions, leaf_weights) -> dict:
        arrays = {"queries": queries}
        if mask_positions is not None:
            arrays["mask"] = mask_positions
        if leaf_weights is not None:
            arrays["weights"] = leaf_weights
        return arrays

    # -- scheduling ---------------------------------------------------------

    @staticmethod
    def _chunks(m: int, chunk_size: int, schedule) -> list[np.ndarray]:
        out = []
        for start in range(0, m, chunk_size):
            end = min(start + chunk_size, m)
            if schedule is not None:
                out.append(np.array(schedule[start:end], dtype=np.int64))
            else:
                out.append(np.arange(start, end, dtype=np.int64))
        return out

    @staticmethod
    def _chunk_engines(
        tree,
        queries,
        eps,
        chunks,
        traversal,
        group_size,
        cost_model,
        kernel_name,
        tree_stats,
        dev,
    ) -> list[str]:
        """Resolve ``traversal="auto"`` parent-side: workers only ever see
        a concrete engine, so the per-chunk choice (and its counters) is
        made once, deterministically, regardless of worker scheduling."""
        if traversal != "auto":
            return [traversal] * len(chunks)
        from repro.bvh.autotune import choose_engine
        from repro.bvh.qgroups import DEFAULT_GROUP_SIZE

        gsz = group_size if group_size is not None else DEFAULT_GROUP_SIZE
        engines = []
        for ids in chunks:
            decision = choose_engine(
                tree, queries[ids], eps, gsz, cost_model, kernel_name, tree_stats
            )
            dev.counters.add(f"auto_{decision.engine}_chunks", 1)
            dev.counters.add(
                "auto_pred_cost_us", int(decision.pred_seconds * 1e6)
            )
            engines.append(decision.engine)
        return engines

    def _dispatch(self, jobs: list[dict]):
        """Run jobs on the pool, yielding ``(seq, out)`` in seq order."""
        self._gen += 1
        gen = self._gen
        for seq, payload in enumerate(jobs):
            self._task_q.put(("job", seq, gen, payload))
        pending: dict[int, dict] = {}
        next_seq = 0
        outstanding = len(jobs)
        while outstanding:
            try:
                msg = self._result_q.get(timeout=_POLL_S)
            except _queue_mod.Empty:
                dead = [p for p in self._procs if not p.is_alive()]
                if dead:
                    self._broken = True
                    codes = ", ".join(
                        f"{p.name} exit={p.exitcode}" for p in dead
                    )
                    raise KernelFaultError(
                        f"process backend: worker died mid-chunk ({codes})"
                    )
                yield None  # poll point: caller checks its watchdog
                continue
            if msg[0] == "hello":
                self._epochs[msg[1]] = msg[2]
                continue
            if msg[1] is not None and msg[2] != gen:
                continue  # stale result from an aborted generation
            if msg[0] == "err":
                _, _seq, _gen, wid, kind, text, tb = msg
                self._broken = False
                if kind == "KernelFaultError":
                    raise KernelFaultError(text)
                raise RuntimeError(
                    f"process backend: worker {wid} raised {kind}: {text}\n{tb}"
                )
            _, seq, _gen, wid, out = msg
            out["worker"] = wid
            pending[seq] = out
            outstanding -= 1
            while next_seq in pending:
                yield next_seq, pending.pop(next_seq)
                next_seq += 1
        while next_seq in pending:
            yield next_seq, pending.pop(next_seq)
            next_seq += 1

    def _merge_counters(self, dev: Device, delta: dict) -> None:
        # The parent's wrapping Device.kernel span supplies the single
        # `kernel_launches` increment and the summed `thread_steps`
        # (launch.steps), exactly as the serial engine's one launch does
        # — so the workers' own bookkeeping for those two is dropped.
        for key, value in delta.items():
            if key in ("kernel_launches", "thread_steps"):
                continue
            if key == "frontier_peak":
                dev.counters.observe_peak(key, value)
            else:
                dev.counters.add(key, value)

    def _record_lane(self, dev: Device, kernel_name: str, out: dict) -> None:
        rec = out["launch"]
        epoch = self._epochs.get(out["worker"])
        t_abs = None if epoch is None else epoch + rec["t_start"]
        dev.record_external_launch(
            f"{kernel_name}@w{out['worker']}",
            threads=rec["threads"],
            seconds=rec["seconds"],
            steps=rec["steps"],
            t_start_abs=t_abs,
        )

    # -- entry points -------------------------------------------------------

    def run_leaf_hits(
        self,
        tree,
        queries,
        eps,
        callback,
        *,
        mask_positions=None,
        device=None,
        kernel_name="bvh_traverse",
        leaf_test_is_distance=True,
        chunk_size=None,
        query_order="input",
        traversal="single",
        group_size=None,
        watchdog=None,
        morton_schedule=None,
        cost_model=None,
        tree_stats=None,
    ):
        from repro.bvh.traversal import TraversalResult, query_schedule

        dev = device
        m = queries.shape[0]
        if watchdog is not None:
            watchdog()
        # The dual/auto engines always schedule in Morton order; the
        # parent computes the permutation once (or reuses the caller's
        # cached one) and ships pre-sliced chunk ids.
        order = "morton" if traversal in ("dual", "auto") else query_order
        if order == "morton" and morton_schedule is not None:
            schedule = morton_schedule
        else:
            schedule = query_schedule(queries, order)
        chunks = self._chunks(m, chunk_size, schedule)
        engines = self._chunk_engines(
            tree,
            queries,
            eps,
            chunks,
            traversal,
            group_size,
            cost_model,
            kernel_name,
            tree_stats,
            dev,
        )
        self._ensure_pool()
        tree_ref = self._publish_tree(tree)
        call_arena = ShmArena(self._call_arrays(queries, mask_positions, None))
        call_ref = (call_arena.name, call_arena.ref())
        jobs = [
            {
                "kind": "hits",
                "tree": tree_ref,
                "call": call_ref,
                "ids": ids,
                "eps": float(eps),
                "kernel_name": kernel_name,
                "leaf_test_is_distance": leaf_test_is_distance,
                "traversal": engine,
                "group_size": group_size,
            }
            for ids, engine in zip(chunks, engines)
        ]
        result = TraversalResult()
        try:
            with dev.kernel(kernel_name, threads=m) as launch:
                for item in self._dispatch(jobs):
                    if item is None:
                        if watchdog is not None:
                            watchdog()
                        continue
                    _, out = item
                    self._merge_counters(dev, out["counters"])
                    result.steps += out["steps"]
                    result.leaf_hits += out["leaf_hits"]
                    result.frontier_peak = max(
                        result.frontier_peak, out["frontier_peak"]
                    )
                    self._record_lane(dev, kernel_name, out)
                    lens = out["lens"]
                    if lens.size:
                        bounds = np.cumsum(lens)[:-1]
                        for q_step, p_step in zip(
                            np.split(out["hit_q"], bounds),
                            np.split(out["hit_pos"], bounds),
                        ):
                            callback(q_step, p_step)
                launch.steps = result.steps
        finally:
            call_arena.destroy()
        return result

    def run_count(
        self,
        tree,
        queries,
        eps,
        *,
        stop_at=None,
        mask_positions=None,
        device=None,
        chunk_size=None,
        leaf_weights=None,
        query_order="input",
        traversal="single",
        group_size=None,
        watchdog=None,
        morton_schedule=None,
        cost_model=None,
        tree_stats=None,
    ):
        from repro.bvh.traversal import query_schedule

        dev = device
        m = queries.shape[0]
        if watchdog is not None:
            watchdog()
        order = "morton" if traversal in ("dual", "auto") else query_order
        if order == "morton" and morton_schedule is not None:
            schedule = morton_schedule
        else:
            schedule = query_schedule(queries, order)
        chunks = self._chunks(m, chunk_size, schedule)
        engines = self._chunk_engines(
            tree,
            queries,
            eps,
            chunks,
            traversal,
            group_size,
            cost_model,
            "bvh_count",
            tree_stats,
            dev,
        )
        self._ensure_pool()
        tree_ref = self._publish_tree(tree)
        call_arena = ShmArena(
            self._call_arrays(queries, mask_positions, leaf_weights)
        )
        call_ref = (call_arena.name, call_arena.ref())
        jobs = [
            {
                "kind": "count",
                "tree": tree_ref,
                "call": call_ref,
                "ids": ids,
                "eps": float(eps),
                "kernel_name": "bvh_count",
                "stop_at": None if stop_at is None else float(stop_at),
                "traversal": engine,
                "group_size": group_size,
            }
            for ids, engine in zip(chunks, engines)
        ]
        counts = np.zeros(
            m, dtype=np.int64 if leaf_weights is None else np.float64
        )
        steps = 0
        try:
            with dev.kernel("bvh_count", threads=m) as launch:
                for seq_item in self._dispatch(jobs):
                    if seq_item is None:
                        if watchdog is not None:
                            watchdog()
                        continue
                    seq, out = seq_item
                    self._merge_counters(dev, out["counters"])
                    steps += out["steps"]
                    self._record_lane(dev, "bvh_count", out)
                    counts[jobs[seq]["ids"]] = out["counts"]
                launch.steps = steps
        finally:
            call_arena.destroy()
        return counts


# ---------------------------------------------------------------------------
# resolution
# ---------------------------------------------------------------------------

#: Shared process pools, one per worker count — string specs resolve here
#: so repeated `backend="process"` calls reuse one warm pool instead of
#: spawning (and leaking) a pool per call.
_SHARED_PROCESS: dict[int, ProcessBackend] = {}


def shared_process_backend(workers: int | None = None) -> ProcessBackend:
    key = int(workers) if workers is not None else 0
    backend = _SHARED_PROCESS.get(key)
    if backend is None or backend._closed:
        backend = ProcessBackend(workers=workers)
        _SHARED_PROCESS[key] = backend
    return backend


def coerce_backend(spec, workers: int | None = None) -> ExecutionBackend:
    """Resolve a backend argument: ``None``/``"serial"``/``"process"`` or
    an :class:`ExecutionBackend` instance (returned as-is)."""
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None or spec == "serial":
        return SERIAL
    if spec == "process":
        return shared_process_backend(workers)
    raise ValueError(f"backend must be one of {BACKENDS}; got {spec!r}")
