"""Deterministic emulations of the device atomics the algorithms rely on.

The paper replaces Algorithm 3's critical section (lines 10-12) with a
single ``atomicCAS`` on the labels array, and the union-find of
Jaiganesh & Burtscher hooks roots with ``atomicMin``-style races.  On a
GPU, many threads issue these atomics concurrently and the hardware picks
some linearisation.  Here whole *batches* of requests arrive as arrays and
the helpers apply one fixed, deterministic linearisation:

- :func:`atomic_cas_batch`  — first request (in batch order) wins per
  address, exactly one winner per address, mirroring "one thread's CAS
  succeeds, the rest observe the new value and retry/skip";
- :func:`atomic_min_scatter` / :func:`atomic_max_scatter` — ``np.minimum.at``
  scatter, the value-level fixed point of racing ``atomicMin`` calls (the
  result of concurrent atomicMin is order-independent, so this emulation is
  *exact*, not just a legal linearisation);
- :func:`atomic_add` — ``np.add.at`` scatter; likewise order-independent.

Every helper takes an optional :class:`~repro.device.KernelCounters` to
report the atomic traffic the kernel generated.
"""

from __future__ import annotations

import numpy as np

from repro.device.counters import KernelCounters


def atomic_cas_batch(
    target: np.ndarray,
    index: np.ndarray,
    expected: np.ndarray,
    desired: np.ndarray,
    counters: KernelCounters | None = None,
) -> np.ndarray:
    """Batched compare-and-swap: per request, ``target[index] = desired`` iff
    ``target[index] == expected``; the first matching request per address wins.

    Parameters
    ----------
    target:
        Flat integer array mutated in place (e.g. the labels array).
    index, expected, desired:
        Equal-length request arrays.  ``expected``/``desired`` may be
        scalars, broadcast to the request count.

    Returns
    -------
    success:
        Boolean array, one entry per request; ``True`` where that request's
        swap was performed.

    Notes
    -----
    Duplicate addresses within one batch model concurrent threads racing on
    one location: the earliest request whose ``expected`` matches the
    *original* value succeeds; later requests to the same address observe a
    mutated value and fail, mirroring a GPU where losers of the CAS race see
    the winner's write.
    """
    index = np.asarray(index, dtype=np.intp)
    n = index.shape[0]
    expected = np.broadcast_to(np.asarray(expected), (n,))
    desired = np.broadcast_to(np.asarray(desired), (n,))
    if counters is not None:
        counters.add("cas_attempts", n)
    if n == 0:
        return np.zeros(0, dtype=bool)

    # First occurrence of each address in batch order.
    first_pos = np.full(target.shape[0], -1, dtype=np.intp)
    # np.minimum.at keeps the smallest request position per address.
    positions = np.arange(n, dtype=np.intp)
    big = np.iinfo(np.intp).max
    first_seen = np.full(target.shape[0], big, dtype=np.intp)
    np.minimum.at(first_seen, index, positions)
    first_pos = first_seen[index]

    is_first = positions == first_pos
    matches = target[index] == expected
    success = is_first & matches
    target[index[success]] = desired[success]
    if counters is not None:
        counters.add("cas_successes", int(success.sum()))
    return success


def atomic_min_scatter(
    target: np.ndarray,
    index: np.ndarray,
    value: np.ndarray,
    counters: KernelCounters | None = None,
) -> None:
    """Batched ``atomicMin``: ``target[i] = min(target[i], v)`` per request.

    Concurrent ``atomicMin`` calls commute, so this scatter is an exact
    model of the device behaviour, not merely one linearisation.
    """
    index = np.asarray(index, dtype=np.intp)
    if counters is not None:
        counters.add("cas_attempts", index.shape[0])
    np.minimum.at(target, index, value)


def atomic_max_scatter(
    target: np.ndarray,
    index: np.ndarray,
    value: np.ndarray,
    counters: KernelCounters | None = None,
) -> None:
    """Batched ``atomicMax`` — see :func:`atomic_min_scatter`."""
    index = np.asarray(index, dtype=np.intp)
    if counters is not None:
        counters.add("cas_attempts", index.shape[0])
    np.maximum.at(target, index, value)


def atomic_add(
    target: np.ndarray,
    index: np.ndarray,
    value,
    counters: KernelCounters | None = None,
) -> None:
    """Batched ``atomicAdd``: ``target[i] += v`` per request (commutative,
    hence exact)."""
    index = np.asarray(index, dtype=np.intp)
    if counters is not None:
        counters.add("cas_attempts", index.shape[0])
    np.add.at(target, index, value)
