"""Thrust-level parallel primitives used by the kernels.

BVH construction (Karras 2012) and the dense-cell grid of
FDBSCAN-DenseBox are built from a small set of classic data-parallel
primitives — exactly the set a CUDA implementation would take from
Thrust/CUB.  Each helper here is the numpy-vectorised equivalent; none of
them contain Python-level loops over elements.

All functions are pure (no hidden state) and operate on 1-D arrays unless
documented otherwise.
"""

from __future__ import annotations

import numpy as np


def exclusive_scan(values: np.ndarray, dtype=None) -> np.ndarray:
    """Exclusive prefix sum: ``out[i] = sum(values[:i])``, ``out[0] = 0``.

    The workhorse of stream compaction and CSR offset construction.
    """
    values = np.asarray(values)
    if dtype is None:
        dtype = np.result_type(values.dtype, np.int64) if values.dtype.kind in "iub" else values.dtype
    out = np.zeros(values.shape[0] + 1, dtype=dtype)
    np.cumsum(values, dtype=dtype, out=out[1:])
    return out[:-1]


def inclusive_scan(values: np.ndarray, dtype=None) -> np.ndarray:
    """Inclusive prefix sum: ``out[i] = sum(values[:i + 1])``."""
    values = np.asarray(values)
    if dtype is None:
        dtype = np.result_type(values.dtype, np.int64) if values.dtype.kind in "iub" else values.dtype
    return np.cumsum(values, dtype=dtype)


def sort_by_key(keys: np.ndarray, *values: np.ndarray, stable: bool = True):
    """Sort ``keys`` ascending, permuting each array in ``values`` alongside.

    Returns ``(sorted_keys, order)`` when no values are given, otherwise
    ``(sorted_keys, *permuted_values, order)``.  ``order`` is the permutation
    applied, so callers can invert it.  A stable sort matches the radix sort
    a GPU pipeline would use and keeps duplicate-key handling deterministic.
    """
    keys = np.asarray(keys)
    kind = "stable" if stable else "quicksort"
    order = np.argsort(keys, kind=kind)
    sorted_keys = keys[order]
    if not values:
        return sorted_keys, order
    permuted = tuple(np.asarray(v)[order] for v in values)
    return (sorted_keys, *permuted, order)


def stream_compact(mask: np.ndarray, *arrays: np.ndarray):
    """Keep the entries of every array where ``mask`` is ``True``.

    Equivalent to ``thrust::copy_if``; returns a tuple mirroring ``arrays``
    (or a single array when one input is given).
    """
    mask = np.asarray(mask, dtype=bool)
    out = tuple(np.asarray(a)[mask] for a in arrays)
    return out[0] if len(out) == 1 else out


def run_length_encode(sorted_keys: np.ndarray):
    """Compact runs of equal values in a *sorted* key array.

    Returns ``(unique_keys, run_starts, run_lengths)``.  ``run_starts[i]`` is
    the index of the first occurrence of ``unique_keys[i]`` in
    ``sorted_keys``.  This is how the grid turns a sorted cell-id array into
    the set of non-empty cells with their populations.
    """
    sorted_keys = np.asarray(sorted_keys)
    n = sorted_keys.shape[0]
    if n == 0:
        return sorted_keys[:0], np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    run_starts = np.flatnonzero(boundary).astype(np.int64)
    run_lengths = np.diff(np.append(run_starts, n)).astype(np.int64)
    return sorted_keys[run_starts], run_starts, run_lengths


def scatter_add(
    out: np.ndarray,
    index: np.ndarray,
    values: np.ndarray | None = None,
    counters=None,
) -> np.ndarray:
    """Deterministic scatter-add: ``out[index[i]] += values[i]`` for all ``i``.

    The numpy idiom for this, ``np.add.at``, is an order-of-magnitude
    slower than a histogram because it dispatches per element; this helper
    routes every scatter through ``np.bincount``, which models what a GPU
    kernel actually does — each output bin is reduced independently — while
    accumulating each bin's contributions *in input order*, exactly like
    ``np.add.at``, so integer results are equal and float results are
    bit-identical.

    ``values`` may be omitted (each hit contributes 1), a boolean mask
    (each ``True`` hit contributes 1 — the predicated-increment form), or
    a numeric array of per-element contributions.  ``out`` is modified in
    place and returned.  Out-of-range indices raise ``ValueError``.

    ``counters`` (a :class:`~repro.device.counters.KernelCounters`)
    accumulates the number of scattered elements in ``scatter_adds`` so
    benchmark records can track scatter traffic.
    """
    index = np.asarray(index, dtype=np.intp)
    n = out.shape[0]
    if index.size and (index.min() < 0 or index.max() >= n):
        raise ValueError("scatter_add index out of range")
    if counters is not None:
        counters.add("scatter_adds", index.shape[0])
    if index.size == 0:
        return out
    if values is None:
        out += np.bincount(index, minlength=n).astype(out.dtype, copy=False)
        return out
    values = np.asarray(values)
    if values.dtype == bool:
        hit = index[values]
        if hit.size:
            out += np.bincount(hit, minlength=n).astype(out.dtype, copy=False)
        return out
    out += np.bincount(index, weights=values, minlength=n).astype(
        out.dtype, copy=False
    )
    return out


def segmented_reduce(values: np.ndarray, segment_ids: np.ndarray, num_segments: int, op: str = "sum"):
    """Reduce ``values`` per segment (segments given by id, not necessarily sorted).

    ``op`` is one of ``"sum"``, ``"min"``, ``"max"``.  Empty segments reduce
    to the operation identity (0 / +inf / -inf for floats; type extremes for
    ints).
    """
    values = np.asarray(values)
    segment_ids = np.asarray(segment_ids, dtype=np.intp)
    if op == "sum":
        out = np.zeros(num_segments, dtype=values.dtype)
        if values.ndim == 1:
            scatter_add(out, segment_ids, values)
        else:
            np.add.at(out, segment_ids, values)
        return out
    if op == "min":
        ident = np.inf if values.dtype.kind == "f" else np.iinfo(values.dtype).max
        out = np.full(num_segments, ident, dtype=values.dtype)
        np.minimum.at(out, segment_ids, values)
        return out
    if op == "max":
        ident = -np.inf if values.dtype.kind == "f" else np.iinfo(values.dtype).min
        out = np.full(num_segments, ident, dtype=values.dtype)
        np.maximum.at(out, segment_ids, values)
        return out
    raise ValueError(f"unknown op {op!r}; expected 'sum', 'min' or 'max'")


def concatenated_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[k], starts[k] + counts[k])`` for all ``k``.

    The standard expand-by-prefix-sum idiom: this is how a kernel turns a
    batch of (cell, population) segments into one flat index stream —
    e.g. gathering every member of every dense cell hit during a traversal
    step — without a Python-level loop.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if starts.shape != counts.shape:
        raise ValueError(f"starts/counts differ in shape: {starts.shape} vs {counts.shape}")
    if np.any(counts < 0):
        raise ValueError("negative segment count")
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + within


def segment_ids_from_counts(counts: np.ndarray) -> np.ndarray:
    """Segment id per output element for segments of the given sizes
    (``[2, 0, 3] -> [0, 0, 2, 2, 2]``)."""
    counts = np.asarray(counts, dtype=np.int64)
    return np.repeat(np.arange(counts.shape[0], dtype=np.int64), counts)


def histogram_by_key(keys: np.ndarray, num_bins: int) -> np.ndarray:
    """Count occurrences of each key in ``[0, num_bins)``.

    Keys outside the range raise ``ValueError`` — a kernel writing out of
    bounds is a bug, not data.
    """
    keys = np.asarray(keys, dtype=np.intp)
    if keys.size and (keys.min() < 0 or keys.max() >= num_bins):
        raise ValueError("histogram key out of range")
    return np.bincount(keys, minlength=num_bins).astype(np.int64)
