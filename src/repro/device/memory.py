"""Device-memory ledger.

The paper's framework (Section 3.2) is explicitly designed around the
limited memory of a GPU: the fused algorithms keep memory *linear in the
number of points*, whereas adjacency-graph algorithms such as G-DBSCAN keep
the full edge set and "tend to run out of memory even for smaller datasets"
(the survey [32] measured 166x the footprint of CUDA-DClust).

:class:`MemoryTracker` gives every algorithm a common ledger:

- allocations are recorded with a *tag* (``"bvh"``, ``"adjacency"``,
  ``"labels"``, ...) so reports can break the footprint down by data
  structure;
- ``capacity_bytes`` optionally caps the live footprint.  Exceeding the cap
  raises :class:`DeviceMemoryError`, which the benchmark harness catches to
  reproduce the paper's missing G-DBSCAN data points (Figure 4(h));
- :attr:`MemoryTracker.peak_bytes` is the number the memory experiment
  reports.

The tracker measures the footprint of the *device-resident* data
structures the algorithms declare, not the Python process RSS — exactly the
quantity the paper reasons about.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np


class DeviceMemoryError(MemoryError):
    """Raised when an allocation would exceed the device memory capacity."""

    def __init__(self, requested: int, live: int, capacity: int, tag: str):
        self.requested = int(requested)
        self.live = int(live)
        self.capacity = int(capacity)
        self.tag = tag
        super().__init__(
            f"device OOM allocating {requested} bytes for '{tag}': "
            f"{live} bytes live, capacity {capacity} bytes"
        )


class MemoryTracker:
    """Allocation ledger with optional capacity cap.

    Parameters
    ----------
    capacity_bytes:
        Maximum allowed live footprint; ``None`` means unlimited.  The
        paper's single V100 has 16 GiB; benchmarks use much smaller caps so
        the OOM regime is reachable at laptop problem sizes.
    """

    def __init__(self, capacity_bytes: int | None = None):
        self.capacity_bytes = capacity_bytes
        self.live_bytes = 0
        self.peak_bytes = 0
        self.live_by_tag: dict[str, int] = {}
        self.peak_by_tag: dict[str, int] = {}
        self.alloc_count = 0

    # -- raw byte accounting -------------------------------------------------

    def allocate(self, nbytes: int, tag: str = "untagged", transient: bool = False) -> int:
        """Record an allocation of ``nbytes`` under ``tag``.

        Returns ``nbytes`` for convenience.  Raises
        :class:`DeviceMemoryError` if the cap would be exceeded; the ledger
        is left unchanged in that case.

        ``transient=True`` marks host-emulation scratch (e.g. the wavefront
        traversal frontier) that has no device-resident counterpart — on
        the GPU the same work uses bounded per-thread traversal stacks.
        Transient bytes are recorded in the ledger and per-tag peaks (so
        reports can show them) but are exempt from the capacity check.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if (
            not transient
            and self.capacity_bytes is not None
            and self.live_bytes + nbytes > self.capacity_bytes
        ):
            raise DeviceMemoryError(nbytes, self.live_bytes, self.capacity_bytes, tag)
        self.live_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)
        self.live_by_tag[tag] = self.live_by_tag.get(tag, 0) + nbytes
        self.peak_by_tag[tag] = max(self.peak_by_tag.get(tag, 0), self.live_by_tag[tag])
        self.alloc_count += 1
        return nbytes

    def free(self, nbytes: int, tag: str = "untagged") -> None:
        """Release ``nbytes`` previously recorded under ``tag``."""
        nbytes = int(nbytes)
        held = self.live_by_tag.get(tag, 0)
        if nbytes > held:
            raise ValueError(f"freeing {nbytes} bytes from '{tag}' which holds {held}")
        self.live_bytes -= nbytes
        self.live_by_tag[tag] = held - nbytes

    @contextmanager
    def scoped(self, nbytes: int, tag: str = "untagged"):
        """Context manager: allocation held for the duration of the block."""
        self.allocate(nbytes, tag)
        try:
            yield
        finally:
            self.free(nbytes, tag)

    # -- numpy conveniences ----------------------------------------------------

    def array(self, shape, dtype, tag: str = "untagged") -> np.ndarray:
        """Allocate a zeroed device array, recording its footprint.

        The caller owns releasing it with :meth:`free_array` (or may leak it
        into the run's footprint, which is what a real kernel pipeline does
        with persistent state).
        """
        arr = np.zeros(shape, dtype=dtype)
        self.allocate(arr.nbytes, tag)
        return arr

    def track_array(self, arr: np.ndarray, tag: str = "untagged") -> np.ndarray:
        """Record an existing array's footprint and return it unchanged."""
        self.allocate(arr.nbytes, tag)
        return arr

    def free_array(self, arr: np.ndarray, tag: str = "untagged") -> None:
        """Release an array's footprint recorded under ``tag``."""
        self.free(arr.nbytes, tag)

    # -- reporting ---------------------------------------------------------------

    def reset(self) -> None:
        """Forget all accounting (capacity is kept)."""
        self.live_bytes = 0
        self.peak_bytes = 0
        self.live_by_tag.clear()
        self.peak_by_tag.clear()
        self.alloc_count = 0

    def report(self) -> dict:
        """Summary dict: live/peak totals and per-tag peaks."""
        return {
            "live_bytes": self.live_bytes,
            "peak_bytes": self.peak_bytes,
            "capacity_bytes": self.capacity_bytes,
            "peak_by_tag": dict(sorted(self.peak_by_tag.items())),
            "alloc_count": self.alloc_count,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = self.capacity_bytes if self.capacity_bytes is not None else "inf"
        return (
            f"MemoryTracker(live={self.live_bytes}, peak={self.peak_bytes}, "
            f"capacity={cap})"
        )
