"""Machine-independent work counters for the device model.

Wall-clock time on a simulated device is dominated by the host interpreter
and therefore only weakly comparable to the paper's V100 measurements.  The
counters collected here measure the *work the kernels perform* — the
quantity the paper's optimisations actually target:

- ``distance_evals``  — pairwise distance computations (the figure the
  dense-box optimisation of Section 4.2 is designed to reduce);
- ``nodes_visited``   — BVH nodes touched during traversal (reduced by the
  leaf-index mask of Section 4.1, Figure 1);
- ``pairs_processed`` — neighbour pairs handed to UNION (halved by the
  mask: each edge processed once instead of twice);
- ``union_ops`` / ``find_steps`` — disjoint-set work (Section 4's
  synchronisation-free union-find);
- ``cas_attempts`` / ``cas_successes`` — border-point attachment traffic
  (Algorithm 3, lines 9-12);
- ``kernel_launches`` / ``thread_steps`` — launch count and the total
  number of per-thread wavefront steps, a proxy for occupancy;
- ``frontier_peak``   — the largest traversal frontier, a proxy for the
  transient memory the batched traversal needs.

All counters are plain integers; :meth:`KernelCounters.snapshot` /
:meth:`KernelCounters.diff` make it easy for benchmarks to report the work
done by a single phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class KernelCounters:
    """Accumulated work counters for one :class:`~repro.device.Device`."""

    distance_evals: int = 0
    nodes_visited: int = 0
    pairs_processed: int = 0
    union_ops: int = 0
    find_steps: int = 0
    cas_attempts: int = 0
    cas_successes: int = 0
    kernel_launches: int = 0
    thread_steps: int = 0
    frontier_peak: int = 0
    dense_cell_points: int = 0
    bytes_scanned: int = 0
    extra: dict = field(default_factory=dict)

    _INT_FIELDS = (
        "distance_evals",
        "nodes_visited",
        "pairs_processed",
        "union_ops",
        "find_steps",
        "cas_attempts",
        "cas_successes",
        "kernel_launches",
        "thread_steps",
        "frontier_peak",
        "dense_cell_points",
        "bytes_scanned",
    )

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``.

        Unknown names accumulate in :attr:`extra`, so kernels may define
        ad-hoc counters without touching this class.
        """
        if name in self._INT_FIELDS:
            setattr(self, name, getattr(self, name) + int(amount))
        else:
            self.extra[name] = self.extra.get(name, 0) + int(amount)

    def observe_peak(self, name: str, value: int) -> None:
        """Record ``value`` into a high-watermark counter ``name``."""
        if name in self._INT_FIELDS:
            setattr(self, name, max(getattr(self, name), int(value)))
        else:
            self.extra[name] = max(self.extra.get(name, 0), int(value))

    def reset(self) -> None:
        """Zero every counter (including ad-hoc ones)."""
        for f in self._INT_FIELDS:
            setattr(self, f, 0)
        self.extra.clear()

    def snapshot(self) -> dict:
        """Return a plain-``dict`` copy of the current counter values."""
        out = {f: getattr(self, f) for f in self._INT_FIELDS}
        out.update(self.extra)
        return out

    def diff(self, before: dict) -> dict:
        """Return counter deltas relative to an earlier :meth:`snapshot`.

        High-watermark counters (``frontier_peak``) are reported as the
        current value, not a delta, because a high-watermark does not
        decompose over phases.
        """
        now = self.snapshot()
        out = {}
        for key, value in now.items():
            if key == "frontier_peak":
                out[key] = value
            else:
                out[key] = value - before.get(key, 0)
        return out

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [
            f"{f.name}={getattr(self, f.name)}"
            for f in fields(self)
            if f.name != "extra" and getattr(self, f.name)
        ]
        if self.extra:
            parts.append(f"extra={self.extra}")
        return "KernelCounters(" + ", ".join(parts) + ")"
