"""Data-parallel *device model*: the execution substrate for the GPU kernels.

The paper's algorithms are expressed as batched GPU kernels (CUDA/Kokkos via
ArborX).  This package provides the Python-side analogue used throughout the
reproduction:

``device``
    :class:`~repro.device.device.Device` — a handle bundling kernel-launch
    accounting, machine-independent work counters and a device-memory ledger.
    Every algorithm in :mod:`repro.core` and :mod:`repro.baselines` executes
    against a :class:`Device` so that runs are comparable by *work performed*
    (distance evaluations, BVH nodes visited, union operations, peak bytes)
    and not only by host wall-clock time.

``atomics``
    Deterministic emulations of the device atomics the paper relies on:
    ``atomicCAS`` for border-point attachment (Algorithm 3, lines 10-12) and
    ``atomicMin`` for lock-free union-find hooking.

``primitives``
    The Thrust-level toolkit (scan, sort-by-key, stream compaction,
    histogram, segmented reduction) used by BVH construction and the
    dense-cell grid.

``memory``
    An allocation ledger with an optional capacity cap.  The cap lets the
    benchmark harness reproduce the out-of-memory failures the paper reports
    for G-DBSCAN on the largest PortoTaxi samples (Figure 4(h)).
"""

from repro.device.atomics import (
    atomic_add,
    atomic_cas_batch,
    atomic_max_scatter,
    atomic_min_scatter,
)
from repro.device.counters import KernelCounters
from repro.device.device import (
    Device,
    KernelFaultError,
    KernelLaunch,
    ReplayableCost,
    default_device,
    get_default_device,
)
from repro.device.memory import DeviceMemoryError, MemoryTracker
from repro.device.primitives import (
    concatenated_ranges,
    exclusive_scan,
    histogram_by_key,
    inclusive_scan,
    run_length_encode,
    segment_ids_from_counts,
    segmented_reduce,
    sort_by_key,
    stream_compact,
)

__all__ = [
    "Device",
    "DeviceMemoryError",
    "KernelCounters",
    "KernelFaultError",
    "KernelLaunch",
    "MemoryTracker",
    "ReplayableCost",
    "atomic_add",
    "atomic_cas_batch",
    "atomic_max_scatter",
    "atomic_min_scatter",
    "concatenated_ranges",
    "default_device",
    "exclusive_scan",
    "get_default_device",
    "histogram_by_key",
    "inclusive_scan",
    "run_length_encode",
    "segment_ids_from_counts",
    "segmented_reduce",
    "sort_by_key",
    "stream_compact",
]
