"""Benchmark record persistence and regression comparison.

The figure benchmarks print their series, but performance work needs
*history*: save a run's records to JSON, reload them later, and diff two
runs to catch regressions (the optimisation-workflow advice: track
performance across commits, never trust memory of what a number was).

Records round-trip losslessly through :func:`save_records` /
:func:`load_records`; :func:`compare_records` matches cells by their
identity (algorithm, traversal engine, dataset, n, eps, minpts) and
reports per-cell speedups with a regression threshold.

Besides wall seconds, the comparison tracks **per-point counter rates**
(:meth:`~repro.bench.harness.RunRecord.counter_rates` —
``distance_evals / n`` and friends).  Wall time is noisy across machines
and loads; the rates are deterministic work measures, so a rate
regression is an *algorithmic* alarm — the code started doing more work
per point — even when the wall clock happens to look fine.
"""

from __future__ import annotations

import json
import math

from repro.bench.harness import RunRecord

#: Fields that identify a cell across runs.  ``traversal`` and ``backend``
#: are part of the identity: a both-mode sweep runs every (algorithm,
#: cell) pair once per engine/backend, and the runs must not collide in a
#: comparison (the backend A/B report relies on both variants coexisting
#: in one history).
_KEY_FIELDS = ("algorithm", "traversal", "backend", "dataset", "n", "eps", "min_samples")


def _key(record: RunRecord) -> tuple:
    return tuple(getattr(record, f) for f in _KEY_FIELDS)


def save_records(path: str, records: list[RunRecord], meta: dict | None = None) -> None:
    """Write records (plus optional run metadata) as JSON."""
    payload = {
        "meta": meta or {},
        "records": [
            {
                "algorithm": r.algorithm,
                "dataset": r.dataset,
                "n": r.n,
                "eps": r.eps,
                "min_samples": r.min_samples,
                "traversal": r.traversal,
                "backend": r.backend,
                "seconds": None if math.isnan(r.seconds) else r.seconds,
                "status": r.status,
                "n_clusters": r.n_clusters,
                "n_noise": r.n_noise,
                "dense_fraction": None
                if math.isnan(r.dense_fraction)
                else r.dense_fraction,
                "peak_bytes": r.peak_bytes,
                "counters": {k: int(v) for k, v in r.counters.items()},
                "kernels": {
                    name: {
                        "launches": int(row["launches"]),
                        "replayed": int(row["replayed"]),
                        "seconds": float(row["seconds"]),
                        "self_seconds": float(row.get("self_seconds", 0.0)),
                        "replayed_seconds": float(row.get("replayed_seconds", 0.0)),
                        "threads": int(row["threads"]),
                        "steps": int(row["steps"]),
                        "counters": {
                            k: int(v) for k, v in row.get("counters", {}).items()
                        },
                    }
                    for name, row in r.kernels.items()
                },
                "reused_index": bool(r.reused_index),
                "attempts": int(r.attempts),
                "faults": int(r.faults),
                "detail": r.detail,
                "replayed_build_seconds": float(r.replayed_build_seconds),
                "trace_dropped": int(r.trace_dropped),
                # Derived from counters/n; saved so humans diffing the
                # JSON see the tracked rates without recomputing them.
                "counter_rates": {
                    k: float(v) for k, v in r.counter_rates().items()
                },
            }
            for r in records
        ],
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)


def load_records(path: str) -> tuple[list[RunRecord], dict]:
    """Read records saved by :func:`save_records`; returns
    ``(records, meta)``."""
    with open(path) as fh:
        payload = json.load(fh)
    records = []
    for row in payload["records"]:
        records.append(
            RunRecord(
                algorithm=row["algorithm"],
                dataset=row["dataset"],
                n=int(row["n"]),
                eps=float(row["eps"]),
                min_samples=int(row["min_samples"]),
                traversal=row.get("traversal", "single"),
                backend=row.get("backend", "serial"),
                seconds=float("nan") if row["seconds"] is None else row["seconds"],
                status=row["status"],
                n_clusters=int(row["n_clusters"]),
                n_noise=int(row["n_noise"]),
                dense_fraction=float("nan")
                if row["dense_fraction"] is None
                else row["dense_fraction"],
                peak_bytes=int(row["peak_bytes"]),
                counters=dict(row["counters"]),
                kernels={k: dict(v) for k, v in row.get("kernels", {}).items()},
                reused_index=bool(row.get("reused_index", False)),
                attempts=int(row.get("attempts", 1)),
                faults=int(row.get("faults", 0)),
                detail=row.get("detail", ""),
                replayed_build_seconds=float(row.get("replayed_build_seconds", 0.0)),
                trace_dropped=int(row.get("trace_dropped", 0)),
            )
        )
    return records, payload.get("meta", {})


def compare_records(
    baseline: list[RunRecord],
    current: list[RunRecord],
    regression_threshold: float = 1.25,
    rate_threshold: float | None = None,
) -> dict:
    """Diff two runs cell by cell.

    Returns a dict with:

    - ``regressions``: cells slower than ``regression_threshold`` x the
      baseline;
    - ``improvements``: cells faster than ``1 / threshold`` x baseline;
    - ``rate_regressions`` / ``rate_improvements``: cells whose tracked
      per-point counter rates (:meth:`RunRecord.counter_rates`) moved past
      ``rate_threshold`` (defaults to ``regression_threshold``) — the
      machine-independent work alarms;
    - ``status_changes``: cells whose status flipped (e.g. ok -> oom);
    - ``result_changes``: cells whose clustering output changed — these
      are *correctness* alarms, not performance ones;
    - ``unmatched``: cells present in only one run.
    """
    if rate_threshold is None:
        rate_threshold = regression_threshold
    base = {_key(r): r for r in baseline}
    cur = {_key(r): r for r in current}
    report = {
        "regressions": [],
        "improvements": [],
        "rate_regressions": [],
        "rate_improvements": [],
        "status_changes": [],
        "result_changes": [],
        "unmatched": sorted(
            str(k) for k in (set(base) ^ set(cur))
        ),
    }
    for key in sorted(set(base) & set(cur), key=str):
        old, new = base[key], cur[key]
        if old.status != new.status:
            report["status_changes"].append(
                {"cell": str(key), "before": old.status, "after": new.status}
            )
            continue
        if old.status != "ok":
            continue
        if (old.n_clusters, old.n_noise) != (new.n_clusters, new.n_noise):
            report["result_changes"].append(
                {
                    "cell": str(key),
                    "before": (old.n_clusters, old.n_noise),
                    "after": (new.n_clusters, new.n_noise),
                }
            )
        if old.seconds > 0:
            ratio = new.seconds / old.seconds
            entry = {"cell": str(key), "ratio": ratio, "before": old.seconds, "after": new.seconds}
            if ratio > regression_threshold:
                report["regressions"].append(entry)
            elif ratio < 1.0 / regression_threshold:
                report["improvements"].append(entry)
        old_rates = old.counter_rates()
        new_rates = new.counter_rates()
        for name in sorted(set(old_rates) & set(new_rates)):
            if old_rates[name] <= 0:
                continue
            ratio = new_rates[name] / old_rates[name]
            entry = {
                "cell": str(key),
                "counter": name,
                "ratio": ratio,
                "before": old_rates[name],
                "after": new_rates[name],
            }
            if ratio > rate_threshold:
                report["rate_regressions"].append(entry)
            elif ratio < 1.0 / rate_threshold:
                report["rate_improvements"].append(entry)
    return report
