"""CI bench-smoke: re-run the committed baseline sweep and gate on it.

``python -m repro.bench.smoke [baseline.json]`` reloads a history file
written by ``repro bench --save`` (default ``BENCH_sweep.json``), re-runs
the *same* sweep — the saved ``meta["argv"]`` is parsed with the CLI's own
parser, so the smoke run and the baseline can never drift apart — and
fails (exit 1) when the fresh records regress:

- **wall seconds** past ``BENCH_SMOKE_WALL_THRESHOLD`` (default 1.25 —
  set it generously in CI, where the runner is not the machine the
  baseline was recorded on);
- **per-point counter rates** past ``BENCH_SMOKE_RATE_THRESHOLD``
  (default 1.25 — rates are machine-independent, so this one may be
  tight: more ``distance_evals`` per point is an algorithmic regression
  regardless of hardware);
- any **status change** (ok -> oom) or **result change** (labels
  summary moved) — correctness alarms, never threshold-gated.

A baseline saved from a ``--traversal both`` sweep replays every engine
(single, dual *and* auto — the sweep runs once per engine, exactly like
the CLI), and the smoke additionally gates on the **dual engine's
pruning win**: for every tree cell present under both concrete engines,
the dual engine's total pruning work
``box_tests + group_box_tests + nodes_visited`` must stay at or below
``BENCH_SMOKE_DUAL_RATIO`` (default 0.7) times the single engine's
``box_tests + nodes_visited``.  That is the machine-independent form of
the dual engine's reason to exist — a code change that silently degrades
group pruning fails CI even when wall seconds stay flat.

An every-engine sweep also gates the **auto chooser**:

- **regret**: each ok ``auto`` cell's wall seconds must stay at or below
  ``BENCH_SMOKE_AUTO_REGRET`` (default 1.1) times the *better* concrete
  engine's wall on the same cell — all three cells ran in this same
  smoke process, so the comparison is same-machine and fair;
- **selection**: across the committed cells, auto must have picked the
  dual engine for at least one chunk — a chooser that degenerates to
  always-single (on the clustered cells the baseline commits precisely
  so dual can win) fails CI even though its results stay correct.

When a fitted cost-model artifact is present (``COSTMODEL.json`` next to
the baseline file by default, or ``BENCH_SMOKE_COSTMODEL``), the smoke
additionally gates the
**cost model's freshness** against the committed baseline — both checks
machine-independent, so they hold on any CI runner:

- the artifact's source fingerprint must equal the baseline's own row
  fingerprint (an artifact fitted from a *different* sweep is stale and
  must be refit with ``repro bench ... --fit-cost-model``);
- ``drift()`` over the baseline's merged kernel profile must report no
  alarms at the artifact's committed tolerance (the fit's calibration
  makes a fresh artifact exactly drift-free here, so any alarm means
  artifact and baseline diverged).

Setting ``BENCH_SMOKE_DRIFT_TOLERANCE`` additionally drifts the model
against the *fresh rerun's* profile — a machine-dependent check (wall
seconds move with the runner), so it is opt-in and needs a generous
tolerance.

A baseline that includes hierarchy cells (``--algorithms ...,hdbscan``)
replays the full hierarchy path — BVH core distances, BVH-Borůvka
mutual-reachability MST, condensed-tree extraction — and the smoke
additionally gates on the **Borůvka engine's pruning win**: for every ok
hdbscan cell, the MST traversal's own distance work (the ``boruvka_nn``
kernel's ``distance_evals``) must stay at or below
``BENCH_SMOKE_MST_RATIO`` (default 0.25) times ``n * (n - 1)`` — the
distance count the retained O(n²) Prim baseline pays by construction.
That is the paper's reason to run Borůvka over the tree at all; a change
that silently degrades the component masking or the bound-capped radius
schedule fails CI even when wall seconds stay flat.

The smoke run never writes the baseline; refreshing it is an explicit
``repro bench ... --save`` on a maintainer's machine.
"""

from __future__ import annotations

import os
import sys

from repro.bench.harness import HIERARCHY_ALGORITHMS, run_sweep
from repro.bench.history import compare_records, load_records

#: Default baseline path (the committed sweep records).
DEFAULT_BASELINE = "BENCH_sweep.json"

#: Environment knobs for the two regression thresholds.
WALL_THRESHOLD_ENV = "BENCH_SMOKE_WALL_THRESHOLD"
RATE_THRESHOLD_ENV = "BENCH_SMOKE_RATE_THRESHOLD"

#: Ceiling on dual/single pruning work per cell of a both-mode sweep.
DUAL_RATIO_ENV = "BENCH_SMOKE_DUAL_RATIO"

#: Ceiling on the Borůvka MST traversal's distance work per hierarchy
#: cell, as a fraction of Prim's n(n-1) distance evaluations.
MST_RATIO_ENV = "BENCH_SMOKE_MST_RATIO"

#: Ceiling on an auto cell's wall seconds over min(single, dual) wall on
#: the same cell of an every-engine sweep.
AUTO_REGRET_ENV = "BENCH_SMOKE_AUTO_REGRET"

#: Cells whose better engine finishes faster than this are exempt from
#: the regret gate — their wall is dominated by launch noise.
AUTO_REGRET_FLOOR_SECONDS = 0.05

#: Fitted cost-model artifact the smoke gates on (skipped when absent).
COSTMODEL_ENV = "BENCH_SMOKE_COSTMODEL"
DEFAULT_COSTMODEL = "COSTMODEL.json"

#: Opt-in tolerance for drifting the model against the *fresh* rerun's
#: profile (machine-dependent — wall seconds move with the runner).
DRIFT_TOLERANCE_ENV = "BENCH_SMOKE_DRIFT_TOLERANCE"

#: Alarm categories that fail the smoke run.
ALARM_KINDS = ("regressions", "rate_regressions", "status_changes", "result_changes")


def _threshold(env: str, default: float) -> float:
    raw = os.environ.get(env)
    if raw is None:
        return default
    value = float(raw)
    if value <= 1.0:
        raise ValueError(f"{env} must be > 1.0; got {raw!r}")
    return value


def _dual_ratio_threshold(default: float = 0.7) -> float:
    raw = os.environ.get(DUAL_RATIO_ENV)
    if raw is None:
        return default
    value = float(raw)
    if value <= 0.0:
        raise ValueError(f"{DUAL_RATIO_ENV} must be > 0; got {raw!r}")
    return value


def _auto_regret_threshold(default: float = 1.1) -> float:
    raw = os.environ.get(AUTO_REGRET_ENV)
    if raw is None:
        return default
    value = float(raw)
    if value <= 1.0:
        raise ValueError(f"{AUTO_REGRET_ENV} must be > 1.0; got {raw!r}")
    return value


def auto_regret_alarms(records, threshold: float) -> list[str]:
    """Auto cells of an every-engine sweep that ran slower than
    ``threshold`` times the better concrete engine.

    Cells are paired by their full parameter key minus ``traversal``;
    only ``"ok"`` auto cells whose single/dual twins are both ``"ok"``
    participate, and only cells that actually made engine decisions
    (``auto_single_chunks + auto_dual_chunks > 0`` — baselines carry the
    traversal key but never choose).  All three cells ran in this same
    process, so the wall comparison is same-machine.  Cells whose better
    concrete engine finishes under :data:`AUTO_REGRET_FLOOR_SECONDS` are
    exempt: at millisecond scale the gate would be measuring launch
    noise, not the engine choice.
    """
    by_engine: dict[tuple, dict[str, object]] = {}
    for rec in records:
        if rec.status != "ok":
            continue
        key = (rec.algorithm, rec.dataset, rec.n, rec.eps, rec.min_samples,
               rec.backend)
        by_engine.setdefault(key, {})[rec.traversal] = rec
    alarms = []
    for key, engines in sorted(by_engine.items()):
        auto = engines.get("auto")
        single = engines.get("single")
        dual = engines.get("dual")
        if auto is None or single is None or dual is None:
            continue
        decisions = auto.counters.get("auto_single_chunks", 0) + auto.counters.get(
            "auto_dual_chunks", 0
        )
        if not decisions:
            continue
        best = min(single.seconds, dual.seconds)
        if best < AUTO_REGRET_FLOOR_SECONDS:
            continue
        if auto.seconds > threshold * best:
            alarms.append(
                f"{auto.algorithm} [{auto.dataset} n={auto.n} eps={auto.eps:g} "
                f"minpts={auto.min_samples}] auto wall {auto.seconds:.4g}s > "
                f"{threshold:g} x min(single {single.seconds:.4g}s, "
                f"dual {dual.seconds:.4g}s)"
            )
    return alarms


def auto_selection_alarms(records) -> list[str]:
    """Alarm when the auto chooser never picked the dual engine anywhere.

    The committed baseline includes clustered high-``eps`` cells chosen
    precisely because the dual engine wins there; an auto run that makes
    decisions yet selects single for every chunk of every cell means the
    chooser has degenerated, even though results stay correct.  Sweeps
    with no deciding auto cells (no tree algorithms under auto) are
    exempt.
    """
    deciding = [
        rec
        for rec in records
        if rec.traversal == "auto"
        and rec.status == "ok"
        and (
            rec.counters.get("auto_single_chunks", 0)
            + rec.counters.get("auto_dual_chunks", 0)
        )
    ]
    if not deciding:
        return []
    dual_chunks = sum(rec.counters.get("auto_dual_chunks", 0) for rec in deciding)
    if dual_chunks:
        return []
    cells = ", ".join(
        f"{rec.algorithm}[n={rec.n} eps={rec.eps:g}]" for rec in deciding[:6]
    )
    return [
        f"auto never selected the dual engine across {len(deciding)} deciding "
        f"cell(s) ({cells}) — the cost-model chooser has degenerated to "
        f"always-single"
    ]


def _mst_ratio_threshold(default: float = 0.25) -> float:
    raw = os.environ.get(MST_RATIO_ENV)
    if raw is None:
        return default
    value = float(raw)
    if value <= 0.0:
        raise ValueError(f"{MST_RATIO_ENV} must be > 0; got {raw!r}")
    return value


def mst_ratio_alarms(records, threshold: float) -> list[str]:
    """Hierarchy cells whose Borůvka MST traversal did more distance work
    than ``threshold`` times Prim's ``n * (n - 1)``.

    Only ``"ok"`` hierarchy cells that actually ran the ``boruvka_nn``
    kernel participate — a ``mst_algorithm="prim"`` cell (or a failed
    one) carries no tree-traversal signal to gate on.
    """
    alarms = []
    for rec in records:
        if rec.algorithm.lower() not in HIERARCHY_ALGORITHMS:
            continue
        if rec.status != "ok" or rec.n < 2:
            continue
        kernel = (rec.kernels or {}).get("boruvka_nn")
        if not kernel:
            continue
        evals = kernel.get("counters", {}).get("distance_evals", 0)
        ratio = evals / float(rec.n * (rec.n - 1))
        if ratio > threshold:
            alarms.append(
                f"{rec.algorithm} [{rec.dataset} n={rec.n} eps={rec.eps:g} "
                f"minpts={rec.min_samples} {rec.traversal}] boruvka_nn "
                f"distance_evals / n(n-1) = {ratio:.3f} > {threshold:g}"
            )
    return alarms


def _pruning_work(rec, dual: bool) -> int:
    """The machine-independent pruning total of one tree cell."""
    total = rec.counters.get("box_tests", 0) + rec.counters.get("nodes_visited", 0)
    if dual:
        total += rec.counters.get("group_box_tests", 0)
    return total


def dual_ratio_alarms(records, threshold: float) -> list[str]:
    """Cells of a both-mode sweep where the dual engine's pruning work
    exceeds ``threshold`` times the single engine's.

    Cells are paired by their full parameter key minus ``traversal``;
    only ``"ok"`` cells that performed box tests under the single engine
    participate (baselines and failed cells carry no pruning signal).
    """
    singles = {}
    for rec in records:
        if rec.traversal == "single" and rec.status == "ok":
            key = (rec.algorithm, rec.dataset, rec.n, rec.eps, rec.min_samples)
            singles[key] = rec
    alarms = []
    for rec in records:
        if rec.traversal != "dual" or rec.status != "ok":
            continue
        key = (rec.algorithm, rec.dataset, rec.n, rec.eps, rec.min_samples)
        base = singles.get(key)
        if base is None or not base.counters.get("box_tests", 0):
            continue
        ratio = _pruning_work(rec, dual=True) / _pruning_work(base, dual=False)
        if ratio > threshold:
            alarms.append(
                f"{rec.algorithm} [{rec.dataset} n={rec.n} eps={rec.eps:g} "
                f"minpts={rec.min_samples}] dual/single pruning work "
                f"{ratio:.3f} > {threshold:g}"
            )
    return alarms


def costmodel_alarms(baseline, records, costmodel_path: str) -> list[str]:
    """Freshness alarms for a committed cost-model artifact.

    Machine-independent: the artifact must have been fitted from exactly
    the committed baseline's profile rows (fingerprint equality), and its
    ``drift()`` over that same baseline must be alarm-free at the
    committed tolerance — the fit's per-kernel calibration makes a fresh
    artifact satisfy both by construction.  With
    ``BENCH_SMOKE_DRIFT_TOLERANCE`` set, the *fresh rerun's* merged
    profile is drifted too (machine-dependent, opt-in).
    """
    from repro.bench.report import merge_kernel_profiles
    from repro.obs.fit import FittedCostModel, fit_rows, rows_fingerprint

    model = FittedCostModel.load(costmodel_path)
    alarms: list[str] = []
    ok_baseline = [r for r in baseline if r.status == "ok" and r.kernels]
    expected = rows_fingerprint(fit_rows([r.kernels for r in ok_baseline]))
    if expected != model.source_fingerprint:
        alarms.append(
            f"stale artifact: {costmodel_path} was fitted from "
            f"{model.source_fingerprint[:12]} but the baseline's rows "
            f"fingerprint is {expected[:12]} — refit with "
            f"'repro bench ... --fit-cost-model'"
        )
    drift = model.drift(merge_kernel_profiles(ok_baseline))
    for row in drift["alarms"]:
        alarms.append(
            f"baseline drift: {row['kernel']} observed {row['observed']:.4g}s "
            f"vs predicted {row['predicted']:.4g}s (ratio {row['ratio']:.3f}, "
            f"tolerance {drift['tolerance']:g})"
        )
    raw = os.environ.get(DRIFT_TOLERANCE_ENV)
    if raw:
        fresh = model.drift(
            merge_kernel_profiles([r for r in records if r.status == "ok"]),
            tolerance=float(raw),
        )
        for row in fresh["alarms"]:
            alarms.append(
                f"fresh-run drift: {row['kernel']} observed "
                f"{row['observed']:.4g}s vs predicted {row['predicted']:.4g}s "
                f"(ratio {row['ratio']:.3f}, tolerance {float(raw):g})"
            )
    return alarms


def _strip_option(argv: list[str], name: str) -> list[str]:
    """Drop ``name`` (and its separate value token, if any) from argv."""
    out: list[str] = []
    skip_value = False
    for token in argv:
        if skip_value:
            skip_value = False
            if not token.startswith("-"):
                continue
        if token == name:
            skip_value = True
            continue
        if token.startswith(name + "="):
            continue
        out.append(token)
    return out


def _sweep_args(argv: list[str]):
    """Parse a saved ``meta['argv']`` with the CLI's own bench parser."""
    from repro.cli import build_parser

    if not argv or argv[0] != "bench":
        raise ValueError(
            "baseline meta['argv'] does not start with 'bench' — the file "
            f"was not written by 'repro bench --save' (got {argv!r})"
        )
    return build_parser().parse_args(argv)


def run_smoke(
    baseline_path: str = DEFAULT_BASELINE,
    wall_threshold: float | None = None,
    rate_threshold: float | None = None,
) -> int:
    """Re-run the baseline's sweep and compare.  Returns the exit code."""
    from repro.cli import _load_input

    if wall_threshold is None:
        wall_threshold = _threshold(WALL_THRESHOLD_ENV, 1.25)
    if rate_threshold is None:
        rate_threshold = _threshold(RATE_THRESHOLD_ENV, 1.25)
    baseline, meta = load_records(baseline_path)
    argv = meta.get("argv")
    if not argv:
        print(f"error: {baseline_path} has no meta['argv'] to replay", file=sys.stderr)
        return 2
    # The smoke run must never overwrite the baseline, re-enter compare,
    # or rewrite the committed cost-model artifact.
    argv = _strip_option(_strip_option(list(argv), "--save"), "--compare")
    argv = _strip_option(argv, "--fit-cost-model")
    args = _sweep_args(argv)
    X = _load_input(args)
    if args.minpts_sweep:
        cells = [
            {"eps": args.eps, "min_samples": int(v)}
            for v in args.minpts_sweep.split(",")
        ]
    elif args.eps_sweep:
        cells = [
            {"eps": float(v), "min_samples": args.minpts}
            for v in args.eps_sweep.split(",")
        ]
    else:
        cells = [{"eps": args.eps, "min_samples": args.minpts}]
    tree_kwargs = (
        {"query_order": args.query_order} if args.query_order != "input" else None
    )
    traversal = getattr(args, "traversal", "single")
    modes = (
        ("single", "dual", "auto") if traversal == "both" else (traversal,)
    )
    records = []
    for mode in modes:
        records += run_sweep(
            args.algorithms.split(","),
            cells,
            lambda cell: X,
            dataset=args.dataset or args.input,
            capacity_bytes=args.memory_cap,
            tree_kwargs=tree_kwargs,
            reuse_index=not args.no_reuse_index,
            traversal=mode,
            n_ranks=args.ranks or 4,
        )
    report = compare_records(
        baseline,
        records,
        regression_threshold=wall_threshold,
        rate_threshold=rate_threshold,
    )
    print(
        f"bench-smoke vs {baseline_path} "
        f"(wall x{wall_threshold:g}, rates x{rate_threshold:g}, "
        f"{len(records)} cells)"
    )
    failed = False
    for kind in ALARM_KINDS + ("improvements", "rate_improvements", "unmatched"):
        for entry in report[kind]:
            print(f"  {kind[:-1] if kind.endswith('s') else kind}: {entry}")
            if kind in ALARM_KINDS:
                failed = True
    if len(modes) > 1:
        ratio = _dual_ratio_threshold()
        for entry in dual_ratio_alarms(records, ratio):
            print(f"  dual_ratio_regression: {entry}")
            failed = True
        regret = _auto_regret_threshold()
        for entry in auto_regret_alarms(records, regret):
            print(f"  auto_regret: {entry}")
            failed = True
        for entry in auto_selection_alarms(records):
            print(f"  auto_selection: {entry}")
            failed = True
    if any(a.lower() in HIERARCHY_ALGORITHMS for a in args.algorithms.split(",")):
        mst_ratio = _mst_ratio_threshold()
        for entry in mst_ratio_alarms(records, mst_ratio):
            print(f"  mst_ratio_regression: {entry}")
            failed = True
    # Default artifact location: next to the baseline file, so smoking an
    # unrelated baseline (e.g. a test fixture in a tmp dir) never gates
    # against a stranger's committed artifact.
    costmodel_path = os.environ.get(COSTMODEL_ENV) or os.path.join(
        os.path.dirname(baseline_path) or ".", DEFAULT_COSTMODEL
    )
    if os.path.exists(costmodel_path):
        for entry in costmodel_alarms(baseline, records, costmodel_path):
            print(f"  costmodel: {entry}")
            failed = True
    if not failed:
        print("  ok: no wall, rate, status or result regressions")
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    baseline_path = argv[0] if argv else DEFAULT_BASELINE
    return run_smoke(baseline_path)


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
