"""Sweep runner for the figure-regeneration benchmarks.

Each cell of a paper figure is one :func:`run_once` call: a fresh
:class:`~repro.device.Device` (optionally memory-capped), one clustering
run, and a :class:`RunRecord` with everything the figures plot — wall
seconds — plus what the paper discusses around them: work counters, the
per-kernel time breakdown, dense-cell fraction, peak device bytes, OOM
status.  Counters, the kernel profile and peak bytes are captured on
*every* exit path — an ``"oom"`` or ``"error"`` cell (the paper's
G-DBSCAN failures, Figure 4(h)) reports the work it performed up to the
failure, which is exactly what makes those failures diagnosable.

:func:`run_sweep` drives a whole panel (one x-axis series per algorithm),
with four benchmark-hygiene features:

- **index reuse** (on by default): the spatial index over each distinct
  point set is built once — live, on the first tree-algorithm cell that
  needs it — and reused by every other cell via
  :class:`~repro.core.index.DBSCANIndex`.  Reusing cells replay the
  recorded build cost onto their fresh per-cell device, so counters,
  kernel profiles and memory peaks stay comparable to cold runs while the
  sweep's wall time drops by the redundant builds;
- a per-cell ``time_budget``: when an algorithm's *successful* cell
  exceeds it, its later cells are skipped and reported as ``"skipped"``
  (naming the cell that tripped the budget) — the honest equivalent of
  the paper's missing points for codes that stop scaling.  Failed cells
  (``"oom"``/``"error"``) never trip the budget: a transient failure must
  not permanently drop an algorithm from the rest of the sweep;
- OOM capture: a :class:`~repro.device.DeviceMemoryError` marks the cell
  ``"oom"`` (the paper's G-DBSCAN failures on PortoTaxi, Figure 4(h));
- a per-cell ``cell_timeout`` watchdog: a pathological cell is stopped
  *mid-run* at its next kernel launch and recorded as ``"timeout"`` with
  the partial counters it accumulated, instead of eating the sweep;
- an optional :class:`~repro.faults.RetryPolicy`: a cell that fails with
  a *transient* error class (an injected device fault, or anything the
  policy names) is retried on a fresh device up to the policy's attempt
  budget instead of permanently recording an error cell.  The record's
  ``attempts`` and ``faults`` columns surface what happened; a
  :class:`~repro.faults.FaultPlan` may be supplied to inject
  deterministic transient device faults into cells (chaos-testing the
  harness itself).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.api import dbscan
from repro.core.index import DBSCANIndex
from repro.device.device import Device
from repro.device.memory import DeviceMemoryError
from repro.faults.deadline import Deadline, DeadlineExceededError
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.obs.span import NULL_TRACER

#: Work counters whose per-point *rates* are tracked across commits.
#: A rate (counter / n) is size-normalised, so a regression in it is an
#: algorithmic change — more distance evaluations per point — rather than
#: machine noise, which is what makes rates the right per-commit metric
#: next to wall seconds.
RATE_COUNTERS = (
    "distance_evals",
    "nodes_visited",
    "pairs_processed",
    "box_tests",
    "group_box_tests",
    "scatter_adds",
    "thread_steps",
)
# ``box_tests_saved`` is deliberately NOT rate-tracked: it *grows* when the
# dual engine prunes better, and the regression comparison would misread
# that improvement as a rate regression.


@dataclass
class RunRecord:
    """One benchmark cell."""

    algorithm: str
    dataset: str
    n: int
    eps: float
    min_samples: int
    #: traversal engine the cell ran under ("single"/"dual"/"auto").
    #: Recorded on every cell — including non-tree algorithms, which
    #: ignore the engine but keep the history key unique when a sweep
    #: runs several modes.  An "auto" cell's per-chunk decisions land in
    #: ``counters`` (``auto_single_chunks``/``auto_dual_chunks``/
    #: ``auto_pred_cost_us``) and on the cell span.
    traversal: str = "single"
    #: execution backend the cell ran under ("serial"/"process").  Like
    #: ``traversal``, recorded on every cell so A/B sweeps stay
    #: distinguishable in the history; baselines ignore the backend but
    #: carry the key.
    backend: str = "serial"
    seconds: float = float("nan")
    status: str = "ok"  # "ok" | "oom" | "skipped" | "error" | "timeout"
    n_clusters: int = -1
    n_noise: int = -1
    dense_fraction: float = float("nan")
    peak_bytes: int = 0
    counters: dict = field(default_factory=dict)
    kernels: dict = field(default_factory=dict)
    reused_index: bool = False
    attempts: int = 1
    faults: int = 0
    detail: str = ""
    replayed_build_seconds: float = 0.0
    #: Kernel launches evicted from the cell device's bounded span ring —
    #: non-zero means the cell's trace (and any profile derived from it)
    #: is incomplete, which the bench report warns about.
    trace_dropped: int = 0

    def cold_equivalent_seconds(self) -> float:
        """Wall seconds this cell *would* have cost cold.

        A cell reusing a shared index replays the recorded build — its
        counters and profile include the build work, but ``seconds`` does
        not include the build's wall time (the run never waited for it).
        Adding the replayed launches' recorded durations back gives the
        cold-equivalent cost, the honest number for time budgets that
        must not reward warm cells (``run_sweep(time_budget_mode="cold")``).
        """
        if self.seconds != self.seconds:  # nan
            return self.seconds
        return self.seconds + self.replayed_build_seconds

    def counter_rates(self) -> dict:
        """Per-point rates of the tracked work counters.

        ``{name: counters[name] / n}`` for every :data:`RATE_COUNTERS`
        entry present in this cell's counter snapshot — the
        size-normalised numbers the regression comparison tracks
        alongside wall seconds.
        """
        if self.n <= 0:
            return {}
        return {
            name: self.counters[name] / self.n
            for name in RATE_COUNTERS
            if name in self.counters
        }

    def as_row(self) -> dict:
        """Flat dict for table formatting."""
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "n": self.n,
            "eps": self.eps,
            "minpts": self.min_samples,
            "traversal": self.traversal,
            "backend": self.backend,
            "seconds": self.seconds,
            "status": self.status,
            "clusters": self.n_clusters,
            "noise": self.n_noise,
            "dense%": 100.0 * self.dense_fraction,
            "peak_MB": self.peak_bytes / 1e6,
            "frontier_peak": self.counters.get("frontier_peak", 0),
            "scatter_adds": self.counters.get("scatter_adds", 0),
            "retries": self.attempts - 1,
            "faults": self.faults,
        }


#: Algorithms that accept the tree-specific options (use_mask,
#: early_exit, chunk_size) and a prebuilt ``index=``.
TREE_ALGORITHMS = {"auto", "fdbscan", "fdbscan-densebox", "densebox"}

#: Names routed to :func:`repro.distributed.distributed_dbscan` instead
#: of the single-device registry (``n_ranks`` is taken from the cell
#: kwargs, default 4).  Lets a sweep put the distributed driver next to
#: the single-device algorithms — and, with a tracer, lands its phase
#: and comm spans inside the same benchmark cell span.
DISTRIBUTED_ALGORITHMS = {"distributed", "distributed-fdbscan"}

#: Names routed to :func:`repro.hierarchy.hdbscan` instead of the flat
#: registry.  Hierarchy cells ignore ``eps`` (it is recorded on the cell
#: for grid bookkeeping only) and derive ``min_cluster_size`` from the
#: cell's ``min_samples`` unless one is passed through ``kwargs``.  They
#: accept a prebuilt ``index=`` and the ``traversal=`` engine selector
#: like the tree algorithms do.
HIERARCHY_ALGORITHMS = {"hdbscan"}


def _capture_device(rec: RunRecord, dev: Device) -> None:
    """Copy the device's accounting into the record (every exit path)."""
    rec.peak_bytes = dev.memory.peak_bytes
    rec.counters = dev.counters.snapshot()
    rec.kernels = dev.profile()
    rec.trace_dropped = dev.trace_dropped
    rec.replayed_build_seconds = sum(
        row["replayed_seconds"] for row in rec.kernels.values()
    )


def _cell_phase(algorithm: str, dataset: str, n: int, eps: float, minpts: int) -> str:
    """Stable fault-plan key for one benchmark cell."""
    return f"bench[{algorithm} {dataset} n={n} eps={eps:g} minpts={minpts}]"


def run_once(
    algorithm: str,
    X: np.ndarray,
    eps: float,
    min_samples: int,
    dataset: str = "?",
    capacity_bytes: int | None = None,
    tree_kwargs: dict | None = None,
    index: DBSCANIndex | None = None,
    retry_policy: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    tracer=None,
    traversal: str = "single",
    backend: str = "serial",
    workers: int | None = None,
    cell_timeout: float | None = None,
    **kwargs,
) -> RunRecord:
    """Execute one benchmark cell on a fresh device (fresh per attempt).

    ``tree_kwargs`` (e.g. ``{"chunk_size": 4096, "use_mask": False}``) is
    forwarded only to the tree-based algorithms; ``index`` (a prebuilt
    :class:`~repro.core.index.DBSCANIndex`) goes to tree-based and
    hierarchy cells; ``kwargs`` go to every algorithm.  The record's
    ``counters`` / ``kernels`` / ``peak_bytes`` are captured on the
    ``"oom"`` and ``"error"`` paths too.

    An ``algorithm`` in :data:`HIERARCHY_ALGORITHMS` runs
    :func:`repro.hierarchy.hdbscan` instead of the flat registry: ``eps``
    is recorded but unused, and ``min_cluster_size`` defaults to
    ``max(2, min_samples)`` unless passed explicitly in ``kwargs``.

    An ``algorithm`` in :data:`DISTRIBUTED_ALGORITHMS` runs
    :func:`repro.distributed.distributed_dbscan` instead of the registry
    (``n_ranks`` kwarg, default 4); the fault plan then injects the full
    distributed fault set rather than only bench-level device faults.

    With a ``retry_policy``, failures of the policy's transient classes
    are retried on a fresh device (``rec.attempts`` counts the attempts;
    ``rec.seconds`` is the final attempt's).  A ``fault_plan`` arms
    deterministic transient device faults per attempt; every fault the
    plan injected during this cell (any attempt, and — for distributed
    cells — any phase of the driver) is counted in ``rec.faults``.

    With a ``tracer`` (:class:`~repro.obs.span.Tracer`), the cell is one
    ``cell:<algorithm>`` span (category ``"bench"``) with the device's
    kernel spans — and, for distributed cells, the driver's phase and
    comm spans — nested inside it.

    ``traversal`` selects the BVH traversal engine for tree-based and
    distributed cells (``"single"``/``"dual"``/``"auto"``; baselines
    ignore it) and is recorded on every cell so multi-mode sweeps stay
    distinguishable in the history.  An ``"auto"`` cell additionally
    records the per-chunk engine decisions and the chooser's predicted
    cost in its counter snapshot (``auto_single_chunks`` /
    ``auto_dual_chunks`` / ``auto_pred_cost_us``) and mirrors them onto
    the cell span next to the measured wall seconds — the predicted vs
    actual comparison the bench report and smoke gate read.

    ``backend`` selects the execution backend (``"serial"``/``"process"``;
    see :mod:`repro.device.backends`) for tree-based, hierarchy and
    distributed cells, with ``workers`` sizing the process pool.  Like
    ``traversal`` it is recorded on every cell — labels and work counters
    are bit-identical across backends, so an A/B sweep isolates pure
    wall-clock effects.

    ``cell_timeout`` arms a per-attempt wall-clock watchdog
    (:class:`~repro.faults.Deadline`) on the cell's device: every kernel
    launch checks the elapsed time, and a pathological cell records
    ``status="timeout"`` with the partial counters it accumulated —
    instead of eating the whole sweep's budget.  The timeout is not a
    transient error: it is never retried.
    """
    rec = RunRecord(
        algorithm=algorithm,
        dataset=dataset,
        n=int(np.asarray(X).shape[0]),
        eps=float(eps),
        min_samples=int(min_samples),
        traversal=str(traversal),
        backend=str(backend),
    )
    is_tree = algorithm.lower() in TREE_ALGORITHMS
    is_distributed = algorithm.lower() in DISTRIBUTED_ALGORITHMS
    is_hierarchy = algorithm.lower() in HIERARCHY_ALGORITHMS
    n_ranks = int(kwargs.pop("n_ranks", 4))
    min_cluster_size = int(
        kwargs.pop("min_cluster_size", 0) or max(2, int(min_samples))
    )
    if tree_kwargs and is_tree:
        kwargs = {**kwargs, **tree_kwargs}
    if is_tree or is_distributed or is_hierarchy:
        kwargs = {**kwargs, "traversal": traversal}
        if str(backend) != "serial":
            from repro.device.backends import coerce_backend

            kwargs = {**kwargs, "backend": coerce_backend(backend, workers=workers)}
    if index is not None and (is_tree or is_hierarchy):
        kwargs = {**kwargs, "index": index}
    phase = _cell_phase(algorithm, dataset, rec.n, rec.eps, rec.min_samples)
    tr = tracer if tracer is not None else NULL_TRACER
    log_start = len(fault_plan.log) if fault_plan is not None else 0

    def count_faults() -> int:
        return 0 if fault_plan is None else len(fault_plan.log) - log_start

    with tr.span(
        f"cell:{algorithm}",
        category="bench",
        attributes={
            "algorithm": algorithm,
            "dataset": dataset,
            "n": rec.n,
            "eps": rec.eps,
            "min_samples": rec.min_samples,
        },
    ) as cspan:
        attempt = 0
        while True:
            attempt += 1
            dev = Device(name=f"bench-{algorithm}", capacity_bytes=capacity_bytes)
            if tracer is not None:
                dev.tracer = tracer
            if cell_timeout is not None:
                # Armed before the fault injector so the injector chains
                # (and restores) it like any other pre-existing hook.
                dev.fault_hook = Deadline(
                    seconds=cell_timeout, label=phase
                ).as_fault_hook()
            injector = (
                fault_plan.device_faults(dev, phase, rank=0, attempt=attempt)
                if fault_plan is not None and not is_distributed
                else nullcontext()
            )
            start = time.perf_counter()
            try:
                with injector:
                    if is_distributed:
                        from repro.distributed import distributed_dbscan

                        result = distributed_dbscan(
                            X, eps, min_samples, n_ranks=n_ranks, device=dev,
                            fault_plan=fault_plan, retry_policy=retry_policy,
                            tracer=tracer, **kwargs,
                        )
                    elif is_hierarchy:
                        from repro.hierarchy import hdbscan as hdbscan_fn

                        result = hdbscan_fn(
                            X, min_cluster_size=min_cluster_size,
                            min_samples=min_samples, device=dev, **kwargs,
                        )
                    else:
                        result = dbscan(
                            X, eps, min_samples, algorithm=algorithm, device=dev,
                            **kwargs,
                        )
            except Exception as exc:  # noqa: BLE001 - a failing cell must not kill a sweep
                if (
                    retry_policy is not None
                    and retry_policy.is_transient(exc)
                    and attempt < retry_policy.max_attempts
                ):
                    continue
                rec.seconds = time.perf_counter() - start
                rec.attempts = attempt
                rec.faults = count_faults()
                if isinstance(exc, DeviceMemoryError):
                    rec.status = "oom"
                    rec.detail = str(exc)
                elif isinstance(exc, DeadlineExceededError):
                    rec.status = "timeout"
                    rec.detail = str(exc)
                else:
                    rec.status = "error"
                    rec.detail = f"{type(exc).__name__}: {exc}"
                _capture_device(rec, dev)
                break
            rec.seconds = time.perf_counter() - start
            rec.attempts = attempt
            rec.faults = count_faults()
            rec.n_clusters = result.n_clusters
            rec.n_noise = result.n_noise
            rec.dense_fraction = result.info.get("dense_fraction", float("nan"))
            rec.reused_index = bool(result.info.get("index_reused", False))
            _capture_device(rec, dev)
            break
        if cspan is not None:
            cspan.attributes["status"] = rec.status
            cspan.attributes["attempts"] = rec.attempts
            cspan.attributes["faults"] = rec.faults
            if str(traversal) == "auto":
                cspan.attributes["auto_single_chunks"] = rec.counters.get(
                    "auto_single_chunks", 0
                )
                cspan.attributes["auto_dual_chunks"] = rec.counters.get(
                    "auto_dual_chunks", 0
                )
                cspan.attributes["auto_pred_cost_seconds"] = (
                    rec.counters.get("auto_pred_cost_us", 0) * 1e-6
                )
                cspan.attributes["auto_actual_seconds"] = rec.seconds
    return rec


def run_sweep(
    algorithms: Sequence[str],
    cells: Sequence[dict],
    data_for: Callable[[dict], np.ndarray],
    dataset: str = "?",
    time_budget: float | None = None,
    time_budget_mode: str = "wall",
    capacity_bytes: int | None = None,
    tree_kwargs: dict | None = None,
    reuse_index: bool = True,
    retry_policy: RetryPolicy | None = None,
    fault_plan: FaultPlan | None = None,
    tracer=None,
    traversal: str = "single",
    backend: str = "serial",
    workers: int | None = None,
    cell_timeout: float | None = None,
    **kwargs,
) -> list[RunRecord]:
    """Run a figure panel: every algorithm over every cell.

    Parameters
    ----------
    algorithms:
        Registry names (see :func:`repro.core.api.dbscan`).
    cells:
        Parameter dicts, each with keys ``eps``, ``min_samples`` and
        anything ``data_for`` needs (e.g. ``n``).  Cells are run in order —
        put growing sizes last so budget-exceeded algorithms drop out of
        the expensive cells.
    data_for:
        Maps a cell to its point set (cache inside for shared data).
    time_budget:
        Per-cell wall-second budget; once one of an algorithm's ``"ok"``
        cells exceeds it, its remaining cells are reported as
        ``"skipped"`` with a ``detail`` naming the tripping cell.  Cells
        that fail (``"oom"``/``"error"``) do not count toward the budget.
    time_budget_mode:
        What the budget measures.  ``"wall"`` (default) compares each
        cell's actual ``seconds``; ``"cold"`` compares
        :meth:`RunRecord.cold_equivalent_seconds` — seconds *plus* the
        replayed build seconds of a reused index — so index reuse cannot
        smuggle an algorithm under a budget its cold cells would trip.
    capacity_bytes:
        Device memory cap applied to every cell.
    reuse_index:
        Share one :class:`~repro.core.index.DBSCANIndex` per distinct
        point set (matched by content fingerprint) across all cells and
        tree algorithms.  The points BVH is then built exactly once per
        point set; reusing cells replay its recorded cost so their
        accounting matches a cold run's.  Disable for cold-per-cell
        measurements.
    retry_policy / fault_plan:
        Forwarded to every :func:`run_once` cell — transient cell failures
        retry instead of permanently recording an error cell, and a fault
        plan chaos-tests the sweep with deterministic device faults.
    tracer:
        Optional :class:`~repro.obs.span.Tracer`: the sweep becomes one
        ``sweep`` root span with every cell (and everything inside it —
        kernels, comm, distributed phases, replayed builds) as children
        on a single shared timeline.
    traversal:
        Traversal engine for every tree/distributed cell of the sweep
        (recorded on every record; see :func:`run_once`).  Run the sweep
        once per engine (``"single"``/``"dual"``/``"auto"``) for a
        multi-mode comparison; records stay distinguishable by their
        ``traversal`` field.
    backend / workers:
        Execution backend for every tree/hierarchy/distributed cell of
        the sweep (recorded on every record; see :func:`run_once`).  Run
        the sweep once per backend for an A/B comparison — counters are
        bit-identical, so any wall-clock difference is pure scheduling.
    cell_timeout:
        Per-cell wall-second watchdog (see :func:`run_once`): a cell
        that exceeds it records ``status="timeout"`` with its partial
        counters and the sweep moves on.  Unlike ``time_budget`` (which
        skips *later* cells after a slow success), the watchdog stops
        the pathological cell *itself* mid-run.
    """
    if time_budget_mode not in ("wall", "cold"):
        raise ValueError(
            f"time_budget_mode must be 'wall' or 'cold'; got {time_budget_mode!r}"
        )
    records: list[RunRecord] = []
    over_budget: dict[str, str] = {}
    indexes: dict[str, DBSCANIndex] = {}
    any_tree = any(
        a.lower() in TREE_ALGORITHMS or a.lower() in HIERARCHY_ALGORITHMS
        for a in algorithms
    )
    tr = tracer if tracer is not None else NULL_TRACER
    sweep_span = tr.start(
        "sweep",
        category="bench",
        attributes={
            "dataset": dataset,
            "algorithms": ",".join(algorithms),
            "cells": len(cells),
            "time_budget_mode": time_budget_mode,
        },
    )
    try:
        _run_sweep_cells(
            records, over_budget, indexes, any_tree, algorithms, cells, data_for,
            dataset, time_budget, time_budget_mode, capacity_bytes, tree_kwargs,
            reuse_index, retry_policy, fault_plan, tracer, traversal, backend,
            workers, cell_timeout, kwargs,
        )
    finally:
        tr.end(sweep_span)
    return records


def _run_sweep_cells(
    records, over_budget, indexes, any_tree, algorithms, cells, data_for, dataset,
    time_budget, time_budget_mode, capacity_bytes, tree_kwargs, reuse_index,
    retry_policy, fault_plan, tracer, traversal, backend, workers, cell_timeout,
    kwargs,
) -> None:
    """The cell loop of :func:`run_sweep` (split out so the sweep span can
    bracket it on every exit path)."""
    for cell in cells:
        X = data_for(cell)
        index: DBSCANIndex | None = None
        if reuse_index and any_tree:
            try:
                candidate = DBSCANIndex(X)
            except ValueError:
                # points the tree algorithms reject (e.g. d > 3): run the
                # cells cold so each reports its own "error" record
                index = None
            else:
                index = indexes.setdefault(candidate.fingerprint, candidate)
        for algorithm in algorithms:
            if algorithm in over_budget:
                records.append(
                    RunRecord(
                        algorithm=algorithm,
                        dataset=dataset,
                        n=int(X.shape[0]),
                        eps=float(cell["eps"]),
                        min_samples=int(cell["min_samples"]),
                        traversal=str(traversal),
                        backend=str(backend),
                        status="skipped",
                        detail=over_budget[algorithm],
                    )
                )
                continue
            rec = run_once(
                algorithm,
                X,
                cell["eps"],
                cell["min_samples"],
                dataset=dataset,
                capacity_bytes=capacity_bytes,
                tree_kwargs=tree_kwargs,
                index=index,
                retry_policy=retry_policy,
                fault_plan=fault_plan,
                tracer=tracer,
                traversal=traversal,
                backend=backend,
                workers=workers,
                cell_timeout=cell_timeout,
                **kwargs,
            )
            records.append(rec)
            budget_seconds = (
                rec.cold_equivalent_seconds()
                if time_budget_mode == "cold"
                else rec.seconds
            )
            if (
                time_budget is not None
                and rec.status == "ok"
                and budget_seconds > time_budget
            ):
                label = "cold-equivalent " if time_budget_mode == "cold" else ""
                over_budget[algorithm] = (
                    f"cell (n={rec.n}, eps={rec.eps:g}, minpts={rec.min_samples}) "
                    f"exceeded {label}time budget "
                    f"({budget_seconds:.3g}s > {time_budget:g}s)"
                )
