"""Sweep runner for the figure-regeneration benchmarks.

Each cell of a paper figure is one :func:`run_once` call: a fresh
:class:`~repro.device.Device` (optionally memory-capped), one clustering
run, and a :class:`RunRecord` with everything the figures plot — wall
seconds — plus what the paper discusses around them: work counters,
dense-cell fraction, peak device bytes, OOM status.

:func:`run_sweep` drives a whole panel (one x-axis series per algorithm),
with two benchmark-hygiene features:

- a per-cell ``time_budget``: when an algorithm exceeds it, its larger
  cells are skipped and reported as ``"skipped"`` — the honest equivalent
  of the paper's missing points for codes that stop scaling;
- OOM capture: a :class:`~repro.device.DeviceMemoryError` marks the cell
  ``"oom"`` (the paper's G-DBSCAN failures on PortoTaxi, Figure 4(h)).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.api import dbscan
from repro.device.device import Device
from repro.device.memory import DeviceMemoryError


@dataclass
class RunRecord:
    """One benchmark cell."""

    algorithm: str
    dataset: str
    n: int
    eps: float
    min_samples: int
    seconds: float = float("nan")
    status: str = "ok"  # "ok" | "oom" | "skipped" | "error"
    n_clusters: int = -1
    n_noise: int = -1
    dense_fraction: float = float("nan")
    peak_bytes: int = 0
    counters: dict = field(default_factory=dict)
    detail: str = ""

    def as_row(self) -> dict:
        """Flat dict for table formatting."""
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "n": self.n,
            "eps": self.eps,
            "minpts": self.min_samples,
            "seconds": self.seconds,
            "status": self.status,
            "clusters": self.n_clusters,
            "noise": self.n_noise,
            "dense%": 100.0 * self.dense_fraction,
            "peak_MB": self.peak_bytes / 1e6,
        }


#: Algorithms that accept the tree-specific options (use_mask,
#: early_exit, chunk_size) routed via ``tree_kwargs``.
TREE_ALGORITHMS = {"auto", "fdbscan", "fdbscan-densebox", "densebox"}


def run_once(
    algorithm: str,
    X: np.ndarray,
    eps: float,
    min_samples: int,
    dataset: str = "?",
    capacity_bytes: int | None = None,
    tree_kwargs: dict | None = None,
    **kwargs,
) -> RunRecord:
    """Execute one benchmark cell on a fresh device.

    ``tree_kwargs`` (e.g. ``{"chunk_size": 4096, "use_mask": False}``) are
    forwarded only to the tree-based algorithms; ``kwargs`` go to every
    algorithm.
    """
    rec = RunRecord(
        algorithm=algorithm,
        dataset=dataset,
        n=int(np.asarray(X).shape[0]),
        eps=float(eps),
        min_samples=int(min_samples),
    )
    dev = Device(name=f"bench-{algorithm}", capacity_bytes=capacity_bytes)
    if tree_kwargs and algorithm.lower() in TREE_ALGORITHMS:
        kwargs = {**kwargs, **tree_kwargs}
    start = time.perf_counter()
    try:
        result = dbscan(X, eps, min_samples, algorithm=algorithm, device=dev, **kwargs)
    except DeviceMemoryError as exc:
        rec.seconds = time.perf_counter() - start
        rec.status = "oom"
        rec.detail = str(exc)
        rec.peak_bytes = dev.memory.peak_bytes
        return rec
    except Exception as exc:  # noqa: BLE001 - a failing cell must not kill a sweep
        rec.seconds = time.perf_counter() - start
        rec.status = "error"
        rec.detail = f"{type(exc).__name__}: {exc}"
        rec.peak_bytes = dev.memory.peak_bytes
        return rec
    rec.seconds = time.perf_counter() - start
    rec.n_clusters = result.n_clusters
    rec.n_noise = result.n_noise
    rec.dense_fraction = result.info.get("dense_fraction", float("nan"))
    rec.peak_bytes = dev.memory.peak_bytes
    rec.counters = dev.counters.snapshot()
    return rec


def run_sweep(
    algorithms: Sequence[str],
    cells: Sequence[dict],
    data_for: Callable[[dict], np.ndarray],
    dataset: str = "?",
    time_budget: float | None = None,
    capacity_bytes: int | None = None,
    tree_kwargs: dict | None = None,
    **kwargs,
) -> list[RunRecord]:
    """Run a figure panel: every algorithm over every cell.

    Parameters
    ----------
    algorithms:
        Registry names (see :func:`repro.core.api.dbscan`).
    cells:
        Parameter dicts, each with keys ``eps``, ``min_samples`` and
        anything ``data_for`` needs (e.g. ``n``).  Cells are run in order —
        put growing sizes last so budget-exceeded algorithms drop out of
        the expensive cells.
    data_for:
        Maps a cell to its point set (cache inside for shared data).
    time_budget:
        Per-cell wall-second budget; once an algorithm's cell exceeds it,
        its remaining cells are reported as ``"skipped"``.
    capacity_bytes:
        Device memory cap applied to every cell.
    """
    records: list[RunRecord] = []
    over_budget: set[str] = set()
    for cell in cells:
        X = data_for(cell)
        for algorithm in algorithms:
            if algorithm in over_budget:
                records.append(
                    RunRecord(
                        algorithm=algorithm,
                        dataset=dataset,
                        n=int(X.shape[0]),
                        eps=float(cell["eps"]),
                        min_samples=int(cell["min_samples"]),
                        status="skipped",
                        detail="previous cell exceeded time budget",
                    )
                )
                continue
            rec = run_once(
                algorithm,
                X,
                cell["eps"],
                cell["min_samples"],
                dataset=dataset,
                capacity_bytes=capacity_bytes,
                tree_kwargs=tree_kwargs,
                **kwargs,
            )
            records.append(rec)
            if time_budget is not None and rec.seconds > time_budget:
                over_budget.add(algorithm)
    return records
