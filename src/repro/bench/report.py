"""Plain-text reporting for the figure benchmarks.

The paper's figures are line plots (runtime vs a swept parameter, one
line per algorithm).  :func:`format_series` prints the same content as an
aligned text block — x values as columns, one row per algorithm — which
is what each benchmark module emits and what EXPERIMENTS.md records.
:func:`format_records` is the flat per-cell table for appendix-style
detail.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import RunRecord


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.4g}"
    return str(value)


def format_records(records: Sequence[RunRecord], columns: Sequence[str] | None = None) -> str:
    """Aligned table of per-cell records."""
    if not records:
        return "(no records)"
    rows = [r.as_row() for r in records]
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(str(c)), *(len(cell[i]) for cell in cells)) for i, c in enumerate(columns)
    ]
    header = "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))
    lines = [header, "  ".join("-" * w for w in widths)]
    lines += ["  ".join(cell[i].rjust(widths[i]) for i in range(len(columns))) for cell in cells]
    return "\n".join(lines)


#: Summable fields of a :meth:`repro.device.Device.profile` row, with
#: defaults tolerant of records saved before a field existed.
_PROFILE_INT_FIELDS = ("launches", "replayed", "threads", "steps")
_PROFILE_FLOAT_FIELDS = ("seconds", "self_seconds", "replayed_seconds")


def merge_kernel_profiles(records_or_profile) -> dict:
    """Sum per-kernel profile rows across records into one profile dict.

    Accepts either a single :meth:`repro.device.Device.profile` dict or a
    sequence of :class:`RunRecord`.  Rows loaded from old history files
    may lack the newer fields (``self_seconds``, ``replayed_seconds``,
    ``counters``) — they merge as zero/empty.
    """
    profile: dict[str, dict] = {}
    if isinstance(records_or_profile, dict):
        row_iter = [records_or_profile.items()]
    else:
        row_iter = [rec.kernels.items() for rec in records_or_profile]
    for rows in row_iter:
        for name, row in rows:
            agg = profile.setdefault(
                name,
                {
                    **{f: 0 for f in _PROFILE_INT_FIELDS},
                    **{f: 0.0 for f in _PROFILE_FLOAT_FIELDS},
                    "counters": {},
                },
            )
            for f in _PROFILE_INT_FIELDS:
                agg[f] += int(row.get(f, 0))
            for f in _PROFILE_FLOAT_FIELDS:
                agg[f] += float(row.get(f, 0.0))
            for key, value in (row.get("counters") or {}).items():
                if key == "frontier_peak":
                    agg["counters"][key] = max(agg["counters"].get(key, 0), value)
                else:
                    agg["counters"][key] = agg["counters"].get(key, 0) + value
    return profile


def format_kernel_profile(records_or_profile, title: str = "") -> str:
    """Per-kernel time breakdown table.

    Accepts either a :meth:`repro.device.Device.profile` dict or a
    sequence of :class:`RunRecord` (whose per-cell ``kernels`` profiles
    are summed).  One row per kernel name — launches, how many of those
    were replayed from a reused index, inclusive wall seconds, exclusive
    self seconds with the share of the total, and cumulative
    threads/steps — sorted by seconds, hottest first.  The share column
    uses *self* seconds (each wall second counted once even when kernels
    nest — see :meth:`repro.device.Device.profile` for the semantics),
    falling back to inclusive seconds for profiles saved before
    ``self_seconds`` existed.  This is the text analogue of an
    ``nvprof``/``nsys`` summary: it answers *where the time goes* (the
    paper's construction-vs-search split) rather than just how long the
    whole run took.
    """
    profile = merge_kernel_profiles(records_or_profile)
    if not profile:
        return f"{title}: (no kernel launches)" if title else "(no kernel launches)"
    self_total = sum(row["self_seconds"] for row in profile.values())
    share_field = "self_seconds" if self_total > 0 else "seconds"
    total = sum(row[share_field] for row in profile.values()) or 1.0
    columns = [
        "kernel", "launches", "replayed", "seconds", "self_s", "share",
        "threads", "steps",
    ]
    cells = [
        [
            name,
            _fmt(row["launches"]),
            _fmt(row["replayed"]),
            _fmt(row["seconds"]),
            _fmt(row["self_seconds"]),
            f"{100.0 * row[share_field] / total:.1f}%",
            _fmt(row["threads"]),
            _fmt(row["steps"]),
        ]
        for name, row in sorted(
            profile.items(), key=lambda item: item[1]["seconds"], reverse=True
        )
    ]
    widths = [max(len(c), *(len(cell[i]) for cell in cells)) for i, c in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.rjust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    lines += ["  ".join(cell[i].rjust(widths[i]) for i in range(len(columns))) for cell in cells]
    return "\n".join(lines)


def format_fault_summary(info: dict, title: str = "-- faults & recovery --") -> str:
    """Fault/retry/recovery digest of a distributed run's ``info`` dict.

    Shows the injected-fault breakdown, per-phase retry counts, rank
    deaths with their recovery reassignments, and the communicator's
    per-phase message/byte/retransmit table — the operational counterpart
    of the kernel profile: *what went wrong and what it cost to survive*.
    """
    lines = [title] if title else []
    faults = info.get("faults") or {}
    by_kind = faults.get("by_kind") or {}
    if by_kind:
        kinds = "  ".join(f"{kind}={count}" for kind, count in sorted(by_kind.items()))
        lines.append(f"injected faults : {faults.get('total', 0)}  ({kinds})")
    else:
        lines.append("injected faults : 0")
    retries = info.get("retries") or {}
    if retries:
        lines.append(
            "compute retries : "
            + "  ".join(f"{phase}={count}" for phase, count in sorted(retries.items()))
        )
    dead = info.get("dead_ranks") or []
    if dead:
        lines.append(f"dead ranks      : {dead}")
        for rec in info.get("recoveries") or []:
            lines.append(
                f"  recovery: partition {rec['partition']} "
                f"(rank {rec['dead_rank']} died at {rec['boundary']}) -> "
                f"rank {rec['reassigned_to']}, lost={rec['lost'] or ['nothing']}"
            )
    comm = info.get("comm") or {}
    if comm:
        lines.append(
            f"comm            : {comm.get('messages', 0)} msgs, "
            f"{comm.get('bytes_sent', 0):,} B, "
            f"{comm.get('retransmits', 0)} retransmits, "
            f"{comm.get('sim_wait_seconds', 0.0):.4g}s simulated wait"
        )
        by_phase = comm.get("by_phase") or {}
        for phase, entry in sorted(by_phase.items()):
            lines.append(
                f"  {phase:>24} : {entry['messages']:>5} msgs  "
                f"{entry['bytes']:>12,} B  {entry['retransmits']:>4} retx"
            )
    return "\n".join(lines)


#: Counters the backend A/B report asserts bit-equal across backends —
#: the determinism contract of :mod:`repro.device.backends`.
_AB_COUNTERS = ("distance_evals", "box_tests", "scatter_adds")


def format_backend_ab(
    records: Sequence[RunRecord],
    title: str = "-- backend A/B (serial vs process) --",
    strict: bool = True,
) -> str:
    """Per-cell serial-vs-process comparison from one mixed history.

    Pairs records by (algorithm, traversal, dataset, n, eps, minpts)
    across ``backend="serial"`` / ``backend="process"`` and prints each
    cell's wall seconds under both backends with the process speedup
    (``serial / process``; > 1 means the process backend won).  For every
    pair, the tracked work counters (:data:`_AB_COUNTERS`) are checked
    for **bit-equality** — the process backend's contract is identical
    work, different scheduling — and any mismatch is printed and, with
    ``strict`` (the default), raised as an ``AssertionError``: a counter
    divergence means the A/B is comparing different computations and the
    timing column is meaningless.
    """
    by_key: dict[tuple, dict[str, RunRecord]] = {}
    for rec in records:
        key = (rec.algorithm, rec.traversal, rec.dataset, rec.n, rec.eps, rec.min_samples)
        by_key.setdefault(key, {})[rec.backend] = rec
    pairs = [
        (key, sides["serial"], sides["process"])
        for key, sides in sorted(by_key.items(), key=lambda kv: str(kv[0]))
        if "serial" in sides and "process" in sides
    ]
    if not pairs:
        return f"{title}\n(no serial/process record pairs)"
    mismatches: list[str] = []
    columns = ["algorithm", "traversal", "n", "serial_s", "process_s", "speedup", "counters"]
    cells = []
    for key, ser, proc in pairs:
        algorithm, traversal, dataset, n, eps, minpts = key
        equal = all(
            ser.counters.get(c, 0) == proc.counters.get(c, 0) for c in _AB_COUNTERS
        )
        if not equal:
            detail = ", ".join(
                f"{c}: serial={ser.counters.get(c, 0)} process={proc.counters.get(c, 0)}"
                for c in _AB_COUNTERS
                if ser.counters.get(c, 0) != proc.counters.get(c, 0)
            )
            mismatches.append(f"{algorithm}/{traversal} n={n}: {detail}")
        ok = ser.status == "ok" and proc.status == "ok"
        speedup = (
            ser.seconds / proc.seconds if ok and proc.seconds > 0 else float("nan")
        )
        cells.append(
            [
                algorithm,
                traversal,
                _fmt(n),
                _fmt(ser.seconds) if ser.status == "ok" else ser.status,
                _fmt(proc.seconds) if proc.status == "ok" else proc.status,
                f"{speedup:.2f}x" if speedup == speedup else "-",
                "equal" if equal else "MISMATCH",
            ]
        )
    widths = [max(len(c), *(len(cell[i]) for cell in cells)) for i, c in enumerate(columns)]
    lines = [title] if title else []
    lines.append("  ".join(c.rjust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    lines += [
        "  ".join(cell[i].rjust(widths[i]) for i in range(len(columns))) for cell in cells
    ]
    if mismatches:
        lines.append("counter mismatches (A/B invalid for these cells):")
        lines += [f"  {m}" for m in mismatches]
        if strict:
            raise AssertionError(
                "backend A/B counter mismatch: " + "; ".join(mismatches)
            )
    return "\n".join(lines)


#: Density ramp for :func:`ascii_density` (space = empty, @ = densest).
_DENSITY_RAMP = " .:-=+*#%@"


def ascii_density(
    points,
    width: int = 64,
    height: int = 24,
    title: str = "",
    axes: tuple[int, int] = (0, 1),
) -> str:
    """Character density map of a 2-D/3-D point set.

    The text analogue of the paper's dataset visualisations (Figures 3
    and 5): points are binned onto a character grid and shaded by log
    count.  For 3-D data, ``axes`` picks the projection plane.
    """
    import numpy as np

    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        return f"{title}: (no points)"
    x = points[:, axes[0]]
    y = points[:, axes[1] if points.shape[1] > 1 else 0]
    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    cols = np.minimum(((x - x_lo) / x_span * width).astype(int), width - 1)
    rows = np.minimum(((y - y_lo) / y_span * height).astype(int), height - 1)
    counts = np.zeros((height, width), dtype=np.int64)
    np.add.at(counts, (rows, cols), 1)
    log_counts = np.log1p(counts)
    top = log_counts.max() or 1.0
    levels = (log_counts / top * (len(_DENSITY_RAMP) - 1)).astype(int)
    lines = []
    if title:
        lines.append(title)
    # rows render top-down (max y first)
    for r in range(height - 1, -1, -1):
        lines.append("".join(_DENSITY_RAMP[v] for v in levels[r]))
    lines.append(
        f"x: [{x_lo:.4g}, {x_hi:.4g}]  y: [{y_lo:.4g}, {y_hi:.4g}]  "
        f"n={points.shape[0]:,}"
    )
    return "\n".join(lines)


def ascii_loglog(
    records: Sequence[RunRecord],
    x_key: str = "n",
    title: str = "",
    width: int = 64,
    height: int = 16,
) -> str:
    """Text log-log plot of seconds vs ``x_key`` — the shape view of the
    paper's Figure 4(g-i) scaling panels, one glyph per algorithm.

    Failed cells are simply absent (exactly how the paper's missing
    G-DBSCAN points appear).
    """
    ok = [r for r in records if r.status == "ok" and getattr(r, x_key) > 0 and r.seconds > 0]
    if not ok:
        return f"{title}: (no plottable records)"
    algorithms: list[str] = []
    for rec in ok:
        if rec.algorithm not in algorithms:
            algorithms.append(rec.algorithm)
    glyphs = "ox+*#@%&"
    import math

    xs = [math.log10(getattr(r, x_key)) for r in ok]
    ys = [math.log10(r.seconds) for r in ok]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    canvas = [[" "] * width for _ in range(height)]
    for rec, x, y in zip(ok, xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        canvas[row][col] = glyphs[algorithms.index(rec.algorithm) % len(glyphs)]
    lines = []
    if title:
        lines.append(title)
    lines.append(f"seconds (log) {10 ** y_hi:.3g} ┐")
    lines += ["".join(row) for row in canvas]
    lines.append(f"{10 ** y_lo:.3g} ┘  {x_key} (log): {10 ** x_lo:.3g} .. {10 ** x_hi:.3g}")
    lines.append(
        "legend: " + "  ".join(f"{glyphs[i % len(glyphs)]}={a}" for i, a in enumerate(algorithms))
    )
    return "\n".join(lines)


def format_series(
    records: Sequence[RunRecord],
    x_key: str,
    title: str = "",
    value: str = "seconds",
) -> str:
    """Paper-figure-style block: one row per algorithm, x values as columns.

    ``x_key`` is a :class:`RunRecord` attribute name (``"min_samples"``,
    ``"eps"``, ``"n"``).  Failed cells render as their status (``oom`` /
    ``skipped``) — the analogue of the paper's missing points.
    """
    xs: list = []
    for rec in records:
        x = getattr(rec, x_key)
        if x not in xs:
            xs.append(x)
    algorithms: list[str] = []
    for rec in records:
        if rec.algorithm not in algorithms:
            algorithms.append(rec.algorithm)
    table: dict[tuple[str, object], str] = {}
    for rec in records:
        key = (rec.algorithm, getattr(rec, x_key))
        table[key] = _fmt(getattr(rec, value)) if rec.status == "ok" else rec.status

    name_w = max(len(a) for a in algorithms)
    col_w = [max(len(_fmt(x)), *(len(table.get((a, x), "-")) for a in algorithms)) for x in xs]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " " * name_w + "  " + "  ".join(_fmt(x).rjust(w) for x, w in zip(xs, col_w))
    )
    for a in algorithms:
        lines.append(
            a.rjust(name_w)
            + "  "
            + "  ".join(table.get((a, x), "-").rjust(w) for x, w in zip(xs, col_w))
        )
    return "\n".join(lines)
