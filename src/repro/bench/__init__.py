"""Benchmark harness: run, record, and report figure-regeneration sweeps.

``harness``
    :func:`~repro.bench.harness.run_once` executes one (algorithm,
    dataset, parameters) cell on a fresh device and returns a
    :class:`~repro.bench.harness.RunRecord` (wall seconds, work counters,
    peak memory, clustering facts, or an OOM marker).
    :func:`~repro.bench.harness.run_sweep` maps a parameter series over a
    set of algorithms with a per-cell time budget (slower algorithms drop
    out of a growing sweep instead of stalling it — how the paper's
    missing data points are reported).

``report``
    Plain-text tables and paper-style series blocks, printed by the
    benchmark modules and pasted into EXPERIMENTS.md.
"""

from repro.bench.harness import RunRecord, run_once, run_sweep
from repro.bench.history import compare_records, load_records, save_records
from repro.bench.report import (
    ascii_density,
    ascii_loglog,
    format_kernel_profile,
    format_records,
    format_series,
)

__all__ = [
    "RunRecord",
    "ascii_density",
    "ascii_loglog",
    "compare_records",
    "format_kernel_profile",
    "format_records",
    "format_series",
    "load_records",
    "run_once",
    "run_sweep",
    "save_records",
]
