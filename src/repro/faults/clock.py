"""Deterministic simulated clock.

Retry backoff must not depend on host wall-clock: a fault-injected run has
to replay bit-identically from its seed, including the *time* the retries
spent waiting.  :class:`SimClock` is the stand-in — ``sleep`` advances a
virtual timeline instead of blocking, and the accumulated wait is surfaced
in :class:`~repro.distributed.comm.CommStats` and the driver's ``info``.
"""

from __future__ import annotations


class SimClock:
    """A virtual clock: ``sleep`` advances time without blocking.

    Attributes
    ----------
    slept_seconds:
        Total virtual seconds spent in :meth:`sleep` (the simulated
        retry/backoff wait a real deployment would have burned).
    sleep_count:
        Number of :meth:`sleep` calls.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self.slept_seconds = 0.0
        self.sleep_count = 0

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def sleep(self, seconds: float) -> float:
        """Advance the virtual clock by ``seconds`` and return it."""
        seconds = float(seconds)
        if seconds < 0:
            raise ValueError(f"cannot sleep a negative duration: {seconds}")
        self._now += seconds
        self.slept_seconds += seconds
        self.sleep_count += 1
        return seconds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now={self._now:.6g}, slept={self.slept_seconds:.6g})"
