"""Retry policies: which failures are transient, and how long to back off.

A production DBSCAN service (the ROADMAP's north star) cannot treat every
failure as final: a dropped message, a transiently faulted kernel launch or
a momentary allocation failure should be *retried*, while a genuine logic
error must still propagate.  :class:`RetryPolicy` captures that split —
a bounded attempt budget, an explicit tuple of transient error classes,
and bounded exponential backoff evaluated against a deterministic
:class:`~repro.faults.clock.SimClock` so replays are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.device.device import KernelFaultError
from repro.device.memory import DeviceMemoryError

from repro.faults.clock import SimClock


class TransientFault(RuntimeError):
    """Base class for failures that a :class:`RetryPolicy` retries by default.

    Subclassed by the communicator's injected delivery failures; any
    component may raise a subclass to signal "worth retrying".
    """


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, what to retry, and how long to wait.

    Parameters
    ----------
    max_attempts:
        Total attempts including the first (``1`` disables retries).
    backoff_base / backoff_factor / backoff_cap:
        Bounded exponential backoff: attempt ``k`` (1-based) waits
        ``min(backoff_base * backoff_factor**(k-1), backoff_cap)`` virtual
        seconds before retrying.
    transient:
        Exception classes considered retryable.  Everything else
        propagates immediately.
    """

    max_attempts: int = 4
    backoff_base: float = 1e-3
    backoff_factor: float = 2.0
    backoff_cap: float = 0.1
    transient: tuple = (TransientFault, KernelFaultError, DeviceMemoryError)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1; got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_cap < 0:
            raise ValueError(
                f"invalid backoff: base={self.backoff_base}, "
                f"factor={self.backoff_factor}, cap={self.backoff_cap}"
            )

    def is_transient(self, exc: BaseException) -> bool:
        """Whether ``exc`` belongs to a retryable class."""
        return isinstance(exc, tuple(self.transient))

    def backoff(self, attempt: int) -> float:
        """Virtual seconds to wait after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1; got {attempt}")
        return min(self.backoff_base * self.backoff_factor ** (attempt - 1), self.backoff_cap)


def call_with_retries(
    fn: Callable[[int], object],
    policy: RetryPolicy,
    clock: SimClock | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> tuple[object, int]:
    """Run ``fn(attempt)`` under ``policy``; returns ``(result, attempts)``.

    ``fn`` receives the 1-based attempt number (fault injectors key their
    decisions on it).  Transient failures sleep the policy's backoff on
    ``clock`` (if given) and retry; the final transient failure and every
    non-transient one propagate unchanged.  ``on_retry`` is called with
    ``(attempt, exc)`` before each retry — for accounting, not control.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn(attempt), attempt
        except Exception as exc:  # noqa: BLE001 - policy decides what propagates
            if not policy.is_transient(exc) or attempt >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            if clock is not None:
                clock.sleep(policy.backoff(attempt))
