"""Fault injection and fault tolerance for the (simulated) distributed stack.

The paper's production context — ArborX under MPI at exascale — has to
survive the single most common production event: something failing
mid-run.  This package supplies both halves of that story:

``plan``
    :class:`FaultPlan` — deterministic, seed-driven fault plans injecting
    message drop / duplication / reordering / bit-flip corruption /
    transient timeouts into :class:`~repro.distributed.comm.SimulatedComm`,
    phase-boundary rank crashes into the distributed driver, and transient
    device faults (OOM / kernel) into :class:`~repro.device.Device` via its
    ``fault_hook``.  Every injected fault lands in a structured log;
    replaying a seed reproduces the identical log.

``retry``
    :class:`RetryPolicy` — which error classes are transient, a bounded
    attempt budget, and bounded exponential backoff — plus
    :func:`call_with_retries`.

``clock``
    :class:`SimClock` — a deterministic virtual clock so retry waits are
    replayable and accountable rather than wall-clock noise.

``deadline``
    :class:`Deadline` — cooperative watchdogs threaded through the
    traversal engines (``watchdog=``) or armed as a ``Device.fault_hook``;
    wall-clock or deterministic step budgets, raising
    :class:`DeadlineExceededError` (deliberately *not* transient).

The chaos-test suite (``tests/test_chaos.py``, pytest marker ``chaos``)
fuzzes random fault plans over the distributed driver and asserts the
result stays DBSCAN-equivalent to a single-device run whenever at least
one rank survives.
"""

from repro.faults.clock import SimClock
from repro.faults.deadline import Deadline, DeadlineExceededError
from repro.faults.plan import (
    DEVICE_FAULT_KINDS,
    MESSAGE_FAULT_KINDS,
    SERVICE_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultSpec,
)
from repro.faults.retry import RetryPolicy, TransientFault, call_with_retries

__all__ = [
    "DEVICE_FAULT_KINDS",
    "MESSAGE_FAULT_KINDS",
    "SERVICE_FAULT_KINDS",
    "Deadline",
    "DeadlineExceededError",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "SimClock",
    "TransientFault",
    "call_with_retries",
]
