"""Deadlines: cooperative watchdogs for traversals, kernels and bench cells.

A production request cannot be allowed to run forever — but the wavefront
traversals are long-lived loops with no natural preemption point, so the
deadline has to be *threaded through* them, the same way ``finished_fn``
early-exit is.  :class:`Deadline` is that thread: a single object that

- the traversal engines poll once per wavefront step (pass
  ``deadline.check`` as the ``watchdog=`` argument of
  :func:`~repro.bvh.traversal.for_each_leaf_hit` or any API above it);
- a :class:`~repro.device.device.Device` polls once per kernel launch
  (install :meth:`as_fault_hook` — the bench harness's per-cell watchdog,
  coarse but algorithm-agnostic);

and that raises :class:`DeadlineExceededError` the first time it is
consulted past its budget.

Two budget modes, usable together (whichever expires first wins):

``seconds``
    Elapsed time on a clock — wall (``time.monotonic``) by default, or
    any object with a ``now()`` method (e.g.
    :class:`~repro.faults.clock.SimClock` for deterministic replays).
``max_checks``
    A *step* budget: the deadline expires on the check after the
    ``max_checks``-th.  Fully deterministic — the chaos suite's
    "deadline storm" uses this so a storm of impossible deadlines
    reproduces bit-identically from a seed.

``DeadlineExceededError`` is deliberately **not** a
:class:`~repro.faults.retry.TransientFault`: retrying an expired budget
cannot succeed, so retry policies must let it propagate.
"""

from __future__ import annotations

import time


class DeadlineExceededError(RuntimeError):
    """A cooperative watchdog found its budget exhausted.

    Carries ``label`` (whose deadline), ``elapsed`` seconds and ``checks``
    performed, so handlers can report how far the work got.
    """

    def __init__(self, label: str, elapsed: float, checks: int, detail: str = ""):
        self.label = label
        self.elapsed = float(elapsed)
        self.checks = int(checks)
        self.detail = detail
        msg = f"deadline {label!r} exceeded after {elapsed:.6f}s / {checks} checks"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class _WallClock:
    """Minimal clock adapter over ``time.monotonic`` (the default)."""

    @staticmethod
    def now() -> float:
        return time.monotonic()


class Deadline:
    """A per-request (or per-cell) budget with a ``check()`` that raises.

    Parameters
    ----------
    seconds:
        Time budget, measured from construction on ``clock``.  ``None``
        disables the time mode.
    max_checks:
        Deterministic step budget: the ``(max_checks + 1)``-th call to
        :meth:`check` raises.  ``0`` means the very first check fires —
        the tightest possible storm.  ``None`` disables the step mode.
    clock:
        Object with ``now() -> float``; defaults to wall time.
    label:
        Identifies the budget in the raised error.

    A deadline with neither budget never expires (``check()`` is then a
    cheap no-op counter), so callers can thread one unconditionally.
    """

    def __init__(
        self,
        seconds: float | None = None,
        max_checks: int | None = None,
        clock=None,
        label: str = "deadline",
    ):
        if seconds is not None and seconds < 0:
            raise ValueError(f"seconds must be >= 0; got {seconds}")
        if max_checks is not None and max_checks < 0:
            raise ValueError(f"max_checks must be >= 0; got {max_checks}")
        self.seconds = seconds
        self.max_checks = max_checks
        self.clock = clock if clock is not None else _WallClock()
        self.label = label
        self.checks = 0
        self._start = self.clock.now()

    def elapsed(self) -> float:
        """Seconds since construction on the deadline's clock."""
        return self.clock.now() - self._start

    def expired(self) -> bool:
        """Whether either budget is exhausted (does not count as a check)."""
        if self.max_checks is not None and self.checks > self.max_checks:
            return True
        if self.seconds is not None and self.elapsed() > self.seconds:
            return True
        return False

    def remaining(self) -> float | None:
        """Seconds left on the time budget (``None`` without one)."""
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - self.elapsed())

    def check(self, detail: str = "") -> None:
        """Count one poll; raise :class:`DeadlineExceededError` if over
        budget.  This is the traversal ``watchdog=`` callable."""
        self.checks += 1
        if self.max_checks is not None and self.checks > self.max_checks:
            raise DeadlineExceededError(self.label, self.elapsed(), self.checks, detail)
        if self.seconds is not None and self.elapsed() > self.seconds:
            raise DeadlineExceededError(self.label, self.elapsed(), self.checks, detail)

    def as_fault_hook(self):
        """A ``Device.fault_hook`` polling this deadline once per kernel
        launch — the bench harness's algorithm-agnostic cell watchdog."""

        def hook(kernel_name: str) -> None:
            self.check(detail=f"kernel={kernel_name}")

        return hook

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Deadline(label={self.label!r}, seconds={self.seconds}, "
            f"max_checks={self.max_checks}, checks={self.checks})"
        )
