"""Deterministic, seed-driven fault plans.

A :class:`FaultPlan` decides — reproducibly, from a seed — which faults a
run experiences: message drops, duplication, reordering, payload bit-flip
corruption, transient timeouts, phase-boundary rank crashes, and transient
device faults (:class:`~repro.device.memory.DeviceMemoryError` /
:class:`~repro.device.device.KernelFaultError`) raised from inside kernel
launches.

Two properties make the plans usable as a test oracle:

- **Order independence.**  Every decision is drawn from its own RNG
  stream, seeded from a stable hash of ``(seed, kind, phase, rank, seq,
  attempt)``.  Whether a fault fires therefore depends only on *what* is
  being attempted, never on how many unrelated random draws preceded it —
  so the same seed injects the same faults even as consumers evolve.
- **Bounded injection.**  Message and device faults are injected only on
  the first :attr:`FaultSpec.fault_attempts` attempts of any given
  operation.  A retry budget larger than that is guaranteed to converge,
  which is what lets the chaos suite assert DBSCAN equivalence under
  *arbitrary* seeded plans (rank crashes are separately capped so at
  least one rank always survives).

Every injected fault is appended to :attr:`FaultPlan.log` as a structured
:class:`FaultEvent` — replaying a seed reproduces the identical log.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields
from typing import Iterable

import numpy as np

from repro.device.device import Device, KernelFaultError
from repro.device.memory import DeviceMemoryError

#: Message-level fault kinds, with their :class:`FaultSpec` probability
#: field.  Precedence on a single transmission: a dropped or timed-out
#: message never arrives (corruption is moot); corruption is detected by
#: the receiver's checksum; duplication and reordering afflict only
#: messages that were actually delivered.
MESSAGE_FAULT_KINDS = ("drop", "timeout", "corrupt", "duplicate", "reorder")

#: Transient device fault kinds (raised from inside a kernel launch).
DEVICE_FAULT_KINDS = ("device_oom", "kernel_fault")

#: Service-level fault kinds, evaluated once per request by
#: :meth:`FaultPlan.request_faults`: wire-level garbage (``malformed``),
#: requests over the protocol size cap (``oversized``), an absurdly tight
#: deadline (``deadline_storm``), a mutation racing the request
#: (``invalidate``), and a whole-process crash-restart
#: (``service_crash`` — capped at one per plan, mirroring the
#: chaos-suite's single crash-restart scenario).
SERVICE_FAULT_KINDS = (
    "malformed",
    "oversized",
    "deadline_storm",
    "invalidate",
    "service_crash",
)


@dataclass(frozen=True)
class FaultSpec:
    """Per-kind fault probabilities (all in ``[0, 1]``).

    ``p_rank_crash`` is evaluated once per (phase boundary, alive rank);
    ``p_device_fault`` once per (phase, partition, attempt);
    the message probabilities once per (message, attempt).

    ``fault_attempts`` bounds how many consecutive attempts of one
    operation may be faulted — retries beyond it always run clean, so any
    retry budget of at least ``fault_attempts + 1`` attempts converges.
    """

    p_drop: float = 0.0
    p_timeout: float = 0.0
    p_corrupt: float = 0.0
    p_duplicate: float = 0.0
    p_reorder: float = 0.0
    p_rank_crash: float = 0.0
    p_device_fault: float = 0.0
    # Service-level request faults (see SERVICE_FAULT_KINDS).  Appended
    # with 0.0 defaults so existing distributed chaos seeds — whose specs
    # never set them — keep their exact fault schedules.
    p_malformed: float = 0.0
    p_oversized: float = 0.0
    p_deadline_storm: float = 0.0
    p_invalidate: float = 0.0
    p_service_crash: float = 0.0
    fault_attempts: int = 2

    def __post_init__(self):
        for f in fields(self):
            if f.name.startswith("p_"):
                p = getattr(self, f.name)
                if not 0.0 <= p <= 1.0:
                    raise ValueError(f"{f.name} must be in [0, 1]; got {p}")
        if self.fault_attempts < 0:
            raise ValueError(f"fault_attempts must be >= 0; got {self.fault_attempts}")

    @property
    def any_faults(self) -> bool:
        """Whether any fault kind has nonzero probability."""
        return any(getattr(self, f.name) > 0 for f in fields(self) if f.name.startswith("p_"))

    @classmethod
    def uniform(cls, p: float, crash: float | None = None, fault_attempts: int = 2) -> "FaultSpec":
        """Every message/device fault at probability ``p``; crashes at
        ``crash`` (default ``p``)."""
        return cls(
            p_drop=p, p_timeout=p, p_corrupt=p, p_duplicate=p, p_reorder=p,
            p_rank_crash=p if crash is None else crash,
            p_device_fault=p, fault_attempts=fault_attempts,
        )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse a CLI spec: a bare probability (``"0.1"``) for
        :meth:`uniform`, or ``key=value`` pairs — ``drop=0.1,crash=0.2``.

        Keys: ``drop``, ``timeout``, ``corrupt``, ``duplicate`` (or
        ``dup``), ``reorder``, ``crash``, ``device``, ``attempts``.
        """
        text = text.strip()
        try:
            return cls.uniform(float(text))
        except ValueError:
            pass
        aliases = {
            "drop": "p_drop", "timeout": "p_timeout", "corrupt": "p_corrupt",
            "duplicate": "p_duplicate", "dup": "p_duplicate", "reorder": "p_reorder",
            "crash": "p_rank_crash", "device": "p_device_fault",
            "malformed": "p_malformed", "oversized": "p_oversized",
            "storm": "p_deadline_storm", "deadline_storm": "p_deadline_storm",
            "invalidate": "p_invalidate",
            "restart": "p_service_crash", "service_crash": "p_service_crash",
            "attempts": "fault_attempts",
        }
        kwargs: dict = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep or key.strip() not in aliases:
                raise ValueError(
                    f"bad fault spec entry {part!r}; expected key=value with key "
                    f"in {sorted(set(aliases))}"
                )
            name = aliases[key.strip()]
            kwargs[name] = int(value) if name == "fault_attempts" else float(value)
        return cls(**kwargs)

    @classmethod
    def service(cls, p: float, crash: float = 0.0, fault_attempts: int = 2) -> "FaultSpec":
        """Every service-level request fault (and device faults) at
        probability ``p``; the single crash-restart at ``crash``."""
        return cls(
            p_device_fault=p, p_malformed=p, p_oversized=p,
            p_deadline_storm=p, p_invalidate=p, p_service_crash=crash,
            fault_attempts=fault_attempts,
        )


@dataclass
class FaultEvent:
    """One injected fault: what, where, and on which attempt."""

    kind: str
    phase: str
    rank: int
    attempt: int = 0
    detail: str = ""

    def as_dict(self) -> dict:
        return asdict(self)


class FaultPlan:
    """Seed-driven fault injection with a structured log (module docstring)."""

    def __init__(self, seed: int = 0, spec: FaultSpec | None = None):
        self.seed = int(seed)
        self.spec = spec if spec is not None else FaultSpec()
        self.log: list[FaultEvent] = []
        #: ``service_crash`` is capped at one per plan instance — the
        #: chaos scenario's single crash-restart.
        self.service_crash_fired = False
        #: Optional :class:`~repro.obs.span.Tracer`: every logged fault is
        #: mirrored as a ``fault:<kind>`` event on whatever span is open
        #: when it fires (a comm transmission, a driver phase, a bench
        #: cell), so the trace timeline shows *where* each fault landed.
        self.tracer = None

    # -- deterministic streams -------------------------------------------------

    def _stream(self, *key) -> np.random.Generator:
        """An RNG stream unique to ``key`` (order-independent decisions)."""
        material = "|".join(["repro.faults", str(self.seed), *map(str, key)])
        digest = hashlib.blake2b(material.encode(), digest_size=8).digest()
        return np.random.default_rng(int.from_bytes(digest, "little"))

    def record(self, kind: str, phase: str, rank: int, attempt: int = 0, detail: str = "") -> FaultEvent:
        """Append a fault to the structured log (and, with a tracer
        attached, annotate the currently open span with it)."""
        event = FaultEvent(kind, phase, int(rank), int(attempt), detail)
        self.log.append(event)
        if self.tracer is not None:
            self.tracer.event(
                f"fault:{kind}",
                {"phase": phase, "rank": int(rank), "attempt": int(attempt), "detail": detail},
            )
        return event

    # -- message faults --------------------------------------------------------

    def message_faults(self, phase: str, sender: int, seq: int, attempt: int) -> list[str]:
        """Fault kinds afflicting one transmission attempt of one message.

        Pure decision — the communicator logs the kinds it acts on.  Clean
        by construction for ``attempt > spec.fault_attempts``.
        """
        if attempt > self.spec.fault_attempts:
            return []
        out = []
        for kind in MESSAGE_FAULT_KINDS:
            p = getattr(self.spec, f"p_{kind}")
            if p > 0 and self._stream("msg", kind, phase, sender, seq, attempt).random() < p:
                out.append(kind)
        return out

    def corrupt_payload(self, data: bytes, phase: str, sender: int, seq: int, attempt: int) -> bytes:
        """Flip one deterministic bit of ``data`` (no-op on empty payloads)."""
        if not data:
            return data
        rng = self._stream("bits", phase, sender, seq, attempt)
        buf = bytearray(data)
        buf[int(rng.integers(len(buf)))] ^= 1 << int(rng.integers(8))
        return bytes(buf)

    # -- service request faults ------------------------------------------------

    def request_faults(self, seq: int) -> list[str]:
        """Service-level fault kinds afflicting request ``seq``.

        Pure decision, like :meth:`message_faults` — the request driver
        logs the kinds it acts on via :meth:`record`.  Each kind draws
        from its own ``(kind, seq)`` stream, so adding kinds (or skipping
        requests) never perturbs the others.  ``service_crash`` fires at
        most once per plan instance; a restarted service re-armed with a
        *fresh* plan of the same seed would crash at the same request,
        so drivers re-arm the surviving plan object instead.
        """
        out: list[str] = []
        for kind in SERVICE_FAULT_KINDS:
            p = getattr(self.spec, f"p_{kind}")
            if p <= 0:
                continue
            if kind == "service_crash" and self.service_crash_fired:
                continue
            if self._stream("svc", kind, seq).random() < p:
                if kind == "service_crash":
                    self.service_crash_fired = True
                out.append(kind)
        return out

    # -- rank crashes ----------------------------------------------------------

    def crashed_ranks(self, boundary: str, alive: Iterable[int]) -> list[int]:
        """Ranks (drawn from ``alive``) that die at this phase boundary.

        Always leaves at least one survivor: once only one candidate
        remains un-killed, no further crashes are drawn — the "graceful
        degradation, never total loss" regime the recovery guarantee
        covers.  Crashes are logged here (they are unconditional events,
        not something a consumer may or may not act on).
        """
        alive_sorted = sorted(set(alive))
        dead: list[int] = []
        if self.spec.p_rank_crash <= 0:
            return dead
        for rank in alive_sorted:
            if len(alive_sorted) - len(dead) <= 1:
                break
            if self._stream("crash", boundary, rank).random() < self.spec.p_rank_crash:
                dead.append(rank)
                self.record("rank_crash", boundary, rank)
        return dead

    # -- device faults ---------------------------------------------------------

    def device_fault_kind(self, phase: str, rank: int, attempt: int) -> str | None:
        """Which transient device fault (if any) hits this attempt."""
        if attempt > self.spec.fault_attempts or self.spec.p_device_fault <= 0:
            return None
        rng = self._stream("device", phase, rank, attempt)
        if rng.random() >= self.spec.p_device_fault:
            return None
        return DEVICE_FAULT_KINDS[int(rng.integers(len(DEVICE_FAULT_KINDS)))]

    @contextmanager
    def device_faults(self, device: Device, phase: str, rank: int, attempt: int = 1):
        """Arm ``device.fault_hook`` for one attempt of one rank's phase.

        If the plan schedules a fault for ``(phase, rank, attempt)``, the
        *first kernel launch* inside the block raises it — a
        :class:`DeviceMemoryError` tagged ``fault-injection`` or a
        :class:`KernelFaultError` — so the failure originates inside the
        device, exactly where a real soft fault would.  The previous hook
        is chained and restored on exit.
        """
        kind = self.device_fault_kind(phase, rank, attempt)
        previous = device.fault_hook
        armed = {"kind": kind}

        def hook(kernel_name: str) -> None:
            if previous is not None:
                previous(kernel_name)
            pending, armed["kind"] = armed["kind"], None
            if pending is None:
                return
            self.record(pending, phase, rank, attempt, detail=f"kernel={kernel_name}")
            if pending == "device_oom":
                raise DeviceMemoryError(
                    0, device.memory.live_bytes,
                    device.memory.capacity_bytes or 0, tag="fault-injection",
                )
            raise KernelFaultError(
                f"injected transient fault in kernel '{kernel_name}' "
                f"(phase={phase}, rank={rank}, attempt={attempt})"
            )

        device.fault_hook = hook
        try:
            yield
        finally:
            device.fault_hook = previous

    # -- reporting -------------------------------------------------------------

    def log_as_dicts(self) -> list[dict]:
        """The structured fault log as plain dicts (JSON-ready)."""
        return [event.as_dict() for event in self.log]

    def summary(self) -> dict:
        """Seed, total injected faults, and a per-kind breakdown."""
        by_kind: dict[str, int] = {}
        for event in self.log:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        return {"seed": self.seed, "total": len(self.log), "by_kind": dict(sorted(by_kind.items()))}

    @classmethod
    def random(cls, seed: int, intensity: float = 0.15, crashes: bool = True) -> "FaultPlan":
        """A fuzzed plan for chaos testing: probabilities drawn from ``seed``.

        Every kind gets an independent probability in ``[0, intensity]``
        (crashes included unless ``crashes=False``), so the fuzz space
        covers quiet plans, single-kind storms and everything between.
        """
        rng = np.random.default_rng([int(seed), 0x5EED])
        draw = lambda: float(rng.uniform(0.0, intensity))  # noqa: E731
        spec = FaultSpec(
            p_drop=draw(), p_timeout=draw(), p_corrupt=draw(),
            p_duplicate=draw(), p_reorder=draw(),
            p_rank_crash=draw() if crashes else 0.0,
            p_device_fault=draw(), fault_attempts=2,
        )
        return cls(seed=seed, spec=spec)

    @classmethod
    def random_service(cls, seed: int, intensity: float = 0.15, crash: bool = True) -> "FaultPlan":
        """A fuzzed *service* plan: request-level probabilities (plus
        device faults) drawn from ``seed``; distributed message/crash
        kinds stay zero.  The crash-restart probability is drawn like the
        rest but the one-per-plan cap still applies."""
        rng = np.random.default_rng([int(seed), 0x5E4C])
        draw = lambda: float(rng.uniform(0.0, intensity))  # noqa: E731
        spec = FaultSpec(
            p_device_fault=draw(), p_malformed=draw(), p_oversized=draw(),
            p_deadline_storm=draw(), p_invalidate=draw(),
            p_service_crash=draw() if crash else 0.0, fault_attempts=2,
        )
        return cls(seed=seed, spec=spec)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan(seed={self.seed}, injected={len(self.log)})"
