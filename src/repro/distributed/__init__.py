"""Distributed DBSCAN — the paper's Section-6 extension, simulated.

The paper notes that "the local DBSCAN implementation is an inherent
component of a full distributed algorithm, [so] the proposed algorithm
can be easily plugged into most distributed frameworks", and lists
"combining the proposed approach with distributed computations" as future
work.  This package builds that combination over the repository's local
algorithms, following the standard spatial-decomposition scheme of the
distributed DBSCAN literature the paper cites (Patwary et al. SC'12,
BD-CATS, Mr. Scan):

``partition``
    Recursive coordinate bisection (RCB) of the domain into one box per
    rank, plus *ghost* selection: every remote point within ``eps`` of a
    rank's box is replicated there, which makes each owned point's full
    eps-neighbourhood locally visible — the property all correctness
    arguments rest on.

``comm``
    A simulated communicator: in-process "ranks" exchanging numpy arrays,
    with per-rank byte/message accounting (the distributed analogue of the
    device model's counters).  Transfers ride in checksummed envelopes
    with verify-and-retransmit and deterministic backoff, so injected
    message faults (see :mod:`repro.faults`) are survived, detected and
    accounted rather than silently corrupting the run.

``driver``
    The three-phase distributed algorithm: (1) rank-local core
    determination + fused local clustering (any tree algorithm), (2) ghost
    core-flag exchange, (3) a merge phase that unions the core members of
    local clusters globally and resolves border points on their owner
    rank — border points never merge clusters, preserving the paper's
    no-bridging guarantee across ranks.  The driver checkpoints at phase
    boundaries and recovers from permanent rank death by reassigning the
    dead rank's partition to a surviving rank — the result stays
    DBSCAN-equivalent whenever at least one rank survives (see
    ``docs/distributed.md``).
"""

from repro.distributed.comm import (
    CommDeliveryError,
    CommStats,
    Envelope,
    SimulatedComm,
)
from repro.distributed.driver import distributed_dbscan
from repro.distributed.partition import GhostExchange, Partition, rcb_partition, select_ghosts

__all__ = [
    "CommDeliveryError",
    "CommStats",
    "Envelope",
    "GhostExchange",
    "Partition",
    "SimulatedComm",
    "distributed_dbscan",
    "rcb_partition",
    "select_ghosts",
]
