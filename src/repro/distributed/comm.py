"""Simulated communicator for the distributed driver.

All "ranks" live in one process; communication is array hand-off with
accounting.  The accounting is the point: the distributed experiment
reports ghost-exchange volume, merge-tuple volume and message counts —
the quantities a real MPI port (the paper's ArborX/Kokkos stack runs
under MPI in production) would optimise.

The communicator is additionally *fault-tolerant*: every transfer is
wrapped in a checksummed :class:`Envelope` (CRC-32 over the payload
bytes), and an optional :class:`~repro.faults.FaultPlan` may inject
drops, transient timeouts, bit-flip corruption, duplication and
reordering into each transmission.  Delivery is verify-and-retransmit:

- a dropped or timed-out transmission is retransmitted after bounded
  exponential backoff on a deterministic :class:`~repro.faults.SimClock`
  (the simulated wait is surfaced in :attr:`CommStats.sim_wait_seconds`);
- a corrupted payload fails the receiver's checksum and is retransmitted
  (:attr:`CommStats.corruptions_detected`);
- duplicated deliveries are deduplicated by sequence number;
- reordered deliveries arrive late and are reassembled by sequence
  number, so consumers always observe in-order payloads.

Exhausting the retransmission budget raises :class:`CommDeliveryError`
(a :class:`~repro.faults.TransientFault` — a higher-level retry may still
recover).  With a plan's bounded ``fault_attempts`` the budget never
exhausts at default settings; see :mod:`repro.faults.plan`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.faults.clock import SimClock
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy, TransientFault


class CommDeliveryError(TransientFault):
    """Permanent delivery failure: the retransmission budget is exhausted."""


@dataclass
class CommStats:
    """Per-run communication totals.

    ``by_phase`` maps each phase to ``{"messages", "bytes",
    "retransmits"}`` — message *and* byte counts per phase, plus how many
    of those transmissions were retransmissions (every attempt puts bytes
    on the wire and is accounted).
    """

    messages: int = 0
    bytes_sent: int = 0
    retransmits: int = 0
    drops: int = 0
    timeouts: int = 0
    corruptions_detected: int = 0
    duplicates_dropped: int = 0
    reorders: int = 0
    sim_wait_seconds: float = 0.0
    by_phase: dict = field(default_factory=dict)

    def phase_entry(self, phase: str) -> dict:
        return self.by_phase.setdefault(
            phase, {"messages": 0, "bytes": 0, "retransmits": 0}
        )

    def record(self, phase: str, nbytes: int, retransmit: bool = False) -> None:
        entry = self.phase_entry(phase)
        self.messages += 1
        self.bytes_sent += int(nbytes)
        entry["messages"] += 1
        entry["bytes"] += int(nbytes)
        if retransmit:
            self.retransmits += 1
            entry["retransmits"] += 1

    def as_dict(self) -> dict:
        """JSON-ready snapshot of every counter."""
        return {
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "retransmits": self.retransmits,
            "drops": self.drops,
            "timeouts": self.timeouts,
            "corruptions_detected": self.corruptions_detected,
            "duplicates_dropped": self.duplicates_dropped,
            "reorders": self.reorders,
            "sim_wait_seconds": self.sim_wait_seconds,
            "by_phase": {phase: dict(entry) for phase, entry in self.by_phase.items()},
        }


@dataclass
class Envelope:
    """One transmission: payload plus integrity metadata.

    The checksum is computed by the sender over the payload bytes; the
    receiver recomputes it on arrival (:meth:`verify`), turning silent
    link corruption into a detected, retryable failure.
    """

    phase: str
    sender: int
    seq: int
    payload: np.ndarray
    checksum: int

    @classmethod
    def wrap(cls, phase: str, sender: int, seq: int, payload: np.ndarray) -> "Envelope":
        payload = np.ascontiguousarray(payload)
        return cls(phase, int(sender), int(seq), payload, zlib.crc32(payload.tobytes()))

    def verify(self) -> bool:
        return zlib.crc32(np.ascontiguousarray(self.payload).tobytes()) == self.checksum


class SimulatedComm:
    """An in-process stand-in for an MPI communicator.

    Only the collective patterns the driver needs are provided; every
    transfer is accounted in :attr:`stats`.  With a ``fault_plan``, every
    transmission runs through the checksum/retry envelope described in
    the module docstring; without one, transfers are clean but still take
    the same (checksummed) path.

    Parameters
    ----------
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` injecting message faults.
    retry_policy:
        Backoff/budget for retransmissions (default: 6 attempts, which
        always out-lasts a default plan's ``fault_attempts=2``).
    clock:
        Deterministic clock charged for backoff waits (shared with the
        driver so a run reports one simulated timeline).
    tracer:
        Optional :class:`~repro.obs.span.Tracer`: each delivered message
        becomes a ``comm`` span (attributes: phase, sender, seq, bytes,
        attempts) on the shared timeline, with injected faults attached
        as span events by the fault plan, and the cumulative
        transmitted-byte count sampled as a counter track.
    """

    def __init__(
        self,
        n_ranks: int,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        clock: SimClock | None = None,
        tracer=None,
    ):
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1; got {n_ranks}")
        self.n_ranks = n_ranks
        self.plan = fault_plan
        self.retry = retry_policy if retry_policy is not None else RetryPolicy(max_attempts=6)
        self.clock = clock if clock is not None else SimClock()
        self.tracer = tracer
        self.stats = CommStats()
        self.dead: set[int] = set()
        self._seq = 0

    def mark_dead(self, rank: int) -> None:
        """Exclude a crashed rank: its slots are skipped, not transmitted."""
        self.dead.add(int(rank))

    # -- the envelope/retry pipeline ------------------------------------------

    def _transmit(self, phase: str, sender: int, payload: np.ndarray) -> tuple[np.ndarray, bool]:
        """Deliver one payload; returns ``(delivered, was_reordered)``.

        Implements verify-and-retransmit: each attempt is accounted as a
        message (bytes go on the wire whether or not delivery succeeds),
        failed attempts wait the policy's bounded exponential backoff on
        the simulated clock, and the loop ends on a verified delivery or
        :class:`CommDeliveryError`.

        With a tracer, the whole delivery (every attempt) is one ``comm``
        span; the fault plan's injections land on it as span events, and
        the final attempt count / retransmit tally become attributes.
        """
        arr = np.ascontiguousarray(payload)
        seq = self._seq
        self._seq += 1
        if self.tracer is None:
            delivered, reordered, _attempts = self._deliver(phase, sender, arr, seq)
            return delivered, reordered
        with self.tracer.span(
            f"comm:{phase}",
            category="comm",
            attributes={"phase": phase, "sender": int(sender), "seq": seq, "bytes": arr.nbytes},
        ) as span:
            delivered, reordered, attempts = self._deliver(phase, sender, arr, seq)
            span.attributes["attempts"] = attempts
            span.attributes["retransmits"] = attempts - 1
            span.attributes["reordered"] = reordered
            self.tracer.counter("comm_bytes_sent", self.stats.bytes_sent)
            return delivered, reordered

    def _deliver(
        self, phase: str, sender: int, arr: np.ndarray, seq: int
    ) -> tuple[np.ndarray, bool, int]:
        """The verify-and-retransmit loop behind :meth:`_transmit`;
        returns ``(delivered, was_reordered, attempts)``."""
        attempt = 0
        while True:
            attempt += 1
            if attempt > 1:
                self.stats.sim_wait_seconds += self.clock.sleep(self.retry.backoff(attempt - 1))
            if attempt > self.retry.max_attempts:
                raise CommDeliveryError(
                    f"message seq={seq} (phase '{phase}', sender {sender}) undelivered "
                    f"after {self.retry.max_attempts} attempts"
                )
            self.stats.record(phase, arr.nbytes, retransmit=attempt > 1)
            faults = (
                self.plan.message_faults(phase, sender, seq, attempt)
                if self.plan is not None
                else []
            )
            if "drop" in faults:
                self.stats.drops += 1
                self.plan.record("drop", phase, sender, attempt, detail=f"seq={seq}")
                continue
            if "timeout" in faults:
                # The ack deadline expires before delivery: charged one full
                # backoff cap of simulated wait, then retransmitted.
                self.stats.timeouts += 1
                self.plan.record("timeout", phase, sender, attempt, detail=f"seq={seq}")
                self.stats.sim_wait_seconds += self.clock.sleep(self.retry.backoff_cap)
                continue
            envelope = Envelope.wrap(phase, sender, seq, arr)
            if "corrupt" in faults and envelope.payload.nbytes:
                raw = self.plan.corrupt_payload(
                    envelope.payload.tobytes(), phase, sender, seq, attempt
                )
                envelope = Envelope(
                    phase, sender, seq,
                    np.frombuffer(raw, dtype=arr.dtype).reshape(arr.shape),
                    envelope.checksum,
                )
            if not envelope.verify():
                self.stats.corruptions_detected += 1
                self.plan.record("corrupt", phase, sender, attempt, detail=f"seq={seq}")
                continue
            if "duplicate" in faults:
                # The receiver sees the same seq twice and drops the copy.
                self.stats.duplicates_dropped += 1
                self.plan.record("duplicate", phase, sender, attempt, detail=f"seq={seq}")
            reordered = "reorder" in faults
            if reordered:
                self.stats.reorders += 1
                self.plan.record("reorder", phase, sender, attempt, detail=f"seq={seq}")
            return envelope.payload, reordered, attempt

    def _collect(
        self, phase: str, payloads: list[np.ndarray], senders: list[int] | None
    ) -> list[np.ndarray]:
        if len(payloads) != self.n_ranks:
            raise ValueError(f"expected {self.n_ranks} payloads; got {len(payloads)}")
        if senders is not None and len(senders) != self.n_ranks:
            raise ValueError(f"expected {self.n_ranks} senders; got {len(senders)}")
        out: list[np.ndarray | None] = [None] * self.n_ranks
        late: list[tuple[int, np.ndarray]] = []
        for slot, payload in enumerate(payloads):
            sender = slot if senders is None else int(senders[slot])
            if sender in self.dead:
                # A dead rank transmits nothing; its slot passes through
                # untouched (the driver never consumes dead slots).
                out[slot] = payload
                continue
            delivered, reordered = self._transmit(phase, sender, payload)
            if reordered:
                late.append((slot, delivered))  # arrives after everything else
            else:
                out[slot] = delivered
        for slot, delivered in late:
            # Reassembly by sequence/slot: late arrivals land in their slot,
            # so consumers never observe the reordering.
            out[slot] = delivered
        return out  # type: ignore[return-value]

    # -- collective patterns ---------------------------------------------------

    def exchange(
        self, phase: str, payloads: list[np.ndarray], senders: list[int] | None = None
    ) -> list[np.ndarray]:
        """Neighbourhood exchange: rank ``r``'s payload is delivered
        (here: passed through the envelope pipeline) and accounted.
        ``payloads[r]`` is what rank ``r`` *receives* — the ghost pattern is
        computed by the partitioner, so accounting what lands on each rank
        equals accounting the sends.  ``senders[r]`` names the rank doing
        slot ``r``'s work (defaults to ``r``; differs after reassignment).
        """
        return self._collect(phase, payloads, senders)

    def gather(
        self, phase: str, payloads: list[np.ndarray], senders: list[int] | None = None
    ) -> list[np.ndarray]:
        """Gather-to-root of per-rank arrays (the merge phase's pattern)."""
        return self._collect(phase, payloads, senders)

    def send(self, phase: str, payload: np.ndarray, sender: int = 0) -> np.ndarray:
        """Point-to-point delivery (recovery re-shipments) through the same
        envelope/retry pipeline."""
        if sender in self.dead:
            raise CommDeliveryError(f"rank {sender} is dead; cannot send '{phase}'")
        delivered, _ = self._transmit(phase, sender, np.asarray(payload))
        return delivered
