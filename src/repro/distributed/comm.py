"""Simulated communicator for the distributed driver.

All "ranks" live in one process; communication is array hand-off with
accounting.  The accounting is the point: the distributed experiment
reports ghost-exchange volume, merge-tuple volume and message counts —
the quantities a real MPI port (the paper's ArborX/Kokkos stack runs
under MPI in production) would optimise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class CommStats:
    """Per-run communication totals."""

    messages: int = 0
    bytes_sent: int = 0
    by_phase: dict = field(default_factory=dict)

    def record(self, phase: str, nbytes: int) -> None:
        self.messages += 1
        self.bytes_sent += int(nbytes)
        self.by_phase[phase] = self.by_phase.get(phase, 0) + int(nbytes)


class SimulatedComm:
    """An in-process stand-in for an MPI communicator.

    Only the collective patterns the driver needs are provided; every
    transfer is accounted in :attr:`stats`.
    """

    def __init__(self, n_ranks: int):
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1; got {n_ranks}")
        self.n_ranks = n_ranks
        self.stats = CommStats()

    def exchange(self, phase: str, payloads: list[np.ndarray]) -> list[np.ndarray]:
        """Neighbourhood exchange: rank ``r``'s payload is delivered
        (here: passed through) and accounted.  ``payloads[r]`` is what rank
        ``r`` *receives* — the ghost pattern is computed by the partitioner,
        so accounting what lands on each rank equals accounting the sends.
        """
        if len(payloads) != self.n_ranks:
            raise ValueError(
                f"expected {self.n_ranks} payloads; got {len(payloads)}"
            )
        for payload in payloads:
            self.stats.record(phase, np.asarray(payload).nbytes)
        return payloads

    def gather(self, phase: str, payloads: list[np.ndarray]) -> list[np.ndarray]:
        """Gather-to-root of per-rank arrays (the merge phase's pattern)."""
        if len(payloads) != self.n_ranks:
            raise ValueError(
                f"expected {self.n_ranks} payloads; got {len(payloads)}"
            )
        for payload in payloads:
            self.stats.record(phase, np.asarray(payload).nbytes)
        return payloads
