"""The fault-tolerant distributed DBSCAN driver.

Three phases over an RCB partition with eps-halo ghosts (the scheme of
Patwary et al. SC'12 / BD-CATS, with the paper's fused tree algorithm as
the rank-local engine):

1. **local phase** — every rank builds a BVH over its owned + ghost
   points; owned points' neighbour counts are *exact* (the halo guarantees
   the full eps-neighbourhood is local), giving owned core flags;
2. **flag exchange** — ghost core flags arrive from their owner ranks
   (simulated; one boolean per ghost), after which each rank runs the
   fused main phase with queries restricted to owned points: owned-owned
   pairs resolve locally, owned-ghost pairs resolve on both sharing ranks
   (idempotent for unions; border CAS divergence is reconciled in phase 3
   by preferring the owner rank's attachment);
3. **merge phase** — each rank ships, per local cluster, its *core*
   members' global ids plus its owned border attachments.  Core groups are
   unioned globally — any core-core eps-pair was locally clustered on the
   owner's rank, so the global core partition is exact — and border points
   take their owner rank's attachment.  Borders are never unioned through,
   so no cluster bridging can occur across ranks either.

The result is DBSCAN-equivalent to a single-device run: identical core
and noise sets, identical core partition, legal border assignments.

Fault tolerance
---------------
With a :class:`~repro.faults.FaultPlan` the run additionally survives:

- **message faults** — handled inside :class:`SimulatedComm` (checksummed
  envelopes, verify-and-retransmit, deterministic backoff);
- **transient device faults** — each partition's local/main phase runs
  under a :class:`~repro.faults.RetryPolicy`: an injected (or real)
  :class:`~repro.device.DeviceMemoryError` / ``KernelFaultError`` inside a
  kernel is retried on a fresh attempt instead of aborting the run;
- **phase-boundary rank crashes** — the driver checkpoints at phase
  boundaries (the partition/halo decomposition is deterministic and
  recomputable; the post-local ``core_flags`` exchange doubles as a
  replicated checkpoint of every owned core flag; per-partition merge
  payloads are the phase-2 checkpoint).  When a rank dies permanently,
  each partition it executed is **reassigned to the least-loaded
  surviving rank**, which re-ships the partition's points/ghosts (and
  checkpointed core flags) and recomputes only the lost state — the BVH
  rebuild skips neighbour counting entirely when the core-flag
  checkpoint is available.  Because every partition's work is a pure
  function of (points, eps, minpts), the final labelling is identical no
  matter which rank executes it: **graceful degradation** — the result
  stays DBSCAN-equivalent whenever at least one rank survives.

All fault decisions, retries and recoveries are deterministic in the
plan's seed: replaying a seed reproduces the identical fault log, retry
counts and labelling.  Pass a *fresh* plan per run (its log accumulates).
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import replace

import numpy as np

from repro.bvh.aabb import boxes_from_points
from repro.bvh.builder import build_bvh
from repro.bvh.traversal import count_within, for_each_leaf_hit
from repro.core.framework import resolve_pairs
from repro.core.labels import DBSCANResult, relabel_consecutive
from repro.core.validation import validate_params, validate_points
from repro.device.backends import coerce_backend
from repro.device.device import Device, KernelFaultError, default_device
from repro.device.memory import DeviceMemoryError
from repro.device.primitives import run_length_encode
from repro.distributed.comm import SimulatedComm
from repro.distributed.partition import rcb_partition, select_ghosts
from repro.faults.clock import SimClock
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy, call_with_retries
from repro.obs.span import NULL_TRACER
from repro.unionfind.ecl import EclUnionFind, find_roots


def _local_phase(
    X: np.ndarray,
    local_ids: np.ndarray,
    n_owned: int,
    eps: float,
    minpts: int,
    dev: Device,
    query_order: str = "input",
    traversal: str = "single",
):
    """One rank's work: core flags for owned points + local clustering.

    ``local_ids`` lists global ids, owned first (``n_owned`` of them) then
    ghosts.  Returns ``(tree, owned_core, local_core)`` where ``owned_core``
    is ``None`` for ``minpts == 2`` (derived from component sizes globally).

    A rank owning zero points (``n_ranks`` approaching or exceeding ``n``,
    or heavily duplicated coordinates rounding a split to nothing) has no
    queries and contributes nothing to any cluster: it returns
    ``tree=None`` and empty/zero flags instead of attempting a degenerate
    BVH build.
    """
    if n_owned == 0 or local_ids.shape[0] == 0:
        return None, None if minpts == 2 else np.zeros(n_owned, dtype=bool), np.zeros(
            local_ids.shape[0], dtype=bool
        )
    pts = X[local_ids]
    lo, hi = boxes_from_points(pts)
    tree = build_bvh(lo, hi, device=dev)
    owned_pts = pts[:n_owned]

    if minpts == 2:
        local_core = np.ones(local_ids.shape[0], dtype=bool)
        owned_core = None  # derived from component sizes globally
    elif minpts == 1:
        local_core = np.ones(local_ids.shape[0], dtype=bool)
        owned_core = np.ones(n_owned, dtype=bool)
    else:
        counts = count_within(
            tree, owned_pts, eps, stop_at=minpts, device=dev,
            query_order=query_order, traversal=traversal,
        )
        owned_core = counts >= minpts
        local_core = np.zeros(local_ids.shape[0], dtype=bool)
        local_core[:n_owned] = owned_core
        # ghost flags are filled in by the caller after the exchange
    return tree, owned_core, local_core


def _merge_payloads(
    local_ids: np.ndarray,
    n_owned: int,
    local_core: np.ndarray,
    labels_local: np.ndarray,
) -> tuple[tuple[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
    """One partition's merge-phase contributions, in global ids.

    Returns ``((group_firsts, group_members), (border_ids, border_targets))``
    — the core-group union pairs and the owner-authoritative border
    attachments.  These arrays are exactly what the merge gather ships, so
    they double as the partition's phase-2 checkpoint.
    """
    empty = np.zeros(0, dtype=np.int64)
    if n_owned == 0 or local_ids.shape[0] == 0:
        return (empty, empty), (empty, empty)
    core_rows = np.flatnonzero(local_core)
    rep_for_root = np.full(local_ids.shape[0], -1, dtype=np.int64)
    if core_rows.size:
        roots = labels_local[core_rows]
        order = np.argsort(roots, kind="stable")
        core_sorted = core_rows[order]
        uroots, starts, lengths = run_length_encode(roots[order])
        firsts = np.repeat(core_sorted[starts], lengths) if starts.size else core_sorted
        core_payload = (local_ids[firsts], local_ids[core_sorted])
        rep_for_root[uroots] = core_sorted[starts]
    else:
        core_payload = (empty, empty)
    owned_rows = np.arange(n_owned)
    border_rows = owned_rows[
        ~local_core[:n_owned] & (labels_local[:n_owned] != owned_rows)
    ]
    if border_rows.size:
        targets = rep_for_root[labels_local[border_rows]]
        attach_payload = (local_ids[border_rows], local_ids[targets])
    else:
        attach_payload = (empty, empty)
    return core_payload, attach_payload


def distributed_dbscan(
    X: np.ndarray,
    eps: float,
    min_samples: int,
    n_ranks: int = 4,
    device: Device | None = None,
    fault_plan: FaultPlan | None = None,
    retry_policy: RetryPolicy | None = None,
    tracer=None,
    query_order: str = "input",
    traversal: str = "single",
    backend=None,
) -> DBSCANResult:
    """Cluster ``X`` across ``n_ranks`` simulated ranks.

    ``info`` reports the decomposition (per-rank owned/ghost counts), the
    communication volume per phase, and — when faults are in play — the
    structured fault log, per-phase retry counts, rank recoveries and the
    surviving rank set.  Output is DBSCAN-equivalent to any single-device
    algorithm in the registry, including under any seeded ``fault_plan``
    that leaves at least one rank alive.

    ``query_order`` / ``traversal`` are each rank's local traversal
    options (see :func:`repro.bvh.traversal.for_each_leaf_hit`): Morton
    query scheduling sorts every rank's owned+halo queries along the
    Z-curve, the dual engine prunes its query-BVH groups collectively,
    and ``"auto"`` lets each rank pick the engine per chunk from the
    cost model.  All are pure work-scheduling choices — the labelling is
    identical — and all apply identically on recovery reruns, so
    fault-time recompute stays equivalent too.

    ``retry_policy`` governs the transient-failure retries of rank-local
    compute and of message delivery; with a ``fault_plan`` present its
    attempt budget is raised (if needed) above the plan's bounded
    ``fault_attempts`` so injected faults always converge.

    With a ``tracer`` (:class:`~repro.obs.span.Tracer`), the run records
    one span tree: a ``distributed_dbscan`` root with child spans per
    phase (``partition``, ``ghost_exchange``, per-partition ``local[p]``
    / ``main[p]``, ``core_flag_exchange``, crash-boundary recoveries,
    ``merge`` and ``finalize``); device kernels and comm transmissions
    nest inside the phase that launched them, and every injected fault
    lands on the span that was open when it fired.

    With ``backend="process"`` (or a parallel backend stored on the
    device/``backend`` argument) each rank becomes a **real OS process**
    (:class:`~repro.distributed.procranks.RankPool`): rank-local trees
    and core flags live in the rank process, a plan-driven rank crash is
    an actual ``SIGKILL``, and recovery re-ships the partition's points
    and checkpointed core flags to a *surviving* rank process.  Labels,
    counters and the fault schedule are bit-identical to the simulated
    path; rank kernel launches appear as ``name@r<rank>`` lanes on the
    parent device.
    """
    X = validate_points(X)
    eps, minpts = validate_params(eps, min_samples)
    dev = default_device(device)
    n = X.shape[0]
    t0 = time.perf_counter()

    tr = tracer if tracer is not None else NULL_TRACER
    plan = fault_plan
    if plan is not None and tracer is not None and plan.tracer is None:
        plan.tracer = tracer
    retry = retry_policy if retry_policy is not None else RetryPolicy()
    if plan is not None and retry.max_attempts <= plan.spec.fault_attempts:
        # Injected faults hit at most the first `fault_attempts` attempts of
        # any operation; one more attempt guarantees convergence.
        retry = replace(retry, max_attempts=plan.spec.fault_attempts + 1)
    clock = SimClock()
    comm = SimulatedComm(
        n_ranks,
        fault_plan=plan,
        retry_policy=replace(retry, max_attempts=max(retry.max_attempts, 6)),
        clock=clock,
        tracer=tracer,
    )
    bk = coerce_backend(backend if backend is not None else getattr(dev, "backend", None))
    pool = None
    if bk.parallel:
        from repro.distributed.procranks import RankPool

        pool = RankPool(n_ranks)

    root = tr.start(
        "distributed_dbscan",
        category="driver",
        attributes={"n": n, "eps": eps, "min_samples": minpts, "n_ranks": n_ranks},
    )
    prev_dev_tracer = dev.tracer
    if tracer is not None:
        dev.tracer = tracer
    try:
        with tr.span("partition", category="phase"):
            partition = rcb_partition(X, n_ranks)
            halo = select_ghosts(X, partition, eps)
        owned_lists = [partition.owned(p) for p in range(n_ranks)]
        local_ids_per_rank = [
            np.concatenate([owned_lists[p], halo.ghosts[p]]) for p in range(n_ranks)
        ]

        # -- fault-tolerance state -------------------------------------------------
        alive = set(range(n_ranks))
        executor = list(range(n_ranks))  # executor[p]: rank running partition p
        trees: dict[int, tuple] = {}  # p -> (tree, local_core)
        merge_core: dict[int, tuple] = {}  # p -> (group_firsts, group_members)
        merge_attach: dict[int, tuple] = {}  # p -> (border_ids, border_targets)
        retries: dict[str, int] = {}
        recoveries: list[dict] = []
        checkpoints: list[str] = ["partition"]  # RCB+halo: deterministic, recomputable
        global_core = np.zeros(n, dtype=bool)
        ghosts_shipped = False
        core_checkpointed = False

        def absorb_rank(p: int, out: dict) -> None:
            """Merge one rank operation's counter delta and kernel lanes.

            Unlike the intra-kernel process backend, rank deltas keep
            their ``kernel_launches``/``thread_steps`` — in the simulated
            path the rank kernels launch directly on the shared parent
            device, so including them is what preserves bit-parity.
            """
            rank = executor[p]
            for key, value in (out.get("counters") or {}).items():
                if key == "frontier_peak":
                    dev.counters.observe_peak(key, value)
                else:
                    dev.counters.add(key, value)
            epoch = pool.epochs.get(rank)
            for rec in out.get("launches") or []:
                dev.record_external_launch(
                    f"{rec['name']}@r{rank}",
                    threads=rec["threads"],
                    seconds=rec["seconds"],
                    steps=rec["steps"],
                    t_start_abs=None if epoch is None else epoch + rec["t_start"],
                )

        def run_attempt(phase_name: str, p: int, fn):
            """Run one partition-phase under the retry policy with device-fault
            injection armed per attempt."""

            def attempt(k: int):
                if pool is not None:
                    # Rank processes: the parent evaluates the plan's pure
                    # fault decision and raises *before* dispatching — the
                    # simulated hook fires at the attempt's first kernel
                    # launch, before any work is recorded, so the two are
                    # equivalent (identical retries, logs and counters).
                    if plan is not None:
                        kind = plan.device_fault_kind(phase_name, p, attempt=k)
                        if kind is not None:
                            plan.record(
                                kind, phase_name, p, k, detail="rank-process"
                            )
                            if kind == "device_oom":
                                raise DeviceMemoryError(
                                    0,
                                    dev.memory.live_bytes,
                                    dev.memory.capacity_bytes or 0,
                                    tag="fault-injection",
                                )
                            raise KernelFaultError(
                                f"injected transient fault in rank process "
                                f"(phase={phase_name}, rank={p}, attempt={k})"
                            )
                    return fn()
                cm = (
                    plan.device_faults(dev, phase_name, p, attempt=k)
                    if plan is not None
                    else nullcontext()
                )
                with cm:
                    return fn()

            with tr.span(
                f"{phase_name}[{p}]", category="phase", attributes={"partition": p}
            ) as pspan:
                result, attempts = call_with_retries(attempt, retry, clock=clock)
                if pspan is not None:
                    pspan.attributes["attempts"] = attempts
            if attempts > 1:
                retries[phase_name] = retries.get(phase_name, 0) + attempts - 1
            return result

        def handle_crashes(boundary: str) -> None:
            """Kill plan-selected ranks at a phase boundary and recover: each
            dead executor's partitions move to the least-loaded survivor, which
            receives the partition's data (and checkpointed core flags) again
            and recomputes whatever state died with the rank."""
            if plan is None:
                return
            before = len(recoveries)
            with tr.span(
                f"crash_boundary:{boundary}",
                category="phase",
                attributes={"boundary": boundary},
            ) as bspan:
                for r in plan.crashed_ranks(boundary, alive):
                    alive.discard(r)
                    comm.mark_dead(r)
                    if pool is not None:
                        pool.kill(r)  # a real SIGKILL: resident state dies
                for p in range(n_ranks):
                    if executor[p] in alive:
                        continue
                    loads = {a: 0 for a in alive}
                    for q in range(n_ranks):
                        if executor[q] in loads:
                            loads[executor[q]] += int(owned_lists[q].shape[0])
                    dead_rank = executor[p]
                    new_rank = min(sorted(alive), key=lambda a: (loads[a], a))
                    executor[p] = new_rank
                    lost = []
                    if trees.pop(p, None) is not None:
                        lost.append("local_state")
                    if merge_core.pop(p, None) is not None:
                        merge_attach.pop(p, None)
                        lost.append("merge_payloads")
                    reshipped = []
                    if ghosts_shipped:
                        # Restore the partition's inputs from the checkpoint store
                        # (dataset replica + replicated core flags).
                        comm.send("recovery_points", X[owned_lists[p]], sender=new_rank)
                        comm.send("recovery_ghosts", X[halo.ghosts[p]], sender=new_rank)
                        reshipped += ["points", "ghosts"]
                        if core_checkpointed:
                            comm.send(
                                "recovery_core_flags",
                                global_core[local_ids_per_rank[p]],
                                sender=new_rank,
                            )
                            reshipped.append("core_flags")
                    recoveries.append(
                        {
                            "boundary": boundary,
                            "partition": p,
                            "dead_rank": dead_rank,
                            "reassigned_to": new_rank,
                            "lost": lost,
                            "reshipped": reshipped,
                        }
                    )
                if bspan is not None:
                    bspan.attributes["recoveries"] = len(recoveries) - before
                    bspan.attributes["alive_ranks"] = len(alive)

        def ensure_local_state(p: int) -> None:
            """Recompute a partition's phase-1 state lost to a crash: rebuild
            the BVH, taking core flags straight from the replicated checkpoint
            (no neighbour recount)."""
            if p in trees:
                return

            if pool is not None:

                def rebuild():
                    ids = local_ids_per_rank[p]
                    n_owned = int(owned_lists[p].shape[0])
                    out = pool.run(
                        executor[p],
                        "rebuild",
                        {
                            "partition": p,
                            "pts": X[ids],
                            "n_owned": n_owned,
                            "minpts": minpts,
                            # the replicated core-flag checkpoint travels
                            # with the re-shipped points
                            "core": global_core[ids] if minpts > 2 else None,
                        },
                    )
                    absorb_rank(p, out)
                    return ("rank" if out["has_tree"] else None, out["local_core"])

            else:

                def rebuild():
                    ids = local_ids_per_rank[p]
                    n_owned = owned_lists[p].shape[0]
                    if n_owned == 0 or ids.shape[0] == 0:
                        return None, np.zeros(ids.shape[0], dtype=bool)
                    pts = X[ids]
                    lo, hi = boxes_from_points(pts)
                    tree = build_bvh(lo, hi, device=dev)
                    if minpts > 2:
                        local_core = global_core[ids].copy()  # the core_flags checkpoint
                    else:
                        local_core = np.ones(ids.shape[0], dtype=bool)
                    return tree, local_core

            trees[p] = run_attempt("recover_local", p, rebuild)

        def main_phase(p: int) -> None:
            """Fused main phase for one partition, then its merge payloads
            (which double as the phase-2 checkpoint)."""
            ensure_local_state(p)
            tree, local_core = trees[p]
            ids = local_ids_per_rank[p]
            n_owned = owned_lists[p].shape[0]
            if minpts > 2 and tree is not None and ids.shape[0] > n_owned:
                # Idempotent under recovery: these are the checkpointed values.
                local_core[n_owned:] = global_core[ids[n_owned:]]
                if pool is not None:
                    pool.run(
                        executor[p],
                        "fill_ghost_core",
                        {"partition": p, "ghost_core": local_core[n_owned:].copy()},
                    )

            if pool is not None:

                def attempt():
                    if tree is None or n_owned == 0:
                        return np.arange(ids.shape[0], dtype=np.int64)
                    out = pool.run(
                        executor[p],
                        "main",
                        {
                            "partition": p,
                            "eps": eps,
                            "kernel_name": f"dist_main_rank{p}",
                            "query_order": query_order,
                            "traversal": traversal,
                        },
                    )
                    absorb_rank(p, out)
                    return out["labels"]

            else:

                def attempt():
                    if tree is None or n_owned == 0:
                        return np.arange(ids.shape[0], dtype=np.int64)
                    uf = EclUnionFind(ids.shape[0], device=dev)
                    order = tree.order

                    def on_hits(q_ids: np.ndarray, leaf_pos: np.ndarray) -> None:
                        nbr = order[leaf_pos]
                        keep = nbr != q_ids  # queries are the first n_owned local rows
                        resolve_pairs(uf, local_core, q_ids[keep], nbr[keep], dev)

                    for_each_leaf_hit(
                        tree,
                        X[ids[:n_owned]],
                        eps,
                        on_hits,
                        device=dev,
                        kernel_name=f"dist_main_rank{p}",
                        query_order=query_order,
                        traversal=traversal,
                    )
                    return uf.finalize()

            labels_local = run_attempt("main", p, attempt)
            merge_core[p], merge_attach[p] = _merge_payloads(
                ids, n_owned, local_core, labels_local
            )

        # --- boundary: ranks may be dead before any work starts -------------------
        handle_crashes("pre_local")

        # Ghost coordinates travel to their consumer ranks.
        with tr.span("ghost_exchange", category="phase"):
            comm.exchange("ghosts", [X[g] for g in halo.ghosts], senders=executor)
        ghosts_shipped = True

        # --- phase 1: local core determination ------------------------------------
        for p in range(n_ranks):
            if pool is not None:

                def local_fn(p=p):
                    out = pool.run(
                        executor[p],
                        "local",
                        {
                            "partition": p,
                            "pts": X[local_ids_per_rank[p]],
                            "n_owned": int(owned_lists[p].shape[0]),
                            "eps": eps,
                            "minpts": minpts,
                            "query_order": query_order,
                            "traversal": traversal,
                        },
                    )
                    absorb_rank(p, out)
                    return (
                        ("rank" if out["has_tree"] else None),
                        out["owned_core"],
                        out["local_core"],
                    )

            else:

                def local_fn(p=p):
                    return _local_phase(
                        X, local_ids_per_rank[p], owned_lists[p].shape[0], eps,
                        minpts, dev, query_order=query_order, traversal=traversal,
                    )

            tree, owned_core, local_core = run_attempt("local", p, local_fn)
            trees[p] = (tree, local_core)
            if owned_core is not None:
                global_core[owned_lists[p]] = owned_core

        # The core-flag exchange doubles as a replicated checkpoint: after it,
        # every owned core flag survives any individual rank's death.
        if minpts > 2:
            with tr.span("core_flag_exchange", category="phase"):
                comm.exchange(
                    "core_flags", [global_core[g] for g in halo.ghosts], senders=executor
                )
        core_checkpointed = True
        checkpoints.append("core_flags")

        # --- boundary: post-local crashes lose in-memory trees --------------------
        handle_crashes("pre_main")

        # --- phase 2: ghost core-flag fill + local main phase ----------------------
        for p in range(n_ranks):
            main_phase(p)
        checkpoints.append("merge_payloads")

        # --- boundary: post-main crashes lose not-yet-gathered merge payloads -----
        handle_crashes("pre_merge")
        for p in range(n_ranks):
            if p not in merge_core:
                main_phase(p)  # full recompute from the core_flags checkpoint

        # --- phase 3: merge --------------------------------------------------------
        with tr.span("merge", category="phase"):
            comm.gather(
                "merge_core_groups",
                [merge_core[p][1] for p in range(n_ranks)],
                senders=executor,
            )
            comm.gather(
                "merge_border_attachments",
                [merge_attach[p][0] for p in range(n_ranks)],
                senders=executor,
            )
            guf = EclUnionFind(n, device=dev)
            for p in range(n_ranks):
                firsts, members = merge_core[p]
                if members.size:
                    guf.union(firsts, members)
            attach_targets = np.full(n, -1, dtype=np.int64)
            for p in range(n_ranks):
                borders, targets = merge_attach[p]
                if borders.size:
                    attach_targets[borders] = targets

        # --- assemble the global result ------------------------------------------
        with tr.span("finalize", category="phase"):
            if minpts == 2:
                roots = find_roots(guf.parents, np.arange(n, dtype=np.int64), dev.counters)
                sizes = np.bincount(roots, minlength=n)
                global_core = sizes[roots] >= 2
                clustered = global_core
                raw = np.where(clustered, roots, -1)
            elif minpts == 1:
                global_core[:] = True
                roots = find_roots(guf.parents, np.arange(n, dtype=np.int64), dev.counters)
                clustered = np.ones(n, dtype=bool)
                raw = roots
            else:
                roots = find_roots(guf.parents, np.arange(n, dtype=np.int64), dev.counters)
                attached = attach_targets >= 0
                raw = np.where(global_core, roots, -1)
                raw[attached & ~global_core] = roots[
                    attach_targets[attached & ~global_core]
                ]
                clustered = global_core | (attached & ~global_core)
            labels, n_clusters = relabel_consecutive(raw, clustered)

        info = {
            "algorithm": "distributed-fdbscan",
            "n": n,
            "eps": eps,
            "min_samples": minpts,
            "n_ranks": n_ranks,
            "query_order": query_order,
            "traversal": traversal,
            "backend": bk.name,
            "rank_processes": pool is not None,
            "owned_per_rank": partition.counts().tolist(),
            "ghosts_per_rank": [int(g.shape[0]) for g in halo.ghosts],
            "alive_ranks": sorted(alive),
            "dead_ranks": sorted(set(range(n_ranks)) - alive),
            "executor_of_partition": list(executor),
            "checkpoints": checkpoints,
            "recoveries": recoveries,
            "retries": dict(retries),
            "comm_messages": comm.stats.messages,
            "comm_bytes": comm.stats.bytes_sent,
            "comm_retransmits": comm.stats.retransmits,
            "comm_by_phase": {k: dict(v) for k, v in comm.stats.by_phase.items()},
            "comm": comm.stats.as_dict(),
            "sim_wait_seconds": clock.slept_seconds,
            "faults": plan.summary() if plan is not None else {"seed": None, "total": 0, "by_kind": {}},
            "fault_log": plan.log_as_dicts() if plan is not None else [],
            "t_total": time.perf_counter() - t0,
        }
        return DBSCANResult(
            labels=labels, is_core=global_core, n_clusters=n_clusters, info=info
        )
    finally:
        dev.tracer = prev_dev_tracer
        if pool is not None:
            pool.close()
        tr.end(root)
