"""The distributed DBSCAN driver.

Three phases over an RCB partition with eps-halo ghosts (the scheme of
Patwary et al. SC'12 / BD-CATS, with the paper's fused tree algorithm as
the rank-local engine):

1. **local phase** — every rank builds a BVH over its owned + ghost
   points; owned points' neighbour counts are *exact* (the halo guarantees
   the full eps-neighbourhood is local), giving owned core flags;
2. **flag exchange** — ghost core flags arrive from their owner ranks
   (simulated; one boolean per ghost), after which each rank runs the
   fused main phase with queries restricted to owned points: owned-owned
   pairs resolve locally, owned-ghost pairs resolve on both sharing ranks
   (idempotent for unions; border CAS divergence is reconciled in phase 3
   by preferring the owner rank's attachment);
3. **merge phase** — each rank ships, per local cluster, its *core*
   members' global ids plus its owned border attachments.  Core groups are
   unioned globally — any core-core eps-pair was locally clustered on the
   owner's rank, so the global core partition is exact — and border points
   take their owner rank's attachment.  Borders are never unioned through,
   so no cluster bridging can occur across ranks either.

The result is DBSCAN-equivalent to a single-device run: identical core
and noise sets, identical core partition, legal border assignments.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bvh.aabb import boxes_from_points
from repro.bvh.builder import build_bvh
from repro.bvh.traversal import count_within, for_each_leaf_hit
from repro.core.framework import resolve_pairs
from repro.core.labels import DBSCANResult, relabel_consecutive
from repro.core.validation import validate_params, validate_points
from repro.device.device import Device, default_device
from repro.device.primitives import run_length_encode
from repro.distributed.comm import SimulatedComm
from repro.distributed.partition import rcb_partition, select_ghosts
from repro.unionfind.ecl import EclUnionFind, find_roots


def _local_phase(
    X: np.ndarray,
    local_ids: np.ndarray,
    n_owned: int,
    eps: float,
    minpts: int,
    dev: Device,
):
    """One rank's work: core flags for owned points + local clustering.

    ``local_ids`` lists global ids, owned first (``n_owned`` of them) then
    ghosts.  Returns ``(owned_core, local_parents, local_core)`` where the
    parents array is over local indices.
    """
    pts = X[local_ids]
    lo, hi = boxes_from_points(pts)
    tree = build_bvh(lo, hi, device=dev)
    owned_pts = pts[:n_owned]

    if minpts == 2:
        local_core = np.ones(local_ids.shape[0], dtype=bool)
        owned_core = None  # derived from component sizes globally
    elif minpts == 1:
        local_core = np.ones(local_ids.shape[0], dtype=bool)
        owned_core = np.ones(n_owned, dtype=bool)
    else:
        counts = count_within(tree, owned_pts, eps, stop_at=minpts, device=dev)
        owned_core = counts >= minpts
        local_core = np.zeros(local_ids.shape[0], dtype=bool)
        local_core[:n_owned] = owned_core
        # ghost flags are filled in by the caller after the exchange
    return tree, owned_core, local_core


def distributed_dbscan(
    X: np.ndarray,
    eps: float,
    min_samples: int,
    n_ranks: int = 4,
    device: Device | None = None,
) -> DBSCANResult:
    """Cluster ``X`` across ``n_ranks`` simulated ranks.

    ``info`` reports the decomposition (per-rank owned/ghost counts) and
    the communication volume per phase.  Output is DBSCAN-equivalent to
    any single-device algorithm in the registry.
    """
    X = validate_points(X)
    eps, minpts = validate_params(eps, min_samples)
    dev = default_device(device)
    n = X.shape[0]
    t0 = time.perf_counter()

    partition = rcb_partition(X, n_ranks)
    halo = select_ghosts(X, partition, eps)
    comm = SimulatedComm(n_ranks)
    # Ghost coordinates travel to their consumer ranks.
    comm.exchange("ghosts", [X[g] for g in halo.ghosts])

    owned_lists = [partition.owned(r) for r in range(n_ranks)]
    local_ids_per_rank = [
        np.concatenate([owned_lists[r], halo.ghosts[r]]) for r in range(n_ranks)
    ]

    # --- phase 1: local core determination --------------------------------
    rank_state = []
    global_core = np.zeros(n, dtype=bool)
    for r in range(n_ranks):
        tree, owned_core, local_core = _local_phase(
            X, local_ids_per_rank[r], owned_lists[r].shape[0], eps, minpts, dev
        )
        rank_state.append((tree, local_core))
        if owned_core is not None:
            global_core[owned_lists[r]] = owned_core

    # --- phase 2: ghost core-flag exchange + local main phase --------------
    if minpts > 2:
        comm.exchange("core_flags", [global_core[g] for g in halo.ghosts])
    local_parents = []
    for r in range(n_ranks):
        tree, local_core = rank_state[r]
        local_ids = local_ids_per_rank[r]
        n_owned = owned_lists[r].shape[0]
        if minpts > 2:
            local_core[n_owned:] = global_core[halo.ghosts[r]]
        uf = EclUnionFind(local_ids.shape[0], device=dev)
        order = tree.order

        def on_hits(q_ids: np.ndarray, leaf_pos: np.ndarray) -> None:
            nbr = order[leaf_pos]
            keep = nbr != q_ids  # queries are the first n_owned local rows
            resolve_pairs(uf, local_core, q_ids[keep], nbr[keep], dev)

        for_each_leaf_hit(
            tree,
            X[local_ids[:n_owned]],
            eps,
            on_hits,
            device=dev,
            kernel_name=f"dist_main_rank{r}",
        )
        local_parents.append(uf)

    # --- phase 3: merge -----------------------------------------------------
    guf = EclUnionFind(n, device=dev)
    merge_payloads = []
    for r in range(n_ranks):
        uf = local_parents[r]
        local_ids = local_ids_per_rank[r]
        tree, local_core = rank_state[r]
        labels_local = uf.finalize()
        core_rows = np.flatnonzero(local_core)
        if core_rows.size:
            # Union each local cluster's core members globally.
            roots = labels_local[core_rows]
            order = np.argsort(roots, kind="stable")
            core_sorted = core_rows[order]
            _, starts, lengths = run_length_encode(roots[order])
            firsts = np.repeat(core_sorted[starts], lengths) if starts.size else core_sorted
            guf.union(local_ids[firsts], local_ids[core_sorted])
            merge_payloads.append(local_ids[core_sorted])
        else:
            merge_payloads.append(np.zeros(0, dtype=np.int64))
    comm.gather("merge_core_groups", merge_payloads)

    # Border attachments, owner-rank authoritative.
    attach_targets = np.full(n, -1, dtype=np.int64)
    attach_payloads = []
    for r in range(n_ranks):
        uf = local_parents[r]
        local_ids = local_ids_per_rank[r]
        tree, local_core = rank_state[r]
        n_owned = owned_lists[r].shape[0]
        labels_local = uf.parents  # finalized above
        # a core member per local cluster root (for attachment targets)
        core_rows = np.flatnonzero(local_core)
        rep_for_root = np.full(local_ids.shape[0], -1, dtype=np.int64)
        if core_rows.size:
            roots_of_core = labels_local[core_rows]
            order = np.argsort(roots_of_core, kind="stable")
            uroots, starts, _lengths = run_length_encode(roots_of_core[order])
            rep_for_root[uroots] = core_rows[order][starts]
        owned_rows = np.arange(n_owned)
        border_rows = owned_rows[
            ~local_core[:n_owned] & (labels_local[:n_owned] != owned_rows)
        ]
        if border_rows.size:
            targets = rep_for_root[labels_local[border_rows]]
            attach_targets[local_ids[border_rows]] = local_ids[targets]
        attach_payloads.append(local_ids[border_rows])
    comm.gather("merge_border_attachments", attach_payloads)

    # --- assemble the global result ------------------------------------------
    if minpts == 2:
        roots = find_roots(guf.parents, np.arange(n, dtype=np.int64), dev.counters)
        sizes = np.bincount(roots, minlength=n)
        global_core = sizes[roots] >= 2
        clustered = global_core
        raw = np.where(clustered, roots, -1)
    elif minpts == 1:
        global_core[:] = True
        roots = find_roots(guf.parents, np.arange(n, dtype=np.int64), dev.counters)
        clustered = np.ones(n, dtype=bool)
        raw = roots
    else:
        roots = find_roots(guf.parents, np.arange(n, dtype=np.int64), dev.counters)
        attached = attach_targets >= 0
        raw = np.where(global_core, roots, -1)
        raw[attached & ~global_core] = roots[attach_targets[attached & ~global_core]]
        clustered = global_core | (attached & ~global_core)
    labels, n_clusters = relabel_consecutive(raw, clustered)

    info = {
        "algorithm": "distributed-fdbscan",
        "n": n,
        "eps": eps,
        "min_samples": minpts,
        "n_ranks": n_ranks,
        "owned_per_rank": partition.counts().tolist(),
        "ghosts_per_rank": [int(g.shape[0]) for g in halo.ghosts],
        "comm_messages": comm.stats.messages,
        "comm_bytes": comm.stats.bytes_sent,
        "comm_by_phase": dict(comm.stats.by_phase),
        "t_total": time.perf_counter() - t0,
    }
    return DBSCANResult(
        labels=labels, is_core=global_core, n_clusters=n_clusters, info=info
    )
