"""Real OS-process ranks for the distributed driver.

With ``backend="process"`` :func:`repro.distributed.driver.distributed_dbscan`
runs each rank's local compute — BVH build, neighbour counting, the fused
main traversal and its union-find — inside a dedicated worker process held
by a :class:`RankPool`, one pipe-connected child per rank.  Rank state
(the partition's tree, points and core flags) lives in the rank process
and **dies with it**: a plan-driven rank crash is a real ``SIGKILL``, so
the driver's checkpoint/re-ship recovery machinery is exercised against
genuine process loss, not a simulated one.  Dead ranks are never
respawned — partitions are reassigned to surviving rank processes exactly
as in the simulated path.

Determinism contract (mirrors :mod:`repro.device.backends`):

- each operation runs the *identical* rank-local code the in-process
  driver runs (the helpers are imported from the driver module), so the
  returned labels and counter deltas are bit-identical;
- every rank runs on its own fresh :class:`~repro.device.device.Device`;
  per-operation counter deltas are shipped back and merged into the
  parent device **including** ``kernel_launches``/``thread_steps`` (in
  the simulated path the rank kernels launch directly on the shared
  parent device, so the merged totals match exactly);
- rank kernel launches are replayed onto the parent as ``name@r<rank>``
  lanes through the same ``perf_counter`` epoch handshake the process
  backend uses, keeping :meth:`Device.profile` and traces meaningful;
- injected *device* faults are evaluated by the parent from the pure
  :meth:`~repro.faults.plan.FaultPlan.device_fault_kind` decision and
  raised before the operation is dispatched — equivalent to the
  simulated hook, which fires at the first kernel launch of an attempt,
  before any work is recorded.

The message layer (:class:`~repro.distributed.comm.SimulatedComm`
envelopes, checksums, retransmits) stays in the parent: rank processes
are the *compute* substrate, while the communication fault model remains
the simulated one so fault schedules stay seed-stable across backends.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback

import numpy as np

from repro.device.device import Device, KernelFaultError

#: Seconds between liveness checks while waiting on a rank's reply.
_POLL_S = 0.05


# --------------------------------------------------------------------------
# rank-process side
# --------------------------------------------------------------------------


def _exec_op(dev: Device, state: dict, op: str, payload: dict) -> dict:
    """Execute one driver operation against this rank's resident state."""
    # Imported here so the child resolves them after fork; also avoids a
    # parent-side import cycle (driver imports this module lazily).
    from repro.bvh.aabb import boxes_from_points
    from repro.bvh.builder import build_bvh
    from repro.bvh.traversal import for_each_leaf_hit
    from repro.core.framework import resolve_pairs
    from repro.distributed.driver import _local_phase
    from repro.unionfind.ecl import EclUnionFind

    if op == "local":
        p = int(payload["partition"])
        pts = payload["pts"]
        n_owned = int(payload["n_owned"])
        tree, owned_core, local_core = _local_phase(
            pts,
            np.arange(pts.shape[0], dtype=np.int64),
            n_owned,
            float(payload["eps"]),
            int(payload["minpts"]),
            dev,
            query_order=payload["query_order"],
            traversal=payload["traversal"],
        )
        state[p] = {
            "tree": tree,
            "pts": pts,
            "n_owned": n_owned,
            "local_core": local_core,
        }
        return {
            "owned_core": owned_core,
            "local_core": local_core,
            "has_tree": tree is not None,
        }

    if op == "rebuild":
        # Crash recovery: the re-shipped points plus the replicated
        # core-flag checkpoint reconstruct phase-1 state without a
        # neighbour recount (mirrors the driver's ``ensure_local_state``).
        p = int(payload["partition"])
        pts = payload["pts"]
        n_owned = int(payload["n_owned"])
        minpts = int(payload["minpts"])
        if n_owned == 0 or pts.shape[0] == 0:
            tree = None
            local_core = np.zeros(pts.shape[0], dtype=bool)
        else:
            lo, hi = boxes_from_points(pts)
            tree = build_bvh(lo, hi, device=dev)
            if minpts > 2:
                local_core = payload["core"].copy()
            else:
                local_core = np.ones(pts.shape[0], dtype=bool)
        state[p] = {
            "tree": tree,
            "pts": pts,
            "n_owned": n_owned,
            "local_core": local_core,
        }
        return {"local_core": local_core, "has_tree": tree is not None}

    if op == "fill_ghost_core":
        st = state[int(payload["partition"])]
        st["local_core"][st["n_owned"] :] = payload["ghost_core"]
        return {}

    if op == "main":
        st = state[int(payload["partition"])]
        tree = st["tree"]
        pts = st["pts"]
        n_owned = st["n_owned"]
        local_core = st["local_core"]
        if tree is None or n_owned == 0:
            return {"labels": np.arange(local_core.shape[0], dtype=np.int64)}
        uf = EclUnionFind(local_core.shape[0], device=dev)
        order = tree.order

        def on_hits(q_ids: np.ndarray, leaf_pos: np.ndarray) -> None:
            nbr = order[leaf_pos]
            keep = nbr != q_ids
            resolve_pairs(uf, local_core, q_ids[keep], nbr[keep], dev)

        for_each_leaf_hit(
            tree,
            pts[:n_owned],
            float(payload["eps"]),
            on_hits,
            device=dev,
            kernel_name=payload["kernel_name"],
            query_order=payload["query_order"],
            traversal=payload["traversal"],
        )
        return {"labels": uf.finalize()}

    raise ValueError(f"unknown rank operation {op!r}")


def _rank_main(rank: int, conn) -> None:
    """Rank-process entry: a request loop over one duplex pipe."""
    dev = Device(name=f"rank{rank}")
    state: dict = {}
    conn.send(("hello", rank, dev._epoch))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        op, payload = msg
        try:
            launch_mark = dev.launches_total
            dev.counters.reset()
            before = dev.counters.snapshot()
            out = _exec_op(dev, state, op, payload)
            new = dev.launches_total - launch_mark
            out["counters"] = dev.counters.diff(before)
            out["launches"] = [
                {
                    "name": rec.name,
                    "threads": rec.threads,
                    "seconds": rec.seconds,
                    "steps": rec.steps,
                    "t_start": rec.t_start,
                }
                for rec in (list(dev.launches)[-new:] if new else [])
            ]
            conn.send(("ok", out))
        except Exception as exc:  # ship the failure type + traceback home
            conn.send(
                ("err", type(exc).__name__, str(exc), traceback.format_exc())
            )


# --------------------------------------------------------------------------
# parent side
# --------------------------------------------------------------------------


class RankPool:
    """``n_ranks`` pipe-connected rank processes with kill-for-real crashes."""

    def __init__(self, n_ranks: int, start_method: str | None = None):
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        ctx = mp.get_context(start_method)
        self.n_ranks = int(n_ranks)
        self.dead: set[int] = set()
        self.epochs: dict[int, float] = {}
        self._conns = []
        self._procs = []
        for r in range(self.n_ranks):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_rank_main,
                args=(r, child_conn),
                daemon=True,
                name=f"repro-rank{r}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        for r in range(self.n_ranks):
            kind, rank, epoch = self._conns[r].recv()
            assert kind == "hello"
            self.epochs[rank] = epoch

    def kill(self, rank: int) -> None:
        """SIGKILL a rank process (a plan-driven crash).  Its resident
        partition state is genuinely lost; the rank is never respawned."""
        if rank in self.dead:
            return
        self.dead.add(rank)
        proc = self._procs[rank]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=5.0)
        self._conns[rank].close()

    def run(self, rank: int, op: str, payload: dict) -> dict:
        """Dispatch one operation to a rank and wait for its reply.

        A rank that dies mid-operation (or was already killed) surfaces
        as a :class:`KernelFaultError`, feeding the driver's retry and
        reassignment machinery exactly like a transient device fault.
        """
        if rank in self.dead:
            raise KernelFaultError(f"rank {rank} process is dead")
        conn = self._conns[rank]
        proc = self._procs[rank]
        try:
            conn.send((op, payload))
            while True:
                if conn.poll(_POLL_S):
                    reply = conn.recv()
                    break
                if not proc.is_alive():
                    self.dead.add(rank)
                    raise KernelFaultError(
                        f"rank {rank} process died mid-operation "
                        f"(exitcode={proc.exitcode})"
                    )
        except (BrokenPipeError, EOFError, OSError) as exc:
            self.dead.add(rank)
            raise KernelFaultError(
                f"rank {rank} process died ({exc!r})"
            ) from exc
        status = reply[0]
        if status == "err":
            _, kind, text, tb = reply
            if kind == "KernelFaultError":
                raise KernelFaultError(text)
            raise RuntimeError(
                f"rank {rank} operation {op!r} failed: {kind}: {text}\n{tb}"
            )
        return reply[1]

    def close(self) -> None:
        """Shut every surviving rank down and release the pipes."""
        for r in range(self.n_ranks):
            if r in self.dead:
                continue
            try:
                self._conns[r].send(None)
            except (BrokenPipeError, OSError):
                pass
        for r in range(self.n_ranks):
            if r in self.dead:
                continue
            proc = self._procs[r]
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
            self._conns[r].close()
            self.dead.add(r)
