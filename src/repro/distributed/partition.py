"""Spatial domain decomposition: recursive coordinate bisection + ghosts.

RCB is the decomposition the distributed DBSCAN literature uses (and what
HACC-style simulations already provide): recursively split the longest
axis of the current box at the weighted median so every rank receives a
near-equal share of points in a compact axis-aligned region.

Ghost selection implements the eps-halo: rank ``r`` additionally receives
every remote point within ``eps`` of its region.  Because any neighbour
of an owned point lies within ``eps`` of the region, owned points see
their *complete* eps-neighbourhood locally — core status and every
owned-point pair can be resolved without further communication.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh.aabb import mindist_point_box_sq


@dataclass
class Partition:
    """An RCB decomposition of a point set.

    Attributes
    ----------
    n_ranks:
        Number of ranks (any positive integer, not only powers of two).
    rank_of_point:
        ``(n,)`` — owning rank per point.
    box_lo, box_hi:
        ``(n_ranks, d)`` — each rank's region (a partition of the data's
        bounding box, so regions tile space with no gaps).
    """

    n_ranks: int
    rank_of_point: np.ndarray
    box_lo: np.ndarray
    box_hi: np.ndarray

    def owned(self, rank: int) -> np.ndarray:
        """Global indices owned by ``rank``."""
        return np.flatnonzero(self.rank_of_point == rank)

    def counts(self) -> np.ndarray:
        """Points per rank."""
        return np.bincount(self.rank_of_point, minlength=self.n_ranks)


@dataclass
class GhostExchange:
    """Ghost (halo) selection for one partition at one ``eps``.

    ``ghosts[r]`` holds the global indices of the remote points replicated
    onto rank ``r``.
    """

    ghosts: list[np.ndarray]

    def total_ghosts(self) -> int:
        return int(sum(g.shape[0] for g in self.ghosts))


def rcb_partition(X: np.ndarray, n_ranks: int) -> Partition:
    """Recursively bisect the data into ``n_ranks`` spatial regions.

    Splits the longest axis at the weighted median; rank counts divide as
    evenly as possible at every level, so non-power-of-two rank counts are
    fine.  Every point is assigned to exactly one rank and every rank's
    box is a face-to-face tile of its parent box.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] == 0:
        raise ValueError(f"X must be non-empty (n, d); got {X.shape}")
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1; got {n_ranks}")
    n, d = X.shape
    rank_of_point = np.zeros(n, dtype=np.int64)
    box_lo = np.empty((n_ranks, d))
    box_hi = np.empty((n_ranks, d))

    # Work queue of (point indices, box, rank range [r0, r1)).
    root_lo = X.min(axis=0)
    root_hi = X.max(axis=0)
    queue = [(np.arange(n, dtype=np.int64), root_lo, root_hi, 0, n_ranks)]
    while queue:
        idx, lo, hi, r0, r1 = queue.pop()
        k = r1 - r0
        if k == 1:
            rank_of_point[idx] = r0
            box_lo[r0] = lo
            box_hi[r0] = hi
            continue
        k_left = k // 2
        axis = int(np.argmax(hi - lo))
        coords = X[idx, axis]
        order = np.argsort(coords, kind="stable")
        n_left = int(round(idx.shape[0] * (k_left / k)))
        n_left = min(max(n_left, 0), idx.shape[0])
        left_idx = idx[order[:n_left]]
        right_idx = idx[order[n_left:]]
        if n_left == 0:
            cut = lo[axis]
        elif n_left == idx.shape[0]:
            cut = hi[axis]
        else:
            cut = 0.5 * (coords[order[n_left - 1]] + coords[order[n_left]])
        left_hi = hi.copy()
        left_hi[axis] = cut
        right_lo = lo.copy()
        right_lo[axis] = cut
        queue.append((left_idx, lo.copy(), left_hi, r0, r0 + k_left))
        queue.append((right_idx, right_lo, hi.copy(), r0 + k_left, r1))
    return Partition(n_ranks=n_ranks, rank_of_point=rank_of_point, box_lo=box_lo, box_hi=box_hi)


def select_ghosts(X: np.ndarray, partition: Partition, eps: float) -> GhostExchange:
    """Eps-halo ghosts: per rank, all remote points within ``eps`` of its box."""
    X = np.asarray(X, dtype=np.float64)
    if eps < 0 or not np.isfinite(eps):
        raise ValueError(f"eps must be finite and non-negative; got {eps}")
    eps2 = eps * eps
    ghosts = []
    for rank in range(partition.n_ranks):
        d2 = mindist_point_box_sq(
            X, partition.box_lo[rank][None, :], partition.box_hi[rank][None, :]
        )
        near = (d2 <= eps2) & (partition.rank_of_point != rank)
        ghosts.append(np.flatnonzero(near).astype(np.int64))
    return GhostExchange(ghosts=ghosts)
