"""Cost-model report: wall seconds joined with machine-independent work.

The paper's argument is algorithmic — fewer distance evaluations, fewer
node visits — but a wall-clock regression can hide behind an algorithmic
win (and vice versa) when the two are reported in separate tables.  The
cost model joins them per kernel: next to each kernel's wall seconds sit
its counter totals *and the implied rates* (distance evals/s, node
visits/s, bytes moved/s), so a reviewer can check in one place that a
speedup came from doing less work rather than from timing noise, exactly
the cross-check the machine-independent counters exist for.

Rows come from any :meth:`~repro.device.device.Device.profile` dict
whose entries carry per-kernel ``counters`` (aggregated launch deltas —
the profile of any device, or a benchmark record's ``kernels`` field).
Seconds and counters are both *inclusive* of nested kernel spans, so
their ratios stay consistent; ``self_seconds`` is reported alongside for
the exclusive view (see the ``Device.profile`` docstring for the
semantics).
"""

from __future__ import annotations

#: Counters whose per-kernel rates the report derives, with the rate
#: column label.  ``bytes_scanned`` is the bytes-moved proxy.
RATE_COUNTERS = (
    ("distance_evals", "evals/s"),
    ("nodes_visited", "visits/s"),
    ("pairs_processed", "pairs/s"),
    ("bytes_scanned", "MB/s"),
)


def cost_model_rows(profile: dict) -> list[dict]:
    """Join a per-kernel profile with its counters into report rows.

    Each row: ``kernel``, ``launches``, ``seconds`` (inclusive),
    ``self_seconds``, every nonzero counter, and a ``<counter>_per_s``
    rate for each entry of :data:`RATE_COUNTERS` (``None`` when the
    kernel recorded no wall time).  Rows are sorted by seconds, hottest
    first.
    """
    rows = []
    for name, entry in profile.items():
        counters = {k: v for k, v in entry.get("counters", {}).items() if v}
        seconds = float(entry.get("seconds", 0.0))
        row = {
            "kernel": name,
            "launches": int(entry.get("launches", 0)),
            "seconds": seconds,
            "self_seconds": float(entry.get("self_seconds", seconds)),
            "counters": counters,
        }
        for counter, _label in RATE_COUNTERS:
            value = counters.get(counter, 0)
            row[f"{counter}_per_s"] = (value / seconds) if seconds > 0 else None
        rows.append(row)
    rows.sort(key=lambda r: r["seconds"], reverse=True)
    return rows


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_cost_model(profile: dict, title: str = "-- cost model --") -> str:
    """Aligned text table of :func:`cost_model_rows`.

    Counter columns appear only when some kernel recorded that counter,
    keeping the table as narrow as the run allows.  ``bytes_scanned``'s
    rate renders as MB/s.
    """
    rows = cost_model_rows(profile)
    if not rows:
        return f"{title}: (no kernel launches)" if title else "(no kernel launches)"
    active = [
        (counter, label)
        for counter, label in RATE_COUNTERS
        if any(row["counters"].get(counter) for row in rows)
    ]
    columns = ["kernel", "launches", "seconds", "self_s"]
    for counter, label in active:
        columns += [counter, label]
    cells = []
    for row in rows:
        line = [
            row["kernel"],
            _fmt(row["launches"]),
            _fmt(row["seconds"]),
            _fmt(row["self_seconds"]),
        ]
        for counter, label in active:
            rate = row[f"{counter}_per_s"]
            if label == "MB/s" and rate is not None:
                rate = rate / 1e6
            line += [_fmt(row["counters"].get(counter, 0)), _fmt(rate)]
        cells.append(line)
    widths = [max(len(c), *(len(line[i]) for line in cells)) for i, c in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.rjust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    lines += ["  ".join(line[i].rjust(widths[i]) for i in range(len(columns))) for line in cells]
    return "\n".join(lines)
