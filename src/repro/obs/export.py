"""Trace exporters: Chrome trace-event JSON and flat CSV.

:func:`chrome_trace` renders a :class:`~repro.obs.span.Tracer` (or a
bare :class:`~repro.device.Device`) as the Chrome trace-event format —
the JSON ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_
load natively — so a sweep's timeline can be inspected on a real trace
UI instead of read out of dicts:

- every span becomes a complete ``"ph": "X"`` event (microsecond ``ts``
  / ``dur``), placed on a display lane (``tid``) by category: control
  flow (bench cells, driver phases), device kernels, comm transfers and
  replayed builds each get their own lane, so events that overlap
  *semantically* (a replayed build charged at replay time) never corrupt
  the visual nesting of the live lanes;
- span events (fault injections, retransmits, retries) become instant
  events (``"ph": "i"``) at their timestamp;
- counter samples (frontier size, live/transmitted bytes) become counter
  tracks (``"ph": "C"``) that Perfetto plots as little area charts;
- span/trace identity (``trace_id``, ``span_id``, ``parent_id``) rides
  in each event's ``args``, so the parent/child tree survives the
  round-trip even across lanes.

**Truncation is explicit.**  Both the tracer's span ring and the
device's kernel ring are bounded; when spans were evicted the export
carries a ``trace_truncated`` instant event plus
``metadata.dropped_spans`` (CSV: a ``__trace_truncated__`` marker row)
— a reader can always tell a short trace from a clipped one.

:func:`validate_chrome_trace` is the schema check CI runs on emitted
traces: required keys per event type, non-decreasing ``ts``, proper
``X``-span nesting per lane, matched ``B``/``E`` pairs, and the
truncation marker whenever metadata declares drops.
"""

from __future__ import annotations

import csv
import io
import json

#: Display lanes (Chrome ``tid``) by span category.
LANES = {
    "kernel": (1, "device kernels"),
    "kernel.replayed": (3, "replayed builds"),
    "comm": (2, "comm"),
}
#: Everything else (bench cells, driver phases, ad-hoc spans).
CONTROL_LANE = (0, "control")

_US = 1e6  # trace-event timestamps are microseconds

#: Nesting tolerance (microseconds) for float round-off in ts+dur sums.
NESTING_EPSILON_US = 0.5


def _lane(category: str) -> tuple[int, str]:
    return LANES.get(category, CONTROL_LANE)


def _device_spans(device) -> list[dict]:
    """A bare device's kernel ring as span dicts (no tracer involved)."""
    spans = []
    for i, row in enumerate(device.trace_snapshot()):
        spans.append(
            {
                "name": row["name"],
                "category": "kernel.replayed" if row["replayed"] else "kernel",
                "trace_id": "device",
                "span_id": f"dev{i:08x}",
                "parent_id": None,
                "t_start": row["t_start"],
                "seconds": row["seconds"],
                "attributes": {
                    "threads": row["threads"],
                    "steps": row["steps"],
                    "replayed": row["replayed"],
                    **{f"counter.{k}": v for k, v in row["counters"].items() if v},
                },
                "events": [],
                "status": "ok",
            }
        )
    return spans


def _collect(source) -> tuple[list[dict], list[tuple], list[dict], int, str]:
    """Normalise a Tracer or Device into
    ``(spans, counter_samples, orphan_events, dropped, service)``."""
    if hasattr(source, "trace_snapshot"):  # a Device
        return _device_spans(source), [], [], int(source.trace_dropped), source.name
    spans = source.snapshot()
    return (
        spans,
        list(getattr(source, "counter_samples", [])),
        list(getattr(source, "orphan_events", [])),
        int(getattr(source, "dropped", 0)),
        getattr(source, "service", "repro"),
    )


def chrome_trace(source) -> dict:
    """Render a tracer or device as a Chrome trace-event payload.

    Returns the JSON-ready dict; :func:`write_chrome_trace` writes it.
    """
    spans, counters, orphans, dropped, service = _collect(source)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": service},
        }
    ]
    lanes_used = {CONTROL_LANE}
    for span in spans:
        lanes_used.add(_lane(span["category"]))
    for tid, label in sorted(lanes_used):
        events.append(
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid, "args": {"name": label}}
        )

    timed: list[dict] = []
    replay_front = 0.0
    for span in sorted(spans, key=lambda s: s["t_start"]):
        tid, _ = _lane(span["category"])
        ts = span["t_start"] * _US
        dur = max(span["seconds"], 0.0) * _US
        if span["category"] == "kernel.replayed":
            # Replayed builds carry their *recorded* durations but occupy
            # essentially no replay wall time; laying consecutive batches
            # end-to-end keeps the lane free of fake overlaps.
            ts = max(ts, replay_front)
            replay_front = ts + dur
        args = {
            "trace_id": span["trace_id"],
            "span_id": span["span_id"],
            "parent_id": span["parent_id"],
            "status": span["status"],
        }
        args.update(span["attributes"])
        timed.append(
            {
                "name": span["name"],
                "cat": span["category"] or "span",
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": 0,
                "tid": tid,
                "args": args,
            }
        )
        for event in span["events"]:
            timed.append(
                {
                    "name": event["name"],
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": event["t"] * _US,
                    "pid": 0,
                    "tid": tid,
                    "args": {"span_id": span["span_id"], **event["attributes"]},
                }
            )
    for event in orphans:
        timed.append(
            {
                "name": event["name"],
                "cat": "event",
                "ph": "i",
                "s": "g",
                "ts": event["t"] * _US,
                "pid": 0,
                "tid": 0,
                "args": dict(event["attributes"]),
            }
        )
    for name, t, value in counters:
        timed.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": t * _US,
                "pid": 0,
                "tid": 0,
                "args": {"value": value},
            }
        )
    if dropped:
        first_ts = min((e["ts"] for e in timed), default=0.0)
        timed.append(
            {
                "name": "trace_truncated",
                "cat": "event",
                "ph": "i",
                "s": "g",
                "ts": first_ts,
                "pid": 0,
                "tid": 0,
                "args": {"dropped_spans": dropped},
            }
        )
    timed.sort(key=lambda e: e["ts"])
    events.extend(timed)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"service": service, "dropped_spans": dropped},
    }


def spans_csv(source) -> str:
    """Render a tracer or device as flat CSV (one row per span).

    ``attributes`` and ``events`` are serialised as ``key=value`` lists
    (``;``-joined) so the file stays spreadsheet-friendly.  A
    ``__trace_truncated__`` marker row follows the header whenever spans
    were evicted from the bounded ring.
    """
    spans, _counters, _orphans, dropped, _service = _collect(source)
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(
        [
            "trace_id", "span_id", "parent_id", "category", "name",
            "t_start", "seconds", "status", "attributes", "events",
        ]
    )
    if dropped:
        writer.writerow(
            ["", "", "", "_meta", "__trace_truncated__", "", "", "",
             f"dropped_spans={dropped}", ""]
        )
    for span in sorted(spans, key=lambda s: s["t_start"]):
        attrs = ";".join(f"{k}={v}" for k, v in sorted(span["attributes"].items()))
        events = ";".join(f"{e['name']}@{e['t']:.6f}" for e in span["events"])
        writer.writerow(
            [
                span["trace_id"], span["span_id"], span["parent_id"] or "",
                span["category"], span["name"],
                f"{span['t_start']:.9f}", f"{span['seconds']:.9f}",
                span["status"], attrs, events,
            ]
        )
    return buf.getvalue()


def write_chrome_trace(path: str, source) -> dict:
    """Write :func:`chrome_trace` JSON to ``path``; returns the payload."""
    payload = chrome_trace(source)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
    return payload


def write_trace(path: str, source, fmt: str = "chrome") -> None:
    """Write a trace in the requested format (``"chrome"`` or ``"csv"``)."""
    if fmt == "chrome":
        write_chrome_trace(path, source)
    elif fmt == "csv":
        with open(path, "w") as fh:
            fh.write(spans_csv(source))
    else:
        raise ValueError(f"unknown trace format {fmt!r}; expected 'chrome' or 'csv'")


# -- schema validation ---------------------------------------------------------

_REQUIRED_KEYS = {
    "X": ("name", "ph", "ts", "dur", "pid", "tid"),
    "B": ("name", "ph", "ts", "pid", "tid"),
    "E": ("ph", "ts", "pid", "tid"),
    "i": ("name", "ph", "ts"),
    "I": ("name", "ph", "ts"),
    "C": ("name", "ph", "ts", "pid", "args"),
    "M": ("name", "ph", "pid", "args"),
}


def validate_chrome_trace(payload: dict) -> dict:
    """Validate a Chrome trace-event payload; raise ``ValueError`` listing
    every violation found.

    Checks the properties a trace UI depends on: required keys per event
    type, non-decreasing ``ts`` over the event list, complete ``X``
    spans properly nested per lane (within :data:`NESTING_EPSILON_US`),
    matched ``B``/``E`` pairs, and — when ``metadata.dropped_spans`` is
    nonzero — the presence of the ``trace_truncated`` marker.  Returns
    summary statistics (event/span/counter counts) on success.
    """
    problems: list[str] = []
    if not isinstance(payload, dict) or not isinstance(payload.get("traceEvents"), list):
        raise ValueError("not a trace payload: expected a dict with a 'traceEvents' list")
    events = payload["traceEvents"]
    last_ts = None
    lanes: dict[tuple, list] = {}
    begin_stack: dict[tuple, int] = {}
    counts = {"events": len(events), "spans": 0, "counters": 0, "instants": 0}
    truncated_marker = False
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _REQUIRED_KEYS:
            problems.append(f"event {i}: unknown or missing ph {ph!r}")
            continue
        missing = [k for k in _REQUIRED_KEYS[ph] if k not in event]
        if missing:
            problems.append(f"event {i} (ph={ph}, name={event.get('name')!r}): missing {missing}")
            continue
        if event.get("name") == "trace_truncated":
            truncated_marker = True
        ts = event.get("ts")
        if ts is not None:
            if not isinstance(ts, (int, float)):
                problems.append(f"event {i}: ts is not a number")
                continue
            if last_ts is not None and ts < last_ts:
                problems.append(
                    f"event {i} (name={event.get('name')!r}): ts {ts} < previous {last_ts}"
                )
            last_ts = ts
        key = (event.get("pid"), event.get("tid"))
        if ph == "X":
            counts["spans"] += 1
            dur = event["dur"]
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: bad dur {dur!r}")
                continue
            stack = lanes.setdefault(key, [])
            while stack and stack[-1] <= ts + NESTING_EPSILON_US:
                stack.pop()
            if stack and ts + dur > stack[-1] + NESTING_EPSILON_US:
                problems.append(
                    f"event {i} (name={event.get('name')!r}): span [{ts}, {ts + dur}] "
                    f"overlaps but does not nest inside enclosing span ending at "
                    f"{stack[-1]} on lane {key}"
                )
                continue
            stack.append(ts + dur)
        elif ph == "B":
            begin_stack[key] = begin_stack.get(key, 0) + 1
        elif ph == "E":
            depth = begin_stack.get(key, 0)
            if depth <= 0:
                problems.append(f"event {i}: 'E' with no open 'B' on lane {key}")
            else:
                begin_stack[key] = depth - 1
        elif ph == "C":
            counts["counters"] += 1
            args = event.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(f"event {i}: counter args must be numeric")
        elif ph in ("i", "I"):
            counts["instants"] += 1
    for key, depth in begin_stack.items():
        if depth:
            problems.append(f"lane {key}: {depth} unmatched 'B' event(s)")
    dropped = (payload.get("metadata") or {}).get("dropped_spans", 0)
    if dropped and not truncated_marker:
        problems.append(
            f"metadata declares {dropped} dropped span(s) but no 'trace_truncated' marker"
        )
    if problems:
        raise ValueError(
            "invalid Chrome trace:\n" + "\n".join(f"  - {p}" for p in problems)
        )
    counts["dropped_spans"] = int(dropped)
    return counts


def validate_chrome_trace_file(path: str) -> dict:
    """Load and validate a trace file; returns the summary statistics."""
    with open(path) as fh:
        payload = json.load(fh)
    return validate_chrome_trace(payload)
