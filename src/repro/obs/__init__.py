"""repro.obs — unified tracing + metrics for the whole stack.

Dependency-free observability layer (see ``docs/observability.md``):

- :mod:`repro.obs.span`      — OpenTelemetry-flavoured span model: one
  :class:`Tracer` collects device kernels, comm transfers, distributed
  phases and benchmark cells into a single trace tree;
- :mod:`repro.obs.metrics`   — counters / gauges / fixed-bucket
  histograms with Prometheus-text and CSV expositions, fed from the
  stack's existing accounting objects;
- :mod:`repro.obs.export`    — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``) and flat-CSV exporters plus the schema validator
  CI runs on emitted traces;
- :mod:`repro.obs.costmodel` — the per-kernel report joining wall
  seconds with machine-independent work counters and their rates;
- :mod:`repro.obs.fit`       — fitted per-kernel cost models
  (closed-form least squares over the cost-model rows) with a
  serializable ``COSTMODEL.json`` artifact, a predict API for admission
  control, and a drift check CI gates on;
- :mod:`repro.obs.slo`       — latency/availability objectives with
  error-budget arithmetic (burn rate, budget remaining) over the
  metrics registry's histograms and counters.
"""

from repro.obs.costmodel import cost_model_rows, format_cost_model
from repro.obs.fit import (
    FittedCostModel,
    fit_cost_model,
    fit_from_history,
    fit_from_records,
    validate_costmodel,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO,
    evaluate_slos,
    format_slo_report,
    record_slo_gauges,
)
from repro.obs.export import (
    chrome_trace,
    spans_csv,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    record_comm_stats,
    record_counter_rates,
    record_fault_summary,
    record_kernel_counters,
    record_kernel_profile,
    record_launch_seconds,
    record_run_records,
    record_trace_health,
)
from repro.obs.span import NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_SLOS",
    "FittedCostModel",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "SLO",
    "Span",
    "Tracer",
    "chrome_trace",
    "cost_model_rows",
    "evaluate_slos",
    "fit_cost_model",
    "fit_from_history",
    "fit_from_records",
    "format_cost_model",
    "format_slo_report",
    "record_slo_gauges",
    "validate_costmodel",
    "record_comm_stats",
    "record_fault_summary",
    "record_kernel_counters",
    "record_kernel_profile",
    "record_counter_rates",
    "record_launch_seconds",
    "record_run_records",
    "record_trace_health",
    "spans_csv",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
    "write_trace",
]
